//! Criterion benches for the PageRank Store's memory layout: edge-arrival reroute
//! throughput (per-edge vs batched, against the flat step arena + CSR visit postings)
//! and estimator refresh, on a preferential-attachment graph.
//!
//! This is the perf trail for the arena/postings refactor: the reroute hot path used to
//! pay a heap `Vec` per rerouted segment and a `HashMap` probe per visited node; now it
//! rewrites arena slots in place and streams sorted postings runs.  Run with
//! `cargo bench --bench store_layout`.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use ppr_bench::workloads::twitter_like;
use ppr_core::{IncrementalPageRank, MonteCarloConfig};
use ppr_graph::stream::split_at_fraction;
use ppr_graph::DynamicGraph;
use std::hint::black_box;

const NODES: usize = 3_000;
const OUT_DEGREE: usize = 8;
const R: usize = 4;

fn warm_engine() -> (IncrementalPageRank, Vec<ppr_graph::Edge>) {
    let workload = twitter_like(NODES, OUT_DEGREE, 11);
    let (prefix, suffix) = split_at_fraction(&workload.arrivals, 0.9);
    let base = DynamicGraph::from_edges(&prefix, NODES);
    let config = MonteCarloConfig::new(0.2, R).with_seed(13);
    (IncrementalPageRank::from_graph(base, config), suffix)
}

/// Arrival reroute throughput: replay the last 10% of a preferential-attachment
/// stream, per-edge and in batches of increasing size.  Batches amortise the visit
/// postings scan per source node, so throughput should rise with the batch size.
fn bench_arrival_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_layout_arrivals");
    let (_, suffix) = warm_engine();
    group.throughput(Throughput::Elements(suffix.len() as u64));

    group.bench_function(BenchmarkId::from_parameter("per_edge"), |b| {
        b.iter_batched(
            warm_engine,
            |(mut engine, suffix)| {
                for &edge in &suffix {
                    engine.add_edge(edge);
                }
                black_box(engine.work().walk_steps)
            },
            BatchSize::LargeInput,
        )
    });
    for &batch in &[16usize, 256] {
        group.bench_function(BenchmarkId::new("batched", batch), |b| {
            b.iter_batched(
                warm_engine,
                |(mut engine, suffix)| {
                    for chunk in suffix.chunks(batch) {
                        engine.apply_arrivals(chunk);
                    }
                    black_box(engine.work().walk_steps)
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

/// Per-source grouping: a hub gaining many follows at once (the bursty pattern of a
/// celebrity account).  The batched path scans the hub's visit postings once for the
/// whole burst instead of once per edge, so this is where `apply_arrivals` pulls ahead
/// of the per-edge loop.
fn bench_hub_burst(c: &mut Criterion) {
    const BURST: usize = 64;
    let mut group = c.benchmark_group("store_layout_hub_burst");
    group.throughput(Throughput::Elements(BURST as u64));
    let burst: Vec<ppr_graph::Edge> = (0..BURST)
        .map(|i| ppr_graph::Edge::new(0, (1 + i % (NODES - 1)) as u32))
        .collect();

    group.bench_function(BenchmarkId::from_parameter("per_edge"), |b| {
        b.iter_batched(
            || warm_engine().0,
            |mut engine| {
                for &edge in &burst {
                    engine.add_edge(edge);
                }
                black_box(engine.work().walk_steps)
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function(BenchmarkId::from_parameter("batched"), |b| {
        b.iter_batched(
            || warm_engine().0,
            |mut engine| {
                engine.apply_arrivals(&burst);
                black_box(engine.work().walk_steps)
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

/// Estimator refresh: reading all `W(v)` counters out of the store into normalised
/// score vectors.  The counters are kept eagerly exact, so this measures a pure dense
/// scan regardless of how many postings deltas are pending.
fn bench_estimator_refresh(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_layout_estimator");
    let (engine, _) = warm_engine();
    group.throughput(Throughput::Elements(NODES as u64));
    group.bench_function(BenchmarkId::from_parameter("refresh"), |b| {
        b.iter(|| black_box(engine.estimates().normalized().to_vec()))
    });
    group.finish();
}

/// Steady-state slot reuse: fraction of segment rewrites that relocated (allocated
/// arena space) rather than writing in place, over a churn replay.  Reported through
/// the walk store's own counters so the bench doubles as a regression check.
fn bench_slot_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_layout_slot_reuse");
    group.bench_function(BenchmarkId::from_parameter("churn"), |b| {
        b.iter_batched(
            || {
                let (mut engine, suffix) = warm_engine();
                engine.apply_arrivals(&suffix);
                (engine, suffix)
            },
            |(mut engine, suffix)| {
                let warm = engine.walk_store().arena_stats();
                engine.apply_arrivals(&suffix); // parallel copies: pure churn
                let done = engine.walk_store().arena_stats();
                let writes = done.in_place_writes - warm.in_place_writes;
                let relocations = done.relocations - warm.relocations;
                black_box((writes, relocations))
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(
    store_layout,
    bench_arrival_throughput,
    bench_hub_burst,
    bench_estimator_refresh,
    bench_slot_reuse
);
criterion_main!(store_layout);
