//! Criterion bench for experiment E3 (Figure 2): power-law graph generation, PageRank,
//! and exponent fitting.

use criterion::{criterion_group, criterion_main, Criterion};
use ppr_bench::experiments::fig2;
use std::hint::black_box;

fn bench_fig2(c: &mut Criterion) {
    let params = fig2::Fig2Params {
        nodes: 5_000,
        out_degree: 8,
        in_exponent: 0.76,
        epsilon: 0.2,
        fit_window: (0.002, 0.2),
        seed: 1,
    };
    c.bench_function("fig2_powerlaw", |b| {
        b.iter(|| black_box(fig2::run(black_box(&params))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig2
}
criterion_main!(benches);
