//! Criterion bench for experiment E10 (Proposition 5): repair cost of random edge
//! deletions.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ppr_bench::workloads::twitter_like;
use ppr_core::{IncrementalPageRank, MonteCarloConfig};
use ppr_graph::GraphView;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_deletions(c: &mut Criterion) {
    let workload = twitter_like(3_000, 8, 7);
    let engine_template = IncrementalPageRank::from_graph(
        &workload.graph,
        MonteCarloConfig::new(0.2, 4).with_seed(3),
    );
    let mut rng = SmallRng::seed_from_u64(11);
    let mut victims = workload.graph.collect_edges();
    victims.shuffle(&mut rng);
    victims.truncate(200);

    let mut group = c.benchmark_group("deletion_cost");
    group.throughput(Throughput::Elements(victims.len() as u64));
    group.bench_function("delete_200_random_edges", |b| {
        b.iter_batched(
            || {
                // Each measurement starts from a fresh engine so that every iteration
                // deletes edges that are actually present.
                IncrementalPageRank::from_graph(
                    engine_template.graph(),
                    MonteCarloConfig::new(0.2, 4).with_seed(5),
                )
            },
            |mut engine| {
                for &edge in &victims {
                    black_box(engine.remove_edge(edge));
                }
                engine.work().walk_steps
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_deletions
}
criterion_main!(benches);
