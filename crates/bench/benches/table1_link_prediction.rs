//! Criterion bench for experiment E8 (Table 1): the four recommenders evaluated on a
//! reduced snapshot.

use criterion::{criterion_group, criterion_main, Criterion};
use ppr_bench::experiments::table1;
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let params = table1::Table1Params {
        nodes: 2_000,
        out_degree: 25,
        uniform_mix: 0.5,
        celebrity_core: 30,
        users: 5,
        future_follows: 10,
        p_triadic: 0.7,
        min_target_followers: 3,
        iterations: 10,
        epsilon: 0.2,
        seed: 1,
    };
    c.bench_function("table1_link_prediction", |b| {
        b.iter(|| black_box(table1::run(black_box(&params))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table1
}
criterion_main!(benches);
