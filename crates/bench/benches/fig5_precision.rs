//! Criterion bench for experiment E6 (Figure 5): stitched long/short personalized walks
//! and the interpolated-precision computation on a reduced user set.

use criterion::{criterion_group, criterion_main, Criterion};
use ppr_bench::experiments::fig5;
use std::hint::black_box;

fn bench_fig5(c: &mut Criterion) {
    let params = fig5::Fig5Params {
        nodes: 2_000,
        out_degree: 25,
        users: 4,
        min_friends: 20,
        max_friends: 30,
        long_walk: 10_000,
        short_walk: 2_000,
        true_k: 50,
        retrieved_k: 500,
        r: 5,
        epsilon: 0.2,
        seed: 1,
        threads: 1,
    };
    c.bench_function("fig5_precision", |b| {
        b.iter(|| black_box(fig5::run(black_box(&params))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig5
}
criterion_main!(benches);
