//! Criterion benches for experiment E9 (Theorem 4): per-arrival update cost of the
//! incremental engine, including the two ablations called out in `DESIGN.md`
//! (reroute-from-update-point vs rebuild-from-source, and the ε sweep).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ppr_bench::workloads::twitter_like;
use ppr_core::{IncrementalPageRank, MonteCarloConfig, RerouteStrategy};
use ppr_graph::stream::split_at_fraction;
use ppr_graph::DynamicGraph;
use std::hint::black_box;

const NODES: usize = 3_000;
const OUT_DEGREE: usize = 8;

fn replay_suffix(config: MonteCarloConfig) -> u64 {
    let workload = twitter_like(NODES, OUT_DEGREE, 7);
    let (prefix, suffix) = split_at_fraction(&workload.arrivals, 0.9);
    let base = DynamicGraph::from_edges(&prefix, NODES);
    let mut engine = IncrementalPageRank::from_graph(&base, config);
    engine.reset_work();
    for &edge in &suffix {
        engine.add_edge(edge);
    }
    engine.work().walk_steps
}

/// Ablation: the two segment-repair strategies of Section 2.2.
fn bench_reroute_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_update_strategy");
    let suffix_len = (NODES * OUT_DEGREE / 10) as u64;
    group.throughput(Throughput::Elements(suffix_len));
    for (label, strategy) in [
        ("from_update_point", RerouteStrategy::FromUpdatePoint),
        ("from_source", RerouteStrategy::FromSource),
    ] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                let config = MonteCarloConfig::new(0.2, 4)
                    .with_seed(3)
                    .with_reroute(strategy);
                black_box(replay_suffix(config))
            })
        });
    }
    group.finish();
}

/// Ablation: the reset probability ε drives the stored segment length (1/ε) and the
/// update cost (1/ε² in the bounds).
fn bench_epsilon_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_update_epsilon");
    for &epsilon in &[0.1f64, 0.2, 0.4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(epsilon),
            &epsilon,
            |b, &epsilon| {
                b.iter(|| {
                    let config = MonteCarloConfig::new(epsilon, 4).with_seed(5);
                    black_box(replay_suffix(config))
                })
            },
        );
    }
    group.finish();
}

/// R sweep: update cost scales linearly with the number of stored segments.
fn bench_r_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_update_r");
    for &r in &[1usize, 5, 10] {
        group.bench_with_input(BenchmarkId::from_parameter(r), &r, |b, &r| {
            b.iter(|| {
                let config = MonteCarloConfig::new(0.2, r).with_seed(9);
                black_box(replay_suffix(config))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_reroute_strategies, bench_epsilon_sweep, bench_r_sweep
}
criterion_main!(benches);
