//! Criterion benches for snapshot-isolated query serving (`ppr-serve`).
//!
//! Three questions, three report blocks (printed like `sharded_reroute`'s
//! critical-path report, so the numbers land in CI logs even though CI only
//! compiles benches):
//!
//! * **Write-path overhead** — the writer must keep the PR 2 `incremental_update`
//!   baseline: replaying the same arrival suffix through `QueryEngine::commit`
//!   (engine apply + copy-on-write mirror + generation publish) vs through the bare
//!   engine.
//! * **QPS scaling** — a fixed personalized-query batch served through reader pools
//!   of 1/2/4/8 threads, with p50/p99 per-query latency.  Queries are lock-free
//!   against pinned generations, so QPS should scale with cores.
//! * **QPS under a live writer** — the same batches while a writer thread commits
//!   arrival/deletion batches continuously; reports reader QPS, tail latency while
//!   generations publish, and the writer's sustained throughput with readers
//!   attached.
//! * **Batched execution** — a flash-crowd query mix served per query vs through
//!   `QueryBatch`es of widths 1/8/64 with a fresh generation per group: QPS,
//!   group latency percentiles, and fetches-per-query.
//! * **Telemetry overhead** — the write path and query p50 with no registry, a
//!   runtime-disabled registry, and a recording registry; both recording ratios
//!   must stay within 1.03x of plain.
//!
//! Run with `cargo bench --bench query_serving`.

use criterion::{criterion_group, criterion_main, Criterion};
use ppr_core::{IncrementalPageRank, MonteCarloConfig};
use ppr_graph::generators::{preferential_attachment_edges, PreferentialAttachmentConfig};
use ppr_graph::stream::split_at_fraction;
use ppr_graph::{DynamicGraph, Edge, NodeId};
use ppr_serve::{Query, QueryBatch, QueryEngine, ReaderPool, ServeHandle};
use ppr_telemetry::Telemetry;
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::channel;
use std::time::{Duration, Instant};

const NODES: usize = 4_000;
const OUT_DEGREE: usize = 8;
const R: usize = 8;
const QUERIES: usize = 256;
const WALK_LENGTH: usize = 2_000;
const READER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn config() -> MonteCarloConfig {
    MonteCarloConfig::new(0.2, R).with_seed(13)
}

fn stream() -> (Vec<Edge>, Vec<Edge>) {
    let edges =
        preferential_attachment_edges(&PreferentialAttachmentConfig::new(NODES, OUT_DEGREE, 11));
    split_at_fraction(&edges, 0.9)
}

fn serving_engine(prefix: &[Edge]) -> QueryEngine<IncrementalPageRank> {
    let engine = IncrementalPageRank::from_graph(DynamicGraph::from_edges(prefix, NODES), config());
    QueryEngine::new(engine, 4242)
}

fn query_batch() -> Vec<(u64, Query)> {
    (0..QUERIES as u64)
        .map(|qid| {
            (
                qid,
                Query::PersonalizedTopK {
                    seed: NodeId((qid * 31 % NODES as u64) as u32),
                    k: 10,
                    walk_length: WALK_LENGTH,
                    fetch_budget: None,
                },
            )
        })
        .collect()
}

/// Serves `jobs` through `pool`, returning the wall time and each query's latency.
fn timed_serve(
    pool: &ReaderPool,
    handle: &ServeHandle,
    jobs: &[(u64, Query)],
) -> (Duration, Vec<Duration>) {
    let (tx, rx) = channel::<Duration>();
    let started = Instant::now();
    for (qid, query) in jobs {
        let handle = handle.clone();
        let tx = tx.clone();
        let query = query.clone();
        let qid = *qid;
        pool.execute(move || {
            let t0 = Instant::now();
            black_box(handle.serve(qid, &query));
            let _ = tx.send(t0.elapsed());
        });
    }
    drop(tx);
    let latencies: Vec<Duration> = rx.iter().collect();
    (started.elapsed(), latencies)
}

/// Like [`timed_serve`], but also counts how many answers came back with
/// `budget_exhausted` — the partial-result rate under Corollary 9 fetch budgets.
fn timed_serve_counting(
    pool: &ReaderPool,
    handle: &ServeHandle,
    jobs: &[(u64, Query)],
) -> (Duration, Vec<Duration>, usize) {
    let (tx, rx) = channel::<(Duration, bool)>();
    let started = Instant::now();
    for (qid, query) in jobs {
        let handle = handle.clone();
        let tx = tx.clone();
        let query = query.clone();
        let qid = *qid;
        pool.execute(move || {
            let t0 = Instant::now();
            let served = black_box(handle.serve(qid, &query));
            let _ = tx.send((t0.elapsed(), served.budget_exhausted));
        });
    }
    drop(tx);
    let mut latencies = Vec::new();
    let mut exhausted = 0usize;
    for (lat, hit_budget) in rx.iter() {
        latencies.push(lat);
        exhausted += usize::from(hit_budget);
    }
    (started.elapsed(), latencies, exhausted)
}

fn percentile(latencies: &mut [Duration], p: f64) -> Duration {
    latencies.sort_unstable();
    let idx = ((latencies.len() - 1) as f64 * p).round() as usize;
    latencies[idx]
}

/// Write-path overhead: bare engine vs serving commit path over the same suffix.
/// The headline number of each regime is the direct ratio `serving / bare` — the
/// acceptance gauge for the O(touched) two-level spine is the per-edge regime
/// (one commit = one published generation) staying within 2x of the bare engine.
/// The pipelined column overlaps mirror advance + publish with the next batch's
/// engine apply (`with_pipeline(4)`, flushed before the clock stops).
fn report_write_overhead(_c: &mut Criterion) {
    let (prefix, suffix) = stream();
    println!(
        "report query_serving_write_path (suffix of {} edges)",
        suffix.len()
    );

    let mut last_stats = None;
    for (label, batch) in [("per_edge", 1usize), ("batch_16", 16), ("batch_256", 256)] {
        let mut best_bare = f64::INFINITY;
        let mut best_commit = f64::INFINITY;
        let mut best_piped = f64::INFINITY;
        for _ in 0..3 {
            let mut engine =
                IncrementalPageRank::from_graph(DynamicGraph::from_edges(&prefix, NODES), config());
            let t0 = Instant::now();
            for chunk in suffix.chunks(batch) {
                engine.apply_arrivals(chunk);
            }
            best_bare = best_bare.min(t0.elapsed().as_secs_f64());

            let mut serving = serving_engine(&prefix);
            let t0 = Instant::now();
            for chunk in suffix.chunks(batch) {
                serving.commit_arrivals(chunk);
            }
            best_commit = best_commit.min(t0.elapsed().as_secs_f64());

            let mut serving = serving_engine(&prefix).with_pipeline(4);
            let t0 = Instant::now();
            for chunk in suffix.chunks(batch) {
                serving.commit_arrivals(chunk);
            }
            serving.flush_commits();
            best_piped = best_piped.min(t0.elapsed().as_secs_f64());
            last_stats = Some(serving.commit_stats());
        }
        let bare = suffix.len() as f64 / best_bare;
        println!(
            "report   {label}: bare {bare:>9.0} edges/s, overhead inline {:.2}x, \
             pipelined {:.2}x",
            best_commit / best_bare,
            best_piped / best_bare,
        );
        if let Some(stats) = last_stats.take() {
            println!(
                "report   {label}: {:.1} leaf chunks + {:.1} spine blocks copied per \
                 commit, max in-flight {}",
                (stats.walk_chunks_copied + stats.count_chunks_copied + stats.graph_chunks_copied)
                    as f64
                    / stats.commits as f64,
                stats.spine_blocks_copied as f64 / stats.commits as f64,
                stats.max_inflight,
            );
        }
    }
}

/// QPS scaling without a writer: 1/2/4/8 reader threads over a fixed generation.
fn report_qps_scaling(_c: &mut Criterion) {
    let (prefix, _) = stream();
    let serving = serving_engine(&prefix);
    let handle = serving.handle();
    let jobs = query_batch();
    println!(
        "report query_serving_qps ({QUERIES} personalized queries, {WALK_LENGTH} visits each)"
    );
    let mut baseline: Option<f64> = None;
    for &readers in &READER_COUNTS {
        let pool = ReaderPool::new(readers);
        // One warm-up pass (fills the generation's fetch cache), then best-of-3.
        let _ = timed_serve(&pool, &handle, &jobs);
        let mut best_wall = f64::INFINITY;
        let mut latencies = Vec::new();
        for _ in 0..3 {
            let (wall, lats) = timed_serve(&pool, &handle, &jobs);
            if wall.as_secs_f64() < best_wall {
                best_wall = wall.as_secs_f64();
                latencies = lats;
            }
        }
        let qps = QUERIES as f64 / best_wall;
        let speedup = qps / *baseline.get_or_insert(qps);
        let p50 = percentile(&mut latencies, 0.50);
        let p99 = percentile(&mut latencies, 0.99);
        // Readers never share a lock past the pin, so per-query service time is the
        // scaling unit: flat p50 across widths ⇒ linear QPS in cores.  The modelled
        // figure is what an N-core box reaches; the wall figure is what *this*
        // machine's cores allow (CI containers often have one).
        let modeled = readers as f64 / p50.as_secs_f64();
        println!(
            "report   readers/{readers}: {qps:>7.0} qps wall ({speedup:.2}x vs 1 reader), \
             p50 {p50:?}, p99 {p99:?}, lock-free model {modeled:>7.0} qps"
        );
    }
}

/// QPS and tail latency while a writer commits continuously, plus the writer's
/// sustained throughput with readers attached.
fn report_qps_with_writer(_c: &mut Criterion) {
    let (prefix, suffix) = stream();
    let jobs = query_batch();
    println!(
        "report query_serving_qps_with_writer (writer loops {}-edge arrival+deletion \
         batches)",
        256
    );
    for &readers in &READER_COUNTS {
        let mut serving = serving_engine(&prefix);
        let handle = serving.handle();
        let stop = AtomicBool::new(false);
        let committed = AtomicU64::new(0);
        let (qps, p50, p99, writer_rate) = std::thread::scope(|scope| {
            let writer = scope.spawn(|| {
                let t0 = Instant::now();
                // Arrive + delete the same chunk: the store stays near its steady
                // state, so the loop can run as long as the readers need.
                'outer: loop {
                    for chunk in suffix.chunks(256) {
                        if stop.load(Ordering::Acquire) {
                            break 'outer;
                        }
                        serving.commit_arrivals(chunk);
                        serving.commit_deletions(chunk);
                        committed.fetch_add(2 * chunk.len() as u64, Ordering::Relaxed);
                    }
                }
                t0.elapsed()
            });
            let pool = ReaderPool::new(readers);
            let _ = timed_serve(&pool, &handle, &jobs); // warm-up
            let (wall, mut latencies) = timed_serve(&pool, &handle, &jobs);
            stop.store(true, Ordering::Release);
            let writer_time = writer.join().expect("writer thread");
            (
                QUERIES as f64 / wall.as_secs_f64(),
                percentile(&mut latencies, 0.50),
                percentile(&mut latencies, 0.99),
                committed.load(Ordering::Relaxed) as f64 / writer_time.as_secs_f64(),
            )
        });
        println!(
            "report   readers/{readers}: {qps:>7.0} qps, p50 {p50:?}, p99 {p99:?}, \
             writer {writer_rate:>8.0} edges/s"
        );
    }
}

/// Per-scenario serving regimes: corpus workloads (scaled up) replayed through the
/// serving commit path, with every query burst served through a reader pool exactly
/// where the trace schedules it.  Unlike the synthetic batches above, these mix
/// writes and reads the way the workload shapes do — the flash crowd hammers one
/// hub under a fetch budget (so the budget-exhausted fraction is part of the
/// regime), the spam wave interleaves bursts with their mass-unfollow cleanup.
fn report_scenario_regimes(_c: &mut Criterion) {
    for scenario in [
        ppr_scenario::corpus::flash_crowd().scaled(4),
        ppr_scenario::corpus::spam_wave().scaled(4),
    ] {
        let trace = ppr_scenario::Trace::compile(&scenario);
        println!(
            "report query_serving_scenario {} ({} events, {} queries)",
            scenario.name,
            trace.events.len(),
            trace.query_count()
        );
        for readers in [1usize, 4] {
            let pool = ReaderPool::new(readers);
            let mut serving = QueryEngine::new(
                IncrementalPageRank::new_empty(scenario.nodes, scenario.engine_config()),
                scenario.seed,
            );
            let mut write_wall = Duration::ZERO;
            let mut edges = 0usize;
            let mut query_wall = Duration::ZERO;
            let mut latencies: Vec<Duration> = Vec::new();
            let mut exhausted = 0usize;
            for event in &trace.events {
                match &event.event {
                    ppr_scenario::Event::Arrivals(batch) => {
                        let t0 = Instant::now();
                        serving.commit_arrivals(batch);
                        write_wall += t0.elapsed();
                        edges += batch.len();
                    }
                    ppr_scenario::Event::Deletions(batch) => {
                        let t0 = Instant::now();
                        serving.commit_deletions(batch);
                        write_wall += t0.elapsed();
                        edges += batch.len();
                    }
                    ppr_scenario::Event::Queries(jobs) => {
                        let handle = serving.handle();
                        let (wall, lats, hit) = timed_serve_counting(&pool, &handle, jobs);
                        query_wall += wall;
                        latencies.extend(lats);
                        exhausted += hit;
                    }
                    ppr_scenario::Event::Checkpoint => {}
                }
            }
            let served = latencies.len();
            let qps = served as f64 / query_wall.as_secs_f64();
            let p50 = percentile(&mut latencies, 0.50);
            let p99 = percentile(&mut latencies, 0.99);
            println!(
                "report   {} readers/{readers}: writes {:>8.0} edges/s, {qps:>7.0} qps, \
                 p50 {p50:?}, p99 {p99:?}, budget_exhausted {exhausted}/{served}",
                scenario.name,
                edges as f64 / write_wall.as_secs_f64(),
            );
        }
    }
}

/// Batched execution: the same flash-crowd query mix (256 queries over 8 hub
/// seeds) served per query vs through [`QueryBatch`]es of widths 1/8/64, with a
/// 1-edge commit between groups so every group starts on a *fresh* generation
/// (empty fetch cache) — the regime where batching has real work to amortize.
/// Reports QPS, p50/p99 per-group latency, and fetches-per-query (the served
/// generation's `cache.misses`, i.e. distinct adjacency materializations).
/// Acceptance gauges: width-8 batched strictly out-QPSes 8 sequential serves,
/// and batched fetches-per-query at width 64 sit below width 1.
fn report_batched_query(_c: &mut Criterion) {
    let (prefix, suffix) = stream();
    let jobs: Vec<(u64, Query)> = (0..QUERIES as u64)
        .map(|qid| {
            (
                qid,
                Query::PersonalizedTopK {
                    // A flash crowd: every query walks from one of 8 hub seeds,
                    // so fetch sets overlap heavily across the batch.
                    seed: NodeId(((qid % 8) * 97 % NODES as u64) as u32),
                    k: 10,
                    walk_length: WALK_LENGTH,
                    fetch_budget: None,
                },
            )
        })
        .collect();
    let pool = ReaderPool::new(4);
    println!(
        "report query_serving_batched (flash crowd: {QUERIES} queries over 8 hub seeds, \
         1-edge commit between groups)"
    );
    for width in [1usize, 8, 64] {
        // (qps, p50, p99, fetches-per-query) per mode: per-query serves, the
        // same-thread batch path, the batch fanned over the 4-reader pool.
        let mut rows = [(0.0f64, Duration::ZERO, Duration::ZERO, 0.0f64); 3];
        for (mode, row) in rows.iter_mut().enumerate() {
            let mut best_wall = f64::INFINITY;
            let mut group_lats: Vec<Duration> = Vec::new();
            let mut best_misses = 0u64;
            for _ in 0..3 {
                let mut serving = serving_engine(&prefix);
                let mut wall = Duration::ZERO;
                let mut lats = Vec::new();
                let mut misses = 0u64;
                for (g, group) in jobs.chunks(width).enumerate() {
                    // A fresh generation per group: its fetch cache starts empty,
                    // exactly like serving against a continuously written store.
                    serving.commit_arrivals(&suffix[g % suffix.len()..][..1]);
                    let handle = serving.handle();
                    let t0 = Instant::now();
                    match mode {
                        0 => {
                            for (qid, query) in group {
                                black_box(handle.serve(*qid, query));
                            }
                        }
                        1 => {
                            black_box(handle.serve_batch(&QueryBatch::of(group)));
                        }
                        _ => {
                            black_box(pool.serve_batch(&handle, &QueryBatch::of(group)));
                        }
                    }
                    let elapsed = t0.elapsed();
                    wall += elapsed;
                    lats.push(elapsed);
                    misses += handle.pin().cache_stats().misses;
                }
                if wall.as_secs_f64() < best_wall {
                    best_wall = wall.as_secs_f64();
                    group_lats = lats;
                    best_misses = misses;
                }
            }
            *row = (
                QUERIES as f64 / best_wall,
                percentile(&mut group_lats, 0.50),
                percentile(&mut group_lats, 0.99),
                best_misses as f64 / QUERIES as f64,
            );
        }
        let [(sq, sp50, sp99, sf), (bq, bp50, bp99, bf), (pq, pp50, pp99, pf)] = rows;
        println!(
            "report   width/{width}: sequential {sq:>7.0} qps (group p50 {sp50:?}, \
             p99 {sp99:?}, {sf:.1} fetches/query)"
        );
        println!(
            "report   width/{width}: batched    {bq:>7.0} qps (group p50 {bp50:?}, \
             p99 {bp99:?}, {bf:.1} fetches/query), {:.2}x qps vs sequential",
            bq / sq,
        );
        println!(
            "report   width/{width}: pool/4     {pq:>7.0} qps (group p50 {pp50:?}, \
             p99 {pp99:?}, {pf:.1} fetches/query), {:.2}x qps vs sequential",
            pq / sq,
        );
    }
}

/// Telemetry overhead: the identical write path and query batch served three
/// ways — no registry attached, a registry attached but runtime-disabled, and a
/// registry recording — with the direct ratios printed.  The acceptance gauge
/// for the PR 9 observability layer is both recording ratios staying within
/// 1.03x (≤3%) of the plain run: spans are pre-created histogram handles, so
/// the hot path per commit stage / query is two clock reads plus four relaxed
/// atomic adds.
fn report_telemetry_overhead(_c: &mut Criterion) {
    let (prefix, suffix) = stream();
    let jobs = query_batch();
    println!("report query_serving_telemetry_overhead (acceptance: recording <= 1.03x plain)");

    // Write path: replay the suffix in 64-edge commits (one published
    // generation each, so every commit crosses all four instrumented stages).
    let mut best = [f64::INFINITY; 3];
    for _ in 0..5 {
        for (slot, tele) in [
            (0usize, None),
            (1, Some(Telemetry::disabled())),
            (2, Some(Telemetry::new())),
        ] {
            let mut serving = serving_engine(&prefix);
            if let Some(tele) = &tele {
                serving = serving.with_telemetry(tele);
            }
            let t0 = Instant::now();
            for chunk in suffix.chunks(64) {
                serving.commit_arrivals(chunk);
            }
            best[slot] = best[slot].min(t0.elapsed().as_secs_f64());
        }
    }
    println!(
        "report   write_path: disabled {:.3}x, recording {:.3}x of plain \
         ({:>8.0} edges/s plain)",
        best[1] / best[0],
        best[2] / best[0],
        suffix.len() as f64 / best[0],
    );

    // Query path: the fixed personalized batch through one reader, p50 compared
    // across the same three attachments (warm-up pass first, then best-of-3).
    let pool = ReaderPool::new(1);
    let mut p50s = [Duration::ZERO; 3];
    for (slot, tele) in [
        (0usize, None),
        (1, Some(Telemetry::disabled())),
        (2, Some(Telemetry::new())),
    ] {
        let mut serving = serving_engine(&prefix);
        if let Some(tele) = &tele {
            serving = serving.with_telemetry(tele);
        }
        let handle = serving.handle();
        let _ = timed_serve(&pool, &handle, &jobs);
        let mut best_p50 = Duration::MAX;
        for _ in 0..3 {
            let (_, mut lats) = timed_serve(&pool, &handle, &jobs);
            best_p50 = best_p50.min(percentile(&mut lats, 0.50));
        }
        p50s[slot] = best_p50;
    }
    println!(
        "report   query_p50: plain {:?}, disabled {:.3}x, recording {:.3}x",
        p50s[0],
        p50s[1].as_secs_f64() / p50s[0].as_secs_f64(),
        p50s[2].as_secs_f64() / p50s[0].as_secs_f64(),
    );
}

/// Criterion wall-clock groups: one pinned query, one commit+publish.
fn bench_query_and_commit(c: &mut Criterion) {
    let (prefix, suffix) = stream();
    let serving = serving_engine(&prefix);
    let handle = serving.handle();
    let mut group = c.benchmark_group("query_serving");
    group.sample_size(10);
    group.bench_function("personalized_query_pinned", |b| {
        let view = handle.pin();
        let mut qid = 0u64;
        b.iter(|| {
            qid += 1;
            black_box(view.answer(
                4242,
                qid,
                &Query::PersonalizedTopK {
                    seed: NodeId((qid * 31 % NODES as u64) as u32),
                    k: 10,
                    walk_length: WALK_LENGTH,
                    fetch_budget: None,
                },
            ))
        })
    });
    group.bench_function("commit_and_publish_256", |b| {
        let mut serving = serving_engine(&prefix);
        let chunk = &suffix[..256.min(suffix.len())];
        b.iter(|| {
            serving.commit_arrivals(black_box(chunk));
            black_box(serving.commit_deletions(black_box(chunk)))
        })
    });
    group.finish();
}

criterion_group!(
    query_serving,
    bench_query_and_commit,
    report_write_overhead,
    report_qps_scaling,
    report_qps_with_writer,
    report_scenario_regimes,
    report_batched_query,
    report_telemetry_overhead
);
criterion_main!(query_serving);
