//! Criterion benches for the sharded PageRank Store's parallel reroute path: arrival
//! throughput at 1/2/4/8 shards against the PR 2 single-shard baseline, on the
//! hub-burst workload (one celebrity source gaining a large batch of followers) and on
//! a mixed preferential-attachment stream.
//!
//! The sharded engine is bit-identical to the single-shard engine at every shard and
//! thread count (`tests/differential_shard.rs`), so these benches measure pure
//! scheduling: phase 1 fans candidate generation out over the shards owning the
//! affected segments, phase 3 applies the reconciled plan with one worker per shard.
//!
//! Two kinds of numbers are reported:
//!
//! * wall-clock groups (`hub_burst`, `stream`) — the plain criterion timings, which
//!   only show parallel speedup when the machine actually has one core per worker;
//! * the **critical-path scaling report** — each engine's [`ppr_core::BatchProfile`]
//!   charges the two parallel phases their *slowest shard* instead of the shard sum,
//!   measuring the throughput a one-core-per-shard deployment would reach even when
//!   this benchmark itself runs on a single core (as CI containers do).
//!
//! Run with `cargo bench --bench sharded_reroute`.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use ppr_core::{IncrementalPageRank, MonteCarloConfig};
use ppr_graph::generators::{preferential_attachment_edges, PreferentialAttachmentConfig};
use ppr_graph::stream::split_at_fraction;
use ppr_graph::{DynamicGraph, Edge};
use ppr_store::ShardedWalkStore;
use std::hint::black_box;

const NODES: usize = 4_000;
const OUT_DEGREE: usize = 8;
const R: usize = 8;
const BURST: usize = 2_048;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn stream() -> (Vec<Edge>, Vec<Edge>) {
    let edges =
        preferential_attachment_edges(&PreferentialAttachmentConfig::new(NODES, OUT_DEGREE, 11));
    split_at_fraction(&edges, 0.9)
}

fn config() -> MonteCarloConfig {
    MonteCarloConfig::new(0.2, R).with_seed(13)
}

fn sharded_engine(prefix: &[Edge], shards: usize) -> IncrementalPageRank<ShardedWalkStore> {
    let base = DynamicGraph::from_edges(prefix, NODES);
    IncrementalPageRank::from_graph_sharded(base, config(), shards, shards)
}

/// The hub-burst workload: one early (high-PageRank) source gains `BURST` follows in a
/// single batch, so one arrival group funnels coin flips over every segment visiting
/// the hub.  Candidate generation and plan application both split by shard, which is
/// where the parallel reroute earns its throughput.
fn bench_hub_burst(c: &mut Criterion) {
    let (prefix, _) = stream();
    let burst: Vec<Edge> = (0..BURST)
        .map(|i| Edge::new(0, (1 + i % (NODES - 1)) as u32))
        .collect();
    let mut group = c.benchmark_group("sharded_reroute_hub_burst");
    group.throughput(Throughput::Elements(BURST as u64));

    group.bench_function(BenchmarkId::from_parameter("flat_single_shard"), |b| {
        b.iter_batched(
            || IncrementalPageRank::from_graph(DynamicGraph::from_edges(&prefix, NODES), config()),
            |mut engine| {
                engine.apply_arrivals(&burst);
                black_box(engine.work().walk_steps)
            },
            BatchSize::LargeInput,
        )
    });
    for &shards in &SHARD_COUNTS {
        group.bench_function(BenchmarkId::new("shards", shards), |b| {
            b.iter_batched(
                || sharded_engine(&prefix, shards),
                |mut engine| {
                    engine.apply_arrivals(&burst);
                    black_box(engine.work().walk_steps)
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

/// Mixed stream: the last 10% of a preferential-attachment arrival stream replayed in
/// batches of 256 (many sources per batch, so groups spread over all shards).
fn bench_stream_replay(c: &mut Criterion) {
    let (prefix, suffix) = stream();
    let mut group = c.benchmark_group("sharded_reroute_stream");
    group.throughput(Throughput::Elements(suffix.len() as u64));

    group.bench_function(BenchmarkId::from_parameter("flat_single_shard"), |b| {
        b.iter_batched(
            || IncrementalPageRank::from_graph(DynamicGraph::from_edges(&prefix, NODES), config()),
            |mut engine| {
                for chunk in suffix.chunks(256) {
                    engine.apply_arrivals(chunk);
                }
                black_box(engine.work().walk_steps)
            },
            BatchSize::LargeInput,
        )
    });
    for &shards in &SHARD_COUNTS {
        group.bench_function(BenchmarkId::new("shards", shards), |b| {
            b.iter_batched(
                || sharded_engine(&prefix, shards),
                |mut engine| {
                    for chunk in suffix.chunks(256) {
                        engine.apply_arrivals(chunk);
                    }
                    black_box(engine.work().walk_steps)
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

/// Per-shard load balance after the hub burst: reported through the store's own
/// counters so the bench doubles as a regression check on the modulo placement.
fn bench_shard_balance(c: &mut Criterion) {
    let (prefix, _) = stream();
    let burst: Vec<Edge> = (0..BURST)
        .map(|i| Edge::new(0, (1 + i % (NODES - 1)) as u32))
        .collect();
    let mut group = c.benchmark_group("sharded_reroute_balance");
    group.sample_size(3);
    group.bench_function(BenchmarkId::from_parameter("postings_spread"), |b| {
        b.iter_batched(
            || sharded_engine(&prefix, 4),
            |mut engine| {
                engine.walk_store();
                engine.apply_arrivals(&burst);
                let loads = engine.walk_store().shard_loads();
                let max = loads.iter().map(|l| l.postings_updates).max().unwrap();
                let min = loads.iter().map(|l| l.postings_updates).min().unwrap();
                black_box((max, min))
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

/// Critical-path scaling: replay the hub burst (and the stream) at 1/2/4/8 shards with
/// `threads = 1`, so the per-shard phase times are measured cleanly, and report the
/// arrival throughput of the critical path — the wall time a deployment with one core
/// per shard pays.  This is the number the acceptance criterion pins (≥ 1.5× at 4
/// shards vs 1 shard on the hub burst); on a multi-core machine the wall-clock groups
/// above converge to it.
fn report_critical_path(_c: &mut Criterion) {
    let (prefix, suffix) = stream();
    let burst: Vec<Edge> = (0..BURST)
        .map(|i| Edge::new(0, (1 + i % (NODES - 1)) as u32))
        .collect();
    println!("report sharded_reroute_critical_path (threads = 1, per-shard phase times)");
    for (label, edges, chunk) in [("hub_burst", &burst, BURST), ("stream", &suffix, 256usize)] {
        let mut baseline: Option<f64> = None;
        for shards in SHARD_COUNTS {
            // Best-of-3 to damp single-core scheduling noise.
            let mut best = f64::INFINITY;
            for _ in 0..3 {
                let base = DynamicGraph::from_edges(&prefix, NODES);
                let mut engine = IncrementalPageRank::from_graph_sharded(base, config(), shards, 1);
                engine.reset_batch_profile();
                for batch in edges.chunks(chunk) {
                    engine.apply_arrivals(batch);
                }
                best = best.min(engine.batch_profile().critical_path().as_secs_f64());
            }
            let throughput = edges.len() as f64 / best;
            let speedup = throughput / *baseline.get_or_insert(throughput);
            println!(
                "report   {label}/shards/{shards}: {throughput:>9.0} edges/s critical-path \
                 ({speedup:.2}x vs 1 shard)"
            );
        }
    }
}

criterion_group!(
    sharded_reroute,
    bench_hub_burst,
    bench_stream_replay,
    bench_shard_balance,
    report_critical_path
);
criterion_main!(sharded_reroute);
