//! Criterion bench for experiment E1/E2 (Figure 1 + the §4.2 statistic): times the
//! arrival-replay and CDF construction on a reduced workload.

use criterion::{criterion_group, criterion_main, Criterion};
use ppr_bench::experiments::fig1;
use std::hint::black_box;

fn bench_fig1(c: &mut Criterion) {
    let params = fig1::Fig1Params {
        nodes: 3_000,
        out_degree: 8,
        in_exponent: 0.76,
        observe_fraction: 0.1,
        epsilon: 0.2,
        seed: 1,
    };
    c.bench_function("fig1_arrival_cdf", |b| {
        b.iter(|| black_box(fig1::run(black_box(&params))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig1
}
criterion_main!(benches);
