//! Criterion bench for experiment E11 (Theorem 6): SALSA segment maintenance under edge
//! arrivals, next to the PageRank engine on the same arrival stream.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppr_bench::workloads::twitter_like;
use ppr_core::{IncrementalPageRank, IncrementalSalsa, MonteCarloConfig};
use ppr_graph::stream::split_at_fraction;
use ppr_graph::DynamicGraph;
use std::hint::black_box;

fn bench_salsa_vs_pagerank_updates(c: &mut Criterion) {
    let workload = twitter_like(2_000, 8, 7);
    let (prefix, suffix) = split_at_fraction(&workload.arrivals, 0.9);
    let base = DynamicGraph::from_edges(&prefix, 2_000);
    let config = MonteCarloConfig::new(0.2, 3).with_seed(3);

    let mut group = c.benchmark_group("salsa_update");
    group.bench_function(BenchmarkId::from_parameter("pagerank"), |b| {
        b.iter(|| {
            let mut engine = IncrementalPageRank::from_graph(&base, config);
            engine.reset_work();
            for &edge in &suffix {
                engine.add_edge(edge);
            }
            black_box(engine.work().walk_steps)
        })
    });
    group.bench_function(BenchmarkId::from_parameter("salsa"), |b| {
        b.iter(|| {
            let mut engine = IncrementalSalsa::from_graph(&base, config);
            engine.reset_work();
            for &edge in &suffix {
                engine.add_edge(edge);
            }
            black_box(engine.work().walk_steps)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_salsa_vs_pagerank_updates
}
criterion_main!(benches);
