//! Criterion bench for experiment E14 (Theorem 1): building the Monte Carlo estimator
//! (R walk segments per node) for several values of R, next to a power-iteration run on
//! the same graph for scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppr_baselines::power_iteration::{power_iteration, PowerIterationConfig};
use ppr_bench::workloads::twitter_like;
use ppr_core::{IncrementalPageRank, MonteCarloConfig};
use std::hint::black_box;

fn bench_monte_carlo_build(c: &mut Criterion) {
    let workload = twitter_like(5_000, 8, 7);
    let mut group = c.benchmark_group("estimator_build");
    for &r in &[1usize, 5, 20] {
        group.bench_with_input(BenchmarkId::new("monte_carlo", r), &r, |b, &r| {
            b.iter(|| {
                let engine = IncrementalPageRank::from_graph(
                    &workload.graph,
                    MonteCarloConfig::new(0.2, r).with_seed(3),
                );
                black_box(engine.scores())
            })
        });
    }
    group.bench_function("power_iteration_reference", |b| {
        b.iter(|| {
            black_box(power_iteration(
                &workload.graph,
                &PowerIterationConfig::with_epsilon(0.2),
            ))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_monte_carlo_build
}
criterion_main!(benches);
