//! Criterion bench for experiments E4/E5 (Figures 3–4): personalized power-iteration
//! vectors and their power-law fits on a reduced user set.

use criterion::{criterion_group, criterion_main, Criterion};
use ppr_bench::experiments::personalized_powerlaw;
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    let params = personalized_powerlaw::PersonalizedPowerLawParams {
        nodes: 4_000,
        out_degree: 25,
        in_exponent: 0.76,
        users: 5,
        min_friends: 20,
        max_friends: 30,
        epsilon: 0.2,
        seed: 1,
    };
    c.bench_function("fig4_personalized_exponents", |b| {
        b.iter(|| black_box(personalized_powerlaw::run(black_box(&params), 0)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig4
}
criterion_main!(benches);
