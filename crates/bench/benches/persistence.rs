//! Criterion benches for the durability layer (`ppr-persist` + `ppr_core::durable`):
//! snapshot-write throughput, incremental (dirty-page) checkpoints, WAL append and
//! recovery-replay rates, and the cold-open-vs-rebuild speedup that is the whole
//! point of persisting walk segments.
//!
//! Run with `cargo bench --bench persistence`.  Numbers to quote in PR descriptions:
//! `snapshot/full_checkpoint` (MB/s), `wal/recovery_replay` (edges/s), and the ratio
//! `cold_open_vs_rebuild/rebuild_from_graph` ÷ `cold_open_vs_rebuild/cold_open`.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use ppr_core::{DurablePageRank, IncrementalPageRank, MonteCarloConfig};
use ppr_graph::generators::{preferential_attachment_edges, PreferentialAttachmentConfig};
use ppr_graph::{DynamicGraph, Edge, GraphView};
use ppr_persist::TempDir;
use std::hint::black_box;

const NODES: usize = 2_000;
const R: usize = 4;

fn config() -> MonteCarloConfig {
    MonteCarloConfig::new(0.2, R).with_seed(17)
}

fn workload() -> Vec<Edge> {
    preferential_attachment_edges(&PreferentialAttachmentConfig::new(NODES, 6, 19))
}

/// Size of one snapshot generation on disk, for MB/s throughput annotation.
fn snapshot_bytes(root: &std::path::Path, gen: u64) -> u64 {
    std::fs::metadata(root.join(format!("snap-{gen:06}.ppr")))
        .map(|m| m.len())
        .unwrap_or(0)
}

/// Full-snapshot checkpoint of the flat engine vs dirty-page checkpoint of the
/// disk-backed engine after a small update.
fn bench_snapshot_write(c: &mut Criterion) {
    let edges = workload();
    let mut group = c.benchmark_group("snapshot");

    // Measure against the snapshot size so the report reads in MB/s.
    let probe = TempDir::new("bench-snap-probe");
    let mut engine = IncrementalPageRank::create_durable(
        probe.path().join("s"),
        DynamicGraph::with_nodes(NODES),
        config(),
    )
    .unwrap();
    engine.apply_arrivals(&edges);
    let gen = engine.checkpoint().unwrap();
    group.throughput(Throughput::Bytes(snapshot_bytes(
        &probe.path().join("s"),
        gen,
    )));

    group.bench_function(BenchmarkId::from_parameter("full_checkpoint"), |b| {
        b.iter(|| black_box(engine.checkpoint().unwrap()))
    });

    // Disk engine: the same store, but only pages dirtied since the last checkpoint
    // are re-rendered; clean pages stream from the previous generation.
    let tmp = TempDir::new("bench-snap-disk");
    let mut disk = DurablePageRank::create_durable_disk(
        tmp.path().join("s"),
        DynamicGraph::with_nodes(NODES),
        config(),
    )
    .unwrap();
    disk.apply_arrivals(&edges);
    disk.checkpoint().unwrap();
    let mut hot = 0u32;
    group.bench_function(BenchmarkId::from_parameter("dirty_page_checkpoint"), |b| {
        b.iter(|| {
            hot = (hot + 1) % NODES as u32;
            disk.apply_arrivals(&[Edge::new(hot, (hot + 7) % NODES as u32)]);
            black_box(disk.checkpoint().unwrap())
        })
    });
    group.finish();

    let stats = disk.walk_store().stats();
    println!(
        "[persistence] disk write-back totals: {} pages rewritten, {} reused \
         ({}% clean-page reuse), {} relocations, {} file compactions",
        stats.pages_rewritten,
        stats.pages_reused,
        100 * stats.pages_reused / (stats.pages_reused + stats.pages_rewritten).max(1),
        stats.relocations,
        stats.file_compactions,
    );
}

/// WAL append (fsync on/off) and the recovery replay rate over a logged stream.
fn bench_wal(c: &mut Criterion) {
    let edges = workload();
    let tail: Vec<Edge> = edges[edges.len() - 512..].to_vec();
    let mut group = c.benchmark_group("wal");
    group.throughput(Throughput::Elements(tail.len() as u64));

    for (label, fsync) in [("append_fsync", true), ("append_nosync", false)] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter_batched(
                || {
                    let tmp = TempDir::new("bench-wal");
                    let path = tmp.path().join("wal.log");
                    let mut writer = ppr_persist::WalWriter::create(&path).unwrap();
                    writer.set_fsync(fsync);
                    (tmp, writer)
                },
                |(tmp, mut writer)| {
                    for (seq, chunk) in tail.chunks(32).enumerate() {
                        writer
                            .append(seq as u64, ppr_persist::WalOp::Arrivals, chunk)
                            .unwrap();
                    }
                    drop(writer);
                    tmp
                },
                BatchSize::LargeInput,
            )
        });
    }

    // Recovery replay: open() = snapshot load + deterministic re-application of the
    // WAL tail through the ordinary batch pipeline.
    let replay_edges = 2_048usize;
    let tmp = TempDir::new("bench-wal-replay");
    let root = tmp.path().join("s");
    let mut engine =
        IncrementalPageRank::create_durable(&root, DynamicGraph::with_nodes(NODES), config())
            .unwrap();
    let (prefix, suffix) = edges.split_at(edges.len() - replay_edges);
    engine.apply_arrivals(prefix);
    engine.checkpoint().unwrap();
    for chunk in suffix.chunks(64) {
        engine.apply_arrivals(chunk);
    }
    drop(engine);
    group.throughput(Throughput::Elements(replay_edges as u64));
    group.bench_function(BenchmarkId::from_parameter("recovery_replay"), |b| {
        b.iter(|| black_box(IncrementalPageRank::<ppr_store::WalkStore>::open(&root).unwrap()))
    });
    group.finish();
}

/// The headline numbers: opening a persisted store vs the two in-memory
/// alternatives.  `rebuild_from_graph` regenerates all `nR` walk segments from an
/// already-materialised graph — cheap in-process, but it *resamples* every walk
/// (estimates jump; the incremental contract restarts from scratch) and assumes the
/// graph survived, which is the thing that doesn't.  `replay_full_history` is the
/// real alternative a restart faces without checkpoints: re-ingest the entire edge
/// stream through the maintenance pipeline.  Cold open replaces the latter.
fn bench_cold_open_vs_rebuild(c: &mut Criterion) {
    let edges = workload();
    let graph = DynamicGraph::from_edges(&edges, NODES);
    let tmp = TempDir::new("bench-cold");
    let root = tmp.path().join("s");
    let mut engine = IncrementalPageRank::create_durable(&root, graph.clone(), config()).unwrap();
    engine.checkpoint().unwrap();
    drop(engine);

    let mut group = c.benchmark_group("cold_open_vs_rebuild");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("cold_open"), |b| {
        b.iter(|| black_box(IncrementalPageRank::<ppr_store::WalkStore>::open(&root).unwrap()))
    });
    group.bench_function(BenchmarkId::from_parameter("rebuild_from_graph"), |b| {
        b.iter(|| black_box(IncrementalPageRank::from_graph(&graph, config())))
    });
    group.bench_function(BenchmarkId::from_parameter("replay_full_history"), |b| {
        b.iter(|| {
            let mut engine = IncrementalPageRank::new_empty(NODES, config());
            for chunk in edges.chunks(256) {
                engine.apply_arrivals(chunk);
            }
            black_box(engine.graph().edge_count())
        })
    });
    group.finish();
}

/// Per-scenario durability regimes: each corpus workload's exact write schedule
/// (`Trace::write_batches`) applied to a durable flat store with a checkpoint
/// mid-stream, reporting ingest rate, on-disk snapshot footprint, and the recovery
/// cost (snapshot load + WAL-tail replay) that workload leaves behind.  The spam
/// wave is the interesting one: its mass-unfollow deletions land *after* the
/// checkpoint, so recovery replays the reversal path, not just arrivals.
fn report_scenario_durability(_c: &mut Criterion) {
    for scenario in [
        ppr_scenario::corpus::flash_crowd().scaled(2),
        ppr_scenario::corpus::spam_wave().scaled(2),
    ] {
        let trace = ppr_scenario::Trace::compile(&scenario);
        let batches = trace.write_batches();
        let checkpoint_after = (batches.len() / 2).max(1);
        let tmp = TempDir::new(&format!("bench-scenario-{}", scenario.name));
        let root = tmp.path().join("s");
        let mut engine = IncrementalPageRank::create_durable(
            &root,
            DynamicGraph::with_nodes(scenario.nodes),
            scenario.engine_config(),
        )
        .unwrap();
        let mut total = 0usize;
        let mut replayed = 0usize;
        let mut generation = 0u64;
        let t0 = std::time::Instant::now();
        for (i, (op, batch)) in batches.iter().enumerate() {
            match op {
                ppr_persist::WalOp::Arrivals => {
                    engine.apply_arrivals(batch);
                }
                ppr_persist::WalOp::Deletions => {
                    engine.apply_deletions(batch);
                }
            }
            total += batch.len();
            if i + 1 > checkpoint_after {
                replayed += batch.len();
            }
            if i + 1 == checkpoint_after {
                generation = engine.checkpoint().unwrap();
            }
        }
        let ingest = t0.elapsed();
        drop(engine);

        let snap_kib = snapshot_bytes(&root, generation) / 1024;
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t0 = std::time::Instant::now();
            black_box(IncrementalPageRank::<ppr_store::WalkStore>::open(&root).unwrap());
            best = best.min(t0.elapsed().as_secs_f64());
        }
        println!(
            "report persistence_scenario {}: {} batches / {total} edges ingested in \
             {ingest:.2?}, snapshot {snap_kib} KiB at batch {checkpoint_after}, recovery \
             (snapshot + {replayed} WAL edges) {:.2?}",
            scenario.name,
            batches.len(),
            std::time::Duration::from_secs_f64(best),
        );
    }
}

/// The demand-paging regime: cold-open latency, first-query latency, and
/// steady-state residency of the disk engine as the store grows 8×, at several
/// page-cache budgets.  Before demand paging, open cost tracked the walk heap
/// (every page was faulted warm); now open maps slot metadata only, the first
/// query pays a handful of page faults, and steady-state resident bytes are
/// capped by the budget instead of the store size.
fn report_cold_start_residency(_c: &mut Criterion) {
    use ppr_persist::{set_thread_page_budget, PageBudget};
    use ppr_store::{SegmentId, WalkIndexView};

    for scale in [1usize, 2, 4, 8] {
        let nodes = 1_000 * scale;
        let edges = preferential_attachment_edges(&PreferentialAttachmentConfig::new(nodes, 6, 19));
        let tmp = TempDir::new("bench-cold-start");
        let root = tmp.path().join("s");
        let mut engine = DurablePageRank::create_durable_disk(
            &root,
            DynamicGraph::from_edges(&edges, nodes),
            config(),
        )
        .unwrap();
        let generation = engine.checkpoint().unwrap();
        drop(engine);
        let snap_kib = snapshot_bytes(&root, generation) / 1024;

        for (label, budget) in [
            ("unbounded", PageBudget::unbounded()),
            ("64pages", PageBudget::bounded(64)),
            ("8pages", PageBudget::bounded(8)),
        ] {
            let previous = set_thread_page_budget(Some(budget));
            let t0 = std::time::Instant::now();
            let engine = DurablePageRank::open(&root).unwrap();
            let open = t0.elapsed();

            // First query: demand-fault one node's R segments in.
            let probe = ppr_graph::NodeId((nodes / 2) as u32);
            let t1 = std::time::Instant::now();
            let mut steps = 0usize;
            for slot in 0..R {
                steps += WalkIndexView::segment_path(
                    engine.walk_store(),
                    SegmentId::new(probe, slot, R),
                )
                .len();
            }
            let first_query = t1.elapsed();
            black_box(steps);

            // Steady state: sweep a spread of 256 nodes, then report what stayed
            // resident under the budget.
            for i in 0..256usize {
                let node = ppr_graph::NodeId((i * nodes / 256) as u32);
                for slot in 0..R {
                    black_box(
                        WalkIndexView::segment_path(
                            engine.walk_store(),
                            SegmentId::new(node, slot, R),
                        )
                        .len(),
                    );
                }
            }
            let residency = engine.walk_store().residency();
            let pager = engine.walk_store().pager_stats();
            set_thread_page_budget(previous);
            println!(
                "report cold_start scale=x{scale} ({nodes} nodes, snapshot {snap_kib} KiB) \
                 budget={label}: open {open:.2?}, first_query {first_query:.2?}, \
                 steady resident {} pages / {} KiB ({} pinned), {} evictions, {} refaults",
                residency.resident_pages,
                residency.resident_page_bytes / 1024,
                residency.pinned_pages,
                pager.evictions,
                pager.refaults,
            );
        }
    }
}

criterion_group!(
    benches,
    bench_snapshot_write,
    bench_wal,
    bench_cold_open_vs_rebuild,
    report_scenario_durability,
    report_cold_start_residency
);
criterion_main!(benches);
