//! Criterion benches for experiment E7 (Figure 6): fetch counts of the stitched walker,
//! including the Remark 1 ablation (full-adjacency fetch vs single sampled edge).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppr_bench::workloads::{personalization_seeds, twitter_like};
use ppr_core::{IncrementalPageRank, MonteCarloConfig, PersonalizedWalker};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

/// Times one stitched personalized walk of 5 000 visits for several values of `R`.
fn bench_stitched_walk(c: &mut Criterion) {
    let workload = twitter_like(3_000, 25, 7);
    let seeds = personalization_seeds(&workload.graph, 1, 20, 30, 3);
    let seed = seeds[0];
    let mut group = c.benchmark_group("fig6_stitched_walk");
    for &r in &[5usize, 10, 20] {
        let engine = IncrementalPageRank::from_graph(
            &workload.graph,
            MonteCarloConfig::new(0.2, r).with_seed(11),
        );
        group.bench_with_input(BenchmarkId::from_parameter(r), &engine, |b, engine| {
            let mut salt = 0u64;
            b.iter(|| {
                salt += 1;
                let mut walker =
                    PersonalizedWalker::new(engine.social_store(), engine.walk_store(), 0.2, salt);
                black_box(walker.walk(seed, 5_000))
            })
        });
    }
    group.finish();
}

/// Remark 1 ablation: the cost of answering per-step neighbour queries with a single
/// sampled edge instead of consuming cached segments (an upper bound on the "no
/// stitching" walk cost in store accesses).
fn bench_sampled_edge_walk(c: &mut Criterion) {
    let workload = twitter_like(3_000, 25, 7);
    let seeds = personalization_seeds(&workload.graph, 1, 20, 30, 3);
    let seed = seeds[0];
    let engine = IncrementalPageRank::from_graph(
        &workload.graph,
        MonteCarloConfig::new(0.2, 5).with_seed(13),
    );
    c.bench_function("fig6_sampled_edge_walk", |b| {
        let mut rng = SmallRng::seed_from_u64(17);
        b.iter(|| {
            // A plain 5 000-step personalized walk that queries the store for one
            // sampled out-edge at every step (the Remark 1 fetch variant).
            let store = engine.social_store();
            let mut current = seed;
            let mut visits = 0u64;
            use rand::Rng;
            for _ in 0..5_000 {
                visits += 1;
                if rng.gen_bool(0.2) {
                    current = seed;
                    continue;
                }
                match store.sample_out_neighbor(current, &mut rng) {
                    Some(next) => current = next,
                    None => current = seed,
                }
            }
            black_box(visits)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_stitched_walk, bench_sampled_edge_walk
}
criterion_main!(benches);
