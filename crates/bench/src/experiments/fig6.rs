//! Experiment E7 — Figure 6: number of fetches vs. walk length, observed and bounded.
//!
//! For `R ∈ {5, 10, 20}` cached segments per node, the stitched personalized walk of
//! Algorithm 1 is run for increasing lengths and the number of Social-Store fetches is
//! recorded and averaged over the selected users.  Next to each observed curve the
//! harness evaluates the Theorem 8 bound `1 + (2(1−α)/nR)^{1/α−1}·s^{1/α}` using each
//! user's own fitted power-law exponent, exactly as the paper draws its thick lines.

use crate::parallel::{default_threads, par_map_indexed};
use crate::workloads::{personalization_seeds, power_law_workload};
use ppr_analysis::powerlaw::fit_power_law;
use ppr_core::bounds::expected_fetches;
use ppr_core::{IncrementalPageRank, MonteCarloConfig, PersonalizedWalker};
use ppr_graph::{GraphView, NodeId};

/// Parameters for the Figure 6 experiment.
#[derive(Debug, Clone)]
pub struct Fig6Params {
    /// Number of nodes.
    pub nodes: usize,
    /// Out-degree per node of the generator.
    pub out_degree: usize,
    /// Number of users to average over.
    pub users: usize,
    /// Friend-count window for user selection.
    pub min_friends: usize,
    /// Upper end of the friend-count window.
    pub max_friends: usize,
    /// Values of `R` (segments per node) to sweep (paper: 5, 10, 20).
    pub r_values: Vec<usize>,
    /// Walk lengths to measure (paper: 100 … 50 000).
    pub walk_lengths: Vec<usize>,
    /// Reset probability.
    pub epsilon: f64,
    /// RNG seed.
    pub seed: u64,
    /// Reader threads the per-user query loops fan out over.  Every walk draws
    /// from its own `(seed, query_id)` split stream, so results are bit-identical
    /// at every thread count (asserted under the `PPR_TEST_THREADS` matrix, which
    /// also sets the default).
    pub threads: usize,
}

impl Default for Fig6Params {
    fn default() -> Self {
        Fig6Params {
            nodes: 20_000,
            out_degree: 25,
            users: 50,
            min_friends: 20,
            max_friends: 30,
            r_values: vec![5, 10, 20],
            walk_lengths: vec![100, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000],
            epsilon: 0.2,
            seed: 42,
            threads: default_threads(),
        }
    }
}

/// One measured curve (fixed `R`).
#[derive(Debug, Clone)]
pub struct Fig6Curve {
    /// Segments per node for this curve.
    pub r: usize,
    /// `(walk length, mean observed fetches, mean theoretical bound)` rows.
    pub rows: Vec<(usize, f64, f64)>,
}

/// Result of the Figure 6 experiment.
#[derive(Debug, Clone)]
pub struct Fig6Result {
    /// One curve per value of `R`.
    pub curves: Vec<Fig6Curve>,
    /// Number of users averaged over.
    pub users_evaluated: usize,
}

/// Runs the experiment.
pub fn run(params: &Fig6Params) -> Fig6Result {
    let workload = power_law_workload(params.nodes, params.out_degree, 0.76, params.seed);
    let seeds = personalization_seeds(
        &workload.graph,
        params.users,
        params.min_friends,
        params.max_friends,
        params.seed ^ 0xf16,
    );
    assert!(
        !seeds.is_empty(),
        "no personalization seeds found for the chosen window"
    );

    // Per-user power-law exponent of the personalized score vector, estimated from a
    // long stitched walk (the paper uses each user's own exponent for its bound curve).
    let exponent_engine = IncrementalPageRank::from_graph(
        &workload.graph,
        MonteCarloConfig::new(params.epsilon, 10).with_seed(params.seed ^ 0xa1fa),
    );
    let alphas: Vec<f64> = par_map_indexed(seeds.len(), params.threads, |i| {
        estimate_alpha(&exponent_engine, seeds[i], params, i as u64)
    });

    let mut curves = Vec::with_capacity(params.r_values.len());
    for &r in &params.r_values {
        let engine = IncrementalPageRank::from_graph(
            &workload.graph,
            MonteCarloConfig::new(params.epsilon, r).with_seed(params.seed ^ (r as u64)),
        );
        // One read-only walker serves every (length, user) query cell; queries are
        // (seed, query_id)-keyed, and the per-user results are folded in index
        // order, so the fan-out width never changes a row.
        let walker = PersonalizedWalker::new(
            engine.social_store(),
            engine.walk_store(),
            params.epsilon,
            0,
        );
        let mut rows = Vec::with_capacity(params.walk_lengths.len());
        for &length in &params.walk_lengths {
            let per_user: Vec<(f64, f64)> = par_map_indexed(seeds.len(), params.threads, |i| {
                let query_id = (length as u64) ^ ((i as u64) << 20) ^ ((r as u64) << 40);
                let result = walker.walk_query(seeds[i], length, params.seed, query_id);
                (
                    result.fetches as f64,
                    expected_fetches(length as f64, params.nodes, r, alphas[i]),
                )
            });
            let observed_total: f64 = per_user.iter().map(|&(o, _)| o).sum();
            let bound_total: f64 = per_user.iter().map(|&(_, b)| b).sum();
            rows.push((
                length,
                observed_total / seeds.len() as f64,
                bound_total / seeds.len() as f64,
            ));
        }
        curves.push(Fig6Curve { r, rows });
    }

    Fig6Result {
        curves,
        users_evaluated: seeds.len(),
    }
}

fn estimate_alpha(
    engine: &IncrementalPageRank,
    user: NodeId,
    params: &Fig6Params,
    salt: u64,
) -> f64 {
    let friends = engine.graph().out_degree(user).max(1);
    let walker = PersonalizedWalker::new(
        engine.social_store(),
        engine.walk_store(),
        params.epsilon,
        0,
    );
    let result = walker.walk_query(user, 30_000, params.seed ^ 0xa1fa, salt);
    let scores = result.frequencies();
    let window = (2 * friends).max(2)..(20 * friends).max(2 * friends + 10);
    fit_power_law(&scores, window)
        .map(|fit| fit.exponent.clamp(0.4, 0.95))
        .unwrap_or(0.76)
}

/// Prints one block per `R` with `length observed bound` rows (the data behind the three
/// panels of Figure 6).
pub fn print_report(result: &Fig6Result) {
    println!("# Figure 6: fetches to the Social Store vs walk length");
    for curve in &result.curves {
        println!("# R = {}", curve.r);
        println!("# walk_length observed_fetches theoretical_bound");
        for &(length, observed, bound) in &curve.rows {
            println!("{length} {observed:.1} {bound:.1}");
        }
        println!();
    }
    println!("# users averaged: {}", result.users_evaluated);
    println!("# paper: the bound upper-bounds the observation and the curves are nearly insensitive to R");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> Fig6Params {
        Fig6Params {
            nodes: 3_000,
            out_degree: 25,
            users: 6,
            min_friends: 20,
            max_friends: 30,
            r_values: vec![5, 20],
            walk_lengths: vec![500, 2_000, 8_000],
            epsilon: 0.2,
            seed: 11,
            threads: crate::parallel::default_threads(),
        }
    }

    #[test]
    fn fetches_grow_with_walk_length_and_stay_below_walk_length() {
        let result = run(&small_params());
        assert_eq!(result.curves.len(), 2);
        for curve in &result.curves {
            for pair in curve.rows.windows(2) {
                assert!(
                    pair[1].1 >= pair[0].1,
                    "observed fetches must not decrease with walk length"
                );
            }
            for &(length, observed, _) in &curve.rows {
                assert!(
                    observed < length as f64,
                    "stitching must beat one fetch per step ({observed} fetches for {length} steps)"
                );
            }
        }
    }

    #[test]
    fn reader_thread_count_never_changes_the_rows() {
        let mut params = small_params();
        params.walk_lengths = vec![500, 2_000];
        params.threads = 1;
        let single = run(&params);
        params.threads = 4;
        let wide = run(&params);
        for (a, b) in single.curves.iter().zip(&wide.curves) {
            assert_eq!(a.r, b.r);
            assert_eq!(a.rows, b.rows, "fetch rows diverge across thread counts");
        }
    }

    #[test]
    fn more_cached_segments_do_not_increase_fetches_much() {
        // The paper's observation: the number of fetches is not very sensitive to R;
        // in particular the R = 20 curve is not substantially above the R = 5 curve.
        let result = run(&small_params());
        let r5 = &result.curves[0];
        let r20 = &result.curves[1];
        for (a, b) in r5.rows.iter().zip(&r20.rows) {
            assert!(
                b.1 <= a.1 * 1.3 + 10.0,
                "R = 20 ({:.1}) should not need many more fetches than R = 5 ({:.1})",
                b.1,
                a.1
            );
        }
    }
}
