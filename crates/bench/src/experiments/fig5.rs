//! Experiment E6 — Figure 5: a few random-walk steps go a long way.
//!
//! For each user, the "true" personalized top-100 is taken from a 50 000-step stitched
//! walk and compared against the top-1000 of a 5 000-step walk; the paper reports the
//! 11-point interpolated average precision curve averaged over 100 users, with direct
//! friends excluded from both rankings.

use crate::parallel::{default_threads, par_map_indexed};
use crate::workloads::{personalization_seeds, power_law_workload};
use ppr_analysis::precision::{average_curves, eleven_point_interpolated_precision};
use ppr_core::{IncrementalPageRank, MonteCarloConfig, PersonalizedWalker};
use ppr_graph::GraphView;
use std::collections::HashSet;

/// Parameters for the Figure 5 experiment.
#[derive(Debug, Clone, Copy)]
pub struct Fig5Params {
    /// Number of nodes.
    pub nodes: usize,
    /// Out-degree per node of the generator.
    pub out_degree: usize,
    /// Number of users to average over (paper: 100).
    pub users: usize,
    /// Friend-count window for user selection.
    pub min_friends: usize,
    /// Upper end of the friend-count window.
    pub max_friends: usize,
    /// Length of the reference ("true") walk (paper: 50 000).
    pub long_walk: usize,
    /// Length of the short walk under evaluation (paper: 5 000).
    pub short_walk: usize,
    /// Size of the "true" result set (paper: 100).
    pub true_k: usize,
    /// Number of results retrieved from the short walk (paper: 1 000).
    pub retrieved_k: usize,
    /// Walk segments cached per node.
    pub r: usize,
    /// Reset probability.
    pub epsilon: f64,
    /// RNG seed.
    pub seed: u64,
    /// Reader threads the per-user query loop fans out over.  Every user's walks
    /// draw from their own `(seed, query_id)` split stream, so the result is
    /// bit-identical at every thread count (asserted by the tests under the
    /// `PPR_TEST_THREADS` matrix, which also sets the default).
    pub threads: usize,
}

impl Default for Fig5Params {
    fn default() -> Self {
        Fig5Params {
            nodes: 20_000,
            out_degree: 25,
            users: 100,
            min_friends: 20,
            max_friends: 30,
            long_walk: 50_000,
            short_walk: 5_000,
            true_k: 100,
            retrieved_k: 1_000,
            r: 10,
            epsilon: 0.2,
            seed: 42,
            threads: default_threads(),
        }
    }
}

/// Result of the Figure 5 experiment.
#[derive(Debug, Clone)]
pub struct Fig5Result {
    /// The averaged 11-point interpolated precision curve (recall 0.0, 0.1, …, 1.0).
    pub curve: [f64; 11],
    /// Number of users actually evaluated.
    pub users_evaluated: usize,
}

/// Runs the experiment.
pub fn run(params: &Fig5Params) -> Fig5Result {
    let workload = power_law_workload(params.nodes, params.out_degree, 0.76, params.seed);
    let engine = IncrementalPageRank::from_graph(
        &workload.graph,
        MonteCarloConfig::new(params.epsilon, params.r).with_seed(params.seed),
    );
    let seeds = personalization_seeds(
        &workload.graph,
        params.users,
        params.min_friends,
        params.max_friends,
        params.seed ^ 0xf15e,
    );

    // One read-only walker shared by every reader thread; each user's two walks
    // draw from their own (seed, query_id) streams — the experiment is a batch of
    // concurrent queries, served exactly like `ppr-serve` would serve them.
    let walker = PersonalizedWalker::new(
        engine.social_store(),
        engine.walk_store(),
        params.epsilon,
        0,
    );
    let per_user: Vec<Option<[f64; 11]>> = par_map_indexed(seeds.len(), params.threads, |i| {
        let user = seeds[i];
        let exclude: HashSet<_> = std::iter::once(user)
            .chain(workload.graph.out_neighbors(user).iter().copied())
            .collect();

        let truth = walker.walk_query(user, params.long_walk, params.seed, i as u64 * 2 + 1);
        let true_top: HashSet<usize> = truth
            .top_k(params.true_k, &exclude)
            .into_iter()
            .map(|(node, _)| node.index())
            .collect();
        if true_top.is_empty() {
            return None;
        }

        let retrieved: Vec<usize> = walker
            .walk_query(user, params.short_walk, params.seed, i as u64 * 2 + 2)
            .top_k(params.retrieved_k, &exclude)
            .into_iter()
            .map(|(node, _)| node.index())
            .collect();

        Some(eleven_point_interpolated_precision(&retrieved, &true_top))
    });
    let curves: Vec<[f64; 11]> = per_user.into_iter().flatten().collect();

    Fig5Result {
        curve: average_curves(&curves),
        users_evaluated: curves.len(),
    }
}

/// Prints the averaged precision curve (the data behind Figure 5).
pub fn print_report(result: &Fig5Result) {
    println!("# Figure 5: 11-point interpolated average precision");
    println!("# recall precision");
    for (i, &p) in result.curve.iter().enumerate() {
        println!("{:.1} {:.3}", i as f64 / 10.0, p);
    }
    println!("# users evaluated: {}", result.users_evaluated);
    println!("# paper: precision ≈ 0.8 at recall 0.8 and ≈ 0.9 at recall 0.7");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> Fig5Params {
        Fig5Params {
            nodes: 2_000,
            out_degree: 25,
            users: 8,
            min_friends: 20,
            max_friends: 30,
            long_walk: 20_000,
            short_walk: 4_000,
            true_k: 50,
            retrieved_k: 500,
            r: 5,
            epsilon: 0.2,
            seed: 3,
            threads: crate::parallel::default_threads(),
        }
    }

    #[test]
    fn short_walks_recover_most_of_the_true_top_k() {
        let result = run(&small_params());
        assert!(result.users_evaluated >= 4);
        // Precision at low recall should be high, and the curve must be non-increasing.
        assert!(
            result.curve[1] > 0.6,
            "precision at recall 0.1 should be high, got {}",
            result.curve[1]
        );
        for pair in result.curve.windows(2) {
            assert!(pair[0] + 1e-9 >= pair[1]);
        }
        // Average over the curve is meaningfully better than chance.
        let avg: f64 = result.curve.iter().sum::<f64>() / 11.0;
        assert!(avg > 0.3, "average interpolated precision {avg} too low");
    }

    #[test]
    fn reader_thread_count_never_changes_the_curve() {
        // The per-user walks are (seed, query_id)-keyed queries, so the experiment
        // is bit-identical at every fan-out width — the satellite contract the
        // PPR_TEST_THREADS CI matrix pins.
        let mut params = small_params();
        params.threads = 1;
        let single = run(&params);
        params.threads = 4;
        let wide = run(&params);
        assert_eq!(
            single.curve, wide.curve,
            "curves diverge across thread counts"
        );
        assert_eq!(single.users_evaluated, wide.users_evaluated);
    }
}
