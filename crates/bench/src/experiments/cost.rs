//! Experiments E9–E12 — the cost claims of Section 2.
//!
//! * [`incremental_cost`] (Theorem 4): replay a random-permutation arrival sequence into
//!   the incremental engine and record the cumulative update work at log-spaced
//!   checkpoints, next to the theoretical `nR·H_t/ε²` bound and the closed-form cost of
//!   the two naive strategies (power-iteration recompute, Monte-Carlo recompute).
//! * [`deletion_cost`] (Proposition 5): delete random edges from a built graph and
//!   compare the mean per-deletion work against `nR/(mε²)`.
//! * [`salsa_cost`] (Theorem 6): same replay for the SALSA engine; its total work should
//!   stay within the paper's factor-16 envelope of the PageRank bound.
//! * [`example1`] (Example 1): the adversarial arrival order forces Ω(n) segment updates
//!   for a single edge, while the same edge in a benign position is nearly free.

use crate::workloads::twitter_like;
use ppr_baselines::naive_incremental::{
    monte_carlo_recompute_work, power_iteration_recompute_work,
};
use ppr_core::bounds;
use ppr_core::{IncrementalPageRank, IncrementalSalsa, MonteCarloConfig};
use ppr_graph::generators::example1_gadget;
use ppr_graph::GraphView;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Parameters shared by the cost experiments.
#[derive(Debug, Clone, Copy)]
pub struct CostParams {
    /// Number of nodes.
    pub nodes: usize,
    /// Out-degree per node of the generator.
    pub out_degree: usize,
    /// Walk segments per node.
    pub r: usize,
    /// Reset probability.
    pub epsilon: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            nodes: 20_000,
            out_degree: 10,
            r: 5,
            epsilon: 0.2,
            seed: 42,
        }
    }
}

/// One checkpoint of the incremental-cost experiment.
#[derive(Debug, Clone, Copy)]
pub struct CostCheckpoint {
    /// Number of arrivals processed so far (`t`).
    pub arrivals: usize,
    /// Measured cumulative walk steps spent on updates.
    pub measured_steps: u64,
    /// Measured cumulative number of segments rerouted.
    pub measured_segments: u64,
    /// Theorem 4 bound `nR·H_t/ε²` on the cumulative update work.
    pub theorem4_bound: f64,
    /// Closed-form cost of recomputing by power iteration after every arrival so far.
    pub naive_power_iteration: f64,
    /// Closed-form cost of redoing the Monte Carlo estimation after every arrival so far.
    pub naive_monte_carlo: f64,
}

/// Result of the incremental-cost experiment (E9).
#[derive(Debug, Clone)]
pub struct IncrementalCostResult {
    /// Log-spaced checkpoints.
    pub checkpoints: Vec<CostCheckpoint>,
    /// Cost of generating the initial (empty-graph) segments.
    pub initialization_steps: u64,
    /// Total number of arrivals replayed.
    pub total_arrivals: usize,
}

/// Runs experiment E9.
pub fn incremental_cost(params: &CostParams) -> IncrementalCostResult {
    let workload = twitter_like(params.nodes, params.out_degree, params.seed);
    let config = MonteCarloConfig::new(params.epsilon, params.r).with_seed(params.seed);
    let mut engine = IncrementalPageRank::new_empty(params.nodes, config);
    let initialization_steps = engine.initialization_steps();
    engine.reset_work();

    let m = workload.arrivals.len();
    let mut checkpoint_at: Vec<usize> = {
        let mut t = 16usize;
        let mut points = Vec::new();
        while t < m {
            points.push(t);
            t *= 2;
        }
        points.push(m);
        points
    };
    checkpoint_at.dedup();

    // Power iteration needs ~ln(precision)/ln(1/(1-ε)) sweeps; charge it the same
    // number of sweeps our baseline uses by default at ε.
    let sweeps_per_run = (20.0 / (1.0 / (1.0 - params.epsilon)).ln()).ceil() as usize;

    let mut checkpoints = Vec::with_capacity(checkpoint_at.len());
    let mut next_checkpoint = 0usize;
    for (t, &edge) in workload.arrivals.iter().enumerate() {
        engine.add_edge(edge);
        let arrivals = t + 1;
        if next_checkpoint < checkpoint_at.len() && arrivals == checkpoint_at[next_checkpoint] {
            next_checkpoint += 1;
            checkpoints.push(CostCheckpoint {
                arrivals,
                measured_steps: engine.work().walk_steps,
                measured_segments: engine.work().segments_updated,
                theorem4_bound: bounds::total_update_work(
                    params.nodes,
                    params.r,
                    arrivals,
                    params.epsilon,
                ),
                naive_power_iteration: power_iteration_recompute_work(arrivals, sweeps_per_run),
                naive_monte_carlo: monte_carlo_recompute_work(
                    params.nodes,
                    arrivals,
                    params.r,
                    params.epsilon,
                ),
            });
        }
    }

    IncrementalCostResult {
        checkpoints,
        initialization_steps,
        total_arrivals: m,
    }
}

/// Prints the E9 checkpoints as a table.
pub fn print_incremental_report(result: &IncrementalCostResult) {
    println!("# Incremental update cost (Theorem 4) vs naive recomputation");
    println!("# arrivals measured_steps measured_segments theorem4_bound naive_power_iter naive_monte_carlo");
    for c in &result.checkpoints {
        println!(
            "{} {} {} {:.0} {:.0} {:.0}",
            c.arrivals,
            c.measured_steps,
            c.measured_segments,
            c.theorem4_bound,
            c.naive_power_iteration,
            c.naive_monte_carlo
        );
    }
    println!(
        "# initialization cost (walk steps): {}  |  total arrivals: {}",
        result.initialization_steps, result.total_arrivals
    );
    println!(
        "# paper: total update work stays within a logarithmic factor of the initialization cost"
    );
}

/// Result of the deletion-cost experiment (E10).
#[derive(Debug, Clone, Copy)]
pub struct DeletionCostResult {
    /// Number of deletions performed.
    pub deletions: usize,
    /// Mean walk steps per deletion.
    pub mean_steps: f64,
    /// Mean segments rerouted per deletion.
    pub mean_segments: f64,
    /// Proposition 5 bound `nR/(mε²)` evaluated at the graph's size.
    pub proposition5_bound: f64,
}

/// Runs experiment E10: delete `deletions` uniformly random edges from the fully built
/// graph and measure the repair work.
pub fn deletion_cost(params: &CostParams, deletions: usize) -> DeletionCostResult {
    let workload = twitter_like(params.nodes, params.out_degree, params.seed);
    let m = workload.graph.edge_count();
    let config = MonteCarloConfig::new(params.epsilon, params.r).with_seed(params.seed ^ 0xde1);
    let mut engine = IncrementalPageRank::from_graph(&workload.graph, config);
    engine.reset_work();

    let mut rng = SmallRng::seed_from_u64(params.seed ^ 0xdead);
    let mut edges = workload.graph.collect_edges();
    edges.shuffle(&mut rng);
    let victims: Vec<_> = edges.into_iter().take(deletions).collect();
    for edge in &victims {
        engine.remove_edge(*edge);
    }

    let n = victims.len().max(1) as f64;
    DeletionCostResult {
        deletions: victims.len(),
        mean_steps: engine.work().walk_steps as f64 / n,
        mean_segments: engine.work().segments_updated as f64 / n,
        proposition5_bound: bounds::deletion_update_work(params.nodes, params.r, m, params.epsilon),
    }
}

/// Prints the E10 summary.
pub fn print_deletion_report(result: &DeletionCostResult) {
    println!("# Deletion cost (Proposition 5)");
    println!(
        "deletions {}  mean_steps {:.2}  mean_segments {:.2}  proposition5_bound {:.2}",
        result.deletions, result.mean_steps, result.mean_segments, result.proposition5_bound
    );
    println!("# paper: expected per-deletion work is at most nR/(m eps^2)");
}

/// Result of the SALSA-cost experiment (E11).
#[derive(Debug, Clone, Copy)]
pub struct SalsaCostResult {
    /// Total arrivals replayed.
    pub arrivals: usize,
    /// Measured total walk steps of the SALSA engine.
    pub salsa_steps: u64,
    /// Measured total walk steps of the PageRank engine on the same arrival sequence.
    pub pagerank_steps: u64,
    /// Theorem 6 bound `16·nR·ln m/ε²`.
    pub theorem6_bound: f64,
}

/// Runs experiment E11: replay the same arrivals into the PageRank and SALSA engines and
/// compare their total work.
pub fn salsa_cost(params: &CostParams) -> SalsaCostResult {
    let workload = twitter_like(params.nodes, params.out_degree, params.seed);
    let config = MonteCarloConfig::new(params.epsilon, params.r).with_seed(params.seed ^ 0x5a);

    let mut pagerank = IncrementalPageRank::new_empty(params.nodes, config);
    pagerank.reset_work();
    let mut salsa = IncrementalSalsa::new_empty(params.nodes, config);
    salsa.reset_work();
    for &edge in &workload.arrivals {
        pagerank.add_edge(edge);
        salsa.add_edge(edge);
    }

    SalsaCostResult {
        arrivals: workload.arrivals.len(),
        salsa_steps: salsa.work().walk_steps,
        pagerank_steps: pagerank.work().walk_steps,
        theorem6_bound: bounds::salsa_total_update_work(
            params.nodes,
            params.r,
            workload.arrivals.len(),
            params.epsilon,
        ),
    }
}

/// Prints the E11 summary.
pub fn print_salsa_report(result: &SalsaCostResult) {
    println!("# SALSA incremental update cost (Theorem 6)");
    println!(
        "arrivals {}  salsa_steps {}  pagerank_steps {}  theorem6_bound {:.0}",
        result.arrivals, result.salsa_steps, result.pagerank_steps, result.theorem6_bound
    );
    println!("# paper: SALSA maintenance costs at most a factor 16 more than PageRank maintenance");
}

/// Result of the Example 1 experiment (E12).
#[derive(Debug, Clone, Copy)]
pub struct Example1Result {
    /// Number of nodes in the gadget (`3N + 1`).
    pub nodes: usize,
    /// Segments rerouted when the adversarial edge arrives while the hub is dangling.
    pub adversarial_segments_updated: u64,
    /// Segments rerouted when the same edge arrives after the hub's other out-edges.
    pub benign_segments_updated: u64,
    /// Total segments stored (`nR`).
    pub total_segments: usize,
}

/// Runs experiment E12 on a gadget with parameter `n_param`.
pub fn example1(n_param: usize, r: usize, epsilon: f64, seed: u64) -> Example1Result {
    let gadget = example1_gadget(n_param);
    let config = MonteCarloConfig::new(epsilon, r).with_seed(seed);

    let mut adversarial =
        IncrementalPageRank::from_graph(gadget.adversarial_prefix_graph(), config);
    adversarial.reset_work();
    let adversarial_stats = adversarial.add_edge(gadget.adversarial_edge);

    let mut benign = IncrementalPageRank::from_graph(&gadget.graph, config.with_seed(seed ^ 1));
    benign.reset_work();
    let benign_stats = benign.add_edge(gadget.adversarial_edge);

    Example1Result {
        nodes: gadget.graph.node_count(),
        adversarial_segments_updated: adversarial_stats.segments_updated,
        benign_segments_updated: benign_stats.segments_updated,
        total_segments: gadget.graph.node_count() * r,
    }
}

/// Prints the E12 summary.
pub fn print_example1_report(result: &Example1Result) {
    println!("# Example 1: adversarial vs benign arrival of the same edge");
    println!(
        "nodes {}  total_segments {}  adversarial_updates {}  benign_updates {}",
        result.nodes,
        result.total_segments,
        result.adversarial_segments_updated,
        result.benign_segments_updated
    );
    println!("# paper: the adversarial order forces Omega(n) updates for a single arrival");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> CostParams {
        CostParams {
            nodes: 1_500,
            out_degree: 6,
            r: 4,
            epsilon: 0.2,
            seed: 3,
        }
    }

    #[test]
    fn measured_update_work_stays_below_theorem4_and_far_below_naive() {
        let result = incremental_cost(&small_params());
        assert!(!result.checkpoints.is_empty());
        let last = result.checkpoints.last().unwrap();
        assert_eq!(last.arrivals, result.total_arrivals);
        assert!(
            (last.measured_steps as f64) < last.theorem4_bound,
            "measured {} should be below the Theorem 4 bound {:.0}",
            last.measured_steps,
            last.theorem4_bound
        );
        assert!(
            (last.measured_steps as f64) * 10.0 < last.naive_monte_carlo,
            "incremental maintenance must be far cheaper than Monte Carlo recomputation"
        );
        assert!(
            (last.measured_steps as f64) * 10.0 < last.naive_power_iteration,
            "incremental maintenance must be far cheaper than power-iteration recomputation"
        );
    }

    #[test]
    fn cumulative_work_grows_sublinearly_at_the_tail() {
        // Theorem 4: the marginal cost at time t is ∝ 1/t, so the second half of the
        // arrivals must cost much less than the first half.
        let result = incremental_cost(&small_params());
        let half = result
            .checkpoints
            .iter()
            .find(|c| c.arrivals * 2 >= result.total_arrivals)
            .unwrap();
        let last = result.checkpoints.last().unwrap();
        let second_half = last.measured_steps - half.measured_steps;
        assert!(
            second_half * 2 < half.measured_steps.max(1) * 3,
            "late arrivals should be cheap: first part {} steps, second part {} steps",
            half.measured_steps,
            second_half
        );
    }

    #[test]
    fn deletion_cost_is_small_and_near_the_bound() {
        let result = deletion_cost(&small_params(), 300);
        assert_eq!(result.deletions, 300);
        // The bound is on the number of segments needing an update times 1/ε; allow
        // generous slack for the small graph while still ruling out O(n) behaviour.
        assert!(
            result.mean_segments < 20.0 * result.proposition5_bound.max(0.5),
            "mean segments {} far above the Proposition 5 bound {}",
            result.mean_segments,
            result.proposition5_bound
        );
        assert!(
            result.mean_steps < 100.0,
            "deletions must be cheap, got {}",
            result.mean_steps
        );
    }

    #[test]
    fn salsa_total_work_is_within_the_factor_16_envelope() {
        let result = salsa_cost(&small_params());
        assert!(result.salsa_steps > 0 && result.pagerank_steps > 0);
        assert!(
            (result.salsa_steps as f64) < result.theorem6_bound,
            "SALSA work {} exceeds the Theorem 6 bound {:.0}",
            result.salsa_steps,
            result.theorem6_bound
        );
        // Theorem 6's constant is 16; allow some slack for the in-degree-driven backward
        // repairs on a small graph, but the ratio must stay a modest constant.
        assert!(
            (result.salsa_steps as f64) < 25.0 * result.pagerank_steps as f64,
            "SALSA work {} should stay within a small constant of PageRank work {}",
            result.salsa_steps,
            result.pagerank_steps
        );
    }

    #[test]
    fn example1_adversarial_order_is_catastrophic_and_benign_order_is_cheap() {
        let result = example1(40, 5, 0.2, 9);
        assert!(
            result.adversarial_segments_updated as usize > result.nodes / 2,
            "adversarial arrival should touch Ω(n) segments, got {}",
            result.adversarial_segments_updated
        );
        assert!(
            result.benign_segments_updated * 4 < result.adversarial_segments_updated,
            "benign arrival ({}) should be much cheaper than adversarial ({})",
            result.benign_segments_updated,
            result.adversarial_segments_updated
        );
    }
}
