//! Experiments E4/E5 — Figures 3 and 4: personalized PageRank vectors follow power laws
//! whose exponents cluster around the in-degree/PageRank exponent.
//!
//! For each selected user the personalized PageRank vector is computed exactly (power
//! iteration personalized on the seed), sorted, and a power law is fitted over the rank
//! window `[2f, 20f]` where `f` is the user's friend count — the same window the paper
//! uses (Remark 4) to skip the direct-friend head of the vector.

use crate::workloads::{personalization_seeds, power_law_workload};
use ppr_analysis::powerlaw::{fit_power_law, rank_series, PowerLawFit};
use ppr_analysis::stats::{mean, std_dev};
use ppr_baselines::power_iteration::{personalized_power_iteration, PowerIterationConfig};
use ppr_graph::{GraphView, NodeId};

/// Parameters for the Figures 3/4 experiment.
#[derive(Debug, Clone, Copy)]
pub struct PersonalizedPowerLawParams {
    /// Number of nodes.
    pub nodes: usize,
    /// Average out-degree of the generator.
    pub out_degree: usize,
    /// Target in-degree rank power-law exponent of the generator.
    pub in_exponent: f64,
    /// Number of users to evaluate (the paper uses 100).
    pub users: usize,
    /// Friend-count window for user selection (the paper uses 20–30).
    pub min_friends: usize,
    /// Upper end of the friend-count window.
    pub max_friends: usize,
    /// Reset probability.
    pub epsilon: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PersonalizedPowerLawParams {
    fn default() -> Self {
        PersonalizedPowerLawParams {
            nodes: 20_000,
            out_degree: 25,
            in_exponent: 0.76,
            users: 100,
            min_friends: 20,
            max_friends: 30,
            epsilon: 0.2,
            seed: 42,
        }
    }
}

/// Per-user outcome.
#[derive(Debug, Clone)]
pub struct UserPowerLaw {
    /// The seed user.
    pub user: NodeId,
    /// The user's friend count `f`.
    pub friends: usize,
    /// Power-law fit over the rank window `[2f, 20f]`.
    pub fit: PowerLawFit,
    /// The `(rank, score)` series (kept only for the first few users, to draw Figure 3).
    pub series: Option<Vec<(usize, f64)>>,
}

/// Result of the Figures 3/4 experiment.
#[derive(Debug, Clone)]
pub struct PersonalizedPowerLawResult {
    /// One entry per evaluated user, sorted by fitted exponent (the Figure 4 x-axis).
    pub users: Vec<UserPowerLaw>,
    /// Mean of the fitted exponents (paper: ≈ 0.77).
    pub mean_exponent: f64,
    /// Standard deviation of the fitted exponents (paper: ≈ 0.08).
    pub std_exponent: f64,
}

/// Runs the experiment.  The full `(rank, score)` series is retained for the first
/// `keep_series` users so the Figure 3 panels can be printed.
pub fn run(params: &PersonalizedPowerLawParams, keep_series: usize) -> PersonalizedPowerLawResult {
    let workload = power_law_workload(
        params.nodes,
        params.out_degree,
        params.in_exponent,
        params.seed,
    );
    let seeds = personalization_seeds(
        &workload.graph,
        params.users,
        params.min_friends,
        params.max_friends,
        params.seed ^ 0xfeed,
    );
    let config = PowerIterationConfig {
        epsilon: params.epsilon,
        max_iterations: 60,
        tolerance: 1e-12,
    };

    let mut users = Vec::with_capacity(seeds.len());
    for (i, &user) in seeds.iter().enumerate() {
        let friends = workload.graph.out_degree(user);
        let scores = personalized_power_iteration(&workload.graph, user, &config).scores;
        let window = (2 * friends).max(2)..(20 * friends).max(2 * friends + 10);
        let Some(fit) = fit_power_law(&scores, window) else {
            continue;
        };
        let series = (i < keep_series).then(|| {
            let mut s = rank_series(&scores);
            s.truncate(5_000);
            s
        });
        users.push(UserPowerLaw {
            user,
            friends,
            fit,
            series,
        });
    }

    let exponents: Vec<f64> = users.iter().map(|u| u.fit.exponent).collect();
    let mean_exponent = mean(&exponents);
    let std_exponent = std_dev(&exponents);
    users.sort_by(|a, b| a.fit.exponent.partial_cmp(&b.fit.exponent).unwrap());

    PersonalizedPowerLawResult {
        users,
        mean_exponent,
        std_exponent,
    }
}

/// Prints the Figure 3 panels (rank series of the first users that kept their series).
pub fn print_fig3_report(result: &PersonalizedPowerLawResult) {
    println!("# Figure 3: personalized PageRank power laws (one panel per user)");
    for user in result.users.iter().filter(|u| u.series.is_some()) {
        let series = user.series.as_ref().expect("filtered on is_some");
        println!(
            "# user {} friends {} exponent {:.3}",
            user.user, user.friends, user.fit.exponent
        );
        let mut rank = 1usize;
        while rank <= series.len() {
            println!("{} {:.8}", rank, series[rank - 1].1);
            rank = (rank as f64 * 2.0).ceil() as usize;
        }
        println!();
    }
}

/// Prints the Figure 4 series (sorted exponents) plus the mean/std summary.
pub fn print_fig4_report(result: &PersonalizedPowerLawResult) {
    println!("# Figure 4: sorted personalized power-law exponents");
    println!("# user_index exponent");
    for (i, user) in result.users.iter().enumerate() {
        println!("{} {:.4}", i + 1, user.fit.exponent);
    }
    println!(
        "# mean exponent = {:.3}, std = {:.3}  (paper: mean 0.77, std 0.08)",
        result.mean_exponent, result.std_exponent
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> PersonalizedPowerLawParams {
        PersonalizedPowerLawParams {
            nodes: 6_000,
            out_degree: 25,
            in_exponent: 0.76,
            users: 12,
            min_friends: 20,
            max_friends: 30,
            epsilon: 0.2,
            seed: 5,
        }
    }

    #[test]
    fn personalized_vectors_follow_power_laws() {
        let result = run(&small_params(), 3);
        assert!(
            result.users.len() >= 8,
            "selection should find enough users"
        );
        let mean_r2 =
            result.users.iter().map(|u| u.fit.r_squared).sum::<f64>() / result.users.len() as f64;
        assert!(
            mean_r2 > 0.8,
            "personalized vectors should be near power laws on average (mean r^2 = {mean_r2})"
        );
        for user in &result.users {
            assert!(
                user.fit.r_squared > 0.6,
                "user {} personalized vector far from a power law (r^2 = {})",
                user.user,
                user.fit.r_squared
            );
            assert!(user.fit.exponent > 0.0);
        }
        // Exponents are reported sorted for the Figure 4 plot.
        for pair in result.users.windows(2) {
            assert!(pair[0].fit.exponent <= pair[1].fit.exponent);
        }
    }

    #[test]
    fn mean_exponent_is_in_a_plausible_band_and_series_are_kept() {
        let result = run(&small_params(), 3);
        assert!(
            (0.2..1.6).contains(&result.mean_exponent),
            "mean exponent {} looks wrong",
            result.mean_exponent
        );
        assert!(result.std_exponent < 0.6);
        let with_series = result.users.iter().filter(|u| u.series.is_some()).count();
        assert_eq!(with_series, 3);
    }
}
