//! Experiment E14 — Theorem 1: the Monte Carlo estimator concentrates around the true
//! PageRank, already for small `R`.
//!
//! The experiment sweeps the number of stored segments per node and reports how far the
//! normalised Monte Carlo estimates are from the power-iteration reference, both on
//! average (total variation distance) and for the heavy nodes the theorem singles out
//! (relative error over the top 1 % of nodes by PageRank).

use crate::workloads::twitter_like;
use ppr_baselines::power_iteration::{power_iteration, PowerIterationConfig};
use ppr_core::{IncrementalPageRank, MonteCarloConfig};

/// Parameters for the concentration experiment.
#[derive(Debug, Clone)]
pub struct ConcentrationParams {
    /// Number of nodes.
    pub nodes: usize,
    /// Out-degree per node of the generator.
    pub out_degree: usize,
    /// Values of `R` to sweep.
    pub r_values: Vec<usize>,
    /// Reset probability.
    pub epsilon: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ConcentrationParams {
    fn default() -> Self {
        ConcentrationParams {
            nodes: 20_000,
            out_degree: 10,
            r_values: vec![1, 2, 5, 10, 20],
            epsilon: 0.2,
            seed: 42,
        }
    }
}

/// Accuracy of the estimator at one value of `R`.
#[derive(Debug, Clone, Copy)]
pub struct ConcentrationRow {
    /// Number of segments per node.
    pub r: usize,
    /// Total variation distance to the power-iteration reference.
    pub total_variation: f64,
    /// Mean relative error over the top 1 % of nodes by true PageRank.
    pub heavy_node_relative_error: f64,
}

/// Result of the concentration experiment.
#[derive(Debug, Clone)]
pub struct ConcentrationResult {
    /// One row per value of `R`, in the order requested.
    pub rows: Vec<ConcentrationRow>,
}

/// Runs the experiment.
pub fn run(params: &ConcentrationParams) -> ConcentrationResult {
    let workload = twitter_like(params.nodes, params.out_degree, params.seed);
    let reference = power_iteration(
        &workload.graph,
        &PowerIterationConfig::with_epsilon(params.epsilon),
    )
    .scores;

    // The "heavy" nodes Theorem 1 concentrates sharpest on: the top 1 % by PageRank.
    let mut order: Vec<usize> = (0..reference.len()).collect();
    order.sort_by(|&a, &b| reference[b].partial_cmp(&reference[a]).unwrap());
    let heavy: Vec<usize> = order[..(reference.len() / 100).max(10)].to_vec();

    let mut rows = Vec::with_capacity(params.r_values.len());
    for &r in &params.r_values {
        let engine = IncrementalPageRank::from_graph(
            &workload.graph,
            MonteCarloConfig::new(params.epsilon, r).with_seed(params.seed ^ (r as u64) << 8),
        );
        let estimates = engine.estimates();
        let normalized = estimates.normalized();
        let total_variation = estimates.total_variation_distance(&reference);
        let heavy_node_relative_error = heavy
            .iter()
            .map(|&v| (normalized[v] - reference[v]).abs() / reference[v])
            .sum::<f64>()
            / heavy.len() as f64;
        rows.push(ConcentrationRow {
            r,
            total_variation,
            heavy_node_relative_error,
        });
    }

    ConcentrationResult { rows }
}

/// Prints one row per `R` value.
pub fn print_report(result: &ConcentrationResult) {
    println!("# Theorem 1: Monte Carlo estimator accuracy vs R");
    println!("# R total_variation heavy_node_relative_error");
    for row in &result.rows {
        println!(
            "{} {:.4} {:.4}",
            row.r, row.total_variation, row.heavy_node_relative_error
        );
    }
    println!("# paper: even R = 1 gives provably good estimates for above-average nodes");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> ConcentrationParams {
        ConcentrationParams {
            nodes: 2_000,
            out_degree: 8,
            r_values: vec![1, 4, 16],
            epsilon: 0.2,
            seed: 7,
        }
    }

    #[test]
    fn accuracy_improves_with_r() {
        let result = run(&small_params());
        assert_eq!(result.rows.len(), 3);
        let first = result.rows.first().unwrap();
        let last = result.rows.last().unwrap();
        assert!(
            last.total_variation < first.total_variation,
            "more segments must reduce the error ({} -> {})",
            first.total_variation,
            last.total_variation
        );
        assert!(last.total_variation < 0.1);
    }

    #[test]
    fn heavy_nodes_are_accurate_even_for_r_equal_one() {
        let result = run(&small_params());
        let r1 = &result.rows[0];
        assert_eq!(r1.r, 1);
        assert!(
            r1.heavy_node_relative_error < 0.35,
            "Theorem 1: R = 1 already concentrates on heavy nodes, got relative error {}",
            r1.heavy_node_relative_error
        );
    }
}
