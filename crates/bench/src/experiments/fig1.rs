//! Experiment E1/E2 — Figure 1 and the §4.2 random-permutation statistic.
//!
//! The paper validates the random-permutation arrival model in two ways:
//!
//! 1. the arrival-degree CDF and the existing-degree CDF nearly coincide (Figure 1);
//! 2. the statistic `m · E[π_{u_t} / outdeg_{u_t}(t)]` over observed arrivals is ≈ 1
//!    (they measured 0.81 on 4.63 M Twitter arrivals).
//!
//! We replay the last `observe_fraction` of a random-permutation arrival sequence on top
//! of the prefix snapshot and compute both quantities.

use crate::workloads::power_law_workload;
use ppr_analysis::cdf::{arrival_degree_cdf, existing_degree_cdf, max_cdf_distance, CdfPoint};
use ppr_baselines::power_iteration::{power_iteration, PowerIterationConfig};
use ppr_graph::stream::split_at_fraction;
use ppr_graph::{DynamicGraph, GraphView};

/// Parameters for the Figure 1 experiment.
#[derive(Debug, Clone, Copy)]
pub struct Fig1Params {
    /// Number of nodes in the synthetic graph.
    pub nodes: usize,
    /// Average out-degree of the generator (out-degrees are heavy-tailed, as on
    /// Twitter, which is what makes the Figure 1 comparison informative).
    pub out_degree: usize,
    /// Target in-degree rank power-law exponent of the generator.
    pub in_exponent: f64,
    /// Fraction of the arrival sequence treated as "new" arrivals (the paper observed
    /// the edges between two snapshots).
    pub observe_fraction: f64,
    /// Reset probability used for the PageRank in the `m·E[π/d]` statistic.
    pub epsilon: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig1Params {
    fn default() -> Self {
        Fig1Params {
            nodes: 20_000,
            out_degree: 10,
            in_exponent: 0.76,
            observe_fraction: 0.2,
            epsilon: 0.2,
            seed: 42,
        }
    }
}

/// Result of the Figure 1 experiment.
#[derive(Debug, Clone)]
pub struct Fig1Result {
    /// Existing-degree CDF `e(d)` of the base snapshot.
    pub existing: Vec<CdfPoint>,
    /// Arrival-degree CDF `a(d)` of the observed arrivals.
    pub arrival: Vec<CdfPoint>,
    /// Kolmogorov–Smirnov-style distance between the two CDFs (small = the
    /// proportionality assumption holds).
    pub max_distance: f64,
    /// The `m·E[π_{u_t}/outdeg_{u_t}(t)]` statistic (≈ 1 under the model; 0.81 on
    /// Twitter).
    pub m_times_expected_ratio: f64,
    /// Number of observed arrivals.
    pub observed_arrivals: usize,
}

/// Runs the experiment.
pub fn run(params: &Fig1Params) -> Fig1Result {
    let workload = power_law_workload(
        params.nodes,
        params.out_degree,
        params.in_exponent,
        params.seed,
    );
    let (prefix, suffix) = split_at_fraction(&workload.arrivals, 1.0 - params.observe_fraction);
    let mut graph = DynamicGraph::from_edges(&prefix, params.nodes);

    // PageRank of the base snapshot, used for the §4.2 statistic exactly as the paper
    // evaluates π on the first snapshot.
    let pagerank = power_iteration(&graph, &PowerIterationConfig::with_epsilon(params.epsilon));

    // Figure 1 compares the arrival sources' out-degree distribution against the
    // degree-weighted distribution of the snapshot, so both sides are measured on the
    // base snapshot (the paper likewise measures degrees on a snapshot of the graph,
    // not on every intermediate state).
    let base_out_degrees = graph.out_degrees();
    let existing = existing_degree_cdf(&base_out_degrees);

    let mut arrival_degrees = Vec::with_capacity(suffix.len());
    let mut ratio_sum = 0.0f64;
    for edge in &suffix {
        graph.add_edge_growing(*edge);
        // The Lemma 3 statistic needs the out-degree at arrival time (new edge included).
        let d_now = graph.out_degree(edge.source);
        let m_t = graph.edge_count() as f64;
        ratio_sum += m_t * pagerank.scores[edge.source.index()] / d_now as f64;
        // The CDF comparison uses the snapshot degree of the source.
        let d_base = base_out_degrees[edge.source.index()];
        if d_base > 0 {
            arrival_degrees.push(d_base);
        }
    }
    let arrival = arrival_degree_cdf(&arrival_degrees);
    let m_times_expected_ratio = if suffix.is_empty() {
        0.0
    } else {
        ratio_sum / suffix.len() as f64
    };

    Fig1Result {
        max_distance: max_cdf_distance(&existing, &arrival),
        existing,
        arrival,
        m_times_expected_ratio,
        observed_arrivals: suffix.len(),
    }
}

/// Prints the two CDFs as `degree existing_fraction arrival_fraction` rows plus the
/// summary statistics, mirroring the data behind Figure 1.
pub fn print_report(result: &Fig1Result) {
    println!("# Figure 1: arrival vs existing degree CDF");
    println!("# degree existing_cdf arrival_cdf");
    let degrees: Vec<usize> = {
        let mut d: Vec<usize> = result
            .existing
            .iter()
            .chain(result.arrival.iter())
            .map(|p| p.degree)
            .collect();
        d.sort_unstable();
        d.dedup();
        d
    };
    for &degree in &degrees {
        let e = ppr_analysis::cdf::evaluate_cdf(&result.existing, degree);
        let a = ppr_analysis::cdf::evaluate_cdf(&result.arrival, degree);
        println!("{degree} {e:.4} {a:.4}");
    }
    println!("# observed arrivals: {}", result.observed_arrivals);
    println!("# max CDF distance: {:.4}", result.max_distance);
    println!(
        "# m * E[pi_u / outdeg_u] = {:.3}  (paper measured 0.81; model predicts ~1)",
        result.m_times_expected_ratio
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> Fig1Params {
        Fig1Params {
            nodes: 2_000,
            out_degree: 8,
            in_exponent: 0.76,
            observe_fraction: 0.1,
            epsilon: 0.2,
            seed: 7,
        }
    }

    #[test]
    fn cdfs_track_each_other_under_random_permutation() {
        let result = run(&small_params());
        assert!(result.observed_arrivals > 500);
        assert!(
            result.max_distance < 0.12,
            "under random-permutation arrivals the CDFs should nearly coincide, distance = {}",
            result.max_distance
        );
    }

    #[test]
    fn m_times_ratio_is_near_one() {
        let result = run(&small_params());
        assert!(
            (0.6..=1.4).contains(&result.m_times_expected_ratio),
            "the §4.2 statistic should be close to 1, got {}",
            result.m_times_expected_ratio
        );
    }

    #[test]
    fn experiment_is_deterministic() {
        let a = run(&small_params());
        let b = run(&small_params());
        assert_eq!(a.max_distance, b.max_distance);
        assert_eq!(a.m_times_expected_ratio, b.m_times_expected_ratio);
    }
}
