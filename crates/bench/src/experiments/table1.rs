//! Experiment E8 — Table 1: link-prediction effectiveness of HITS, COSINE, personalized
//! PageRank and personalized SALSA.
//!
//! The paper selects users whose friend set grows between two Twitter snapshots,
//! produces a recommendation list for each user from the first snapshot only, and counts
//! how many of the *actually created* future friendships appear in the top-100 and
//! top-1000 recommendations, averaged over the users.
//!
//! Without the Twitter trace, the held-out friendships are synthesized on top of the
//! first snapshot with the two forces that drive real follower growth: triadic closure
//! (follow a friend of a friend) and preferential attachment (follow an already-popular
//! account) — see [`crate::workloads::synthesize_future_follows`] and the substitution
//! table in `DESIGN.md`.  The reproduced shape is the paper's ordering:
//! personalized random-walk methods (PageRank, SALSA) beat COSINE, and all beat HITS.

use crate::workloads::{
    add_celebrity_core, mixed_attachment, personalization_seeds, synthesize_future_follows,
};
use ppr_analysis::ranking::{hits_in_top_k, top_k_indices};
use ppr_baselines::cosine::cosine_recommender;
use ppr_baselines::hits::personalized_hits;
use ppr_baselines::power_iteration::{personalized_power_iteration, PowerIterationConfig};
use ppr_baselines::salsa_exact::personalized_salsa_exact;
use ppr_graph::{CsrGraph, GraphView};
use std::collections::HashSet;

/// Parameters for the Table 1 experiment.
#[derive(Debug, Clone, Copy)]
pub struct Table1Params {
    /// Number of nodes.
    pub nodes: usize,
    /// Out-degree per node of the generator (chosen near the paper's 20–30 friend
    /// window).
    pub out_degree: usize,
    /// Share of follow targets chosen uniformly at random (instead of by popularity)
    /// when generating the base graph; gives each user a personal neighbourhood.
    pub uniform_mix: f64,
    /// Size of the densely interconnected celebrity core added to the base graph (the
    /// structure that makes HITS drift away from the user's neighbourhood).
    pub celebrity_core: usize,
    /// Maximum number of users to evaluate (paper: 100).
    pub users: usize,
    /// Number of future friendships synthesized per user (the paper's users gained
    /// 10–30 friends between the snapshots).
    pub future_follows: usize,
    /// Probability that a future follow is created by triadic closure rather than by
    /// global popularity.
    pub p_triadic: f64,
    /// Minimum follower count a future friend must already have ("reasonably followed";
    /// paper: 10).
    pub min_target_followers: usize,
    /// Iterations for the iterative recommenders (paper: 10).
    pub iterations: usize,
    /// Reset probability for the personalized methods.
    pub epsilon: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Table1Params {
    fn default() -> Self {
        Table1Params {
            nodes: 20_000,
            out_degree: 25,
            uniform_mix: 0.5,
            celebrity_core: 200,
            users: 100,
            future_follows: 15,
            p_triadic: 0.7,
            min_target_followers: 5,
            iterations: 10,
            epsilon: 0.2,
            seed: 42,
        }
    }
}

/// Average hit counts of one recommender.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MethodRow {
    /// Average number of future friendships captured in the top-100 recommendations.
    pub top_100: f64,
    /// Average number of future friendships captured in the top-1000 recommendations.
    pub top_1000: f64,
}

/// Result of the Table 1 experiment: one row per method, as in the paper.
#[derive(Debug, Clone)]
pub struct Table1Result {
    /// Personalized HITS (Appendix A variant).
    pub hits: MethodRow,
    /// COSINE neighbour-similarity recommender.
    pub cosine: MethodRow,
    /// Personalized PageRank.
    pub pagerank: MethodRow,
    /// Personalized SALSA.
    pub salsa: MethodRow,
    /// Number of users evaluated.
    pub users_evaluated: usize,
    /// Average number of held-out future friendships per user (an upper bound on every
    /// entry of the table).
    pub mean_future_friends: f64,
}

/// Runs the experiment.
pub fn run(params: &Table1Params) -> Table1Result {
    let mut workload = mixed_attachment(
        params.nodes,
        params.out_degree,
        params.uniform_mix,
        params.seed,
    );
    add_celebrity_core(
        &mut workload.graph,
        params.celebrity_core,
        20,
        params.seed ^ 0xce1eb,
    );
    let base_dynamic = &workload.graph;
    let base = CsrGraph::from_view(base_dynamic);
    let users = personalization_seeds(
        base_dynamic,
        params.users,
        params.out_degree.saturating_sub(10).max(2),
        params.out_degree + 10,
        params.seed ^ 0x7ab1e,
    );

    let pi_config = PowerIterationConfig {
        epsilon: params.epsilon,
        max_iterations: params.iterations,
        tolerance: 0.0,
    };

    let mut totals = [MethodRow {
        top_100: 0.0,
        top_1000: 0.0,
    }; 4];
    let mut future_total = 0usize;
    let mut users_evaluated = 0usize;
    for (i, &user) in users.iter().enumerate() {
        let future = synthesize_future_follows(
            base_dynamic,
            user,
            params.future_follows,
            params.p_triadic,
            params.min_target_followers,
            params.seed ^ 0xf01_10c5 ^ (i as u64),
        );
        if future.is_empty() {
            continue;
        }
        users_evaluated += 1;
        future_total += future.len();
        let actual: HashSet<usize> = future.iter().map(|n| n.index()).collect();
        let exclude: HashSet<usize> = std::iter::once(user.index())
            .chain(base.out_neighbors(user).iter().map(|n| n.index()))
            .collect();

        let rankings = [
            personalized_hits(&base, user, params.epsilon, params.iterations).authorities,
            cosine_recommender(base_dynamic, user).authorities,
            personalized_power_iteration(&base, user, &pi_config).scores,
            personalized_salsa_exact(&base, user, params.epsilon, params.iterations).authorities,
        ];
        for (row, scores) in totals.iter_mut().zip(rankings.iter()) {
            let ranked = top_k_indices(scores, 1_000, &exclude);
            row.top_100 += hits_in_top_k(&ranked, &actual, 100) as f64;
            row.top_1000 += hits_in_top_k(&ranked, &actual, 1_000) as f64;
        }
    }

    let n = users_evaluated.max(1) as f64;
    for row in &mut totals {
        row.top_100 /= n;
        row.top_1000 /= n;
    }

    Table1Result {
        hits: totals[0],
        cosine: totals[1],
        pagerank: totals[2],
        salsa: totals[3],
        users_evaluated,
        mean_future_friends: future_total as f64 / n,
    }
}

/// Prints the table in the paper's layout.
pub fn print_report(result: &Table1Result) {
    println!("# Table 1: link prediction effectiveness (average hits per user)");
    println!("#            HITS   COSINE  PageRank  SALSA");
    println!(
        "Top 100    {:6.2}  {:6.2}  {:7.2}  {:6.2}",
        result.hits.top_100, result.cosine.top_100, result.pagerank.top_100, result.salsa.top_100
    );
    println!(
        "Top 1000   {:6.2}  {:6.2}  {:7.2}  {:6.2}",
        result.hits.top_1000,
        result.cosine.top_1000,
        result.pagerank.top_1000,
        result.salsa.top_1000
    );
    println!(
        "# users evaluated: {}, mean held-out future friendships: {:.1}",
        result.users_evaluated, result.mean_future_friends
    );
    println!("# paper (Twitter): HITS 0.25/0.86, COSINE 4.93/11.69, PageRank 5.07/12.71, SALSA 6.29/13.58");
    println!("# reproduced shape: random-walk methods beat COSINE, and all beat HITS");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> Table1Params {
        Table1Params {
            nodes: 6_000,
            out_degree: 25,
            uniform_mix: 0.5,
            celebrity_core: 80,
            users: 25,
            future_follows: 12,
            p_triadic: 0.8,
            min_target_followers: 2,
            iterations: 10,
            epsilon: 0.2,
            seed: 13,
        }
    }

    #[test]
    fn random_walk_methods_beat_hits_and_capture_a_meaningful_fraction() {
        let result = run(&small_params());
        assert!(result.users_evaluated >= 15, "need enough evaluation users");
        // On a graph this small the top-1000 lists cover a sixth of all nodes, so the
        // discriminative comparison is at the top-100 cut-off, as in the paper's
        // "Top 100" row.
        assert!(
            result.pagerank.top_100 > result.hits.top_100,
            "PageRank ({:.2}) should beat HITS ({:.2}) at top-100",
            result.pagerank.top_100,
            result.hits.top_100
        );
        assert!(
            result.salsa.top_100 > result.hits.top_100,
            "SALSA ({:.2}) should beat HITS ({:.2}) at top-100",
            result.salsa.top_100,
            result.hits.top_100
        );
        assert!(
            result.pagerank.top_1000 > 0.2 * result.mean_future_friends,
            "PageRank should capture a meaningful share ({:.2} of {:.2})",
            result.pagerank.top_1000,
            result.mean_future_friends
        );
    }

    #[test]
    fn hit_counts_are_bounded_by_future_friend_count() {
        let result = run(&small_params());
        for row in [result.hits, result.cosine, result.pagerank, result.salsa] {
            assert!(row.top_100 <= row.top_1000 + 1e-9);
            assert!(row.top_1000 <= result.mean_future_friends + 1e-9);
            assert!(row.top_100 >= 0.0);
        }
    }
}
