//! Experiment E3 — Figure 2: in-degree and global PageRank follow the same power law.
//!
//! The paper reports a rank-plot exponent of roughly 0.76 for both the in-degree and the
//! global PageRank of the Twitter graph.  We reproduce the shape on the synthetic
//! preferential-attachment workload: both series are power laws and their fitted
//! exponents are close to each other.

use crate::workloads::power_law_workload;
use ppr_analysis::powerlaw::{fit_power_law, rank_series, PowerLawFit};
use ppr_baselines::power_iteration::{power_iteration, PowerIterationConfig};

/// Parameters for the Figure 2 experiment.
#[derive(Debug, Clone, Copy)]
pub struct Fig2Params {
    /// Number of nodes.
    pub nodes: usize,
    /// Average out-degree of the generator.
    pub out_degree: usize,
    /// Target in-degree rank power-law exponent of the generator (the paper's Twitter
    /// measurement is 0.76).
    pub in_exponent: f64,
    /// Reset probability for the PageRank computation.
    pub epsilon: f64,
    /// Rank window used for the power-law fits (as a fraction of n: `[start, end)`).
    pub fit_window: (f64, f64),
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig2Params {
    fn default() -> Self {
        Fig2Params {
            nodes: 50_000,
            out_degree: 10,
            in_exponent: 0.76,
            epsilon: 0.2,
            fit_window: (0.001, 0.2),
            seed: 42,
        }
    }
}

/// Result of the Figure 2 experiment.
#[derive(Debug, Clone)]
pub struct Fig2Result {
    /// `(rank, value)` series of the i-th largest in-degree.
    pub indegree_series: Vec<(usize, f64)>,
    /// `(rank, value)` series of the i-th largest PageRank.
    pub pagerank_series: Vec<(usize, f64)>,
    /// Power-law fit of the in-degree series.
    pub indegree_fit: PowerLawFit,
    /// Power-law fit of the PageRank series.
    pub pagerank_fit: PowerLawFit,
}

/// Runs the experiment.
pub fn run(params: &Fig2Params) -> Fig2Result {
    let workload = power_law_workload(
        params.nodes,
        params.out_degree,
        params.in_exponent,
        params.seed,
    );
    let indegrees: Vec<f64> = workload
        .graph
        .in_degrees()
        .iter()
        .map(|&d| d as f64)
        .collect();
    let pagerank = power_iteration(
        &workload.graph,
        &PowerIterationConfig::with_epsilon(params.epsilon),
    );

    let lo = ((params.nodes as f64) * params.fit_window.0).max(1.0) as usize;
    let hi = ((params.nodes as f64) * params.fit_window.1) as usize;
    let window = lo..hi.max(lo + 2);

    let indegree_fit =
        fit_power_law(&indegrees, window.clone()).expect("in-degree fit must succeed");
    let pagerank_fit = fit_power_law(&pagerank.scores, window).expect("PageRank fit must succeed");

    Fig2Result {
        indegree_series: rank_series(&indegrees),
        pagerank_series: rank_series(&pagerank.scores),
        indegree_fit,
        pagerank_fit,
    }
}

/// Prints log-spaced rows of both rank series plus the fitted exponents (the data behind
/// the two panels of Figure 2).
pub fn print_report(result: &Fig2Result) {
    println!("# Figure 2: in-degree and PageRank power laws (log-spaced ranks)");
    println!("# rank indegree pagerank");
    let max_rank = result
        .indegree_series
        .len()
        .max(result.pagerank_series.len());
    let mut rank = 1usize;
    while rank <= max_rank {
        let indeg = result
            .indegree_series
            .get(rank - 1)
            .map(|&(_, v)| v)
            .unwrap_or(0.0);
        let pr = result
            .pagerank_series
            .get(rank - 1)
            .map(|&(_, v)| v)
            .unwrap_or(0.0);
        println!("{rank} {indeg:.6} {pr:.8}");
        rank = (rank as f64 * 1.5).ceil() as usize;
    }
    println!(
        "# in-degree exponent = {:.3} (r^2 = {:.3});  PageRank exponent = {:.3} (r^2 = {:.3})",
        result.indegree_fit.exponent,
        result.indegree_fit.r_squared,
        result.pagerank_fit.exponent,
        result.pagerank_fit.r_squared
    );
    println!("# paper: both exponents ~= 0.76 on the Twitter graph");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> Fig2Params {
        Fig2Params {
            nodes: 5_000,
            out_degree: 8,
            in_exponent: 0.76,
            epsilon: 0.2,
            fit_window: (0.002, 0.2),
            seed: 9,
        }
    }

    #[test]
    fn both_series_are_power_laws_with_similar_exponents() {
        let result = run(&small_params());
        assert!(
            result.indegree_fit.r_squared > 0.9,
            "in-degree should be a clean power law"
        );
        assert!(
            result.pagerank_fit.r_squared > 0.9,
            "PageRank should be a clean power law"
        );
        let diff = (result.indegree_fit.exponent - result.pagerank_fit.exponent).abs();
        assert!(
            diff < 0.25,
            "the two exponents should roughly agree (paper: both ≈ 0.76), got {} vs {}",
            result.indegree_fit.exponent,
            result.pagerank_fit.exponent
        );
    }

    #[test]
    fn exponents_are_in_a_plausible_range() {
        let result = run(&small_params());
        assert!(
            (0.3..1.3).contains(&result.indegree_fit.exponent),
            "exponent {} out of range",
            result.indegree_fit.exponent
        );
        assert!(result.indegree_series[0].1 >= result.indegree_series[10].1);
    }
}
