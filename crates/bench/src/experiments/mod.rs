//! One module per reproduced experiment.  See the crate-level table for the mapping to
//! the paper's figures and tables.

pub mod concentration;
pub mod cost;
pub mod fig1;
pub mod fig2;
pub mod fig5;
pub mod fig6;
pub mod personalized_powerlaw;
pub mod table1;
