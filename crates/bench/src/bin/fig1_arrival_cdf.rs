//! Regenerates Figure 1: arrival-degree CDF vs existing-degree CDF, plus the §4.2
//! `m·E[π/d]` statistic.  Pass `--quick` for a reduced-size run.

use ppr_bench::experiments::fig1;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut params = fig1::Fig1Params::default();
    if quick {
        params.nodes = 5_000;
    }
    let result = fig1::run(&params);
    fig1::print_report(&result);
}
