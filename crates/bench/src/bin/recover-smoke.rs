//! Crash-kill recovery smoke test: write, SIGKILL mid-WAL, reopen, verify.
//!
//! The binary runs itself twice.  The **parent** spawns a **child** (`--child`)
//! that builds a durable engine, checkpoints once, and then applies WAL-logged
//! batches forever.  The parent waits for the checkpoint to publish, lets some
//! batches land, and kills the child with SIGKILL — no destructors, no flushes,
//! exactly the crash the WAL is for.  It then scars the log tail with garbage
//! bytes (a torn half-frame), recovers, and asserts the recovered engine is
//! **byte-identical** to an in-memory oracle that applied exactly the surviving
//! batches — scores, visit counts, postings, paths, and work counters.
//!
//! By default the batch schedule is a synthetic preferential-attachment stream
//! with interleaved deletions.  Pass `--scenario <name>` to crash-test a member
//! of the `ppr-scenario` corpus instead: the write schedule becomes that
//! scenario's compiled trace (`Trace::write_batches`), so the kill lands inside
//! a flash crowd's growth, a spam wave's mass-unfollow reversal, etc.
//!
//! Pass `--pipelined` to commit through the serving layer's pipelined,
//! group-committing `QueryEngine` instead of the bare engine: the SIGKILL then
//! lands with commits in flight on the commit thread and WAL appends covered
//! only by coalesced syncs — and recovery must still land on the exact prefix of
//! batches whose records survive in the log.
//!
//! Run with `cargo run --release --bin recover-smoke [-- --scenario <name>]
//! [--pipelined]`; exits non-zero on any divergence.  CI runs this after the
//! test suites, once per corpus scenario it pins, plus a pipelined pass.

use ppr_core::{IncrementalPageRank, MonteCarloConfig};
use ppr_graph::generators::{preferential_attachment_edges, PreferentialAttachmentConfig};
use ppr_graph::stream::random_permutation;
use ppr_graph::{DynamicGraph, Edge, GraphView, NodeId};
use ppr_persist::wal::read_records;
use ppr_persist::{TempDir, WalOp};
use ppr_store::{WalkIndexView, WalkStore};
use std::io::Write as _;
use std::process::Command;
use std::time::{Duration, Instant};

const DIR_ENV: &str = "PPR_SMOKE_DIR";

/// A crash-test workload: the deterministic batch schedule both processes compute
/// identically, plus the engine shape it runs against.
struct Workload {
    name: String,
    nodes: usize,
    config: MonteCarloConfig,
    /// Batches applied before the child publishes its one checkpoint.
    checkpoint_after: usize,
    ops: Vec<(WalOp, Vec<Edge>)>,
}

/// The default synthetic schedule: arrival batches with every fifth batch a
/// deletion batch of earlier edges.
fn builtin_workload() -> Workload {
    const NODES: usize = 400;
    let pa = PreferentialAttachmentConfig::new(NODES, 5, 77);
    let edges = random_permutation(&preferential_attachment_edges(&pa), 79);
    let mut ops = Vec::new();
    let mut start = 0usize;
    while start < edges.len() {
        let end = (start + 13).min(edges.len());
        ops.push((WalOp::Arrivals, edges[start..end].to_vec()));
        if ops.len() % 5 == 0 {
            let victims: Vec<Edge> = edges[..end].iter().copied().step_by(11).take(4).collect();
            ops.push((WalOp::Deletions, victims));
        }
        start = end;
    }
    Workload {
        name: "builtin".into(),
        nodes: NODES,
        config: MonteCarloConfig::new(0.2, 4).with_seed(4242),
        checkpoint_after: 20,
        ops,
    }
}

/// Resolves `--scenario <name>` against the corpus, falling back to the builtin
/// schedule when no scenario was requested.
fn workload(scenario: Option<&str>) -> Workload {
    let Some(name) = scenario else {
        return builtin_workload();
    };
    let Some(scenario) = ppr_scenario::corpus::by_name(name) else {
        eprintln!("[recover-smoke] unknown scenario {name:?}; the corpus is:");
        for member in ppr_scenario::corpus::corpus() {
            eprintln!("[recover-smoke]   {}", member.name);
        }
        std::process::exit(2);
    };
    let trace = ppr_scenario::Trace::compile(&scenario);
    let ops = trace.write_batches();
    Workload {
        name: scenario.name.clone(),
        nodes: scenario.nodes,
        config: scenario.engine_config(),
        // One checkpoint a third of the way in: most of the schedule (including
        // any mass-unfollow reversal) replays from the WAL after the crash.
        checkpoint_after: (ops.len() / 3).max(1),
        ops,
    }
}

fn apply(engine: &mut IncrementalPageRank, op: &(WalOp, Vec<Edge>)) {
    match op.0 {
        WalOp::Arrivals => {
            engine.apply_arrivals(&op.1);
        }
        WalOp::Deletions => {
            engine.apply_deletions(&op.1);
        }
    }
}

fn commit(serving: &mut ppr_serve::QueryEngine<IncrementalPageRank>, op: &(WalOp, Vec<Edge>)) {
    match op.0 {
        WalOp::Arrivals => {
            serving.commit_arrivals(&op.1);
        }
        WalOp::Deletions => {
            serving.commit_deletions(&op.1);
        }
    }
}

/// Child: build, checkpoint, then log batches until killed.
fn run_child(work: &Workload, pipelined: bool) -> ! {
    let root = std::env::var(DIR_ENV).expect("child needs the store dir");
    let mut engine = IncrementalPageRank::create_durable(
        &root,
        DynamicGraph::with_nodes(work.nodes),
        work.config,
    )
    .expect("create_durable");
    if pipelined {
        // Commit through the pipelined, group-committing serving path: the SIGKILL
        // lands with commits possibly in flight on the commit thread and WAL
        // appends covered only by coalesced syncs.
        let mut serving = ppr_serve::QueryEngine::new(engine, 1).with_pipeline(4);
        for op in &work.ops[..work.checkpoint_after] {
            commit(&mut serving, op);
        }
        serving.engine_mut().checkpoint().expect("checkpoint");
        for op in &work.ops[work.checkpoint_after..] {
            commit(&mut serving, op);
        }
        loop {
            std::thread::sleep(Duration::from_millis(50));
        }
    }
    for op in &work.ops[..work.checkpoint_after] {
        apply(&mut engine, op);
    }
    engine.checkpoint().expect("checkpoint");
    for op in &work.ops[work.checkpoint_after..] {
        apply(&mut engine, op);
    }
    // Ran out of schedule before the parent killed us; park so the kill still lands
    // on a fully idle, fully synced process (recovery must then lose nothing).
    loop {
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn run_parent(work: &Workload, scenario: Option<&str>, pipelined: bool) {
    let tmp = TempDir::new("recover-smoke");
    let root = tmp.path().join("store");
    let exe = std::env::current_exe().expect("own path");
    let mut cmd = Command::new(exe);
    cmd.arg("--child");
    if pipelined {
        cmd.arg("--pipelined");
    }
    if let Some(name) = scenario {
        cmd.args(["--scenario", name]);
    }
    let mut child = cmd.env(DIR_ENV, &root).spawn().expect("spawn child");

    // Wait for the child to publish generation 1 and then — so the kill is
    // guaranteed to land mid-stream rather than mid-startup on a slow runner —
    // for at least one post-checkpoint batch to be durably framed in its WAL.
    let deadline = Instant::now() + Duration::from_secs(60);
    let wal_path = root.join("wal-000001.log");
    loop {
        let checkpointed = std::fs::read_to_string(root.join("CURRENT"))
            .map(|s| s.trim() == "1")
            .unwrap_or(false);
        if checkpointed
            && read_records(&wal_path)
                .map(|s| !s.records.is_empty())
                .unwrap_or(false)
        {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "child never checkpointed and logged a batch"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    std::thread::sleep(Duration::from_millis(150));
    child.kill().expect("SIGKILL the child");
    child.wait().expect("reap the child");

    // What survived?  Scan the log the crash left behind (pre-truncation) to learn
    // how many batches were fully synced.
    let scan = read_records(&wal_path).expect("scan crashed WAL");
    let survivors = scan.records.len();
    println!(
        "[recover-smoke] workload {}{}: child killed; {survivors} batches in the WAL \
         (torn tail: {})",
        work.name,
        if pipelined {
            " (pipelined, group-commit)"
        } else {
            ""
        },
        scan.torn_tail
    );
    assert!(
        survivors > 0,
        "the child should have logged batches past its checkpoint"
    );

    // Scar the tail further: garbage bytes where a frame was being written.
    {
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&wal_path)
            .expect("open WAL for scarring");
        file.write_all(&[0xEE; 9]).expect("append garbage");
    }

    // Recover, and hold the result to the in-memory oracle.
    let recovered = IncrementalPageRank::<WalkStore>::open(&root).expect("recovery");
    let mut oracle = IncrementalPageRank::new_empty(work.nodes, work.config);
    for op in &work.ops[..work.checkpoint_after + survivors] {
        apply(&mut oracle, op);
    }

    assert_eq!(recovered.scores(), oracle.scores(), "scores diverge");
    assert_eq!(recovered.work(), oracle.work(), "work counters diverge");
    let (a, b) = (recovered.walk_store(), oracle.walk_store());
    assert_eq!(a.total_visits(), b.total_visits(), "total_visits diverge");
    assert_eq!(
        WalkIndexView::visit_counts(a),
        WalkIndexView::visit_counts(b),
        "visit counts diverge"
    );
    for g in 0..work.nodes {
        let node = NodeId::from_index(g);
        let pa: Vec<_> = a.segments_visiting(node).collect();
        let pb: Vec<_> = b.segments_visiting(node).collect();
        assert_eq!(pa, pb, "postings of node {g} diverge");
        for id in a.segment_ids_of(node) {
            assert_eq!(
                a.segment_path(id),
                b.segment_path(id),
                "path {id:?} diverges"
            );
        }
    }
    recovered
        .validate_segments()
        .expect("recovered segments valid");

    println!(
        "[recover-smoke] PASS ({}): recovered bit-identically to the oracle at \
         {} batches ({} edges in the graph)",
        work.name,
        work.checkpoint_after + survivors,
        recovered.graph().edge_count()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scenario = args.iter().position(|a| a == "--scenario").map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| {
                eprintln!("[recover-smoke] --scenario needs a corpus name");
                std::process::exit(2);
            })
            .as_str()
    });
    let pipelined = args.iter().any(|a| a == "--pipelined");
    let work = workload(scenario);
    if args.iter().any(|a| a == "--child") {
        run_child(&work, pipelined);
    }
    run_parent(&work, scenario, pipelined);
}
