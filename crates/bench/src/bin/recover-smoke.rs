//! Crash-kill recovery smoke test: write, SIGKILL mid-WAL, reopen, verify.
//!
//! The binary runs itself twice.  The **parent** (no args) spawns a **child**
//! (`--child`) that builds a durable engine, checkpoints once, and then applies
//! WAL-logged batches forever.  The parent waits for the checkpoint to publish,
//! lets some batches land, and kills the child with SIGKILL — no destructors, no
//! flushes, exactly the crash the WAL is for.  It then scars the log tail with
//! garbage bytes (a torn half-frame), recovers, and asserts the recovered engine is
//! **byte-identical** to an in-memory oracle that applied exactly the surviving
//! batches — scores, visit counts, postings, paths, and work counters.
//!
//! Run with `cargo run --release --bin recover-smoke`; exits non-zero on any
//! divergence.  CI runs this after the test suites.

use ppr_core::{IncrementalPageRank, MonteCarloConfig};
use ppr_graph::generators::{preferential_attachment_edges, PreferentialAttachmentConfig};
use ppr_graph::stream::random_permutation;
use ppr_graph::{DynamicGraph, Edge, GraphView, NodeId};
use ppr_persist::wal::read_records;
use ppr_persist::{TempDir, WalOp};
use ppr_store::{WalkIndexView, WalkStore};
use std::io::Write as _;
use std::process::Command;
use std::time::{Duration, Instant};

const NODES: usize = 400;
const CHECKPOINT_AFTER: usize = 20;
const DIR_ENV: &str = "PPR_SMOKE_DIR";

fn config() -> MonteCarloConfig {
    MonteCarloConfig::new(0.2, 4).with_seed(4242)
}

/// The deterministic batch schedule both processes compute identically: arrival
/// batches with every fifth batch a deletion batch of earlier edges.
fn schedule() -> Vec<(WalOp, Vec<Edge>)> {
    let pa = PreferentialAttachmentConfig::new(NODES, 5, 77);
    let edges = random_permutation(&preferential_attachment_edges(&pa), 79);
    let mut ops = Vec::new();
    let mut start = 0usize;
    while start < edges.len() {
        let end = (start + 13).min(edges.len());
        ops.push((WalOp::Arrivals, edges[start..end].to_vec()));
        if ops.len() % 5 == 0 {
            let victims: Vec<Edge> = edges[..end].iter().copied().step_by(11).take(4).collect();
            ops.push((WalOp::Deletions, victims));
        }
        start = end;
    }
    ops
}

fn apply(engine: &mut IncrementalPageRank, op: &(WalOp, Vec<Edge>)) {
    match op.0 {
        WalOp::Arrivals => {
            engine.apply_arrivals(&op.1);
        }
        WalOp::Deletions => {
            engine.apply_deletions(&op.1);
        }
    }
}

/// Child: build, checkpoint, then log batches until killed.
fn run_child() -> ! {
    let root = std::env::var(DIR_ENV).expect("child needs the store dir");
    let ops = schedule();
    let mut engine =
        IncrementalPageRank::create_durable(&root, DynamicGraph::with_nodes(NODES), config())
            .expect("create_durable");
    for op in &ops[..CHECKPOINT_AFTER] {
        apply(&mut engine, op);
    }
    engine.checkpoint().expect("checkpoint");
    for op in &ops[CHECKPOINT_AFTER..] {
        apply(&mut engine, op);
    }
    // Ran out of schedule before the parent killed us; park so the kill still lands
    // on a fully idle, fully synced process (recovery must then lose nothing).
    loop {
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn run_parent() {
    let tmp = TempDir::new("recover-smoke");
    let root = tmp.path().join("store");
    let exe = std::env::current_exe().expect("own path");
    let mut child = Command::new(exe)
        .arg("--child")
        .env(DIR_ENV, &root)
        .spawn()
        .expect("spawn child");

    // Wait for the child to publish generation 1 and then — so the kill is
    // guaranteed to land mid-stream rather than mid-startup on a slow runner —
    // for at least one post-checkpoint batch to be durably framed in its WAL.
    let deadline = Instant::now() + Duration::from_secs(60);
    let wal_path = root.join("wal-000001.log");
    loop {
        let checkpointed = std::fs::read_to_string(root.join("CURRENT"))
            .map(|s| s.trim() == "1")
            .unwrap_or(false);
        if checkpointed
            && read_records(&wal_path)
                .map(|s| !s.records.is_empty())
                .unwrap_or(false)
        {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "child never checkpointed and logged a batch"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    std::thread::sleep(Duration::from_millis(150));
    child.kill().expect("SIGKILL the child");
    child.wait().expect("reap the child");

    // What survived?  Scan the log the crash left behind (pre-truncation) to learn
    // how many batches were fully synced.
    let scan = read_records(&wal_path).expect("scan crashed WAL");
    let survivors = scan.records.len();
    println!(
        "[recover-smoke] child killed; {survivors} batches in the WAL \
         (torn tail: {})",
        scan.torn_tail
    );
    assert!(
        survivors > 0,
        "the child should have logged batches past its checkpoint"
    );

    // Scar the tail further: garbage bytes where a frame was being written.
    {
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&wal_path)
            .expect("open WAL for scarring");
        file.write_all(&[0xEE; 9]).expect("append garbage");
    }

    // Recover, and hold the result to the in-memory oracle.
    let recovered = IncrementalPageRank::<WalkStore>::open(&root).expect("recovery");
    let ops = schedule();
    let mut oracle = IncrementalPageRank::new_empty(NODES, config());
    for op in &ops[..CHECKPOINT_AFTER + survivors] {
        apply(&mut oracle, op);
    }

    assert_eq!(recovered.scores(), oracle.scores(), "scores diverge");
    assert_eq!(recovered.work(), oracle.work(), "work counters diverge");
    let (a, b) = (recovered.walk_store(), oracle.walk_store());
    assert_eq!(a.total_visits(), b.total_visits(), "total_visits diverge");
    assert_eq!(
        WalkIndexView::visit_counts(a),
        WalkIndexView::visit_counts(b),
        "visit counts diverge"
    );
    for g in 0..NODES {
        let node = NodeId::from_index(g);
        let pa: Vec<_> = a.segments_visiting(node).collect();
        let pb: Vec<_> = b.segments_visiting(node).collect();
        assert_eq!(pa, pb, "postings of node {g} diverge");
        for id in a.segment_ids_of(node) {
            assert_eq!(
                a.segment_path(id),
                b.segment_path(id),
                "path {id:?} diverges"
            );
        }
    }
    recovered
        .validate_segments()
        .expect("recovered segments valid");

    println!(
        "[recover-smoke] PASS: recovered bit-identically to the oracle at \
         {} batches ({} edges in the graph)",
        CHECKPOINT_AFTER + survivors,
        recovered.graph().edge_count()
    );
}

fn main() {
    if std::env::args().any(|a| a == "--child") {
        run_child();
    }
    run_parent();
}
