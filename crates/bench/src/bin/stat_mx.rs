//! Regenerates the §4.2 random-permutation statistic `m·E[π_u/outdeg_u]` on its own
//! (the paper reports 0.81 on 4.63 M Twitter arrivals; the model predicts ≈ 1).

use ppr_bench::experiments::fig1;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut params = fig1::Fig1Params::default();
    if quick {
        params.nodes = 5_000;
    }
    let result = fig1::run(&params);
    println!("# Section 4.2 random-permutation statistic");
    println!("observed arrivals: {}", result.observed_arrivals);
    println!(
        "m * E[pi_u / outdeg_u] = {:.3}  (paper: 0.81 on Twitter; model predicts ~1)",
        result.m_times_expected_ratio
    );
}
