//! Regenerates Example 1: the adversarial arrival order forces Ω(n) walk-segment updates
//! for a single edge, while the same edge in a benign position is nearly free.

use ppr_bench::experiments::cost;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n_param = if quick { 100 } else { 1_000 };
    let result = cost::example1(n_param, 5, 0.2, 42);
    cost::print_example1_report(&result);
}
