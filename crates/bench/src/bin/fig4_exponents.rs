//! Regenerates Figure 4: sorted power-law exponents of the personalized PageRank vectors
//! of 100 users (paper: mean ≈ 0.77, std ≈ 0.08).

use ppr_bench::experiments::personalized_powerlaw;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut params = personalized_powerlaw::PersonalizedPowerLawParams::default();
    if quick {
        params.nodes = 6_000;
        params.users = 20;
    }
    let result = personalized_powerlaw::run(&params, 0);
    personalized_powerlaw::print_fig4_report(&result);
}
