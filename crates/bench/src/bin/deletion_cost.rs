//! Regenerates the edge-deletion cost measurement (Proposition 5).

use ppr_bench::experiments::cost;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut params = cost::CostParams::default();
    let mut deletions = 2_000;
    if quick {
        params.nodes = 5_000;
        deletions = 500;
    }
    let result = cost::deletion_cost(&params, deletions);
    cost::print_deletion_report(&result);
}
