//! Regenerates Figure 5: 11-point interpolated average precision of a 5 000-step
//! personalized walk against the "true" top-100 of a 50 000-step walk.

use ppr_bench::experiments::fig5;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut params = fig5::Fig5Params::default();
    if quick {
        params.nodes = 5_000;
        params.users = 20;
    }
    let result = fig5::run(&params);
    fig5::print_report(&result);
}
