//! Regenerates the SALSA maintenance cost measurement (Theorem 6).

use ppr_bench::experiments::cost;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut params = cost::CostParams::default();
    if quick {
        params.nodes = 3_000;
    } else {
        // SALSA maintains 2R segments per node; keep the paper-scale run affordable.
        params.nodes = 10_000;
    }
    let result = cost::salsa_cost(&params);
    cost::print_salsa_report(&result);
}
