//! Regenerates Figure 2: in-degree and global PageRank rank power laws.

use ppr_bench::experiments::fig2;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut params = fig2::Fig2Params::default();
    if quick {
        params.nodes = 10_000;
    }
    let result = fig2::run(&params);
    fig2::print_report(&result);
}
