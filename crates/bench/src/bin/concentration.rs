//! Regenerates the Theorem 1 accuracy measurement: Monte Carlo estimator error vs the
//! number of stored walk segments per node.

use ppr_bench::experiments::concentration;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut params = concentration::ConcentrationParams::default();
    if quick {
        params.nodes = 5_000;
        params.r_values = vec![1, 2, 5, 10];
    }
    let result = concentration::run(&params);
    concentration::print_report(&result);
}
