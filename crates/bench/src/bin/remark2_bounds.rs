//! Evaluates the closed-form bounds at the parameters of the paper's Remark 2
//! (α = 0.75, c = 5, R = 10, k = 100, n = 10⁸): walk length ≈ 63 200 steps but only
//! ≈ 2 000 fetches.

use ppr_core::bounds::{expected_fetches, top_k_fetches, walk_length_for_top_k};

fn main() {
    let (alpha, c, r, k, n) = (0.75, 5.0, 10usize, 100usize, 100_000_000usize);
    let s_k = walk_length_for_top_k(k, c, alpha, n);
    let fetches = top_k_fetches(k, c, alpha, r);
    println!("# Remark 2 (alpha = {alpha}, c = {c}, R = {r}, k = {k}, n = {n})");
    println!("walk length s_k (Eq. 4)        = {s_k:.0}   (paper: ~63200)");
    println!("fetch bound (Corollary 9)      = {fetches:.0}   (paper: ~2000)");
    println!(
        "Theorem 8 evaluated at s_k     = {:.0}",
        expected_fetches(s_k, n, r, alpha)
    );
    println!("both are vastly smaller than n = {n}");
}
