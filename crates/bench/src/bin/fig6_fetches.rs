//! Regenerates Figure 6: fetches against the Social Store vs walk length for
//! R ∈ {5, 10, 20}, with the Theorem 8 bound next to each observed curve.

use ppr_bench::experiments::fig6;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut params = fig6::Fig6Params::default();
    if quick {
        params.nodes = 5_000;
        params.users = 10;
        params.walk_lengths = vec![100, 500, 2_000, 8_000, 20_000];
    }
    let result = fig6::run(&params);
    fig6::print_report(&result);
}
