//! Regenerates Table 1: link-prediction effectiveness of HITS, COSINE, personalized
//! PageRank and personalized SALSA.

use ppr_bench::experiments::table1;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut params = table1::Table1Params::default();
    if quick {
        params.nodes = 6_000;
        params.users = 30;
    }
    let result = table1::run(&params);
    table1::print_report(&result);
}
