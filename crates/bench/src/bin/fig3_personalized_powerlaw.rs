//! Regenerates Figure 3: personalized PageRank power laws for six users.

use ppr_bench::experiments::personalized_powerlaw;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut params = personalized_powerlaw::PersonalizedPowerLawParams::default();
    if quick {
        params.nodes = 6_000;
        params.users = 12;
    }
    let result = personalized_powerlaw::run(&params, 6);
    personalized_powerlaw::print_fig3_report(&result);
}
