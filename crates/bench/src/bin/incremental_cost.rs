//! Regenerates the headline cost claim (Theorem 4): the total work to keep the Monte
//! Carlo PageRank estimates updated over m random-order arrivals, compared with the
//! theoretical bound and with both naive recomputation strategies.

use ppr_bench::experiments::cost;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut params = cost::CostParams::default();
    if quick {
        params.nodes = 5_000;
    }
    let result = cost::incremental_cost(&params);
    cost::print_incremental_report(&result);
}
