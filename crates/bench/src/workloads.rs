//! Shared workload builders.
//!
//! All experiments run over the same family of synthetic Twitter-like graphs: a directed
//! preferential-attachment graph (power-law in-degrees, Figure 2 shape) whose edges are
//! replayed in a uniformly random order (the random-permutation arrival model the paper
//! assumes and validates in Figure 1).

use ppr_graph::generators::{
    chung_lu_edges, preferential_attachment_edges, ChungLuConfig, PreferentialAttachmentConfig,
};
use ppr_graph::stream::random_permutation;
use ppr_graph::{DynamicGraph, Edge, GraphView, NodeId};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// A synthetic social-graph workload: the final graph plus the arrival order of its
/// edges.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The complete graph (all arrivals applied).
    pub graph: DynamicGraph,
    /// The edges in arrival order (a uniformly random permutation of the edge set).
    pub arrivals: Vec<Edge>,
    /// Number of nodes.
    pub nodes: usize,
}

/// Builds a Twitter-like workload: `nodes` nodes, `out_degree` follows per node created
/// by preferential attachment, edges arriving in random order.
pub fn twitter_like(nodes: usize, out_degree: usize, seed: u64) -> Workload {
    let config = PreferentialAttachmentConfig::new(nodes, out_degree, seed);
    let generated = preferential_attachment_edges(&config);
    let arrivals = random_permutation(&generated, seed ^ 0x517c_c1b7_2722_0a95);
    let graph = DynamicGraph::from_edges(&arrivals, nodes);
    Workload {
        graph,
        arrivals,
        nodes,
    }
}

/// Builds a preferential-attachment workload with a `uniform_mix` share of uniformly
/// random follow targets.  The uniform share gives every user a *personal* two-hop
/// neighbourhood (instead of everyone following the same handful of hubs), which is the
/// structure the link-prediction experiment needs: real follower graphs mix popularity
/// with personal/local ties.
pub fn mixed_attachment(nodes: usize, out_degree: usize, uniform_mix: f64, seed: u64) -> Workload {
    let config =
        PreferentialAttachmentConfig::new(nodes, out_degree, seed).with_uniform_mix(uniform_mix);
    let generated = preferential_attachment_edges(&config);
    let arrivals = random_permutation(&generated, seed ^ 0x1319_8a2e_0370_7344);
    let graph = DynamicGraph::from_edges(&arrivals, nodes);
    Workload {
        graph,
        arrivals,
        nodes,
    }
}

/// Builds a Chung–Lu power-law workload: `nodes` nodes, `nodes * avg_out_degree` edges,
/// in-degrees following a rank power law with exponent `in_exponent` (the paper's
/// Twitter measurement is 0.76) and mildly skewed out-degrees.
///
/// Unlike [`twitter_like`], edges are not tied to a node-arrival timeline, so every node
/// can reach most of the graph; this is the workload used by the personalization
/// experiments (Figures 3–4), where the paper's 10⁸-node Twitter graph offers every seed
/// a deep reachable neighbourhood.
pub fn power_law_workload(
    nodes: usize,
    avg_out_degree: usize,
    in_exponent: f64,
    seed: u64,
) -> Workload {
    let config = ChungLuConfig {
        nodes,
        edges: nodes * avg_out_degree,
        in_exponent,
        out_exponent: 0.35,
        seed,
    };
    let generated = chung_lu_edges(&config);
    let arrivals = random_permutation(&generated, seed ^ 0x243f_6a88_85a3_08d3);
    let graph = DynamicGraph::from_edges(&arrivals, nodes);
    Workload {
        graph,
        arrivals,
        nodes,
    }
}

/// Adds a densely interconnected "celebrity core" to a graph: the `core_size` nodes with
/// the highest in-degree each follow `follows_per_member` uniformly random other core
/// members.  Returns the core members.
///
/// Twitter's celebrity/media accounts follow each other heavily; that dense core is what
/// makes (even personalized) HITS drift away from a user's own neighbourhood — the
/// "topic drift" behind HITS's poor showing in the paper's Table 1.  Degree-normalised
/// random-walk methods are immune because the walk resets instead of getting trapped.
pub fn add_celebrity_core(
    graph: &mut DynamicGraph,
    core_size: usize,
    follows_per_member: usize,
    seed: u64,
) -> Vec<NodeId> {
    assert!(core_size >= 2, "a core needs at least two members");
    let mut by_indegree: Vec<NodeId> = graph.nodes().collect();
    by_indegree.sort_by_key(|&u| std::cmp::Reverse(graph.in_degree(u)));
    let core: Vec<NodeId> = by_indegree.into_iter().take(core_size).collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    for &member in &core {
        let mut added = 0usize;
        let mut attempts = 0usize;
        while added < follows_per_member.min(core.len() - 1) && attempts < follows_per_member * 20 {
            attempts += 1;
            let target = core[rng.gen_range(0..core.len())];
            if target == member
                || graph.has_edge(Edge {
                    source: member,
                    target,
                })
            {
                continue;
            }
            graph.add_edge(Edge {
                source: member,
                target,
            });
            added += 1;
        }
    }
    core
}

/// Synthesizes the "second snapshot" friendships of `user` for the link-prediction
/// experiment (Table 1): `count` new follows, each created by triadic closure (a random
/// friend-of-friend) with probability `p_triadic` and by global preferential attachment
/// (an endpoint of a random edge, i.e. proportional to in-degree) otherwise.
///
/// This reproduces the two forces that drive real follower-graph growth — "friends of my
/// friends" and "already-popular accounts" — which is exactly the structure that lets
/// personalized random-walk recommenders outperform HITS in the paper's Table 1.
/// Targets must not already be followed, must not be the user, and must already have at
/// least `min_target_followers` followers ("reasonably followed" in the paper's
/// protocol).
pub fn synthesize_future_follows(
    graph: &DynamicGraph,
    user: NodeId,
    count: usize,
    p_triadic: f64,
    min_target_followers: usize,
    seed: u64,
) -> Vec<NodeId> {
    assert!(
        (0.0..=1.0).contains(&p_triadic),
        "p_triadic must be a probability"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let friends: Vec<NodeId> = graph.out_neighbors(user).to_vec();
    let already: HashSet<NodeId> = friends.iter().copied().collect();
    let edges = graph.collect_edges();
    let mut chosen: Vec<NodeId> = Vec::with_capacity(count);
    let mut chosen_set: HashSet<NodeId> = HashSet::new();
    let mut attempts = 0usize;
    let max_attempts = count * 200 + 200;

    while chosen.len() < count && attempts < max_attempts {
        attempts += 1;
        let candidate = if !friends.is_empty() && rng.gen_bool(p_triadic) {
            let friend = friends[rng.gen_range(0..friends.len())];
            let fof = graph.out_neighbors(friend);
            if fof.is_empty() {
                continue;
            }
            fof[rng.gen_range(0..fof.len())]
        } else if !edges.is_empty() {
            edges[rng.gen_range(0..edges.len())].target
        } else {
            continue;
        };
        if candidate == user
            || already.contains(&candidate)
            || chosen_set.contains(&candidate)
            || graph.in_degree(candidate) < min_target_followers
        {
            continue;
        }
        chosen_set.insert(candidate);
        chosen.push(candidate);
    }
    chosen
}

/// Selects up to `count` personalization seed users whose out-degree ("friend count")
/// lies in `[min_friends, max_friends]`, mirroring the paper's "100 random users with
/// 20–30 friends" protocol.
pub fn personalization_seeds(
    graph: &DynamicGraph,
    count: usize,
    min_friends: usize,
    max_friends: usize,
    seed: u64,
) -> Vec<NodeId> {
    let mut candidates: Vec<NodeId> = graph
        .nodes()
        .filter(|&u| {
            let d = graph.out_degree(u);
            d >= min_friends && d <= max_friends
        })
        .collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    candidates.shuffle(&mut rng);
    candidates.truncate(count);
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_graph_matches_arrivals() {
        let w = twitter_like(500, 5, 3);
        assert_eq!(w.nodes, 500);
        assert_eq!(w.graph.edge_count(), w.arrivals.len());
        assert_eq!(w.graph.node_count(), 500);
    }

    #[test]
    fn workload_is_deterministic_per_seed() {
        let a = twitter_like(200, 4, 7);
        let b = twitter_like(200, 4, 7);
        assert_eq!(a.arrivals, b.arrivals);
        let c = twitter_like(200, 4, 8);
        assert_ne!(a.arrivals, c.arrivals);
    }

    #[test]
    fn seeds_respect_the_friend_count_window() {
        let w = twitter_like(2_000, 25, 11);
        let seeds = personalization_seeds(&w.graph, 50, 20, 30, 13);
        assert!(!seeds.is_empty());
        assert!(seeds.len() <= 50);
        for &s in &seeds {
            let d = w.graph.out_degree(s);
            assert!((20..=30).contains(&d));
        }
        // Deterministic for a fixed selection seed.
        assert_eq!(seeds, personalization_seeds(&w.graph, 50, 20, 30, 13));
    }

    #[test]
    fn impossible_window_yields_no_seeds() {
        let w = twitter_like(300, 3, 5);
        assert!(personalization_seeds(&w.graph, 10, 500, 600, 1).is_empty());
    }

    #[test]
    fn power_law_workload_has_heavy_tailed_indegrees_and_requested_size() {
        let w = power_law_workload(2_000, 10, 0.76, 3);
        assert_eq!(w.graph.node_count(), 2_000);
        assert_eq!(w.graph.edge_count(), 20_000);
        let mut indeg = w.graph.in_degrees();
        indeg.sort_unstable_by(|a, b| b.cmp(a));
        assert!(
            indeg[0] > 5 * indeg[1_000].max(1),
            "in-degrees should be heavy tailed"
        );
    }

    #[test]
    fn synthesized_future_follows_respect_constraints() {
        let w = twitter_like(2_000, 25, 7);
        let user = NodeId(1_234);
        let targets = synthesize_future_follows(&w.graph, user, 10, 0.6, 5, 99);
        assert!(!targets.is_empty());
        assert!(targets.len() <= 10);
        let friends: std::collections::HashSet<NodeId> =
            w.graph.out_neighbors(user).iter().copied().collect();
        let mut seen = std::collections::HashSet::new();
        for &t in &targets {
            assert_ne!(t, user);
            assert!(!friends.contains(&t), "future follow must be new");
            assert!(w.graph.in_degree(t) >= 5);
            assert!(seen.insert(t), "targets must be distinct");
        }
        // Deterministic per seed.
        assert_eq!(
            targets,
            synthesize_future_follows(&w.graph, user, 10, 0.6, 5, 99)
        );
    }

    #[test]
    fn celebrity_core_connects_the_most_followed_nodes() {
        let mut w = twitter_like(2_000, 10, 17);
        let edges_before = w.graph.edge_count();
        let core = add_celebrity_core(&mut w.graph, 50, 10, 3);
        assert_eq!(core.len(), 50);
        assert!(w.graph.edge_count() > edges_before);
        assert!(w.graph.edge_count() <= edges_before + 50 * 10);
        let core_set: HashSet<NodeId> = core.iter().copied().collect();
        // Every added edge stays within the core: core members' new followees are core
        // members (their original followees were added by the generator and still count,
        // so just check the core's out-degree grew).
        for &member in &core {
            assert!(w.graph.out_degree(member) > 10);
            let within = w
                .graph
                .out_neighbors(member)
                .iter()
                .filter(|n| core_set.contains(n))
                .count();
            assert!(
                within > 0,
                "core member {member} should follow other core members"
            );
        }
    }

    #[test]
    fn triadic_closure_biases_targets_toward_the_two_hop_neighbourhood() {
        let w = twitter_like(3_000, 25, 11);
        let user = NodeId(2_000);
        let two_hop: std::collections::HashSet<NodeId> = w
            .graph
            .out_neighbors(user)
            .iter()
            .flat_map(|&f| w.graph.out_neighbors(f).iter().copied())
            .collect();
        let triadic = synthesize_future_follows(&w.graph, user, 15, 1.0, 1, 5);
        let in_two_hop = triadic.iter().filter(|t| two_hop.contains(t)).count();
        assert_eq!(
            in_two_hop,
            triadic.len(),
            "pure triadic closure stays within two hops"
        );
        let global = synthesize_future_follows(&w.graph, user, 15, 0.0, 1, 7);
        let global_in_two_hop = global.iter().filter(|t| two_hop.contains(t)).count();
        assert!(
            global_in_two_hop < global.len(),
            "popularity-driven follows should often leave the two-hop neighbourhood"
        );
    }
}
