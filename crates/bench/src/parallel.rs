//! Deterministic fan-out for read-only experiment loops.
//!
//! The experiments' query loops (one stitched walk per user, one fetch curve per
//! `(R, length, user)` cell) are embarrassingly parallel *and* — since PR 5 moved
//! every query onto `(query_seed, query_id)` split RNG streams — bit-deterministic
//! per item.  [`par_map_indexed`] fans such a loop out over scoped threads and
//! returns the results **in index order**, so downstream folds (f64 sums, curve
//! averaging) run in a fixed order and the experiment output is byte-identical at
//! every thread count — which `experiments::fig5`/`fig6` assert under the
//! `PPR_TEST_THREADS` matrix.

/// Maps `f` over `0..n` with up to `threads` scoped worker threads, collecting the
/// results in index order.  `f` must be pure per index (all our query paths are);
/// the thread count can then never change the output, only the wall time.
pub fn par_map_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(threads >= 1, "need at least one worker thread");
    if threads == 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let workers = threads.min(n);
    let chunk = n.div_ceil(workers);
    let mut out: Vec<Option<T>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let f = &f;
    std::thread::scope(|scope| {
        for (w, slots) in out.chunks_mut(chunk).enumerate() {
            scope.spawn(move || {
                for (off, slot) in slots.iter_mut().enumerate() {
                    *slot = Some(f(w * chunk + off));
                }
            });
        }
    });
    out.into_iter()
        .map(|v| v.expect("every index was computed"))
        .collect()
}

/// The experiment harness's reader-thread default: `PPR_TEST_THREADS` when set (the
/// CI matrix), otherwise 1.
pub fn default_threads() -> usize {
    std::env::var("PPR_TEST_THREADS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&t| t >= 1)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order_at_any_width() {
        let expect: Vec<usize> = (0..37).map(|i| i * i).collect();
        for threads in [1usize, 2, 4, 16] {
            assert_eq!(par_map_indexed(37, threads, |i| i * i), expect);
        }
        assert!(par_map_indexed(0, 4, |i| i).is_empty());
    }
}
