//! Experiment harness reproducing every table and figure of the paper.
//!
//! Each experiment lives in [`experiments`] as a pure function that takes an explicit
//! parameter struct and returns a structured result; the binaries in `src/bin/` are thin
//! wrappers that run an experiment at paper-like scale and print the same rows/series
//! the paper reports, and the Criterion benches in `benches/` time the same code paths
//! at a reduced scale.
//!
//! | Experiment | Paper artifact | Binary |
//! |---|---|---|
//! | [`experiments::fig1`] | Figure 1 + the §4.2 `m·E[π/d]` statistic | `fig1_arrival_cdf`, `stat_mx` |
//! | [`experiments::fig2`] | Figure 2 (in-degree / PageRank power laws) | `fig2_powerlaw` |
//! | [`experiments::personalized_powerlaw`] | Figures 3 and 4 | `fig3_personalized_powerlaw`, `fig4_exponents` |
//! | [`experiments::fig5`] | Figure 5 (11-point interpolated precision) | `fig5_precision` |
//! | [`experiments::fig6`] | Figure 6 (fetches vs. walk length) | `fig6_fetches` |
//! | [`experiments::table1`] | Table 1 (link prediction) | `table1_link_prediction` |
//! | [`experiments::cost`] | Theorem 4 / Prop. 5 / Theorem 6 / Example 1 cost claims | `incremental_cost`, `deletion_cost`, `salsa_cost`, `example1_adversarial` |
//! | [`experiments::concentration`] | Theorem 1 (estimator accuracy vs. R) | `concentration` |
//! | [`ppr_core::bounds`] | Remark 2 closed forms | `remark2_bounds` |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod parallel;
pub mod workloads;

pub use parallel::{default_threads, par_map_indexed};
pub use workloads::{
    add_celebrity_core, mixed_attachment, personalization_seeds, power_law_workload,
    synthesize_future_follows, twitter_like, Workload,
};
