//! Power-iteration PageRank, global and personalized.
//!
//! This is the baseline the paper's running-time comparisons are stated against
//! (Equation 1 of the paper): each iteration costs `O(m)` edge traversals and the error
//! contracts by a factor `1 − ε`, so reaching a fixed precision costs
//! `O(m / ln(1/(1−ε)))`.  The implementation:
//!
//! * handles dangling nodes by sending their `1 − ε` share of probability mass to the
//!   reset distribution (uniform for global PageRank, the seed for personalized
//!   PageRank), which is exactly the stationary distribution of the Monte Carlo walk
//!   that ends its segment when it reaches a node with no outgoing edge;
//! * reports the number of edge traversals performed, so the naive-recompute baseline
//!   can be charged its true cost.

use ppr_graph::{GraphView, NodeId};

/// Configuration for the power iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerIterationConfig {
    /// Reset (teleport) probability ε.  The paper's experiments use 0.2.
    pub epsilon: f64,
    /// Maximum number of iterations.
    pub max_iterations: usize,
    /// L1 convergence tolerance; iteration stops early once the change drops below it.
    pub tolerance: f64,
}

impl Default for PowerIterationConfig {
    fn default() -> Self {
        PowerIterationConfig {
            epsilon: 0.2,
            max_iterations: 100,
            tolerance: 1e-10,
        }
    }
}

impl PowerIterationConfig {
    /// Creates a config with the given reset probability and defaults otherwise.
    pub fn with_epsilon(epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon < 1.0,
            "epsilon must be in (0, 1), got {epsilon}"
        );
        PowerIterationConfig {
            epsilon,
            ..Default::default()
        }
    }
}

/// Result of a power-iteration run.
#[derive(Debug, Clone)]
pub struct PowerIterationResult {
    /// The score vector, indexed by node; sums to 1.
    pub scores: Vec<f64>,
    /// Number of iterations actually performed.
    pub iterations: usize,
    /// Whether the L1 tolerance was reached before `max_iterations`.
    pub converged: bool,
    /// Number of edge traversals performed (≈ `iterations * m`), the work unit used by
    /// the paper's cost comparisons.
    pub edge_traversals: u64,
}

/// Reset distribution: uniform over all nodes (global PageRank) or concentrated on a
/// seed node (personalized PageRank).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Reset {
    Uniform,
    Seed(NodeId),
}

/// Computes global PageRank with reset probability `config.epsilon`.
pub fn power_iteration<G: GraphView + ?Sized>(
    graph: &G,
    config: &PowerIterationConfig,
) -> PowerIterationResult {
    run(graph, config, Reset::Uniform)
}

/// Computes PageRank personalized on `seed`: every reset jumps back to `seed`.
pub fn personalized_power_iteration<G: GraphView + ?Sized>(
    graph: &G,
    seed: NodeId,
    config: &PowerIterationConfig,
) -> PowerIterationResult {
    assert!(
        seed.index() < graph.node_count(),
        "seed node {seed} outside the graph"
    );
    run(graph, config, Reset::Seed(seed))
}

fn run<G: GraphView + ?Sized>(
    graph: &G,
    config: &PowerIterationConfig,
    reset: Reset,
) -> PowerIterationResult {
    let n = graph.node_count();
    assert!(n > 0, "cannot run PageRank on an empty graph");
    assert!(
        config.epsilon > 0.0 && config.epsilon < 1.0,
        "epsilon must be in (0, 1), got {}",
        config.epsilon
    );
    let epsilon = config.epsilon;

    let mut current = match reset {
        Reset::Uniform => vec![1.0 / n as f64; n],
        Reset::Seed(seed) => {
            let mut v = vec![0.0; n];
            v[seed.index()] = 1.0;
            v
        }
    };
    let mut next = vec![0.0f64; n];
    let mut edge_traversals = 0u64;
    let mut iterations = 0usize;
    let mut converged = false;

    while iterations < config.max_iterations {
        iterations += 1;

        // Reset mass plus dangling-node redistribution.
        let dangling_mass: f64 = graph
            .nodes()
            .filter(|&u| graph.is_dangling(u))
            .map(|u| current[u.index()])
            .sum();
        let base = epsilon + (1.0 - epsilon) * dangling_mass;
        match reset {
            Reset::Uniform => next.iter_mut().for_each(|x| *x = base / n as f64),
            Reset::Seed(seed) => {
                next.iter_mut().for_each(|x| *x = 0.0);
                next[seed.index()] = base;
            }
        }

        // Push each node's mass along its outgoing edges.
        for u in graph.nodes() {
            let out = graph.out_neighbors(u);
            if out.is_empty() {
                continue;
            }
            let share = (1.0 - epsilon) * current[u.index()] / out.len() as f64;
            for &v in out {
                next[v.index()] += share;
            }
            edge_traversals += out.len() as u64;
        }

        let delta: f64 = current
            .iter()
            .zip(next.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        std::mem::swap(&mut current, &mut next);
        if delta < config.tolerance {
            converged = true;
            break;
        }
    }

    PowerIterationResult {
        scores: current,
        iterations,
        converged,
        edge_traversals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_graph::generators::{complete_graph, directed_cycle, star_inward};
    use ppr_graph::{DynamicGraph, Edge};

    fn assert_sums_to_one(scores: &[f64]) {
        let sum: f64 = scores.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "scores sum to {sum}");
    }

    #[test]
    fn cycle_gives_uniform_pagerank() {
        let g = directed_cycle(8);
        let result = power_iteration(&g, &PowerIterationConfig::default());
        assert!(result.converged);
        assert_sums_to_one(&result.scores);
        for &score in &result.scores {
            assert!((score - 0.125).abs() < 1e-9);
        }
    }

    #[test]
    fn complete_graph_gives_uniform_pagerank() {
        let g = complete_graph(5);
        let result = power_iteration(&g, &PowerIterationConfig::with_epsilon(0.15));
        assert_sums_to_one(&result.scores);
        for &score in &result.scores {
            assert!((score - 0.2).abs() < 1e-9);
        }
    }

    #[test]
    fn star_center_dominates() {
        let g = star_inward(10);
        let result = power_iteration(&g, &PowerIterationConfig::default());
        assert_sums_to_one(&result.scores);
        let centre = result.scores[0];
        for &leaf in &result.scores[1..] {
            assert!(
                centre > 3.0 * leaf,
                "centre {centre} should dominate leaf {leaf}"
            );
        }
    }

    #[test]
    fn analytic_two_node_chain() {
        // 0 -> 1, node 1 dangling.  With reset ε and dangling mass redistributed
        // uniformly the stationary equations are:
        //   π0 = (ε + (1-ε) π1) / 2
        //   π1 = (ε + (1-ε) π1) / 2 + (1-ε) π0
        let mut g = DynamicGraph::with_nodes(2);
        g.add_edge(Edge::new(0, 1));
        let epsilon = 0.2;
        let result = power_iteration(&g, &PowerIterationConfig::with_epsilon(epsilon));
        assert_sums_to_one(&result.scores);
        let p0 = result.scores[0];
        let p1 = result.scores[1];
        let base = epsilon + (1.0 - epsilon) * p1;
        assert!((p0 - base / 2.0).abs() < 1e-8);
        assert!((p1 - (base / 2.0 + (1.0 - epsilon) * p0)).abs() < 1e-8);
        assert!(p1 > p0);
    }

    #[test]
    fn personalized_concentrates_on_seed_neighbourhood() {
        // Path 0 -> 1 -> 2 -> 3: personalizing on node 0 must rank nodes by distance.
        let g = ppr_graph::generators::directed_path(4);
        let result = personalized_power_iteration(&g, NodeId(0), &PowerIterationConfig::default());
        assert_sums_to_one(&result.scores);
        assert!(result.scores[0] > result.scores[1]);
        assert!(result.scores[1] > result.scores[2]);
        assert!(result.scores[2] > result.scores[3]);
        assert!(result.scores[3] > 0.0);
    }

    #[test]
    fn personalized_seed_mass_is_at_least_epsilon() {
        let g = directed_cycle(6);
        let epsilon = 0.3;
        let result = personalized_power_iteration(
            &g,
            NodeId(2),
            &PowerIterationConfig::with_epsilon(epsilon),
        );
        assert!(result.scores[2] >= epsilon - 1e-9);
    }

    #[test]
    fn work_accounting_counts_edge_traversals() {
        let g = directed_cycle(10);
        let config = PowerIterationConfig {
            epsilon: 0.2,
            max_iterations: 7,
            tolerance: 0.0, // never converge early
        };
        let result = power_iteration(&g, &config);
        assert_eq!(result.iterations, 7);
        assert!(!result.converged);
        assert_eq!(result.edge_traversals, 7 * 10);
    }

    #[test]
    fn higher_epsilon_converges_faster() {
        let g = ppr_graph::generators::preferential_attachment(300, 4, 3);
        let slow = power_iteration(&g, &PowerIterationConfig::with_epsilon(0.05));
        let fast = power_iteration(&g, &PowerIterationConfig::with_epsilon(0.5));
        assert!(fast.iterations < slow.iterations);
    }

    #[test]
    #[should_panic(expected = "epsilon must be in (0, 1)")]
    fn rejects_invalid_epsilon() {
        let _ = PowerIterationConfig::with_epsilon(1.5);
    }

    #[test]
    #[should_panic(expected = "seed node")]
    fn rejects_out_of_range_seed() {
        let g = directed_cycle(3);
        let _ = personalized_power_iteration(&g, NodeId(9), &PowerIterationConfig::default());
    }

    #[test]
    #[should_panic(expected = "empty graph")]
    fn rejects_empty_graph() {
        let g = DynamicGraph::new();
        let _ = power_iteration(&g, &PowerIterationConfig::default());
    }
}
