//! Exact SALSA by iterating its degree-normalised hub/authority equations.
//!
//! SALSA (Lempel & Moran) is the stationary distribution of a forward–backward random
//! walk.  The paper uses the equation form (Section 1.1):
//!
//! ```text
//! h_v = Σ_{x : (v,x) ∈ E} a_x / indeg(x)
//! a_x = Σ_{v : (v,x) ∈ E} h_v / outdeg(v)
//! ```
//!
//! and the personalized variant that allows ε-resets to the seed at forward steps:
//!
//! ```text
//! h_v = ε δ_{u,v} + (1 − ε) Σ_{x : (v,x) ∈ E} a_x / indeg(x)
//! a_x = Σ_{v : (v,x) ∈ E} h_v / outdeg(v)
//! ```
//!
//! This module iterates those equations to a fixed point; it is the exact counterpart of
//! the Monte Carlo SALSA engine in `ppr-core` and the reference implementation for the
//! Table 1 link-prediction comparison.

use ppr_graph::{GraphView, NodeId};

/// Hub and authority score vectors produced by SALSA.
#[derive(Debug, Clone)]
pub struct SalsaScores {
    /// Hub scores (similarity measures, in the paper's recommender interpretation).
    pub hubs: Vec<f64>,
    /// Authority scores (relevance measures; what the recommender ranks by).
    pub authorities: Vec<f64>,
    /// Number of iterations performed.
    pub iterations: usize,
}

/// Computes global SALSA hub/authority scores with `iterations` rounds of the update
/// equations.  Both vectors are normalised to sum to 1 after every round (global SALSA
/// is only defined up to scaling within each connected component).
pub fn salsa_exact<G: GraphView + ?Sized>(graph: &G, iterations: usize) -> SalsaScores {
    run(graph, None, 0.0, iterations)
}

/// Computes SALSA personalized on `seed` with reset probability `epsilon` at forward
/// steps, as defined in Section 1.1 of the paper.
pub fn personalized_salsa_exact<G: GraphView + ?Sized>(
    graph: &G,
    seed: NodeId,
    epsilon: f64,
    iterations: usize,
) -> SalsaScores {
    assert!(
        seed.index() < graph.node_count(),
        "seed node {seed} outside the graph"
    );
    assert!(
        epsilon > 0.0 && epsilon < 1.0,
        "epsilon must be in (0, 1), got {epsilon}"
    );
    run(graph, Some(seed), epsilon, iterations)
}

fn run<G: GraphView + ?Sized>(
    graph: &G,
    seed: Option<NodeId>,
    epsilon: f64,
    iterations: usize,
) -> SalsaScores {
    let n = graph.node_count();
    assert!(n > 0, "cannot run SALSA on an empty graph");

    let mut hubs = match seed {
        None => vec![1.0 / n as f64; n],
        Some(s) => {
            let mut v = vec![0.0; n];
            v[s.index()] = 1.0;
            v
        }
    };
    let mut authorities = vec![0.0f64; n];

    for _ in 0..iterations {
        // Authority update: a_x = Σ_{v -> x} h_v / outdeg(v).
        authorities.iter_mut().for_each(|a| *a = 0.0);
        for v in graph.nodes() {
            let out = graph.out_neighbors(v);
            if out.is_empty() {
                continue;
            }
            let share = hubs[v.index()] / out.len() as f64;
            for &x in out {
                authorities[x.index()] += share;
            }
        }
        normalize(&mut authorities);

        // Hub update: h_v = [ε δ_{u,v}] + (1 − ε) Σ_{v -> x} a_x / indeg(x).
        let damping = if seed.is_some() { 1.0 - epsilon } else { 1.0 };
        hubs.iter_mut().for_each(|h| *h = 0.0);
        if let Some(s) = seed {
            hubs[s.index()] = epsilon;
        }
        for v in graph.nodes() {
            let mut acc = 0.0;
            for &x in graph.out_neighbors(v) {
                let indeg = graph.in_degree(x);
                debug_assert!(indeg > 0, "edge target must have in-degree >= 1");
                acc += authorities[x.index()] / indeg as f64;
            }
            hubs[v.index()] += damping * acc;
        }
        normalize(&mut hubs);
    }

    SalsaScores {
        hubs,
        authorities,
        iterations,
    }
}

fn normalize(v: &mut [f64]) {
    let sum: f64 = v.iter().sum();
    if sum > 0.0 {
        v.iter_mut().for_each(|x| *x /= sum);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_graph::generators::{directed_cycle, star_inward};
    use ppr_graph::{DynamicGraph, Edge};

    fn assert_normalised(v: &[f64]) {
        let sum: f64 = v.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "vector sums to {sum}");
    }

    #[test]
    fn global_salsa_authority_tracks_indegree_on_cycle() {
        // On a directed cycle everything is symmetric: uniform hubs and authorities.
        let g = directed_cycle(6);
        let scores = salsa_exact(&g, 20);
        assert_normalised(&scores.hubs);
        assert_normalised(&scores.authorities);
        for &a in &scores.authorities {
            assert!((a - 1.0 / 6.0).abs() < 1e-9);
        }
    }

    #[test]
    fn global_salsa_authority_proportional_to_indegree() {
        // The paper notes that as ε -> 0 the global SALSA authority score of a node is
        // proportional to its in-degree.  Star: centre has in-degree n-1, leaves 0.
        let g = star_inward(5);
        let scores = salsa_exact(&g, 30);
        assert!(scores.authorities[0] > 0.99);
        for &a in &scores.authorities[1..] {
            assert!(a < 1e-9);
        }
    }

    #[test]
    fn indegree_proportionality_on_mixed_graph() {
        // 0 -> 2, 1 -> 2, 1 -> 3: in-degrees are 0,0,2,1, so authorities should be
        // proportional to 2:1 for nodes 2 and 3.
        let mut g = DynamicGraph::with_nodes(4);
        g.add_edge(Edge::new(0, 2));
        g.add_edge(Edge::new(1, 2));
        g.add_edge(Edge::new(1, 3));
        let scores = salsa_exact(&g, 50);
        let ratio = scores.authorities[2] / scores.authorities[3];
        assert!(
            (ratio - 2.0).abs() < 0.05,
            "expected authority ratio ≈ 2, got {ratio}"
        );
    }

    #[test]
    fn personalized_salsa_prefers_seed_neighbourhood() {
        // Two communities joined weakly; personalizing on node 0 must give community A
        // higher authority mass than community B.
        let mut g = DynamicGraph::with_nodes(6);
        // Community A: 0,1,2 densely connected.
        for &(s, t) in &[(0, 1), (1, 0), (0, 2), (2, 0), (1, 2), (2, 1)] {
            g.add_edge(Edge::new(s, t));
        }
        // Community B: 3,4,5 densely connected.
        for &(s, t) in &[(3, 4), (4, 3), (3, 5), (5, 3), (4, 5), (5, 4)] {
            g.add_edge(Edge::new(s, t));
        }
        // Weak link.
        g.add_edge(Edge::new(2, 3));
        let scores = personalized_salsa_exact(&g, NodeId(0), 0.2, 30);
        assert_normalised(&scores.authorities);
        let mass_a: f64 = scores.authorities[..3].iter().sum();
        let mass_b: f64 = scores.authorities[3..].iter().sum();
        assert!(
            mass_a > mass_b,
            "seed community should dominate: A={mass_a:.3} B={mass_b:.3}"
        );
    }

    #[test]
    fn personalized_hub_score_keeps_seed_reset_mass() {
        let g = directed_cycle(5);
        let scores = personalized_salsa_exact(&g, NodeId(1), 0.25, 20);
        let max = scores
            .hubs
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(
            scores.hubs[1], max,
            "seed should have the largest hub score"
        );
    }

    #[test]
    fn dangling_and_isolated_nodes_are_tolerated() {
        let mut g = DynamicGraph::with_nodes(4);
        g.add_edge(Edge::new(0, 1));
        // Nodes 2 and 3 are isolated.
        let scores = salsa_exact(&g, 10);
        assert_normalised(&scores.authorities);
        assert_eq!(scores.authorities[1], 1.0);
        assert_eq!(scores.authorities[2], 0.0);
    }

    #[test]
    #[should_panic(expected = "epsilon must be in (0, 1)")]
    fn personalized_rejects_bad_epsilon() {
        let g = directed_cycle(3);
        let _ = personalized_salsa_exact(&g, NodeId(0), 0.0, 5);
    }

    #[test]
    #[should_panic(expected = "seed node")]
    fn personalized_rejects_bad_seed() {
        let g = directed_cycle(3);
        let _ = personalized_salsa_exact(&g, NodeId(7), 0.2, 5);
    }
}
