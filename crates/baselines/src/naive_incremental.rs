//! The "just recompute on every arrival" baselines.
//!
//! Section 1.3 of the paper charges the naive strategies their full cost:
//!
//! * recomputing PageRank by power iteration after each of the `m` arrivals costs
//!   `Σ_{x=1..m} Ω(x / ln(1/(1−ε))) = Ω(m² / ln(1/(1−ε)))` edge traversals;
//! * recomputing the Monte Carlo estimates from scratch after each arrival costs
//!   `Ω(m · nR/ε)` walk steps.
//!
//! [`NaiveRecompute`] actually performs the recomputation (on graphs small enough to
//! afford it) and reports measured work, while [`power_iteration_recompute_work`] and
//! [`monte_carlo_recompute_work`] evaluate the closed-form totals so the experiment
//! harness can extrapolate to sizes where running the naive strategy is hopeless —
//! which is precisely the paper's point.

use crate::power_iteration::{power_iteration, PowerIterationConfig};
use ppr_graph::{DynamicGraph, Edge};

/// Closed-form total edge-traversal cost of recomputing PageRank by power iteration
/// after every one of `m` arrivals, assuming the solver needs `iterations_per_run`
/// sweeps per run (the paper's bound uses `1 / ln(1/(1−ε))` sweeps per digit of
/// precision; pass the iteration count your configuration actually uses).
pub fn power_iteration_recompute_work(m: usize, iterations_per_run: usize) -> f64 {
    // Σ_{x=1..m} x * iterations = iterations * m (m + 1) / 2.
    iterations_per_run as f64 * (m as f64) * (m as f64 + 1.0) / 2.0
}

/// Closed-form total walk-step cost of redoing the Monte Carlo estimation from scratch
/// after every one of `m` arrivals over an `n`-node graph with `r` walks per node and
/// reset probability `epsilon` (each run costs `n·r/ε` expected steps).
pub fn monte_carlo_recompute_work(n: usize, m: usize, r: usize, epsilon: f64) -> f64 {
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
    m as f64 * (n as f64) * (r as f64) / epsilon
}

/// Measured result of actually running the naive power-iteration recomputation.
#[derive(Debug, Clone)]
pub struct NaiveRecompute {
    /// Total edge traversals across all recomputations.
    pub total_edge_traversals: u64,
    /// Number of recomputations performed.
    pub recomputations: usize,
    /// PageRank scores after the final arrival.
    pub final_scores: Vec<f64>,
}

impl NaiveRecompute {
    /// Replays `arrivals` into an initially empty graph over `node_count` nodes,
    /// recomputing global PageRank by power iteration after every `recompute_every`-th
    /// arrival (use 1 for the paper's fully naive strategy; larger strides let tests and
    /// benches measure the same curve at an affordable cost).
    pub fn run(
        node_count: usize,
        arrivals: &[Edge],
        config: &PowerIterationConfig,
        recompute_every: usize,
    ) -> Self {
        assert!(recompute_every >= 1, "recompute_every must be at least 1");
        let mut graph = DynamicGraph::with_nodes(node_count);
        let mut total_edge_traversals = 0u64;
        let mut recomputations = 0usize;
        let mut final_scores = vec![1.0 / node_count.max(1) as f64; node_count];

        for (t, &edge) in arrivals.iter().enumerate() {
            graph.add_edge_growing(edge);
            if (t + 1) % recompute_every == 0 || t + 1 == arrivals.len() {
                let result = power_iteration(&graph, config);
                total_edge_traversals += result.edge_traversals;
                recomputations += 1;
                final_scores = result.scores;
            }
        }

        NaiveRecompute {
            total_edge_traversals,
            recomputations,
            final_scores,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_graph::generators::{preferential_attachment_edges, PreferentialAttachmentConfig};

    #[test]
    fn closed_form_power_iteration_cost_is_quadratic() {
        let work_small = power_iteration_recompute_work(1_000, 10);
        let work_big = power_iteration_recompute_work(2_000, 10);
        let ratio = work_big / work_small;
        assert!(
            (ratio - 4.0).abs() < 0.01,
            "doubling m should quadruple cost, got {ratio}"
        );
    }

    #[test]
    fn closed_form_monte_carlo_cost_is_linear_in_m_and_n() {
        let base = monte_carlo_recompute_work(1_000, 500, 5, 0.2);
        assert_eq!(base, 500.0 * 1_000.0 * 5.0 / 0.2);
        assert_eq!(monte_carlo_recompute_work(2_000, 500, 5, 0.2), 2.0 * base);
        assert_eq!(monte_carlo_recompute_work(1_000, 1_000, 5, 0.2), 2.0 * base);
    }

    #[test]
    #[should_panic(expected = "epsilon must be in (0, 1)")]
    fn monte_carlo_cost_rejects_bad_epsilon() {
        let _ = monte_carlo_recompute_work(10, 10, 1, 0.0);
    }

    #[test]
    fn naive_recompute_measures_growing_cost() {
        let config = PreferentialAttachmentConfig::new(200, 3, 5);
        let arrivals = preferential_attachment_edges(&config);
        let pi_config = PowerIterationConfig {
            epsilon: 0.2,
            max_iterations: 20,
            tolerance: 1e-8,
        };
        let run = NaiveRecompute::run(200, &arrivals, &pi_config, 50);
        assert!(run.recomputations >= arrivals.len() / 50);
        assert!(run.total_edge_traversals > arrivals.len() as u64);
        let sum: f64 = run.final_scores.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
    }

    #[test]
    fn stride_one_recomputes_after_every_edge() {
        let arrivals = vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 0)];
        let run = NaiveRecompute::run(3, &arrivals, &PowerIterationConfig::default(), 1);
        assert_eq!(run.recomputations, 3);
    }

    #[test]
    #[should_panic(expected = "recompute_every must be at least 1")]
    fn rejects_zero_stride() {
        let _ = NaiveRecompute::run(2, &[Edge::new(0, 1)], &PowerIterationConfig::default(), 0);
    }
}
