//! Baseline algorithms the paper compares against.
//!
//! * [`mod@power_iteration`] — the classic linear-algebraic PageRank computation (global
//!   and personalized), including the per-iteration work accounting used by the cost
//!   comparisons of Section 1.3.
//! * [`mod@salsa_exact`] — SALSA computed by iterating its degree-normalised equations
//!   (global and personalized), the exact counterpart of the Monte Carlo SALSA engine.
//! * [`mod@hits`] — HITS and the ε-personalized HITS variant of Appendix A.
//! * [`cosine`] — the COSINE neighbour-similarity recommender of Appendix A.
//! * [`naive_incremental`] — the "just recompute on every arrival" strategies whose total
//!   cost the paper's incremental algorithm improves upon (Ω(m²/ln(1/(1−ε))) for power
//!   iteration, Ω(mn/ε) for Monte Carlo from scratch).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cosine;
pub mod hits;
pub mod naive_incremental;
pub mod power_iteration;
pub mod salsa_exact;

pub use cosine::cosine_recommender;
pub use hits::{hits, personalized_hits, HitsScores};
pub use naive_incremental::{
    monte_carlo_recompute_work, power_iteration_recompute_work, NaiveRecompute,
};
pub use power_iteration::{
    personalized_power_iteration, power_iteration, PowerIterationConfig, PowerIterationResult,
};
pub use salsa_exact::{personalized_salsa_exact, salsa_exact, SalsaScores};
