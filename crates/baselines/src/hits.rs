//! HITS and the ε-personalized HITS variant of Appendix A.
//!
//! Classic HITS (Kleinberg) assigns every node a hub score and an authority score via
//! the mutually recursive updates `a = Aᵀ h`, `h = A a`, normalising after every round.
//! The paper's Appendix A also evaluates a personalized variant in which the hub vector
//! receives an ε reset toward the seed user:
//!
//! ```text
//! h_v = ε δ_{u,v} + (1 − ε) Σ_{x : (v,x) ∈ E} a_x
//! a_x = Σ_{v : (v,x) ∈ E} h_v
//! ```
//!
//! Table 1 of the paper shows this baseline performing far worse than the random-walk
//! recommenders, which is the qualitative shape our reproduction checks.

use ppr_graph::{GraphView, NodeId};

/// Hub and authority vectors produced by HITS.
#[derive(Debug, Clone)]
pub struct HitsScores {
    /// Hub scores, normalised to sum to 1.
    pub hubs: Vec<f64>,
    /// Authority scores, normalised to sum to 1.
    pub authorities: Vec<f64>,
    /// Number of iterations performed.
    pub iterations: usize,
}

/// Runs `iterations` rounds of classic (global) HITS.
pub fn hits<G: GraphView + ?Sized>(graph: &G, iterations: usize) -> HitsScores {
    run(graph, None, 0.0, iterations)
}

/// Runs `iterations` rounds of the personalized HITS variant of Appendix A, with reset
/// probability `epsilon` toward `seed`.
pub fn personalized_hits<G: GraphView + ?Sized>(
    graph: &G,
    seed: NodeId,
    epsilon: f64,
    iterations: usize,
) -> HitsScores {
    assert!(
        seed.index() < graph.node_count(),
        "seed node {seed} outside the graph"
    );
    assert!(
        epsilon > 0.0 && epsilon < 1.0,
        "epsilon must be in (0, 1), got {epsilon}"
    );
    run(graph, Some(seed), epsilon, iterations)
}

fn run<G: GraphView + ?Sized>(
    graph: &G,
    seed: Option<NodeId>,
    epsilon: f64,
    iterations: usize,
) -> HitsScores {
    let n = graph.node_count();
    assert!(n > 0, "cannot run HITS on an empty graph");

    let mut hubs = match seed {
        None => vec![1.0 / n as f64; n],
        Some(s) => {
            let mut v = vec![0.0; n];
            v[s.index()] = 1.0;
            v
        }
    };
    let mut authorities = vec![0.0f64; n];

    for _ in 0..iterations {
        // a_x = Σ_{v -> x} h_v
        authorities.iter_mut().for_each(|a| *a = 0.0);
        for v in graph.nodes() {
            let h = hubs[v.index()];
            for &x in graph.out_neighbors(v) {
                authorities[x.index()] += h;
            }
        }
        normalize(&mut authorities);

        // h_v = [ε δ_{u,v}] + (1 − ε) Σ_{v -> x} a_x
        let damping = if seed.is_some() { 1.0 - epsilon } else { 1.0 };
        hubs.iter_mut().for_each(|h| *h = 0.0);
        if let Some(s) = seed {
            hubs[s.index()] = epsilon;
        }
        for v in graph.nodes() {
            let mut acc = 0.0;
            for &x in graph.out_neighbors(v) {
                acc += authorities[x.index()];
            }
            hubs[v.index()] += damping * acc;
        }
        normalize(&mut hubs);
    }

    HitsScores {
        hubs,
        authorities,
        iterations,
    }
}

fn normalize(v: &mut [f64]) {
    let sum: f64 = v.iter().sum();
    if sum > 0.0 {
        v.iter_mut().for_each(|x| *x /= sum);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_graph::generators::{directed_cycle, star_inward, star_outward};
    use ppr_graph::{DynamicGraph, Edge};

    fn assert_normalised(v: &[f64]) {
        let sum: f64 = v.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "vector sums to {sum}");
    }

    #[test]
    fn cycle_is_uniform() {
        let g = directed_cycle(5);
        let scores = hits(&g, 25);
        assert_normalised(&scores.hubs);
        assert_normalised(&scores.authorities);
        for &h in &scores.hubs {
            assert!((h - 0.2).abs() < 1e-9);
        }
    }

    #[test]
    fn inward_star_concentrates_authority_on_centre() {
        let g = star_inward(6);
        let scores = hits(&g, 20);
        assert!(scores.authorities[0] > 0.99);
        assert!(
            scores.hubs[0] < 1e-9,
            "the centre follows nobody, so it is no hub"
        );
        for &h in &scores.hubs[1..] {
            assert!((h - 0.2).abs() < 1e-9);
        }
    }

    #[test]
    fn outward_star_concentrates_hubness_on_centre() {
        let g = star_outward(6);
        let scores = hits(&g, 20);
        assert!(scores.hubs[0] > 0.99);
        for &a in &scores.authorities[1..] {
            assert!((a - 0.2).abs() < 1e-9);
        }
    }

    #[test]
    fn hits_prefers_dense_subgraph_over_local_structure() {
        // HITS is known to drift toward the globally densest subgraph ("topic drift"),
        // which is why it performs badly as a personalized recommender (Table 1).
        // Community B is denser than community A; even global HITS hub/authority mass
        // concentrates on B.
        let mut g = DynamicGraph::with_nodes(8);
        // Community A: a 2-cycle.
        g.add_edge(Edge::new(0, 1));
        g.add_edge(Edge::new(1, 0));
        // Community B: complete directed graph on 4 nodes {4,5,6,7}.
        for s in 4..8u32 {
            for t in 4..8u32 {
                if s != t {
                    g.add_edge(Edge::new(s, t));
                }
            }
        }
        let scores = hits(&g, 30);
        let mass_a: f64 = scores.authorities[..4].iter().sum();
        let mass_b: f64 = scores.authorities[4..].iter().sum();
        assert!(mass_b > mass_a, "HITS should drift to the dense community");
    }

    #[test]
    fn personalized_hits_keeps_seed_hub_mass() {
        let g = directed_cycle(6);
        let scores = personalized_hits(&g, NodeId(3), 0.2, 15);
        assert_normalised(&scores.hubs);
        let max = scores
            .hubs
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(scores.hubs[3], max);
    }

    #[test]
    fn empty_adjacency_rows_are_tolerated() {
        let mut g = DynamicGraph::with_nodes(3);
        g.add_edge(Edge::new(0, 1));
        let scores = hits(&g, 5);
        assert_eq!(scores.authorities[2], 0.0);
        assert_normalised(&scores.authorities);
    }

    #[test]
    #[should_panic(expected = "seed node")]
    fn rejects_bad_seed() {
        let g = directed_cycle(4);
        let _ = personalized_hits(&g, NodeId(10), 0.2, 5);
    }

    #[test]
    #[should_panic(expected = "epsilon must be in (0, 1)")]
    fn rejects_bad_epsilon() {
        let g = directed_cycle(4);
        let _ = personalized_hits(&g, NodeId(0), 1.0, 5);
    }
}
