//! The COSINE neighbour-similarity recommender of Appendix A.
//!
//! For a seed user `u`, every node `v` gets a hub score equal to the cosine similarity
//! between the out-neighbour sets of `u` and `v` (viewed as 0/1 vectors); authority
//! scores are then accumulated HITS-style:
//!
//! ```text
//! h_v = |N⁺(u) ∩ N⁺(v)| / sqrt(|N⁺(u)| · |N⁺(v)|)
//! a_x = Σ_{v : (v,x) ∈ E} h_v
//! ```
//!
//! The recommender ranks candidate friends by authority score.  In Table 1 of the paper
//! it sits between HITS (much worse) and the random-walk methods (better).

use ppr_graph::{GraphView, NodeId};
use std::collections::HashSet;

/// Scores produced by the COSINE recommender for one seed user.
#[derive(Debug, Clone)]
pub struct CosineScores {
    /// Hub scores: cosine similarity of each node's friend set with the seed's.
    pub hubs: Vec<f64>,
    /// Authority scores: the relevance ranking used for recommendations.
    pub authorities: Vec<f64>,
}

/// Computes COSINE hub/authority scores personalized on `seed`.
pub fn cosine_recommender<G: GraphView + ?Sized>(graph: &G, seed: NodeId) -> CosineScores {
    assert!(
        seed.index() < graph.node_count(),
        "seed node {seed} outside the graph"
    );
    let n = graph.node_count();
    let seed_friends: HashSet<NodeId> = graph.out_neighbors(seed).iter().copied().collect();
    let seed_degree = seed_friends.len();

    let mut hubs = vec![0.0f64; n];
    if seed_degree > 0 {
        for v in graph.nodes() {
            let out = graph.out_neighbors(v);
            if out.is_empty() {
                continue;
            }
            let common = out.iter().filter(|x| seed_friends.contains(x)).count();
            if common > 0 {
                hubs[v.index()] = common as f64 / ((seed_degree * out.len()) as f64).sqrt();
            }
        }
    }
    // The seed is perfectly similar to itself; keep that explicit even when the general
    // formula already yields 1.0, so the behaviour is defined for a friendless seed too.
    hubs[seed.index()] = 1.0;

    let mut authorities = vec![0.0f64; n];
    for v in graph.nodes() {
        let h = hubs[v.index()];
        if h == 0.0 {
            continue;
        }
        for &x in graph.out_neighbors(v) {
            authorities[x.index()] += h;
        }
    }

    CosineScores { hubs, authorities }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_graph::{DynamicGraph, Edge};

    /// Seed 0 and node 1 share friends {2, 3}; node 4 shares nothing.
    fn sample_graph() -> DynamicGraph {
        let mut g = DynamicGraph::with_nodes(7);
        g.add_edge(Edge::new(0, 2));
        g.add_edge(Edge::new(0, 3));
        g.add_edge(Edge::new(1, 2));
        g.add_edge(Edge::new(1, 3));
        g.add_edge(Edge::new(1, 5));
        g.add_edge(Edge::new(4, 6));
        g
    }

    #[test]
    fn hub_scores_match_cosine_formula() {
        let g = sample_graph();
        let scores = cosine_recommender(&g, NodeId(0));
        // |N(0) ∩ N(1)| = 2, |N(0)| = 2, |N(1)| = 3  =>  2 / sqrt(6).
        let expected = 2.0 / (6.0f64).sqrt();
        assert!((scores.hubs[1] - expected).abs() < 1e-12);
        assert_eq!(scores.hubs[4], 0.0);
        assert_eq!(scores.hubs[0], 1.0);
    }

    #[test]
    fn authorities_rank_friends_of_similar_users_highest() {
        let g = sample_graph();
        let scores = cosine_recommender(&g, NodeId(0));
        // Node 5 is followed only by the similar user 1, node 6 only by the dissimilar
        // user 4, so 5 must outrank 6.
        assert!(scores.authorities[5] > scores.authorities[6]);
        // Nodes 2 and 3 are followed by both the seed and user 1: highest authority.
        assert!(scores.authorities[2] > scores.authorities[5]);
        assert_eq!(scores.authorities[2], scores.authorities[3]);
    }

    #[test]
    fn friendless_seed_gets_no_recommendations_beyond_itself() {
        let mut g = DynamicGraph::with_nodes(3);
        g.add_edge(Edge::new(1, 2));
        let scores = cosine_recommender(&g, NodeId(0));
        assert_eq!(scores.hubs[0], 1.0);
        assert_eq!(scores.hubs[1], 0.0);
        assert!(scores.authorities.iter().all(|&a| a == 0.0));
    }

    #[test]
    fn identical_friend_sets_have_similarity_one() {
        let mut g = DynamicGraph::with_nodes(4);
        g.add_edge(Edge::new(0, 2));
        g.add_edge(Edge::new(0, 3));
        g.add_edge(Edge::new(1, 2));
        g.add_edge(Edge::new(1, 3));
        let scores = cosine_recommender(&g, NodeId(0));
        assert!((scores.hubs[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "seed node")]
    fn rejects_bad_seed() {
        let g = sample_graph();
        let _ = cosine_recommender(&g, NodeId(99));
    }
}
