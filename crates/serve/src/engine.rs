//! The single-writer/many-readers [`QueryEngine`] and its pipelined commit path.
//!
//! The writer side owns the real incremental engine; a `Committer` (inline by
//! default, or on its own thread in pipelined mode) owns one mutable copy-on-write
//! *mirror* of the engine's state (a [`FrozenWalks`] + [`FrozenGraph`] pair).  Each
//! commit
//!
//! 1. applies the batch to the engine exactly as before (same pipeline, same RNG
//!    streams, same WAL hooks when the engine is durable) and **records** its exact
//!    effect on the mirror as a list of [`MirrorOp`]s — the reconciled rewrite
//!    plan(s) plus the segments of any nodes the batch created;
//! 2. hands the recording plus the edge batch itself to the committer as one
//!    `CommitTask`, which replays both into the mirror (walk ops through the
//!    copy-on-write spine, edges directly onto the mirror adjacency — cost
//!    proportional to what the batch touched, never to the store size or to node
//!    degrees), group-syncs the WAL up to the batch's append watermark, and
//!    publishes the advanced mirror as the next [`Generation`];
//! 3. reclaims the superseded generation's buffers as the next mirror when no
//!    reader still pins them ("generation ping-pong"), catching the reclaimed
//!    buffers up by re-syncing exactly the chunks this batch touched.
//!
//! In **pipelined mode** ([`QueryEngine::with_pipeline`]) the committer runs on its
//! own thread behind a bounded in-flight window: the writer starts applying batch
//! `N + 1` to the engine while the mirror advance + generation publish for batch `N`
//! completes.  Tasks are applied strictly in epoch order by a single committer, so
//! the single-writer/epoch-monotonic contract readers rely on is untouched — readers
//! just pin generations a bounded number of epochs behind the live engine until
//! [`QueryEngine::flush_commits`] drains the window.  Durable engines additionally
//! switch their WAL into group-commit mode: appends stop fsyncing individually and
//! the committer issues one coalesced `fdatasync` per drained task, *before*
//! publishing the generation — readers never see a batch the WAL does not cover.
//!
//! Readers pin the current generation through a [`ServeHandle`] (one brief mutex
//! lock to clone an `Arc`, then zero synchronisation for the whole query).  A reader
//! holding generation `g` keeps exactly the chunks `g` references alive; the
//! committer's next `Arc::make_mut` copies only chunks still shared — snapshot
//! isolation by structural sharing, the redb/Manifold generation discipline applied
//! to the PageRank Store.  With the two-level chunk spine, publishing a generation
//! is O(1) clones plus O(touched + √chunks) first-mutation copies; [`CommitStats`]
//! counts exactly that work.

use crate::batch::{QueryBatch, ScratchPool};
use crate::generation::{EngineKind, Generation, PinnedView, Query, Served};
use crate::telem::{CommitSpans, QuerySpans};
use crate::FetchCache;
use ppr_core::{GroupCommit, IncrementalPageRank, IncrementalSalsa, UpdateStats};
use ppr_graph::{DynamicGraph, Edge, GraphView, NodeId};
use ppr_store::{
    FrozenGraph, FrozenWalks, SegmentRewrites, TouchedChunks, WalkIndexMut, WalkIndexView,
};
use ppr_telemetry::{SnapshotBuilder, Telemetry, TelemetrySnapshot};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// One write operation against the serving engine.
#[derive(Debug, Clone, Copy)]
pub enum WriteOp<'a> {
    /// An edge-arrival batch (`apply_arrivals`).
    Arrivals(&'a [Edge]),
    /// An edge-deletion batch (`apply_deletions` / per-edge `remove_edge`).
    Deletions(&'a [Edge]),
}

/// One recorded effect of a write op on the frozen walk mirror, in application
/// order.  The writer records these while the batch applies; the committer replays
/// them into the mirror without ever touching the live store — which is what lets
/// the mirror advance on another thread while the writer starts the next batch.
#[derive(Debug, Clone)]
pub enum MirrorOp {
    /// Node growth: grow the mirror to `to` nodes and install the (non-empty)
    /// segments the engine generated for them.
    Growth {
        /// Node count after the growth.
        to: usize,
        /// The new nodes' non-empty segment paths, in `segment_ids_of` order,
        /// packed into a pooled plan buffer (same recycling as `Rewrites`).
        segments: SegmentRewrites,
    },
    /// A reconciled rewrite plan, exactly as the engine applied it to the live
    /// store.
    Rewrites(SegmentRewrites),
}

/// The recording sink of [`ServeEngine::apply_and_record`].  Pools the plan
/// buffers of already-committed tasks so that recording a steady stream of
/// small batches stops allocating: a recycled [`SegmentRewrites`] is refilled
/// with a buffer-reusing `clone_from` instead of a fresh clone.
#[derive(Debug, Default)]
pub struct OpsRecorder {
    ops: Vec<MirrorOp>,
    spare_plans: Vec<SegmentRewrites>,
}

impl OpsRecorder {
    /// Appends a growth op, packing the new nodes' segments into a recycled plan
    /// buffer — no per-segment path allocation in steady state.
    fn push_growth<W: WalkIndexView + ?Sized>(&mut self, store: &W, from: usize, to: usize) {
        let mut segments = self.spare_plans.pop().unwrap_or_default();
        segments.clear();
        for node in from..to {
            let node = NodeId::from_index(node);
            for id in store.segment_ids_of(node) {
                let path = store.segment_path(id);
                if !path.is_empty() {
                    segments.push(id, path);
                }
            }
        }
        self.ops.push(MirrorOp::Growth { to, segments });
    }

    /// Appends a rewrite-plan op, refilling a recycled plan when one is pooled.
    fn push_rewrites(&mut self, plan: &SegmentRewrites) {
        let mut copy = self.spare_plans.pop().unwrap_or_default();
        copy.clone_from(plan);
        self.ops.push(MirrorOp::Rewrites(copy));
    }

    /// Drains the ops recorded since the last drain (the commit task's payload).
    pub fn take_ops(&mut self) -> Vec<MirrorOp> {
        std::mem::take(&mut self.ops)
    }

    /// Returns a committed task's plan buffers to the pool.
    pub fn recycle_plan(&mut self, plan: SegmentRewrites) {
        if self.spare_plans.len() < 16 {
            self.spare_plans.push(plan);
        }
    }
}

/// The engine surface [`QueryEngine`] serves: apply a write op while recording its
/// exact effect on a frozen mirror.  Implemented by both Monte Carlo engines over
/// every store layout.
pub trait ServeEngine {
    /// Which engine family this is (decides segment interpretation in queries).
    fn kind(&self) -> EngineKind;

    /// The walk reset probability queries must use.
    fn epsilon(&self) -> f64;

    /// The live graph (each commit records its post-batch node/edge counts; the
    /// mirror adjacency advances by replaying the edge batch, never by reading
    /// the live graph).
    fn live_graph(&self) -> &DynamicGraph;

    /// Full freeze of the live walk store (done once, at serving start).
    fn freeze_walks(&self, epoch: u64) -> FrozenWalks;

    /// Applies `op` to the live engine and appends to `rec` the exact recording of
    /// its effect: replaying the recorded [`MirrorOp`]s, in order, into a mirror
    /// that matched the pre-batch store leaves it bit-identical to the post-batch
    /// store.
    fn apply_and_record(&mut self, op: WriteOp<'_>, rec: &mut OpsRecorder) -> UpdateStats;

    /// Switches the engine's WAL (if durable and fsyncing) into group-commit mode,
    /// returning the handle the committer syncs through.  The default (in-memory
    /// engines) has nothing to sync.
    fn group_commit(&mut self) -> Option<GroupCommit> {
        None
    }

    /// Leaves WAL group-commit mode with one final covering sync.
    fn end_group_commit(&mut self) {}

    /// Emits the live engine's own telemetry layers (`store.*`, `work.*`,
    /// `batch.*`, the walk store's counters, `wal.*` when durable) into `out` —
    /// what lets [`QueryEngine::telemetry_snapshot`] fold the whole stack into
    /// one snapshot.  The default emits nothing.
    fn emit_metrics(&self, out: &mut SnapshotBuilder) {
        let _ = out;
    }
}

/// Records the segments of nodes the batch created (store node count was `from`
/// before the batch applied), through the recorder's pooled plan buffers.
fn record_growth<W: WalkIndexView + ?Sized>(store: &W, from: usize, rec: &mut OpsRecorder) {
    let to = store.node_count();
    if to <= from {
        return;
    }
    rec.push_growth(store, from, to);
}

/// Records one applied plan (growth first: the plan may rewrite segments of nodes
/// that did not exist at the previous generation).
fn record_plan<W: WalkIndexView + ?Sized>(
    store: &W,
    from: usize,
    plan: &SegmentRewrites,
    rec: &mut OpsRecorder,
) {
    record_growth(store, from, rec);
    rec.push_rewrites(plan);
}

impl<W: WalkIndexMut + Sync> ServeEngine for IncrementalPageRank<W> {
    fn kind(&self) -> EngineKind {
        EngineKind::PageRank
    }

    fn epsilon(&self) -> f64 {
        self.config().epsilon
    }

    fn live_graph(&self) -> &DynamicGraph {
        self.graph()
    }

    fn freeze_walks(&self, epoch: u64) -> FrozenWalks {
        FrozenWalks::from_index(self.walk_store(), epoch)
    }

    fn apply_and_record(&mut self, op: WriteOp<'_>, rec: &mut OpsRecorder) -> UpdateStats {
        let before = self.walk_store().node_count();
        let stats = match op {
            WriteOp::Arrivals(edges) => self.apply_arrivals(edges),
            WriteOp::Deletions(edges) => self.apply_deletions(edges),
        };
        record_plan(self.walk_store(), before, self.last_rewrites(), rec);
        stats
    }

    fn group_commit(&mut self) -> Option<GroupCommit> {
        self.wal_group_commit()
    }

    fn end_group_commit(&mut self) {
        self.wal_end_group_commit();
    }

    fn emit_metrics(&self, out: &mut SnapshotBuilder) {
        self.emit_telemetry(out);
    }
}

impl<W: WalkIndexMut + Sync> ServeEngine for IncrementalSalsa<W> {
    fn kind(&self) -> EngineKind {
        EngineKind::Salsa
    }

    fn epsilon(&self) -> f64 {
        self.config().epsilon
    }

    fn live_graph(&self) -> &DynamicGraph {
        self.graph()
    }

    fn freeze_walks(&self, epoch: u64) -> FrozenWalks {
        FrozenWalks::from_index(self.walk_store(), epoch)
    }

    fn apply_and_record(&mut self, op: WriteOp<'_>, rec: &mut OpsRecorder) -> UpdateStats {
        match op {
            WriteOp::Arrivals(edges) => {
                let before = self.walk_store().node_count();
                let stats = self.apply_arrivals(edges);
                record_plan(self.walk_store(), before, self.last_rewrites(), rec);
                stats
            }
            WriteOp::Deletions(edges) => {
                // SALSA deletions run per edge through the sequential path; each
                // records its own plan, so the mirror advances edge by edge.
                let mut stats = UpdateStats::default();
                for &edge in edges {
                    let before = self.walk_store().node_count();
                    if let Some(s) = self.remove_edge(edge) {
                        stats.segments_updated += s.segments_updated;
                        stats.walk_steps += s.walk_steps;
                        stats.touched_walk_store |= s.touched_walk_store;
                    }
                    record_plan(self.walk_store(), before, self.last_rewrites(), rec);
                }
                stats
            }
        }
    }

    fn group_commit(&mut self) -> Option<GroupCommit> {
        self.wal_group_commit()
    }

    fn end_group_commit(&mut self) {
        self.wal_end_group_commit();
    }

    fn emit_metrics(&self, out: &mut SnapshotBuilder) {
        self.emit_telemetry(out);
    }
}

/// Write-path observability: what the commit path actually did, surfaced like
/// `ArenaStats` / `BatchProfile`.  Snapshot via [`QueryEngine::commit_stats`].
///
/// The copy counters are the proof the two-level spine keeps commits O(touched): a
/// 1-edge batch on a large store copies a handful of leaf chunks and O(1) spine
/// blocks, never O(store).  The WAL counters show group-commit coalescing
/// (`wal_appends_synced / wal_fsyncs` appends covered per `fdatasync`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommitStats {
    /// Generations published.
    pub commits: u64,
    /// Commits handed to the pipelined committer thread (0 in inline mode).
    pub pipelined_commits: u64,
    /// Highest commit-pipeline occupancy observed (epochs in flight at send time).
    pub max_inflight: u64,
    /// Walk-path leaf chunks copy-on-write re-copied.
    pub walk_chunks_copied: u64,
    /// Visit-count leaf chunks re-copied.
    pub count_chunks_copied: u64,
    /// Adjacency leaf chunks re-copied.
    pub graph_chunks_copied: u64,
    /// Two-level spine blocks re-copied, across all three spines.
    pub spine_blocks_copied: u64,
    /// `fdatasync` calls the WAL group-commit issued (0 without a durable engine).
    pub wal_fsyncs: u64,
    /// WAL appends those syncs covered (> `wal_fsyncs` means coalescing won).
    pub wal_appends_synced: u64,
}

/// The shared atomic cell behind [`CommitStats`] (writer and committer threads both
/// update it; any thread may snapshot).
#[derive(Debug, Default)]
struct CommitStatsCell {
    commits: AtomicU64,
    pipelined_commits: AtomicU64,
    max_inflight: AtomicU64,
    walk_chunks_copied: AtomicU64,
    count_chunks_copied: AtomicU64,
    graph_chunks_copied: AtomicU64,
    spine_blocks_copied: AtomicU64,
    wal_fsyncs: AtomicU64,
    wal_appends_synced: AtomicU64,
}

impl CommitStatsCell {
    fn snapshot(&self) -> CommitStats {
        CommitStats {
            commits: self.commits.load(Ordering::Relaxed),
            pipelined_commits: self.pipelined_commits.load(Ordering::Relaxed),
            max_inflight: self.max_inflight.load(Ordering::Relaxed),
            walk_chunks_copied: self.walk_chunks_copied.load(Ordering::Relaxed),
            count_chunks_copied: self.count_chunks_copied.load(Ordering::Relaxed),
            graph_chunks_copied: self.graph_chunks_copied.load(Ordering::Relaxed),
            spine_blocks_copied: self.spine_blocks_copied.load(Ordering::Relaxed),
            wal_fsyncs: self.wal_fsyncs.load(Ordering::Relaxed),
            wal_appends_synced: self.wal_appends_synced.load(Ordering::Relaxed),
        }
    }
}

/// Which direction a batch moves the graph — tells the committer how to replay
/// `edges` on the mirror adjacency.
#[derive(Debug, Clone, Copy)]
enum GraphOp {
    Arrivals,
    Deletions,
}

/// Everything the committer needs to advance the mirror by one batch and publish
/// the next generation — recorded by the writer, free of references into the live
/// engine.
#[derive(Debug)]
struct CommitTask {
    epoch: u64,
    ops: Vec<MirrorOp>,
    /// Graph node count after the batch.
    node_count: usize,
    /// Graph edge count after the batch.
    edge_count: usize,
    /// The edge batch itself, replayed on the mirror adjacency in batch order —
    /// O(1) per edge, where re-snapshotting endpoint lists would be O(degree).
    graph_op: GraphOp,
    edges: Vec<Edge>,
    /// WAL append watermark this batch is covered by (durable engines only).
    wal_mark: Option<u64>,
}

/// Owns the mirrors and publishes generations — inline on the writer, or on the
/// commit thread in pipelined mode.  Tasks arrive strictly in epoch order either
/// way, which is what keeps published generations epoch-monotonic.
#[derive(Debug)]
struct Committer {
    kind: EngineKind,
    epsilon: f64,
    mirror_walks: FrozenWalks,
    mirror_graph: FrozenGraph,
    published: Arc<Mutex<Arc<Generation>>>,
    /// `(last committed epoch, its condvar)` — [`QueryEngine::flush_commits`] waits
    /// here for the pipeline to drain.
    committed: Arc<(Mutex<u64>, Condvar)>,
    stats: Arc<CommitStatsCell>,
    /// Group-commit handle for the coalesced WAL sync (pipelined durable mode).
    group: Option<GroupCommit>,
    /// Reusable record of the leaf chunks the current batch touched — what the
    /// ping-pong catch-up syncs into the reclaimed back buffer.
    touched: TouchedChunks,
    /// Recycled placeholder pair parked in the mirror slots while the advanced
    /// mirror moves into the published generation — keeps the publish swap
    /// allocation-free in steady state.
    spare: Option<(FrozenWalks, FrozenGraph)>,
    /// Commit-stage histograms (`commit.mirror` / `commit.wal_sync` /
    /// `commit.publish`), installed by [`QueryEngine::with_telemetry`] before
    /// the committer moves onto its thread.  `None` keeps `run` span-free.
    spans: Option<CommitSpans>,
}

impl Committer {
    /// Replays the task's edge batch on a mirror adjacency view in batch order —
    /// both Monte Carlo engines mutate the live graph strictly per edge in batch
    /// order (arrivals push, deletions first-occurrence `swap_remove`, absent
    /// edges skipped), so replay reproduces the live lists element-for-element,
    /// which queries rely on (sampling picks neighbours by list position).
    fn replay_edges(mirror: &mut FrozenGraph, task: &CommitTask) {
        match task.graph_op {
            GraphOp::Arrivals => {
                for &edge in &task.edges {
                    mirror.add_edge(edge);
                }
            }
            GraphOp::Deletions => {
                for &edge in &task.edges {
                    mirror.remove_edge(edge);
                }
            }
        }
        debug_assert_eq!(mirror.edge_count(), task.edge_count);
        mirror.set_edge_count(task.edge_count);
    }

    /// Runs one commit task to completion and returns its emptied shell (the
    /// outer buffers) so an inline caller can recycle the allocations; the
    /// pipelined commit thread just drops it.
    fn run(&mut self, task: CommitTask) -> CommitTask {
        self.touched.clear();
        let mirror_span = self.spans.as_ref().map(|s| s.tele.time(&s.mirror));
        for op in &task.ops {
            match op {
                MirrorOp::Growth { to, segments } => {
                    self.mirror_walks.ensure_nodes(*to);
                    for (id, path) in segments.iter() {
                        self.mirror_walks
                            .set_segment_recording(id, path, &mut self.touched);
                    }
                }
                MirrorOp::Rewrites(plan) => self
                    .mirror_walks
                    .apply_rewrites_recording(plan, &mut self.touched),
            }
        }
        self.mirror_graph.ensure_nodes(task.node_count);
        Committer::replay_edges(&mut self.mirror_graph, &task);
        self.mirror_walks.set_epoch(task.epoch);
        drop(mirror_span);

        let (walk, counts) = self.mirror_walks.take_copy_stats();
        let graph = self.mirror_graph.take_copy_stats();
        self.stats.commits.fetch_add(1, Ordering::Relaxed);
        self.stats
            .walk_chunks_copied
            .fetch_add(walk.chunks_copied, Ordering::Relaxed);
        self.stats
            .count_chunks_copied
            .fetch_add(counts.chunks_copied, Ordering::Relaxed);
        self.stats
            .graph_chunks_copied
            .fetch_add(graph.chunks_copied, Ordering::Relaxed);
        self.stats.spine_blocks_copied.fetch_add(
            walk.blocks_copied + counts.blocks_copied + graph.blocks_copied,
            Ordering::Relaxed,
        );

        // Durability before visibility: one coalesced sync covers every WAL append
        // up to this batch before any reader can pin the generation holding it.
        if let (Some(group), Some(mark)) = (&self.group, task.wal_mark) {
            let _wal_sync = self.spans.as_ref().map(|s| s.tele.time(&s.wal_sync));
            group
                .sync_upto(mark)
                .expect("group-commit WAL sync failed; cannot break durability silently");
            self.stats
                .wal_fsyncs
                .store(group.fsyncs(), Ordering::Relaxed);
            self.stats
                .wal_appends_synced
                .store(group.synced(), Ordering::Relaxed);
        }

        // Publish by MOVING the advanced mirror into the generation — no clone, no
        // refcount sweep — then reclaim the superseded generation's buffers as the
        // next mirror ("generation ping-pong").
        let publish_span = self.spans.as_ref().map(|s| s.tele.time(&s.publish));
        let (spare_walks, spare_graph) = self
            .spare
            .take()
            .unwrap_or_else(|| (FrozenWalks::empty(1, 0, 0), FrozenGraph::empty()));
        let front_walks = std::mem::replace(&mut self.mirror_walks, spare_walks);
        let front_graph = std::mem::replace(&mut self.mirror_graph, spare_graph);
        let generation = Arc::new(Generation {
            epoch: task.epoch,
            kind: self.kind,
            epsilon: self.epsilon,
            walks: front_walks,
            graph: front_graph,
            cache: FetchCache::new(),
        });
        let superseded = {
            let mut slot = self.published.lock().expect("generation slot poisoned");
            std::mem::replace(&mut *slot, Arc::clone(&generation))
        };
        match Arc::try_unwrap(superseded) {
            Ok(back) => {
                // No reader pinned the superseded generation: its buffers become the
                // next mirror, caught up by syncing exactly the chunks this batch
                // touched — in-place memcpys, allocation-free in steady state.
                self.spare = Some((
                    std::mem::replace(&mut self.mirror_walks, back.walks),
                    std::mem::replace(&mut self.mirror_graph, back.graph),
                ));
                self.mirror_walks
                    .sync_touched_from(&generation.walks, &mut self.touched);
                self.mirror_graph.ensure_nodes(task.node_count);
                Committer::replay_edges(&mut self.mirror_graph, &task);
            }
            Err(pinned) => {
                // A reader still holds it; clone the just-published generation (O(1)
                // root bumps) and let copy-on-write cover whatever stays pinned.
                drop(pinned);
                self.spare = Some((
                    std::mem::replace(&mut self.mirror_walks, generation.walks.clone()),
                    std::mem::replace(&mut self.mirror_graph, generation.graph.clone()),
                ));
            }
        }
        drop(publish_span);

        let (lock, condvar) = &*self.committed;
        *lock.lock().expect("commit watermark poisoned") = task.epoch;
        condvar.notify_all();
        task
    }
}

/// The commit thread of a pipelined serving session: a bounded channel (the
/// in-flight window) feeding one [`Committer`].
#[derive(Debug)]
struct CommitPipeline {
    sender: SyncSender<CommitTask>,
    thread: JoinHandle<Committer>,
    window: usize,
}

/// Who runs commit tasks.  `Parked` is the transitional state while the pipeline is
/// being started or torn down; it is never observable from outside.
#[derive(Debug)]
enum CommitMode {
    Inline(Box<Committer>),
    Piped(CommitPipeline),
    Parked,
}

/// The shared generation slot readers pin from.  Cloning the handle is cheap; it is
/// the address a serving session hands to its reader threads.
#[derive(Debug, Clone)]
pub struct ServeHandle {
    published: Arc<Mutex<Arc<Generation>>>,
    query_seed: u64,
    /// Query-lifecycle instruments shared by every handle clone of the session
    /// (`None` until [`QueryEngine::with_telemetry`]).
    spans: Option<Arc<QuerySpans>>,
    /// The session's pool of batch execution contexts, shared by every handle
    /// clone so batch serving reuses scratch across threads and batches.
    scratch: Arc<ScratchPool>,
}

impl ServeHandle {
    /// Pins the current generation: one brief lock to clone the `Arc`, then the
    /// whole query runs lock-free against immutable data.
    pub fn pin(&self) -> PinnedView {
        PinnedView(Arc::clone(
            &self.published.lock().expect("generation slot poisoned"),
        ))
    }

    /// The session's query seed (queries draw from `(query_seed, query_id)`).
    pub fn query_seed(&self) -> u64 {
        self.query_seed
    }

    /// Pins the current generation and answers one query on the
    /// `(session query_seed, query_id)` stream.  With telemetry attached the
    /// call is traced (`query.latency` over `query.pin` → `query.walk` →
    /// `query.topk`) — tracing never changes the answer's bits.
    pub fn serve(&self, query_id: u64, query: &Query) -> Served {
        let spans = self.spans.as_deref();
        let _latency = spans.map(|s| s.tele.time(&s.latency));
        let view = {
            let _pin = spans.map(|s| s.tele.time(&s.pin));
            self.pin()
        };
        view.answer_instrumented(self.query_seed, query_id, query, spans)
    }

    /// Serves a whole [`QueryBatch`] on the calling thread under **one**
    /// generation pin: all queries run against a pooled batch context
    /// ([`crate::StitchContext`]) layered over the pinned generation's fetch
    /// cache, with any batch deadline applied per query.  Answers come back in
    /// batch order and are bit-identical to calling [`ServeHandle::serve`] per
    /// query (absent an expiring deadline) — see the
    /// [batch module docs](crate::batch).  For a fanned-out batch use
    /// [`crate::ReaderPool::serve_batch`].
    pub fn serve_batch(&self, batch: &QueryBatch) -> Vec<Served> {
        let spans = self.spans.as_deref();
        if let Some(s) = spans {
            s.batch_size.record(batch.len() as u64);
        }
        let view = {
            let _pin = spans.map(|s| s.tele.time(&s.pin));
            self.pin()
        };
        let mut ctx = self.scratch.take();
        ctx.begin_batch();
        let mut out = Vec::with_capacity(batch.len());
        for (query_id, query) in &batch.jobs {
            let _latency = spans.map(|s| s.tele.time(&s.latency));
            out.push(view.answer_in_context(
                self.query_seed,
                *query_id,
                query,
                &mut ctx,
                batch.deadline.as_ref(),
                spans,
            ));
        }
        if let Some(s) = spans {
            s.batch_fetch_saved.add(ctx.saved());
        }
        self.scratch.put(ctx);
        out
    }

    /// The session's query-lifecycle instruments (pool entry points record the
    /// batch-level spans themselves).
    pub(crate) fn query_spans(&self) -> Option<&Arc<QuerySpans>> {
        self.spans.as_ref()
    }

    /// The session's shared batch-context pool.
    pub(crate) fn scratch_pool(&self) -> &Arc<ScratchPool> {
        &self.scratch
    }
}

/// Snapshot-isolated serving over one incremental engine: a single writer commits
/// batches, any number of readers answer queries from epoch-pinned generations.
///
/// By default commits complete inline — [`QueryEngine::pin`] right after a commit
/// sees that commit's generation.  [`QueryEngine::with_pipeline`] moves the mirror
/// advance, WAL sync, and generation publish onto a commit thread behind a bounded
/// window; readers then trail the live engine by at most `window` epochs until
/// [`QueryEngine::flush_commits`] drains the pipeline.
#[derive(Debug)]
pub struct QueryEngine<E: ServeEngine> {
    engine: E,
    epoch: u64,
    mode: CommitMode,
    published: Arc<Mutex<Arc<Generation>>>,
    committed: Arc<(Mutex<u64>, Condvar)>,
    stats: Arc<CommitStatsCell>,
    /// Writer-side clone of the WAL group-commit handle (pipelined durable mode):
    /// reads the append watermark each batch must be synced up to.
    group: Option<GroupCommit>,
    query_seed: u64,
    /// Recording sink (pools plan buffers across commits).
    recorder: OpsRecorder,
    /// Shell of the last inline-committed task, recycled into the next one.
    spare_task: Option<CommitTask>,
    /// The registry [`QueryEngine::telemetry_snapshot`] collects through
    /// (`None` until [`QueryEngine::with_telemetry`]).
    telemetry: Option<Telemetry>,
    /// Writer-side commit-stage spans (`commit.apply` wraps the engine apply).
    spans: Option<CommitSpans>,
    /// Query-lifecycle instruments cloned into every [`ServeHandle`].
    query_spans: Option<Arc<QuerySpans>>,
    /// Batch execution contexts pooled across the session (cloned into every
    /// [`ServeHandle`] so batches reuse scratch regardless of which thread
    /// serves them).
    scratch: Arc<ScratchPool>,
}

impl<E: ServeEngine> QueryEngine<E> {
    /// Wraps `engine` for serving: freezes generation 0 and publishes it.
    /// `query_seed` keys every query stream of this serving session.
    pub fn new(engine: E, query_seed: u64) -> Self {
        let mirror_walks = engine.freeze_walks(0);
        let mirror_graph = FrozenGraph::from_graph(engine.live_graph());
        let generation = Arc::new(Generation {
            epoch: 0,
            kind: engine.kind(),
            epsilon: engine.epsilon(),
            walks: mirror_walks.clone(),
            graph: mirror_graph.clone(),
            cache: FetchCache::new(),
        });
        let published = Arc::new(Mutex::new(generation));
        let committed = Arc::new((Mutex::new(0), Condvar::new()));
        let stats = Arc::new(CommitStatsCell::default());
        let committer = Committer {
            kind: engine.kind(),
            epsilon: engine.epsilon(),
            mirror_walks,
            mirror_graph,
            published: Arc::clone(&published),
            committed: Arc::clone(&committed),
            stats: Arc::clone(&stats),
            group: None,
            touched: TouchedChunks::default(),
            spare: None,
            spans: None,
        };
        QueryEngine {
            engine,
            epoch: 0,
            mode: CommitMode::Inline(Box::new(committer)),
            published,
            committed,
            stats,
            group: None,
            query_seed,
            recorder: OpsRecorder::default(),
            spare_task: None,
            telemetry: None,
            spans: None,
            query_spans: None,
            scratch: Arc::new(ScratchPool::default()),
        }
    }

    /// Attaches a telemetry registry to the serving session: commit stages
    /// (`commit.apply` / `commit.mirror` / `commit.wal_sync` / `commit.publish`)
    /// and the query lifecycle (`query.*`, on every [`ServeHandle`] created from
    /// now on) record into `tele`'s histograms, and
    /// [`QueryEngine::telemetry_snapshot`] collects through it.  A running
    /// commit pipeline is bounced (drained and restarted with the same window)
    /// so the commit thread picks the instruments up.  Telemetry observes only:
    /// published generations and query answers stay bit-identical.
    pub fn with_telemetry(mut self, tele: &Telemetry) -> Self {
        let spans = CommitSpans::new(tele);
        let window = self.pipeline_window();
        let mut committer = self
            .stop_pipeline()
            .expect("commit mode always recoverable");
        committer.spans = Some(spans.clone());
        self.mode = CommitMode::Inline(Box::new(committer));
        self.telemetry = Some(tele.clone());
        self.spans = Some(spans);
        self.query_spans = Some(Arc::new(QuerySpans::new(tele)));
        if window > 0 {
            self.with_pipeline(window)
        } else {
            self
        }
    }

    /// Moves the commit path onto its own thread behind a bounded in-flight
    /// `window` (clamped to at least 1): the writer applies batch `N + 1` while the
    /// mirror advance + publish for batch `N` completes, and durable engines switch
    /// their WAL into group-commit mode (one coalesced sync per drained task).
    /// Idempotent on an already-pipelined session.
    pub fn with_pipeline(mut self, window: usize) -> Self {
        let window = window.max(1);
        let mut committer = match self.stop_pipeline() {
            Some(c) => c,
            None => unreachable!("commit mode always recoverable"),
        };
        self.group = self.engine.group_commit();
        committer.group = self.group.clone();
        let (sender, receiver) = sync_channel::<CommitTask>(window);
        let thread = std::thread::Builder::new()
            .name("ppr-commit".into())
            .spawn(move || {
                let mut committer = committer;
                for task in receiver {
                    committer.run(task);
                }
                committer
            })
            .expect("spawning the commit thread failed");
        self.mode = CommitMode::Piped(CommitPipeline {
            sender,
            thread,
            window,
        });
        self
    }

    /// Tears the pipeline (if any) down — draining every queued task — and returns
    /// the committer for inline reuse.
    fn stop_pipeline(&mut self) -> Option<Committer> {
        match std::mem::replace(&mut self.mode, CommitMode::Parked) {
            CommitMode::Inline(committer) => Some(*committer),
            CommitMode::Piped(pipeline) => {
                drop(pipeline.sender);
                Some(pipeline.thread.join().expect("the commit thread panicked"))
            }
            CommitMode::Parked => None,
        }
    }

    /// The configured pipeline window (0 when commits run inline).
    pub fn pipeline_window(&self) -> usize {
        match &self.mode {
            CommitMode::Piped(pipeline) => pipeline.window,
            _ => 0,
        }
    }

    /// Blocks until every commit issued so far has published its generation (a
    /// no-op in inline mode).  After this, [`QueryEngine::pin`] sees the latest
    /// committed epoch.
    pub fn flush_commits(&mut self) {
        let (lock, condvar) = &*self.committed;
        let mut committed = lock.lock().expect("commit watermark poisoned");
        while *committed < self.epoch {
            committed = condvar.wait(committed).expect("commit watermark poisoned");
        }
    }

    /// Write-path observability: copy-on-write work, WAL sync coalescing, pipeline
    /// occupancy.  Counters accumulate over the session.
    pub fn commit_stats(&self) -> CommitStats {
        self.stats.snapshot()
    }

    /// The reader-facing handle (clone one per reader thread).
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            published: Arc::clone(&self.published),
            query_seed: self.query_seed,
            spans: self.query_spans.clone(),
            scratch: Arc::clone(&self.scratch),
        }
    }

    /// One whole-stack observability snapshot through the attached registry:
    /// the live engine's layers ([`ServeEngine::emit_metrics`]: `store.*`,
    /// `work.*`, `batch.*`, the walk store's counters, `wal.*` when durable),
    /// the commit path (`commit.*` counters plus the stage histograms), the
    /// current generation's fetch cache (`cache.*`), serving gauges
    /// (`serve.*`), and every query-lifecycle histogram readers recorded.
    /// Returns `None` until [`QueryEngine::with_telemetry`] attaches a
    /// registry.
    pub fn telemetry_snapshot(&self) -> Option<TelemetrySnapshot> {
        let tele = self.telemetry.as_ref()?;
        let adapter = |out: &mut SnapshotBuilder| {
            self.engine.emit_metrics(out);
            out.source("commit", &self.commit_stats());
            out.source("cache", &self.pin().cache_stats());
            out.scoped("serve", |out| {
                out.gauge("epoch", self.epoch as f64);
                out.gauge("published_epoch", self.pin().epoch() as f64);
                out.gauge("pipeline_window", self.pipeline_window() as f64);
            });
        };
        Some(tele.collect_with(&[&adapter]))
    }

    /// Pins the writer's current generation (readers use [`ServeHandle::pin`]).
    /// Under a pipeline this may trail [`QueryEngine::epoch`] by up to the window;
    /// [`QueryEngine::flush_commits`] closes the gap.
    pub fn pin(&self) -> PinnedView {
        self.handle().pin()
    }

    /// The current committed epoch of the live engine (the writer's view; published
    /// generations trail it by at most the pipeline window).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The wrapped engine (read access; all writes go through the commit path).
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Mutable access to the wrapped engine for maintenance that leaves its
    /// *logical* state untouched — durable checkpoints, WAL rotation, compaction
    /// tuning.  Flushes the commit pipeline first, so maintenance always sees a
    /// fully published engine.  Applying edge batches here instead of through
    /// [`Self::commit_arrivals`] / [`Self::commit_deletions`] would desync the
    /// published mirror from the live store.
    pub fn engine_mut(&mut self) -> &mut E {
        self.flush_commits();
        &mut self.engine
    }

    /// Unwraps the serving layer and returns the engine — e.g. to drop it
    /// (simulating a crash for the chaos harness) and reopen from its durable
    /// store.  Drains the pipeline, ends WAL group-commit mode (one final covering
    /// sync), and joins the commit thread.  Readers holding the old handle keep the
    /// last published generation; a new serving session starts from
    /// [`QueryEngine::new`].
    pub fn into_engine(mut self) -> E {
        let _ = self.stop_pipeline();
        self.group = None;
        self.engine.end_group_commit();
        self.engine
    }

    /// Commits an arrival batch: applies it to the engine, records its mirror
    /// effect, and hands the commit task to the (inline or pipelined) committer.
    pub fn commit_arrivals(&mut self, edges: &[Edge]) -> UpdateStats {
        self.commit(WriteOp::Arrivals(edges), edges)
    }

    /// Commits a deletion batch (see [`Self::commit_arrivals`]).
    pub fn commit_deletions(&mut self, edges: &[Edge]) -> UpdateStats {
        self.commit(WriteOp::Deletions(edges), edges)
    }

    fn commit(&mut self, op: WriteOp<'_>, edges: &[Edge]) -> UpdateStats {
        let graph_op = match op {
            WriteOp::Arrivals(_) => GraphOp::Arrivals,
            WriteOp::Deletions(_) => GraphOp::Deletions,
        };
        let stats = {
            let _apply = self.spans.as_ref().map(|s| s.tele.time(&s.apply));
            self.engine.apply_and_record(op, &mut self.recorder)
        };
        // Every append this batch made (durable engines append before mutating) is
        // at or below the group's current watermark.
        let wal_mark = self.group.as_ref().map(|group| group.appended());

        // The committer needs no access to the live engine: it replays the edge
        // batch itself on the mirror adjacency, in batch order.
        let mut batch = match self.spare_task.take() {
            Some(shell) => shell.edges,
            None => Vec::new(),
        };
        batch.clear();
        batch.extend_from_slice(edges);

        let graph = self.engine.live_graph();
        self.epoch += 1;
        let task = CommitTask {
            epoch: self.epoch,
            ops: self.recorder.take_ops(),
            node_count: graph.node_count(),
            edge_count: graph.edge_count(),
            graph_op,
            edges: batch,
            wal_mark,
        };
        match &mut self.mode {
            CommitMode::Inline(committer) => {
                let mut shell = committer.run(task);
                for op in shell.ops.drain(..) {
                    match op {
                        MirrorOp::Rewrites(plan) | MirrorOp::Growth { segments: plan, .. } => {
                            self.recorder.recycle_plan(plan)
                        }
                    }
                }
                self.spare_task = Some(shell);
            }
            CommitMode::Piped(pipeline) => {
                self.stats.pipelined_commits.fetch_add(1, Ordering::Relaxed);
                let inflight =
                    self.epoch - *self.committed.0.lock().expect("commit watermark poisoned");
                self.stats
                    .max_inflight
                    .fetch_max(inflight, Ordering::Relaxed);
                pipeline
                    .sender
                    .send(task)
                    .expect("the commit thread died with tasks in flight");
            }
            CommitMode::Parked => unreachable!("commit mode is never parked mid-commit"),
        }
        stats
    }
}
