//! The single-writer/many-readers [`QueryEngine`].
//!
//! The writer side owns the real incremental engine plus one mutable copy-on-write
//! *mirror* of its state (a [`FrozenWalks`] + [`FrozenGraph`] pair).  Each commit
//!
//! 1. applies the batch to the engine exactly as before (same pipeline, same RNG
//!    streams, same WAL hooks when the engine is durable);
//! 2. advances the mirror from the engine's own reconciled rewrite plan
//!    ([`ppr_core::IncrementalPageRank::last_rewrites`]) and the batch's endpoint
//!    set — cost proportional to what the batch touched, never to the store size;
//! 3. publishes a clone of the mirror as the next [`Generation`] behind the shared
//!    handle.
//!
//! Readers pin the current generation through a [`ServeHandle`] (one brief mutex
//! lock to clone an `Arc`, then zero synchronisation for the whole query).  A reader
//! holding generation `g` keeps exactly the chunks `g` references alive; the writer's
//! next `Arc::make_mut` copies only chunks still shared — snapshot isolation by
//! structural sharing, the redb/Manifold generation discipline applied to the
//! PageRank Store.

use crate::generation::{EngineKind, Generation, PinnedView, Query, Served};
use crate::FetchCache;
use ppr_core::{IncrementalPageRank, IncrementalSalsa, UpdateStats};
use ppr_graph::{DynamicGraph, Edge, NodeId};
use ppr_store::{FrozenGraph, FrozenWalks, SegmentRewrites, WalkIndexMut, WalkIndexView};
use std::sync::{Arc, Mutex};

/// One write operation against the serving engine.
#[derive(Debug, Clone, Copy)]
pub enum WriteOp<'a> {
    /// An edge-arrival batch (`apply_arrivals`).
    Arrivals(&'a [Edge]),
    /// An edge-deletion batch (`apply_deletions` / per-edge `remove_edge`).
    Deletions(&'a [Edge]),
}

/// The engine surface [`QueryEngine`] serves: apply a write op while keeping a
/// frozen mirror bit-identical to the live store.  Implemented by both Monte Carlo
/// engines over every store layout.
pub trait ServeEngine {
    /// Which engine family this is (decides segment interpretation in queries).
    fn kind(&self) -> EngineKind;

    /// The walk reset probability queries must use.
    fn epsilon(&self) -> f64;

    /// The live graph (refreshed into the graph mirror after each commit).
    fn live_graph(&self) -> &DynamicGraph;

    /// Full freeze of the live walk store (done once, at serving start).
    fn freeze_walks(&self, epoch: u64) -> FrozenWalks;

    /// Applies `op` to the live engine and replays exactly its effect into
    /// `mirror`: the reconciled rewrite plan(s) plus the segments of any nodes the
    /// batch created.  After this returns, `mirror` is bit-identical to the live
    /// walk store.
    fn apply_and_mirror(&mut self, op: WriteOp<'_>, mirror: &mut FrozenWalks) -> UpdateStats;
}

/// Copies the segments of nodes the batch created out of the live store.
fn sync_growth<W: WalkIndexView>(store: &W, mirror: &mut FrozenWalks) {
    let before = mirror.node_count();
    let after = store.node_count();
    if after > before {
        mirror.sync_segments_from(store, before, after);
    }
}

/// Replays one applied plan into the mirror (growth first: the plan may rewrite
/// segments of nodes that did not exist at the previous generation).
fn mirror_plan<W: WalkIndexView>(store: &W, plan: &SegmentRewrites, mirror: &mut FrozenWalks) {
    sync_growth(store, mirror);
    mirror.apply_rewrites(plan);
}

impl<W: WalkIndexMut + Sync> ServeEngine for IncrementalPageRank<W> {
    fn kind(&self) -> EngineKind {
        EngineKind::PageRank
    }

    fn epsilon(&self) -> f64 {
        self.config().epsilon
    }

    fn live_graph(&self) -> &DynamicGraph {
        self.graph()
    }

    fn freeze_walks(&self, epoch: u64) -> FrozenWalks {
        FrozenWalks::from_index(self.walk_store(), epoch)
    }

    fn apply_and_mirror(&mut self, op: WriteOp<'_>, mirror: &mut FrozenWalks) -> UpdateStats {
        let stats = match op {
            WriteOp::Arrivals(edges) => self.apply_arrivals(edges),
            WriteOp::Deletions(edges) => self.apply_deletions(edges),
        };
        mirror_plan(self.walk_store(), self.last_rewrites(), mirror);
        stats
    }
}

impl<W: WalkIndexMut + Sync> ServeEngine for IncrementalSalsa<W> {
    fn kind(&self) -> EngineKind {
        EngineKind::Salsa
    }

    fn epsilon(&self) -> f64 {
        self.config().epsilon
    }

    fn live_graph(&self) -> &DynamicGraph {
        self.graph()
    }

    fn freeze_walks(&self, epoch: u64) -> FrozenWalks {
        FrozenWalks::from_index(self.walk_store(), epoch)
    }

    fn apply_and_mirror(&mut self, op: WriteOp<'_>, mirror: &mut FrozenWalks) -> UpdateStats {
        match op {
            WriteOp::Arrivals(edges) => {
                let stats = self.apply_arrivals(edges);
                mirror_plan(self.walk_store(), self.last_rewrites(), mirror);
                stats
            }
            WriteOp::Deletions(edges) => {
                // SALSA deletions run per edge through the sequential path; each
                // records its own plan, so the mirror advances edge by edge.
                let mut stats = UpdateStats::default();
                for &edge in edges {
                    if let Some(s) = self.remove_edge(edge) {
                        stats.segments_updated += s.segments_updated;
                        stats.walk_steps += s.walk_steps;
                        stats.touched_walk_store |= s.touched_walk_store;
                    }
                    mirror_plan(self.walk_store(), self.last_rewrites(), mirror);
                }
                stats
            }
        }
    }
}

/// The shared generation slot readers pin from.  Cloning the handle is cheap; it is
/// the address a serving session hands to its reader threads.
#[derive(Debug, Clone)]
pub struct ServeHandle {
    published: Arc<Mutex<Arc<Generation>>>,
    query_seed: u64,
}

impl ServeHandle {
    /// Pins the current generation: one brief lock to clone the `Arc`, then the
    /// whole query runs lock-free against immutable data.
    pub fn pin(&self) -> PinnedView {
        PinnedView(Arc::clone(
            &self.published.lock().expect("generation slot poisoned"),
        ))
    }

    /// The session's query seed (queries draw from `(query_seed, query_id)`).
    pub fn query_seed(&self) -> u64 {
        self.query_seed
    }

    /// Pins the current generation and answers one query on the
    /// `(session query_seed, query_id)` stream.
    pub fn serve(&self, query_id: u64, query: &Query) -> Served {
        self.pin().answer(self.query_seed, query_id, query)
    }
}

/// Snapshot-isolated serving over one incremental engine: a single writer commits
/// batches, any number of readers answer queries from epoch-pinned generations.
#[derive(Debug)]
pub struct QueryEngine<E: ServeEngine> {
    engine: E,
    epoch: u64,
    mirror_walks: FrozenWalks,
    mirror_graph: FrozenGraph,
    published: Arc<Mutex<Arc<Generation>>>,
    query_seed: u64,
    /// Scratch for the per-commit endpoint set.
    touched: Vec<NodeId>,
}

impl<E: ServeEngine> QueryEngine<E> {
    /// Wraps `engine` for serving: freezes generation 0 and publishes it.
    /// `query_seed` keys every query stream of this serving session.
    pub fn new(engine: E, query_seed: u64) -> Self {
        let mirror_walks = engine.freeze_walks(0);
        let mirror_graph = FrozenGraph::from_graph(engine.live_graph());
        let generation = Arc::new(Generation {
            epoch: 0,
            kind: engine.kind(),
            epsilon: engine.epsilon(),
            walks: mirror_walks.clone(),
            graph: mirror_graph.clone(),
            cache: FetchCache::new(),
        });
        QueryEngine {
            engine,
            epoch: 0,
            mirror_walks,
            mirror_graph,
            published: Arc::new(Mutex::new(generation)),
            query_seed,
            touched: Vec::new(),
        }
    }

    /// The reader-facing handle (clone one per reader thread).
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            published: Arc::clone(&self.published),
            query_seed: self.query_seed,
        }
    }

    /// Pins the writer's current generation (readers use [`ServeHandle::pin`]).
    pub fn pin(&self) -> PinnedView {
        self.handle().pin()
    }

    /// The current committed epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The wrapped engine (read access; all writes go through the commit path).
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Mutable access to the wrapped engine for maintenance that leaves its
    /// *logical* state untouched — durable checkpoints, WAL rotation, compaction
    /// tuning.  Applying edge batches here instead of through
    /// [`Self::commit_arrivals`] / [`Self::commit_deletions`] would desync the
    /// published mirror from the live store.
    pub fn engine_mut(&mut self) -> &mut E {
        &mut self.engine
    }

    /// Unwraps the serving layer and returns the engine — e.g. to drop it
    /// (simulating a crash for the chaos harness) and reopen from its durable
    /// store.  Readers holding the old handle keep the last published generation;
    /// a new serving session starts from [`QueryEngine::new`].
    pub fn into_engine(self) -> E {
        self.engine
    }

    /// Commits an arrival batch: applies it to the engine, advances the mirrors,
    /// publishes the next generation.
    pub fn commit_arrivals(&mut self, edges: &[Edge]) -> UpdateStats {
        self.commit(WriteOp::Arrivals(edges), edges)
    }

    /// Commits a deletion batch (see [`Self::commit_arrivals`]).
    pub fn commit_deletions(&mut self, edges: &[Edge]) -> UpdateStats {
        self.commit(WriteOp::Deletions(edges), edges)
    }

    fn commit(&mut self, op: WriteOp<'_>, edges: &[Edge]) -> UpdateStats {
        let stats = self.engine.apply_and_mirror(op, &mut self.mirror_walks);

        // An edge changes exactly its source's out-list and its target's in-list;
        // refresh those directions of the distinct endpoints from the post-batch
        // graph.
        self.touched.clear();
        self.touched.extend(edges.iter().map(|e| e.source));
        self.touched.sort_unstable();
        self.touched.dedup();
        let sources = std::mem::take(&mut self.touched);
        let mut targets: Vec<NodeId> = edges.iter().map(|e| e.target).collect();
        targets.sort_unstable();
        targets.dedup();
        self.mirror_graph.refresh_endpoints(
            self.engine.live_graph(),
            sources.iter().copied(),
            targets.iter().copied(),
        );
        self.touched = sources;

        self.epoch += 1;
        self.mirror_walks.set_epoch(self.epoch);
        let generation = Arc::new(Generation {
            epoch: self.epoch,
            kind: self.engine.kind(),
            epsilon: self.engine.epsilon(),
            walks: self.mirror_walks.clone(),
            graph: self.mirror_graph.clone(),
            cache: FetchCache::new(),
        });
        *self.published.lock().expect("generation slot poisoned") = generation;
        stats
    }
}
