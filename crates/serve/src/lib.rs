//! `ppr-serve`: snapshot-isolated concurrent query serving for fast-ppr.
//!
//! The whole point of the paper's PageRank Store (Theorem 8 / Corollary 9) is cheap
//! *query serving* — stitched personalized walks answered from cached segments with
//! a handful of fetches.  This crate turns the workspace's engines into an actual
//! serving system shaped like modern storage engines: **writers commit generations,
//! readers pin a generation and proceed lock-free.**
//!
//! * [`QueryEngine`] owns one incremental engine (PageRank or SALSA, any store
//!   layout, in-memory or durable) behind a single-writer/many-readers generation
//!   handle.  Each committed batch publishes the next [`Generation`]: an immutable,
//!   epoch-stamped `FrozenWalks` + `FrozenGraph` pair advanced by copy-on-write from
//!   the engine's own reconciled rewrite plan — commit cost tracks what the batch
//!   touched, not the store size.
//! * [`ServeHandle`] / [`PinnedView`] are the reader side: pinning is one `Arc`
//!   clone, and from then on a query never takes a lock — not per step, not per
//!   score.  A reader overlapping a write batch simply keeps serving from its
//!   pinned generation; there are no torn reads by construction.
//! * Queries — personalized top-k (with Corollary 9 fetch budgets and a shared
//!   per-generation [`FetchCache`]), global rank, SALSA hub/authority — draw from
//!   `(query_seed, query_id)` split RNG streams, so every answer is a pure function
//!   of `(generation, query_seed, query_id)`: bit-identical at any reader-thread
//!   count and any read/write interleaving.  `tests/concurrent_serving.rs` is the
//!   differential harness holding the crate to that contract.
//! * [`ReaderPool`] is a small fixed thread pool for fanning query batches out; the
//!   `query_serving` bench pins QPS scaling at 1/2/4/8 readers with and without a
//!   concurrent writer.
//! * [`QueryBatch`] is the batched execution path: one generation pin per batch, a
//!   batch-local [`StitchContext`] fetch layer over the generation's [`FetchCache`],
//!   pooled per-query scratch, and per-query deadline budgets over an injectable
//!   clock — amortized cost, bit-identical answers (see [`batch`]).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod cache;
pub mod engine;
pub mod generation;
pub mod pool;
pub mod telem;

pub use batch::{DeadlineBudget, QueryBatch, StitchContext};
pub use cache::{FetchCache, FetchCacheStats};
pub use engine::{
    CommitStats, MirrorOp, OpsRecorder, QueryEngine, ServeEngine, ServeHandle, WriteOp,
};
pub use generation::{Answer, EngineKind, Generation, PinnedView, Query, Served};
pub use pool::ReaderPool;

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_core::{IncrementalPageRank, IncrementalSalsa, MonteCarloConfig};
    use ppr_graph::generators::{preferential_attachment_edges, PreferentialAttachmentConfig};
    use ppr_graph::{DynamicGraph, Edge, GraphView, NodeId};
    use ppr_store::{FrozenWalks, WalkIndexView};
    use std::sync::Arc;

    fn edges(n: usize, seed: u64) -> Vec<Edge> {
        preferential_attachment_edges(&PreferentialAttachmentConfig::new(n, 4, seed))
    }

    fn assert_walks_equal<W: WalkIndexView>(mirror: &FrozenWalks, store: &W, context: &str) {
        assert_eq!(mirror.node_count(), store.node_count(), "{context}: nodes");
        assert_eq!(
            mirror.total_visits(),
            store.total_visits(),
            "{context}: total visits"
        );
        assert_eq!(
            mirror.visit_counts(),
            store.visit_counts(),
            "{context}: counts"
        );
        for g in 0..store.node_count() {
            for id in store.segment_ids_of(NodeId::from_index(g)) {
                assert_eq!(
                    mirror.segment_path(id),
                    store.segment_path(id),
                    "{context}: segment {id:?}"
                );
            }
        }
    }

    #[test]
    fn published_generations_track_the_live_engine_exactly() {
        let stream = edges(120, 901);
        let config = MonteCarloConfig::new(0.2, 3).with_seed(903);
        let engine = IncrementalPageRank::new_empty(120, config);
        let mut serving = QueryEngine::new(engine, 1);
        for (i, chunk) in stream.chunks(50).enumerate() {
            serving.commit_arrivals(chunk);
            if i % 2 == 0 {
                let victims: Vec<Edge> = chunk.iter().copied().step_by(9).collect();
                serving.commit_deletions(&victims);
            }
            let view = serving.pin();
            assert_eq!(view.epoch(), serving.epoch());
            assert_walks_equal(
                view.walks(),
                serving.engine().walk_store(),
                &format!("epoch {}", view.epoch()),
            );
            // The graph mirror matches the live adjacency, order included.
            for node in serving.engine().graph().nodes() {
                assert_eq!(
                    view.graph().out_neighbors(node),
                    serving.engine().graph().out_neighbors(node),
                    "out-adjacency of {node}"
                );
                assert_eq!(
                    view.graph().in_neighbors(node),
                    serving.engine().graph().in_neighbors(node),
                    "in-adjacency of {node}"
                );
            }
        }
    }

    #[test]
    fn sharded_engines_serve_through_the_same_mirror_path() {
        let stream = edges(90, 907);
        let config = MonteCarloConfig::new(0.2, 3).with_seed(909);
        let engine =
            IncrementalPageRank::from_graph_sharded(DynamicGraph::with_nodes(90), config, 4, 2);
        let mut serving = QueryEngine::new(engine, 2);
        for chunk in stream.chunks(64) {
            serving.commit_arrivals(chunk);
        }
        assert_walks_equal(
            serving.pin().walks(),
            serving.engine().walk_store(),
            "sharded final",
        );
    }

    #[test]
    fn salsa_generations_mirror_arrivals_and_per_edge_deletions() {
        let stream = edges(80, 911);
        let config = MonteCarloConfig::new(0.2, 3).with_seed(913);
        let engine = IncrementalSalsa::new_empty(80, config);
        let mut serving = QueryEngine::new(engine, 3);
        for chunk in stream.chunks(40) {
            serving.commit_arrivals(chunk);
        }
        let victims: Vec<Edge> = stream.iter().copied().step_by(7).take(12).collect();
        serving.commit_deletions(&victims);
        assert_walks_equal(
            serving.pin().walks(),
            serving.engine().walk_store(),
            "salsa final",
        );

        // Hub/authority answers equal the engine's own estimates.
        let view = serving.pin();
        let served = view.answer(3, 0, &Query::HubAuthorityTopK { k: 5 });
        let estimates = serving.engine().estimates();
        match served.answer {
            Answer::HubsAuthorities { hubs, authorities } => {
                let top_auth = ppr_core::salsa::top_k_scores(
                    &estimates.authorities,
                    &std::collections::HashSet::new(),
                    5,
                );
                assert_eq!(authorities, top_auth);
                assert_eq!(hubs.len(), 5);
            }
            other => panic!("expected hub/authority lists, got {other:?}"),
        }
    }

    #[test]
    fn served_personalized_top_k_matches_the_engine_query() {
        // The serving path (frozen views + shared fetch cache) answers the engine's
        // own personalized query bit-identically: same (query_seed = engine seed,
        // query_id = seed node) stream, same generation.
        let stream = edges(150, 917);
        let config = MonteCarloConfig::new(0.2, 4).with_seed(919);
        let mut engine = IncrementalPageRank::new_empty(150, config);
        engine.apply_arrivals(&stream);
        let expected = engine.personalized_top_k(NodeId(7), 5, 2_000);
        let serving = QueryEngine::new(engine, config.seed);
        let served = serving.handle().serve(
            7,
            &Query::PersonalizedTopK {
                seed: NodeId(7),
                k: 5,
                walk_length: 2_000,
                fetch_budget: None,
            },
        );
        assert_eq!(served.answer, Answer::Ranked(expected));
        assert!(served.fetches > 0);
        assert!(!served.budget_exhausted);
    }

    #[test]
    fn global_rank_orders_by_normalised_visit_counts() {
        let stream = edges(60, 921);
        let config = MonteCarloConfig::new(0.2, 3).with_seed(923);
        let mut engine = IncrementalPageRank::new_empty(60, config);
        engine.apply_arrivals(&stream);
        let scores = engine.scores();
        let serving = QueryEngine::new(engine, 5);
        let served = serving.handle().serve(0, &Query::GlobalTopK { k: 3 });
        let Answer::Ranked(top) = served.answer else {
            panic!("expected a ranked list");
        };
        assert_eq!(top.len(), 3);
        for pair in top.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
        for &(node, score) in &top {
            assert!((score - scores[node.index()]).abs() < 1e-12);
        }
    }

    #[test]
    fn pinned_readers_survive_later_commits_and_cache_is_per_generation() {
        let stream = edges(100, 927);
        let config = MonteCarloConfig::new(0.2, 3).with_seed(929);
        let engine = IncrementalPageRank::new_empty(100, config);
        let mut serving = QueryEngine::new(engine, 7);
        serving.commit_arrivals(&stream[..300.min(stream.len())]);
        let pinned = serving.pin();
        let query = Query::PersonalizedTopK {
            seed: NodeId(2),
            k: 4,
            walk_length: 1_500,
            fetch_budget: None,
        };
        let before = pinned.answer(7, 11, &query);
        // Keep writing: the pinned generation must not change under the reader.
        for chunk in stream[300.min(stream.len())..].chunks(64) {
            serving.commit_arrivals(chunk);
        }
        let after = pinned.answer(7, 11, &query);
        assert_eq!(before, after, "a pinned generation is immutable");
        assert!(
            pinned.cache_stats().hits > 0,
            "the second identical walk hits the generation cache"
        );
        // The current generation differs (the graph moved on).
        assert!(serving.pin().epoch() > pinned.epoch());
    }

    #[test]
    #[should_panic(expected = "need a PageRank generation")]
    fn personalized_queries_reject_salsa_generations() {
        let engine = IncrementalSalsa::new_empty(10, MonteCarloConfig::new(0.2, 2).with_seed(1));
        let serving = QueryEngine::new(engine, 0);
        let _ = serving.handle().serve(
            0,
            &Query::PersonalizedTopK {
                seed: NodeId(0),
                k: 3,
                walk_length: 100,
                fetch_budget: None,
            },
        );
    }

    #[test]
    #[should_panic(expected = "need a SALSA generation")]
    fn salsa_queries_reject_pagerank_generations() {
        let engine = IncrementalPageRank::new_empty(10, MonteCarloConfig::new(0.2, 2).with_seed(1));
        let serving = QueryEngine::new(engine, 0);
        let _ = serving.handle().serve(0, &Query::HubAuthorityTopK { k: 3 });
    }

    #[test]
    fn pipelined_commits_publish_the_same_generations_as_inline() {
        // Same stream, same seeds: a window-3 pipeline must publish, after a flush,
        // exactly the generation the inline committer publishes — epoch, walks,
        // graph, the lot.
        let stream = edges(110, 941);
        let config = MonteCarloConfig::new(0.2, 3).with_seed(943);
        let mut inline = QueryEngine::new(IncrementalPageRank::new_empty(110, config), 11);
        let mut piped =
            QueryEngine::new(IncrementalPageRank::new_empty(110, config), 11).with_pipeline(3);
        for (i, chunk) in stream.chunks(30).enumerate() {
            inline.commit_arrivals(chunk);
            piped.commit_arrivals(chunk);
            if i % 3 == 1 {
                let victims: Vec<Edge> = chunk.iter().copied().step_by(7).collect();
                inline.commit_deletions(&victims);
                piped.commit_deletions(&victims);
            }
        }
        piped.flush_commits();
        let a = inline.pin();
        let b = piped.pin();
        assert_eq!(a.epoch(), b.epoch(), "same number of commits published");
        assert_walks_equal(b.walks(), inline.engine().walk_store(), "piped final");
        for node in inline.engine().graph().nodes() {
            assert_eq!(
                b.graph().out_neighbors(node),
                a.graph().out_neighbors(node),
                "out-adjacency of {node}"
            );
            assert_eq!(
                b.graph().in_neighbors(node),
                a.graph().in_neighbors(node),
                "in-adjacency of {node}"
            );
        }
        let stats = piped.commit_stats();
        assert_eq!(stats.pipelined_commits, stats.commits);
        assert!(stats.commits > 0);
        assert_eq!(piped.pipeline_window(), 3);
        assert_eq!(inline.pipeline_window(), 0);
        // Tearing the serving layer down returns the engine intact.
        let engine = piped.into_engine();
        assert_walks_equal(a.walks(), engine.walk_store(), "returned engine");
    }

    #[test]
    fn a_one_edge_commit_copies_o1_leaf_chunks() {
        // The two-level spine regression guard: on a store hundreds of chunks wide,
        // publishing a 1-edge batch re-copies only the chunks the batch touched
        // (plus the spine blocks above them), never a constant fraction of the
        // store.
        let stream = edges(4_096, 947);
        let config = MonteCarloConfig::new(0.2, 3).with_seed(949);
        let mut engine = IncrementalPageRank::new_empty(4_096, config);
        engine.apply_arrivals(&stream);
        let total_chunks = engine.walk_store().node_count() * config.r / 32;
        assert!(total_chunks >= 256, "store too small to prove anything");

        let mut serving = QueryEngine::new(engine, 13);
        let one = [Edge::new(4_000, 17)];
        let update = serving.commit_arrivals(&one);
        let stats = serving.commit_stats();
        let leaf_copies = stats.walk_chunks_copied + stats.count_chunks_copied;
        // Each rewritten segment lives in one walk chunk and credits visit counts
        // along one path; the copy bill must track the rewrite count, not the store.
        assert!(
            leaf_copies <= 4 * update.segments_updated + 8,
            "a 1-edge batch copied {leaf_copies} leaf chunks for \
             {} rewritten segments (store has {total_chunks} walk chunks)",
            update.segments_updated
        );
        assert!(
            (leaf_copies as usize) < total_chunks / 4,
            "copy bill {leaf_copies} is not O(touched) against {total_chunks} chunks"
        );
        assert!(
            stats.spine_blocks_copied <= leaf_copies + stats.graph_chunks_copied + 6,
            "spine overhead {} exceeds one block per touched chunk family",
            stats.spine_blocks_copied
        );
        assert!(stats.graph_chunks_copied <= 2, "one edge touches two nodes");
    }

    // Span/counter contents only exist when recording is compiled in; the
    // bit-identity half is re-proven feature-independently by the scenario
    // corpus determinism test.
    #[cfg(feature = "telemetry")]
    #[test]
    fn telemetry_traces_commit_and_query_lifecycles_without_changing_answers() {
        let stream = edges(90, 951);
        let config = MonteCarloConfig::new(0.2, 3).with_seed(953);
        let query = Query::PersonalizedTopK {
            seed: NodeId(4),
            k: 4,
            walk_length: 1_200,
            fetch_budget: Some(64),
        };

        // Plain session: no telemetry attached.
        let mut plain = QueryEngine::new(IncrementalPageRank::new_empty(90, config), 21);
        for chunk in stream.chunks(30) {
            plain.commit_arrivals(chunk);
        }
        let expected = plain.handle().serve(5, &query);
        assert!(plain.telemetry_snapshot().is_none(), "nothing attached yet");

        // Traced session: identical stream and seeds, telemetry attached.
        let tele = ppr_telemetry::Telemetry::new();
        let mut traced =
            QueryEngine::new(IncrementalPageRank::new_empty(90, config), 21).with_telemetry(&tele);
        for chunk in stream.chunks(30) {
            traced.commit_arrivals(chunk);
        }
        let served = traced.handle().serve(5, &query);
        assert_eq!(served, expected, "tracing never changes an answer's bits");

        let snap = traced.telemetry_snapshot().expect("registry attached");
        // Commit lifecycle: one apply/mirror/publish sample per commit.
        let commits = snap.counter("commit.commits").expect("commit counters");
        assert_eq!(commits, traced.epoch());
        for stage in ["commit.apply", "commit.mirror", "commit.publish"] {
            let hist = snap.histogram(stage).expect(stage);
            assert_eq!(hist.count, commits, "{stage} samples one span per commit");
        }
        // In-memory engine: the WAL sync stage never runs.
        assert_eq!(snap.histogram("commit.wal_sync").expect("present").count, 0);
        // Query lifecycle: pin → walk → topk under one latency span, with
        // fetch accounting.
        assert_eq!(snap.counter("query.served"), Some(1));
        for stage in ["query.pin", "query.walk", "query.topk", "query.latency"] {
            assert_eq!(snap.histogram(stage).expect(stage).count, 1, "{stage}");
        }
        assert_eq!(
            snap.histogram("query.fetches").expect("fetches").sum,
            served.fetches
        );
        // One snapshot sees the engine layers and the serving layer together.
        assert!(snap.counter("store.fetches").is_some());
        assert!(snap.counter("arena.in_place_writes").is_some());
        assert!(snap.counter("cache.misses").is_some());
        assert_eq!(snap.gauge("serve.pipeline_window"), Some(0.0));

        // Attaching telemetry to a pipelined session bounces the pipeline and
        // traces the committer on its thread.
        let tele2 = ppr_telemetry::Telemetry::new();
        let mut piped = QueryEngine::new(IncrementalPageRank::new_empty(90, config), 21)
            .with_pipeline(2)
            .with_telemetry(&tele2);
        for chunk in stream.chunks(30) {
            piped.commit_arrivals(chunk);
        }
        piped.flush_commits();
        assert_eq!(piped.handle().serve(5, &query), expected);
        let snap = piped.telemetry_snapshot().expect("registry attached");
        assert_eq!(
            snap.histogram("commit.mirror").expect("mirror").count,
            piped.epoch(),
            "the commit thread records its stage spans"
        );
        assert_eq!(snap.gauge("serve.pipeline_window"), Some(2.0));
    }

    #[test]
    fn batched_serving_is_bit_identical_to_sequential() {
        // The tentpole invariant at the unit level: one pin + shared stitch
        // state + pooled scratch never changes an answer.  (The integration
        // harness re-proves this across store layouts and thread counts.)
        let stream = edges(120, 961);
        let config = MonteCarloConfig::new(0.2, 4).with_seed(963);
        let mut engine = IncrementalPageRank::new_empty(120, config);
        engine.apply_arrivals(&stream);
        let serving = QueryEngine::new(engine, 17);
        let handle = serving.handle();
        let jobs: Vec<(u64, Query)> = (0..32u64)
            .map(|qid| {
                (
                    qid,
                    Query::PersonalizedTopK {
                        // Duplicate seeds on purpose: the batch-local layer
                        // must share fetches without perturbing any walk.
                        seed: NodeId((qid % 7) as u32),
                        k: 4,
                        walk_length: 900,
                        fetch_budget: Some(150),
                    },
                )
            })
            .collect();
        let sequential: Vec<Served> = jobs.iter().map(|(qid, q)| handle.serve(*qid, q)).collect();
        let batch = QueryBatch::of(&jobs);
        // Same-thread batch path, twice: the second pass reuses pooled scratch.
        for pass in 0..2 {
            assert_eq!(handle.serve_batch(&batch), sequential, "pass {pass}");
        }
        // Fanned across a pool, at widths that exercise lane remainders.
        let pool = ReaderPool::new(3);
        assert_eq!(pool.serve_batch(&handle, &batch), sequential);
        // Mixed query kinds in one batch share the same context safely.
        let mut mixed = QueryBatch::new();
        mixed.push(100, Query::GlobalTopK { k: 5 });
        mixed.push(101, jobs[3].1.clone());
        mixed.push(102, Query::GlobalTopK { k: 2 });
        let mixed_seq: Vec<Served> = mixed
            .jobs
            .iter()
            .map(|(qid, q)| handle.serve(*qid, q))
            .collect();
        assert_eq!(handle.serve_batch(&mixed), mixed_seq);
        assert_eq!(pool.serve_batch(&handle, &mixed), mixed_seq);
        // Degenerate batches hold the shape.
        assert!(handle.serve_batch(&QueryBatch::new()).is_empty());
        assert!(pool.serve_batch(&handle, &QueryBatch::new()).is_empty());
    }

    #[test]
    fn deadline_budgets_cut_walks_deterministically_under_a_manual_clock() {
        use ppr_telemetry::ManualClock;
        let stream = edges(100, 971);
        let config = MonteCarloConfig::new(0.2, 3).with_seed(973);
        let mut engine = IncrementalPageRank::new_empty(100, config);
        engine.apply_arrivals(&stream);
        let serving = QueryEngine::new(engine, 19);
        let handle = serving.handle();
        let jobs: Vec<(u64, Query)> = (0..6u64)
            .map(|qid| {
                (
                    qid,
                    Query::PersonalizedTopK {
                        seed: NodeId(qid as u32),
                        k: 3,
                        walk_length: 800,
                        fetch_budget: None,
                    },
                )
            })
            .collect();
        let unbudgeted = handle.serve_batch(&QueryBatch::of(&jobs));

        // A frozen clock with a non-zero budget never expires: bit-identical.
        let frozen = Arc::new(ManualClock::new());
        let roomy = QueryBatch::of(&jobs).with_deadline(Arc::clone(&frozen) as _, 1);
        assert_eq!(handle.serve_batch(&roomy), unbudgeted);

        // Budget zero expires at the first fetch of every walk: partial answers,
        // the deadline flag set, the fetch-budget flag untouched — and the cut
        // is replayable bit-for-bit.
        let instant = QueryBatch::of(&jobs).with_deadline(Arc::clone(&frozen) as _, 0);
        let cut = handle.serve_batch(&instant);
        for served in &cut {
            assert!(served.deadline_exhausted, "query {}", served.query_id);
            assert!(!served.budget_exhausted);
            assert_eq!(served.fetches, 0, "expired before any fetch");
        }
        assert_eq!(handle.serve_batch(&instant), cut, "deterministic replay");
        let pool = ReaderPool::new(2);
        assert_eq!(pool.serve_batch(&handle, &instant), cut, "pool agrees");
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn batch_telemetry_counts_sizes_and_saved_fetches() {
        let stream = edges(90, 981);
        let config = MonteCarloConfig::new(0.2, 3).with_seed(983);
        let tele = ppr_telemetry::Telemetry::new();
        let mut serving =
            QueryEngine::new(IncrementalPageRank::new_empty(90, config), 23).with_telemetry(&tele);
        serving.commit_arrivals(&stream);
        let handle = serving.handle();
        // Eight walks from one seed: within a query the walker's own memory
        // dedups, but across queries the batch-local layer answers repeats.
        let jobs: Vec<(u64, Query)> = (0..8u64)
            .map(|qid| {
                (
                    qid,
                    Query::PersonalizedTopK {
                        seed: NodeId(1),
                        k: 3,
                        walk_length: 700,
                        fetch_budget: None,
                    },
                )
            })
            .collect();
        handle.serve_batch(&QueryBatch::of(&jobs));
        let snap = serving.telemetry_snapshot().expect("registry attached");
        let sizes = snap.histogram("query.batch_size").expect("batch sizes");
        assert_eq!(sizes.count, 1);
        assert_eq!(sizes.sum, 8);
        assert!(
            snap.counter("query.batch_fetch_saved").unwrap_or(0) > 0,
            "repeated seeds must hit the batch-local layer"
        );
        assert_eq!(snap.counter("query.deadline_exhausted"), Some(0));

        // An instantly-expiring deadline shows up on the exhaustion counter.
        let clock = Arc::new(ppr_telemetry::ManualClock::new());
        handle.serve_batch(&QueryBatch::of(&jobs[..2]).with_deadline(clock as _, 0));
        let snap = serving.telemetry_snapshot().expect("registry attached");
        assert_eq!(snap.counter("query.deadline_exhausted"), Some(2));
    }

    #[test]
    fn reader_pool_serves_batches_in_submission_order() {
        let stream = edges(80, 931);
        let config = MonteCarloConfig::new(0.2, 3).with_seed(933);
        let mut engine = IncrementalPageRank::new_empty(80, config);
        engine.apply_arrivals(&stream);
        let serving = QueryEngine::new(engine, 9);
        let jobs: Vec<(u64, Query)> = (0..24u64)
            .map(|qid| {
                (
                    qid,
                    Query::PersonalizedTopK {
                        seed: NodeId((qid % 13) as u32),
                        k: 3,
                        walk_length: 600,
                        fetch_budget: Some(200),
                    },
                )
            })
            .collect();
        let pool = ReaderPool::new(4);
        let served = pool.serve_all(&serving.handle(), &jobs);
        assert_eq!(served.len(), jobs.len());
        for (slot, s) in served.iter().enumerate() {
            assert_eq!(s.query_id, jobs[slot].0, "answers come back in order");
            // Single-threaded replay against the same generation is identical.
            let replay = serving.pin().answer(9, s.query_id, &jobs[slot].1);
            assert_eq!(*s, replay);
        }
    }
}
