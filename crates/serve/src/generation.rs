//! Generations and pinned views: the read side of the serving layer.
//!
//! A [`Generation`] is one committed state of the serving engine: an epoch number, a
//! frozen PageRank Store view, a frozen Social-Store adjacency view, and that
//! generation's shared [`FetchCache`].  Everything reachable from a generation is
//! immutable, so a reader *pins* one by cloning an `Arc` and then runs whole queries
//! without acquiring any lock: no step of a walk, no score lookup, no top-k sort
//! synchronises with the writer or with other readers.
//!
//! Every query answer is a pure function of `(generation, query_seed, query_id)` —
//! the RNG stream comes from [`ppr_core::query::query_rng`], the data from the
//! pinned generation — so a result served concurrently with a write stream is
//! bit-identical to the same query replayed against the same generation on a single
//! thread.  `tests/concurrent_serving.rs` holds the layer to exactly that contract.

use crate::cache::FetchCache;
use crate::telem::QuerySpans;
use ppr_core::query::query_rng;
use ppr_core::salsa::{personalized_authorities_on, salsa_estimates_from, top_k_scores};
use ppr_core::PersonalizedWalker;
use ppr_graph::{GraphView, NodeId};
use ppr_store::{AdjacencyFetch, FrozenGraph, FrozenWalks, WalkIndexView};
use std::collections::HashSet;
use std::sync::Arc;

/// Which engine family a generation snapshots — decides how its walk segments are
/// interpreted (plain PageRank segments vs `2R` alternating SALSA segments).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// `R` PageRank walk segments per node: personalized top-k and global rank.
    PageRank,
    /// `2R` alternating SALSA segments per node: hub/authority queries.
    Salsa,
}

/// One committed, immutable state of the serving engine.
#[derive(Debug)]
pub struct Generation {
    pub(crate) epoch: u64,
    pub(crate) kind: EngineKind,
    pub(crate) epsilon: f64,
    pub(crate) walks: FrozenWalks,
    pub(crate) graph: FrozenGraph,
    pub(crate) cache: FetchCache,
}

/// A reader's pinned generation: cheap to clone, lock-free to query.
#[derive(Debug, Clone)]
pub struct PinnedView(pub(crate) Arc<Generation>);

/// One query against a pinned generation.  All variants are answered from the
/// generation alone; results carry the epoch they were served from.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Personalized PageRank top-`k` by the stitched walker of Algorithm 1,
    /// excluding the seed and its direct friends, with an optional Corollary 9
    /// fetch budget (PageRank generations only).
    PersonalizedTopK {
        /// The personalization seed node.
        seed: NodeId,
        /// How many recommendations to return.
        k: usize,
        /// Walk length in visits (Equation 4 sets it from the target `k`).
        walk_length: usize,
        /// Optional cap on Social-Store fetches (Corollary 9 budget).
        fetch_budget: Option<u64>,
    },
    /// Global PageRank top-`k` by normalised visit counts (the Theorem 1
    /// estimator; PageRank generations only — SALSA rank is
    /// [`Query::HubAuthorityTopK`]).
    GlobalTopK {
        /// How many nodes to return.
        k: usize,
    },
    /// Personalized SALSA authorities for `seed`, excluding the seed and its
    /// friends (SALSA generations only).
    SalsaAuthorities {
        /// The personalization seed node.
        seed: NodeId,
        /// How many recommendations to return.
        k: usize,
        /// Walk length in visits of the direct alternating walk.
        walk_length: usize,
    },
    /// Global SALSA top hubs and authorities (SALSA generations only).
    HubAuthorityTopK {
        /// How many nodes per list.
        k: usize,
    },
}

/// The ranked payload of an answer.
#[derive(Debug, Clone, PartialEq)]
pub enum Answer {
    /// A single ranked `(node, score)` list.
    Ranked(Vec<(NodeId, f64)>),
    /// Two ranked lists: SALSA hubs and authorities.
    HubsAuthorities {
        /// Top hubs by normalised hub score.
        hubs: Vec<(NodeId, f64)>,
        /// Top authorities by normalised authority score.
        authorities: Vec<(NodeId, f64)>,
    },
}

/// One served query: the answer plus its serving metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Served {
    /// The query id whose stream the answer was drawn from.
    pub query_id: u64,
    /// The generation the query was pinned to.
    pub epoch: u64,
    /// Social-Store fetches the query spent (0 for non-walking queries).
    pub fetches: u64,
    /// Whether a fetch budget cut the walk short.
    pub budget_exhausted: bool,
    /// The ranked result.
    pub answer: Answer,
}

/// [`AdjacencyFetch`] over a pinned generation: fetches go through the
/// generation's shared cache, so hot hubs are materialised once per generation
/// instead of once per query.
struct CachedFetch<'a> {
    graph: &'a FrozenGraph,
    cache: &'a FetchCache,
}

impl AdjacencyFetch for CachedFetch<'_> {
    fn node_count(&self) -> usize {
        GraphView::node_count(self.graph)
    }

    fn fetch_out(&self, node: NodeId, out: &mut Vec<NodeId>) {
        let adj = self
            .cache
            .get_or_fill(node, || self.graph.shared_out_neighbors(node));
        out.clear();
        out.extend_from_slice(&adj);
    }
}

impl PinnedView {
    /// The pinned generation number.
    pub fn epoch(&self) -> u64 {
        self.0.epoch
    }

    /// The engine family this generation snapshots.
    pub fn kind(&self) -> EngineKind {
        self.0.kind
    }

    /// The frozen PageRank Store view.
    pub fn walks(&self) -> &FrozenWalks {
        &self.0.walks
    }

    /// The frozen Social-Store adjacency view.
    pub fn graph(&self) -> &FrozenGraph {
        &self.0.graph
    }

    /// This generation's shared fetched-adjacency cache statistics.
    pub fn cache_stats(&self) -> crate::cache::FetchCacheStats {
        self.0.cache.stats()
    }

    /// The seed node's exclusion set for recommender queries: itself plus its
    /// direct friends at this generation.
    fn friends_exclude(&self, seed: NodeId) -> HashSet<NodeId> {
        let mut exclude: HashSet<NodeId> = HashSet::new();
        exclude.insert(seed);
        exclude.extend(self.0.graph.out_neighbors(seed).iter().copied());
        exclude
    }

    /// Answers one query on the `(query_seed, query_id)` stream.  Pure in the
    /// pinned generation: any thread, any interleaving, same bits.
    pub fn answer(&self, query_seed: u64, query_id: u64, query: &Query) -> Served {
        self.answer_instrumented(query_seed, query_id, query, None)
    }

    /// [`PinnedView::answer`] with optional query-lifecycle instruments: the
    /// walk and top-k phases are timed (`query.walk` / `query.topk`), and the
    /// served / fetch / budget-exhaustion counters recorded.  Instrumentation
    /// only observes — the returned [`Served`] is bit-identical to the
    /// uninstrumented call.
    pub(crate) fn answer_instrumented(
        &self,
        query_seed: u64,
        query_id: u64,
        query: &Query,
        spans: Option<&QuerySpans>,
    ) -> Served {
        let generation = &*self.0;
        let served = match *query {
            Query::PersonalizedTopK {
                seed,
                k,
                walk_length,
                fetch_budget,
            } => {
                assert_eq!(
                    generation.kind,
                    EngineKind::PageRank,
                    "personalized PageRank queries need a PageRank generation \
                     (SALSA generations store 2R alternating segments)"
                );
                let store = CachedFetch {
                    graph: &generation.graph,
                    cache: &generation.cache,
                };
                let mut walker =
                    PersonalizedWalker::new(&store, &generation.walks, generation.epsilon, 0);
                if let Some(budget) = fetch_budget {
                    walker = walker.with_fetch_budget(budget);
                }
                let result = {
                    let _walk = spans.map(|s| s.tele.time(&s.walk));
                    walker.walk_query(seed, walk_length, query_seed, query_id)
                };
                let _topk = spans.map(|s| s.tele.time(&s.topk));
                let exclude = self.friends_exclude(seed);
                Served {
                    query_id,
                    epoch: generation.epoch,
                    fetches: result.fetches,
                    budget_exhausted: result.budget_exhausted,
                    answer: Answer::Ranked(result.top_k(k, &exclude)),
                }
            }
            Query::GlobalTopK { k } => {
                assert_eq!(
                    generation.kind,
                    EngineKind::PageRank,
                    "global-rank queries need a PageRank generation (for SALSA, \
                     hub/authority rank is HubAuthorityTopK)"
                );
                let _topk = spans.map(|s| s.tele.time(&s.topk));
                let counts = generation.walks.visit_counts();
                let total = generation.walks.total_visits().max(1) as f64;
                let scores: Vec<f64> = counts.iter().map(|&c| c as f64 / total).collect();
                Served {
                    query_id,
                    epoch: generation.epoch,
                    fetches: 0,
                    budget_exhausted: false,
                    answer: Answer::Ranked(top_k_scores(&scores, &HashSet::new(), k)),
                }
            }
            Query::SalsaAuthorities {
                seed,
                k,
                walk_length,
            } => {
                assert_eq!(
                    generation.kind,
                    EngineKind::Salsa,
                    "SALSA queries need a SALSA generation"
                );
                let mut rng = query_rng(query_seed, query_id);
                let scores = {
                    let _walk = spans.map(|s| s.tele.time(&s.walk));
                    personalized_authorities_on(
                        &generation.graph,
                        seed,
                        walk_length,
                        generation.epsilon,
                        &mut rng,
                    )
                };
                let _topk = spans.map(|s| s.tele.time(&s.topk));
                let exclude: HashSet<usize> = self
                    .friends_exclude(seed)
                    .into_iter()
                    .map(|n| n.index())
                    .collect();
                Served {
                    query_id,
                    epoch: generation.epoch,
                    fetches: 0,
                    budget_exhausted: false,
                    answer: Answer::Ranked(top_k_scores(&scores, &exclude, k)),
                }
            }
            Query::HubAuthorityTopK { k } => {
                assert_eq!(
                    generation.kind,
                    EngineKind::Salsa,
                    "SALSA queries need a SALSA generation"
                );
                let _topk = spans.map(|s| s.tele.time(&s.topk));
                let estimates = salsa_estimates_from(&generation.walks);
                let none = HashSet::new();
                Served {
                    query_id,
                    epoch: generation.epoch,
                    fetches: 0,
                    budget_exhausted: false,
                    answer: Answer::HubsAuthorities {
                        hubs: top_k_scores(&estimates.hubs, &none, k),
                        authorities: top_k_scores(&estimates.authorities, &none, k),
                    },
                }
            }
        };
        if let Some(s) = spans {
            s.fetches.record(served.fetches);
            s.served.inc();
            if served.budget_exhausted {
                s.budget_exhausted.inc();
            }
        }
        served
    }
}
