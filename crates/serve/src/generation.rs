//! Generations and pinned views: the read side of the serving layer.
//!
//! A [`Generation`] is one committed state of the serving engine: an epoch number, a
//! frozen PageRank Store view, a frozen Social-Store adjacency view, and that
//! generation's shared [`FetchCache`].  Everything reachable from a generation is
//! immutable, so a reader *pins* one by cloning an `Arc` and then runs whole queries
//! without acquiring any lock: no step of a walk, no score lookup, no top-k sort
//! synchronises with the writer or with other readers.
//!
//! Every query answer is a pure function of `(generation, query_seed, query_id)` —
//! the RNG stream comes from [`ppr_core::query::query_rng`], the data from the
//! pinned generation — so a result served concurrently with a write stream is
//! bit-identical to the same query replayed against the same generation on a single
//! thread.  `tests/concurrent_serving.rs` holds the layer to exactly that contract.

use crate::batch::{DeadlineBudget, StitchContext, StitchFetch};
use crate::cache::FetchCache;
use crate::telem::QuerySpans;
use ppr_core::query::query_rng;
use ppr_core::salsa::{personalized_authorities_on, salsa_estimates_from, top_k_scores};
use ppr_core::PersonalizedWalker;
use ppr_graph::{GraphView, NodeId};
use ppr_store::{FrozenGraph, FrozenWalks, WalkIndexView};
use std::cell::{Cell, RefCell};
use std::collections::HashSet;
use std::sync::Arc;

/// Which engine family a generation snapshots — decides how its walk segments are
/// interpreted (plain PageRank segments vs `2R` alternating SALSA segments).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// `R` PageRank walk segments per node: personalized top-k and global rank.
    PageRank,
    /// `2R` alternating SALSA segments per node: hub/authority queries.
    Salsa,
}

/// One committed, immutable state of the serving engine.
#[derive(Debug)]
pub struct Generation {
    pub(crate) epoch: u64,
    pub(crate) kind: EngineKind,
    pub(crate) epsilon: f64,
    pub(crate) walks: FrozenWalks,
    pub(crate) graph: FrozenGraph,
    pub(crate) cache: FetchCache,
}

/// A reader's pinned generation: cheap to clone, lock-free to query.
#[derive(Debug, Clone)]
pub struct PinnedView(pub(crate) Arc<Generation>);

/// One query against a pinned generation.  All variants are answered from the
/// generation alone; results carry the epoch they were served from.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Personalized PageRank top-`k` by the stitched walker of Algorithm 1,
    /// excluding the seed and its direct friends, with an optional Corollary 9
    /// fetch budget (PageRank generations only).
    PersonalizedTopK {
        /// The personalization seed node.
        seed: NodeId,
        /// How many recommendations to return.
        k: usize,
        /// Walk length in visits (Equation 4 sets it from the target `k`).
        walk_length: usize,
        /// Optional cap on Social-Store fetches (Corollary 9 budget).
        fetch_budget: Option<u64>,
    },
    /// Global PageRank top-`k` by normalised visit counts (the Theorem 1
    /// estimator; PageRank generations only — SALSA rank is
    /// [`Query::HubAuthorityTopK`]).
    GlobalTopK {
        /// How many nodes to return.
        k: usize,
    },
    /// Personalized SALSA authorities for `seed`, excluding the seed and its
    /// friends (SALSA generations only).
    SalsaAuthorities {
        /// The personalization seed node.
        seed: NodeId,
        /// How many recommendations to return.
        k: usize,
        /// Walk length in visits of the direct alternating walk.
        walk_length: usize,
    },
    /// Global SALSA top hubs and authorities (SALSA generations only).
    HubAuthorityTopK {
        /// How many nodes per list.
        k: usize,
    },
}

/// The ranked payload of an answer.
#[derive(Debug, Clone, PartialEq)]
pub enum Answer {
    /// A single ranked `(node, score)` list.
    Ranked(Vec<(NodeId, f64)>),
    /// Two ranked lists: SALSA hubs and authorities.
    HubsAuthorities {
        /// Top hubs by normalised hub score.
        hubs: Vec<(NodeId, f64)>,
        /// Top authorities by normalised authority score.
        authorities: Vec<(NodeId, f64)>,
    },
}

/// One served query: the answer plus its serving metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Served {
    /// The query id whose stream the answer was drawn from.
    pub query_id: u64,
    /// The generation the query was pinned to.
    pub epoch: u64,
    /// Social-Store fetches the query spent (0 for non-walking queries).
    pub fetches: u64,
    /// Whether a fetch budget cut the walk short.
    pub budget_exhausted: bool,
    /// Whether a deadline budget cut the walk short (batched serving's per-query
    /// time budget; partial results carry the prefix the deadline paid for).
    pub deadline_exhausted: bool,
    /// The ranked result.
    pub answer: Answer,
}

impl PinnedView {
    /// The pinned generation number.
    pub fn epoch(&self) -> u64 {
        self.0.epoch
    }

    /// The engine family this generation snapshots.
    pub fn kind(&self) -> EngineKind {
        self.0.kind
    }

    /// The frozen PageRank Store view.
    pub fn walks(&self) -> &FrozenWalks {
        &self.0.walks
    }

    /// The frozen Social-Store adjacency view.
    pub fn graph(&self) -> &FrozenGraph {
        &self.0.graph
    }

    /// This generation's shared fetched-adjacency cache statistics.
    pub fn cache_stats(&self) -> crate::cache::FetchCacheStats {
        self.0.cache.stats()
    }

    /// Rebuilds the seed node's exclusion set for recommender queries — itself
    /// plus its direct friends at this generation — into a reusable allocation.
    fn friends_exclude_into(&self, seed: NodeId, exclude: &mut HashSet<NodeId>) {
        exclude.clear();
        exclude.insert(seed);
        exclude.extend(self.0.graph.out_neighbors(seed).iter().copied());
    }

    /// Answers one query on the `(query_seed, query_id)` stream.  Pure in the
    /// pinned generation: any thread, any interleaving, same bits.
    pub fn answer(&self, query_seed: u64, query_id: u64, query: &Query) -> Served {
        self.answer_instrumented(query_seed, query_id, query, None)
    }

    /// [`PinnedView::answer`] with optional query-lifecycle instruments: the
    /// walk and top-k phases are timed (`query.walk` / `query.topk`), and the
    /// served / fetch / budget-exhaustion counters recorded.  Instrumentation
    /// only observes — the returned [`Served`] is bit-identical to the
    /// uninstrumented call.
    pub(crate) fn answer_instrumented(
        &self,
        query_seed: u64,
        query_id: u64,
        query: &Query,
        spans: Option<&QuerySpans>,
    ) -> Served {
        // A throwaway context: empty maps and vectors cost nothing until the
        // query fills them, exactly like the per-query buffers this path always
        // allocated.  The batch entry points pass a pooled context instead.
        let mut ctx = StitchContext::default();
        self.answer_in_context(query_seed, query_id, query, &mut ctx, None, spans)
    }

    /// The shared execution core behind [`PinnedView::answer`] and the batched
    /// entry points: answers one query *through* a [`StitchContext`] — the
    /// batch-local fetch layer plus pooled per-query scratch — with an optional
    /// per-query [`DeadlineBudget`].  Every buffer in `ctx` is reset before use
    /// and the fetch layers only change where adjacency bytes come from, so the
    /// answer is bit-identical to a context-free, deadline-free serve of the
    /// same `(generation, query_seed, query_id)` — unless the deadline actually
    /// expires, which (by construction) cannot happen with `deadline: None`.
    pub(crate) fn answer_in_context(
        &self,
        query_seed: u64,
        query_id: u64,
        query: &Query,
        ctx: &mut StitchContext,
        deadline: Option<&DeadlineBudget>,
        spans: Option<&QuerySpans>,
    ) -> Served {
        let generation = &*self.0;
        let served = match *query {
            Query::PersonalizedTopK {
                seed,
                k,
                walk_length,
                fetch_budget,
            } => {
                assert_eq!(
                    generation.kind,
                    EngineKind::PageRank,
                    "personalized PageRank queries need a PageRank generation \
                     (SALSA generations store 2R alternating segments)"
                );
                let store = StitchFetch {
                    graph: &generation.graph,
                    cache: &generation.cache,
                    local: RefCell::new(&mut ctx.local),
                    saved: Cell::new(0),
                };
                let mut walker =
                    PersonalizedWalker::new(&store, &generation.walks, generation.epsilon, 0);
                if let Some(budget) = fetch_budget {
                    walker = walker.with_fetch_budget(budget);
                }
                if let Some(deadline) = deadline {
                    walker = walker.with_deadline_budget(&*deadline.clock, deadline.budget_nanos);
                }
                {
                    let _walk = spans.map(|s| s.tele.time(&s.walk));
                    walker.walk_query_into(
                        seed,
                        walk_length,
                        query_seed,
                        query_id,
                        &mut ctx.walk,
                        &mut ctx.result,
                    );
                }
                let _topk = spans.map(|s| s.tele.time(&s.topk));
                self.friends_exclude_into(seed, &mut ctx.exclude);
                let answer = Answer::Ranked(ctx.result.top_k_with(k, &ctx.exclude, &mut ctx.topk));
                ctx.saved += store.saved.get();
                Served {
                    query_id,
                    epoch: generation.epoch,
                    fetches: ctx.result.fetches,
                    budget_exhausted: ctx.result.budget_exhausted,
                    deadline_exhausted: ctx.result.deadline_exhausted,
                    answer,
                }
            }
            Query::GlobalTopK { k } => {
                assert_eq!(
                    generation.kind,
                    EngineKind::PageRank,
                    "global-rank queries need a PageRank generation (for SALSA, \
                     hub/authority rank is HubAuthorityTopK)"
                );
                let _topk = spans.map(|s| s.tele.time(&s.topk));
                let counts = generation.walks.visit_counts();
                let total = generation.walks.total_visits().max(1) as f64;
                ctx.scores.clear();
                ctx.scores.extend(counts.iter().map(|&c| c as f64 / total));
                ctx.exclude_indices.clear();
                Served {
                    query_id,
                    epoch: generation.epoch,
                    fetches: 0,
                    budget_exhausted: false,
                    deadline_exhausted: false,
                    answer: Answer::Ranked(top_k_scores(&ctx.scores, &ctx.exclude_indices, k)),
                }
            }
            Query::SalsaAuthorities {
                seed,
                k,
                walk_length,
            } => {
                assert_eq!(
                    generation.kind,
                    EngineKind::Salsa,
                    "SALSA queries need a SALSA generation"
                );
                let mut rng = query_rng(query_seed, query_id);
                let scores = {
                    let _walk = spans.map(|s| s.tele.time(&s.walk));
                    personalized_authorities_on(
                        &generation.graph,
                        seed,
                        walk_length,
                        generation.epsilon,
                        &mut rng,
                    )
                };
                let _topk = spans.map(|s| s.tele.time(&s.topk));
                self.friends_exclude_into(seed, &mut ctx.exclude);
                ctx.exclude_indices.clear();
                ctx.exclude_indices
                    .extend(ctx.exclude.iter().map(|n| n.index()));
                Served {
                    query_id,
                    epoch: generation.epoch,
                    fetches: 0,
                    budget_exhausted: false,
                    deadline_exhausted: false,
                    answer: Answer::Ranked(top_k_scores(&scores, &ctx.exclude_indices, k)),
                }
            }
            Query::HubAuthorityTopK { k } => {
                assert_eq!(
                    generation.kind,
                    EngineKind::Salsa,
                    "SALSA queries need a SALSA generation"
                );
                let _topk = spans.map(|s| s.tele.time(&s.topk));
                let estimates = salsa_estimates_from(&generation.walks);
                ctx.exclude_indices.clear();
                Served {
                    query_id,
                    epoch: generation.epoch,
                    fetches: 0,
                    budget_exhausted: false,
                    deadline_exhausted: false,
                    answer: Answer::HubsAuthorities {
                        hubs: top_k_scores(&estimates.hubs, &ctx.exclude_indices, k),
                        authorities: top_k_scores(&estimates.authorities, &ctx.exclude_indices, k),
                    },
                }
            }
        };
        if let Some(s) = spans {
            s.fetches.record(served.fetches);
            s.served.inc();
            if served.budget_exhausted {
                s.budget_exhausted.inc();
            }
            if served.deadline_exhausted {
                s.deadline_exhausted.inc();
            }
        }
        served
    }
}
