//! Telemetry adapters and span bundles for the serving layer.
//!
//! [`MetricSource`] impls for [`CommitStats`] and [`FetchCacheStats`], plus
//! two crate-private pre-created span bundles the hot paths use: `CommitSpans`
//! times the commit lifecycle (`commit.apply` → `commit.mirror` →
//! `commit.wal_sync` → `commit.publish`) and `QuerySpans` times the query lifecycle
//! (`query.pin` → `query.walk` → `query.topk`, under an overall
//! `query.latency`) and counts served queries, fetches, budget/deadline
//! exhaustions, and the batch-serving instruments (`query.batch_size`,
//! `query.batch_fetch_saved`).  Both bundles hold [`Histogram`]/[`Counter`] handles created
//! once at [`crate::QueryEngine::with_telemetry`] time, so recording on the
//! hot path is handle-local — no registry lock, no allocation.

use crate::cache::FetchCacheStats;
use crate::engine::CommitStats;
use ppr_telemetry::{Counter, Histogram, MetricSource, SnapshotBuilder, Telemetry};

impl MetricSource for CommitStats {
    fn emit(&self, out: &mut SnapshotBuilder) {
        out.counter("commits", self.commits);
        out.counter("pipelined_commits", self.pipelined_commits);
        out.gauge("max_inflight", self.max_inflight as f64);
        out.counter("walk_chunks_copied", self.walk_chunks_copied);
        out.counter("count_chunks_copied", self.count_chunks_copied);
        out.counter("graph_chunks_copied", self.graph_chunks_copied);
        out.counter("spine_blocks_copied", self.spine_blocks_copied);
        out.counter("wal_fsyncs", self.wal_fsyncs);
        out.counter("wal_appends_synced", self.wal_appends_synced);
        out.ratio(
            "wal_appends_per_fsync",
            self.wal_appends_synced,
            self.wal_fsyncs,
        );
    }
}

impl MetricSource for FetchCacheStats {
    fn emit(&self, out: &mut SnapshotBuilder) {
        out.counter("hits", self.hits);
        out.counter("misses", self.misses);
        out.ratio("hit_rate", self.hits, self.hits + self.misses);
    }
}

/// Pre-created histograms for the commit lifecycle stages.  One bundle lives on
/// the writer (`commit.apply` wraps the engine apply) and a clone lives on the
/// committer — inline or on the commit thread — timing the mirror advance, the
/// coalesced WAL sync, and the generation publish/reclaim swap.
#[derive(Debug, Clone)]
pub(crate) struct CommitSpans {
    pub(crate) tele: Telemetry,
    /// `commit.apply`: applying the batch to the live engine + recording ops.
    pub(crate) apply: Histogram,
    /// `commit.mirror`: replaying recorded ops + edges onto the COW mirror.
    pub(crate) mirror: Histogram,
    /// `commit.wal_sync`: the coalesced group-commit `fdatasync` (durable only).
    pub(crate) wal_sync: Histogram,
    /// `commit.publish`: the generation swap plus ping-pong buffer reclaim.
    pub(crate) publish: Histogram,
}

impl CommitSpans {
    pub(crate) fn new(tele: &Telemetry) -> Self {
        CommitSpans {
            apply: tele.histogram("commit.apply"),
            mirror: tele.histogram("commit.mirror"),
            wal_sync: tele.histogram("commit.wal_sync"),
            publish: tele.histogram("commit.publish"),
            tele: tele.clone(),
        }
    }
}

/// Pre-created instruments for the query lifecycle, shared by every
/// [`crate::ServeHandle`] clone of a session (readers on any thread record into
/// the same sharded cells).
#[derive(Debug)]
pub(crate) struct QuerySpans {
    pub(crate) tele: Telemetry,
    /// `query.pin`: pinning the current generation (one lock + `Arc` clone).
    pub(crate) pin: Histogram,
    /// `query.walk`: the stitched/direct walk phase (walking queries only).
    pub(crate) walk: Histogram,
    /// `query.topk`: scoring, exclusion, and top-k selection.
    pub(crate) topk: Histogram,
    /// `query.latency`: the whole serve call, pin included.
    pub(crate) latency: Histogram,
    /// `query.fetches`: Social-Store fetches per query (Corollary 9 budget).
    pub(crate) fetches: Histogram,
    /// `query.served`: queries answered.
    pub(crate) served: Counter,
    /// `query.budget_exhausted`: walks cut short by their fetch budget.
    pub(crate) budget_exhausted: Counter,
    /// `query.deadline_exhausted`: walks cut short by their deadline budget.
    pub(crate) deadline_exhausted: Counter,
    /// `query.batch_size`: queries per served batch.
    pub(crate) batch_size: Histogram,
    /// `query.batch_fetch_saved`: fetches answered by a batch-local stitch layer.
    pub(crate) batch_fetch_saved: Counter,
}

impl QuerySpans {
    pub(crate) fn new(tele: &Telemetry) -> Self {
        QuerySpans {
            pin: tele.histogram("query.pin"),
            walk: tele.histogram("query.walk"),
            topk: tele.histogram("query.topk"),
            latency: tele.histogram("query.latency"),
            fetches: tele.histogram("query.fetches"),
            served: tele.counter("query.served"),
            budget_exhausted: tele.counter("query.budget_exhausted"),
            deadline_exhausted: tele.counter("query.deadline_exhausted"),
            batch_size: tele.histogram("query.batch_size"),
            batch_fetch_saved: tele.counter("query.batch_fetch_saved"),
            tele: tele.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_telemetry::TelemetrySnapshot;

    #[test]
    fn commit_stats_emit_counters_and_coalescing_ratio() {
        let stats = CommitStats {
            commits: 4,
            wal_fsyncs: 2,
            wal_appends_synced: 8,
            ..CommitStats::default()
        };
        let mut out = SnapshotBuilder::new();
        out.source("commit", &stats);
        let snap = TelemetrySnapshot::from_builder(0, out);
        assert_eq!(snap.counter("commit.commits"), Some(4));
        assert_eq!(snap.gauge("commit.wal_appends_per_fsync"), Some(4.0));
    }

    #[test]
    fn fetch_cache_hit_rate_guards_the_empty_cache() {
        let mut out = SnapshotBuilder::new();
        out.source("cache", &FetchCacheStats::default());
        let snap = TelemetrySnapshot::from_builder(0, out);
        assert_eq!(snap.gauge("cache.hit_rate"), Some(0.0));

        let stats = FetchCacheStats { hits: 3, misses: 1 };
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
        let mut out = SnapshotBuilder::new();
        out.source("cache", &stats);
        let snap = TelemetrySnapshot::from_builder(0, out);
        assert_eq!(snap.gauge("cache.hit_rate"), Some(0.75));
    }
}
