//! A small fixed-size reader pool for serving queries.
//!
//! Workers pull boxed jobs off a shared channel; [`ReaderPool::serve_all`] fans a
//! query batch out over the pool and returns the answers in submission order.
//! Because every answer is a pure function of `(pinned generation, query_seed,
//! query_id)`, the pool's scheduling — which worker runs which query, in which
//! order, overlapping which commits — can never change a result, only its latency.

use crate::batch::{QueryBatch, StitchContext};
use crate::engine::ServeHandle;
use crate::generation::{Query, Served};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed pool of reader threads answering queries from a [`ServeHandle`].
#[derive(Debug)]
pub struct ReaderPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ReaderPool {
    /// Spawns `threads` reader workers.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "need at least one reader thread");
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..threads)
            .map(|i| {
                let rx: Arc<Mutex<Receiver<Job>>> = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("ppr-reader-{i}"))
                    .spawn(move || loop {
                        let job = rx.lock().expect("reader queue poisoned").recv();
                        match job {
                            Ok(job) => job(),
                            Err(_) => break, // pool dropped: drain and exit
                        }
                    })
                    .expect("spawn reader thread")
            })
            .collect();
        ReaderPool {
            tx: Some(tx),
            workers,
        }
    }

    /// Number of reader threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Submits one job to the pool.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.tx
            .as_ref()
            .expect("pool is shutting down")
            .send(Box::new(job))
            .expect("reader pool workers gone");
    }

    /// Serves `queries` — `(query_id, query)` pairs — across the pool, each query
    /// pinning the handle's current generation when a worker picks it up.  Returns
    /// the answers in submission order.
    pub fn serve_all(&self, handle: &ServeHandle, queries: &[(u64, Query)]) -> Vec<Served> {
        let (done_tx, done_rx) = channel::<(usize, Served)>();
        for (slot, (query_id, query)) in queries.iter().enumerate() {
            let handle = handle.clone();
            let done = done_tx.clone();
            let query = query.clone();
            let query_id = *query_id;
            self.execute(move || {
                let served = handle.serve(query_id, &query);
                let _ = done.send((slot, served));
            });
        }
        drop(done_tx);
        let mut out: Vec<Option<Served>> = vec![None; queries.len()];
        for (slot, served) in done_rx {
            out[slot] = Some(served);
        }
        out.into_iter()
            .map(|s| s.expect("every submitted query reports back"))
            .collect()
    }

    /// Serves a [`QueryBatch`] across the pool under **one** generation pin.
    ///
    /// The batch is split into `min(threads, len)` lanes by the deterministic
    /// assignment `lane = slot % lanes` — which worker answers which query is
    /// fixed by the batch shape, never by scheduling.  Each lane runs its
    /// queries through one pooled [`StitchContext`] (batch-local fetch layer +
    /// reusable scratch), and answers return in submission order.  Because each
    /// answer is a pure function of `(pinned generation, query_seed, query_id)`,
    /// the results are bit-identical to [`ReaderPool::serve_all`] and to
    /// [`ServeHandle::serve_batch`] — lanes change who pays which fetch, never
    /// any answer (absent an expiring deadline).
    pub fn serve_batch(&self, handle: &ServeHandle, batch: &QueryBatch) -> Vec<Served> {
        let spans = handle.query_spans().map(Arc::clone);
        if let Some(s) = spans.as_deref() {
            s.batch_size.record(batch.len() as u64);
        }
        let view = {
            let _pin = spans.as_deref().map(|s| s.tele.time(&s.pin));
            handle.pin()
        };
        let lanes = self.threads().min(batch.len().max(1));
        let (done_tx, done_rx) = channel::<(Vec<(usize, Served)>, StitchContext)>();
        for lane in 0..lanes {
            let jobs: Vec<(usize, u64, Query)> = batch
                .jobs
                .iter()
                .enumerate()
                .filter(|(slot, _)| slot % lanes == lane)
                .map(|(slot, (query_id, query))| (slot, *query_id, query.clone()))
                .collect();
            let view = view.clone();
            let deadline = batch.deadline.clone();
            let spans = spans.clone();
            let query_seed = handle.query_seed();
            let mut ctx = handle.scratch_pool().take();
            let done = done_tx.clone();
            self.execute(move || {
                ctx.begin_batch();
                let spans = spans.as_deref();
                let mut results = Vec::with_capacity(jobs.len());
                for (slot, query_id, query) in jobs {
                    let _latency = spans.map(|s| s.tele.time(&s.latency));
                    let served = view.answer_in_context(
                        query_seed,
                        query_id,
                        &query,
                        &mut ctx,
                        deadline.as_ref(),
                        spans,
                    );
                    results.push((slot, served));
                }
                let _ = done.send((results, ctx));
            });
        }
        drop(done_tx);
        let mut out: Vec<Option<Served>> = vec![None; batch.len()];
        for (results, ctx) in done_rx {
            if let Some(s) = spans.as_deref() {
                s.batch_fetch_saved.add(ctx.saved());
            }
            handle.scratch_pool().put(ctx);
            for (slot, served) in results {
                out[slot] = Some(served);
            }
        }
        out.into_iter()
            .map(|s| s.expect("every batch lane reports back"))
            .collect()
    }
}

impl Drop for ReaderPool {
    fn drop(&mut self) {
        drop(self.tx.take()); // close the queue; workers drain and exit
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}
