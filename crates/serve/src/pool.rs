//! A small fixed-size reader pool for serving queries.
//!
//! Workers pull boxed jobs off a shared channel; [`ReaderPool::serve_all`] fans a
//! query batch out over the pool and returns the answers in submission order.
//! Because every answer is a pure function of `(pinned generation, query_seed,
//! query_id)`, the pool's scheduling — which worker runs which query, in which
//! order, overlapping which commits — can never change a result, only its latency.

use crate::engine::ServeHandle;
use crate::generation::{Query, Served};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed pool of reader threads answering queries from a [`ServeHandle`].
#[derive(Debug)]
pub struct ReaderPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ReaderPool {
    /// Spawns `threads` reader workers.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "need at least one reader thread");
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..threads)
            .map(|i| {
                let rx: Arc<Mutex<Receiver<Job>>> = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("ppr-reader-{i}"))
                    .spawn(move || loop {
                        let job = rx.lock().expect("reader queue poisoned").recv();
                        match job {
                            Ok(job) => job(),
                            Err(_) => break, // pool dropped: drain and exit
                        }
                    })
                    .expect("spawn reader thread")
            })
            .collect();
        ReaderPool {
            tx: Some(tx),
            workers,
        }
    }

    /// Number of reader threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Submits one job to the pool.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.tx
            .as_ref()
            .expect("pool is shutting down")
            .send(Box::new(job))
            .expect("reader pool workers gone");
    }

    /// Serves `queries` — `(query_id, query)` pairs — across the pool, each query
    /// pinning the handle's current generation when a worker picks it up.  Returns
    /// the answers in submission order.
    pub fn serve_all(&self, handle: &ServeHandle, queries: &[(u64, Query)]) -> Vec<Served> {
        let (done_tx, done_rx) = channel::<(usize, Served)>();
        for (slot, (query_id, query)) in queries.iter().enumerate() {
            let handle = handle.clone();
            let done = done_tx.clone();
            let query = query.clone();
            let query_id = *query_id;
            self.execute(move || {
                let served = handle.serve(query_id, &query);
                let _ = done.send((slot, served));
            });
        }
        drop(done_tx);
        let mut out: Vec<Option<Served>> = vec![None; queries.len()];
        for (slot, served) in done_rx {
            out[slot] = Some(served);
        }
        out.into_iter()
            .map(|s| s.expect("every submitted query reports back"))
            .collect()
    }
}

impl Drop for ReaderPool {
    fn drop(&mut self) {
        drop(self.tx.take()); // close the queue; workers drain and exit
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}
