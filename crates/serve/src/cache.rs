//! The shared fetched-adjacency cache of one generation.
//!
//! In the paper's cost model a personalized query pays one *fetch* per distinct node
//! it explores, and Figure 6 shows the fetch sets of different queries overlap
//! heavily (hubs are fetched by almost everyone).  Within one generation the fetched
//! adjacency is immutable, so queries pinned to the same generation can share it:
//! the first fetch of a node materialises its out-adjacency as an `Arc<Vec<NodeId>>`,
//! every later fetch — from any reader thread — clones the `Arc`.
//!
//! Invalidation is by construction rather than by bookkeeping: the cache lives
//! *inside* its [`crate::Generation`], so publishing the next generation starts an
//! empty cache and the old one dies with the last query still pinned to it.  A
//! reader can therefore never observe adjacency from a different generation than the
//! walk data it reads — the failure mode a shared cross-generation cache would have.
//!
//! The cache only affects where the bytes come from, never their values, so cached
//! and uncached serving are bit-identical; hit/miss counters are observability only.

use ppr_graph::NodeId;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Cumulative hit/miss counters of a [`FetchCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FetchCacheStats {
    /// Fetches answered from the shared cache.
    pub hits: u64,
    /// Fetches that materialised the adjacency (first fetch of a node this
    /// generation).
    pub misses: u64,
}

impl FetchCacheStats {
    /// Fraction of fetches answered from the shared cache — `0.0` for a cache
    /// nothing has fetched through yet, never `NaN`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A per-generation memo of materialised out-adjacency, shared by every query
/// pinned to that generation.
#[derive(Debug, Default)]
pub struct FetchCache {
    map: RwLock<HashMap<NodeId, Arc<Vec<NodeId>>>>,
    // Monotone accumulators bumped by any reader thread and read racily by
    // `stats()`: `Relaxed` is enough because no control flow ever depends on
    // them and a snapshot only needs eventually-complete counts, not a
    // cross-counter consistent cut.
    hits: AtomicU64,
    misses: AtomicU64,
}

impl FetchCache {
    /// An empty cache (one per generation).
    pub fn new() -> Self {
        FetchCache::default()
    }

    /// Returns `node`'s cached adjacency, materialising it through `fill` on first
    /// use.  Hits take only the read lock, so readers hitting the cache never
    /// serialise; `fill` runs outside any lock (within one generation every fill of
    /// a node produces the identical immutable value, so a racing fill is wasted
    /// work, never a wrong answer — the first insert wins and all callers share it).
    ///
    /// Single-probe discipline (the `PageCache::read_page` shape): each lock
    /// acquisition does exactly one map probe, the hit counter is bumped after the
    /// read guard is released, and the hit/miss decision is made at the probe that
    /// returns the data.  On the miss path the one write-lock `entry` probe both
    /// inserts and classifies: a racing fill that won between the two locks counts
    /// as a hit, so `misses` is exactly the number of adjacency materialisations
    /// this generation — the fetches-per-query denominator the batched-serving
    /// bench reads off [`FetchCacheStats`].
    pub fn get_or_fill(
        &self,
        node: NodeId,
        fill: impl FnOnce() -> Arc<Vec<NodeId>>,
    ) -> Arc<Vec<NodeId>> {
        let cached = self
            .map
            .read()
            .expect("fetch cache poisoned")
            .get(&node)
            .map(Arc::clone);
        if let Some(adj) = cached {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return adj;
        }
        let adj = fill();
        let mut map = self.map.write().expect("fetch cache poisoned");
        let (adj, raced) = match map.entry(node) {
            Entry::Occupied(racing_fill) => (Arc::clone(racing_fill.get()), true),
            Entry::Vacant(slot) => (Arc::clone(slot.insert(adj)), false),
        };
        drop(map);
        if raced {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        adj
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> FetchCacheStats {
        FetchCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_fetch_fills_later_fetches_hit() {
        let cache = FetchCache::new();
        let adj = Arc::new(vec![NodeId(1), NodeId(2)]);
        let a = cache.get_or_fill(NodeId(0), || Arc::clone(&adj));
        let b = cache.get_or_fill(NodeId(0), || panic!("must not refill"));
        assert_eq!(a, b);
        assert_eq!(cache.stats(), FetchCacheStats { hits: 1, misses: 1 });
    }
}
