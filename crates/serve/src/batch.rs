//! Batched query execution: pin once, stitch-fetch together, pool all scratch.
//!
//! The paper's serving story (Theorem 8 / Corollary 9) is that personalized walks
//! are cheap because cached state is *shared* — and a real serving system receives
//! queries in batches, not one at a time.  This module turns per-query fixed costs
//! into per-batch costs:
//!
//! * **One pin per batch.**  [`QueryBatch`] is served under a single generation
//!   pin ([`crate::ServeHandle::serve_batch`] /
//!   [`crate::ReaderPool::serve_batch`]), instead of one lock acquisition per
//!   query.
//! * **A batch-local fetch layer.**  Every query executes against a
//!   [`StitchContext`] layered over the generation's shared
//!   [`crate::FetchCache`]: the first query in the batch to touch a node pays the
//!   fetch (one shared-cache probe, filling it if needed), every later query hits
//!   the batch-local map with *no lock at all* — Corollary 9's fetch bound
//!   amortized across the batch.
//! * **Pooled scratch.**  The context also carries every per-query buffer the
//!   answer path needs (walk memory, visit counts, exclusion sets, top-k
//!   accumulator, global-rank scores), so steady-state batch serving performs no
//!   per-query allocation beyond the `k`-element answers themselves.
//! * **Deadline budgets.**  [`QueryBatch::with_deadline`] extends the Corollary 9
//!   fetch budget into a per-query *time* budget over an injectable
//!   [`Clock`]: each query starts its own timer, and an expired walk returns a
//!   partial result with `deadline_exhausted` set — the same semantics as fetch
//!   exhaustion.
//!
//! The load-bearing invariant is unchanged: every answer is a pure function of
//! `(generation, query_seed, query_id)`.  The batch layers change only *where
//! adjacency bytes come from* (batch-local map vs shared cache vs graph) and
//! *which buffers hold intermediate state*, never any value the walk or the
//! selection observes — so each answer in a batch is bit-identical to the same
//! query served alone, which `tests/concurrent_serving.rs` proves differentially
//! at every batch width and store layout.

use crate::cache::FetchCache;
use crate::generation::Query;
use ppr_core::{PersonalizedWalkResult, TopKScratch, WalkScratch};
use ppr_graph::{GraphView, NodeId};
use ppr_store::{AdjacencyFetch, FrozenGraph};
use ppr_telemetry::Clock;
use std::cell::{Cell, RefCell};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

/// A per-query deadline budget: `clock` is read once at each walk's start and the
/// walk stops at the first fetch attempted `budget_nanos` or more later.
#[derive(Debug, Clone)]
pub struct DeadlineBudget {
    pub(crate) clock: Arc<dyn Clock>,
    pub(crate) budget_nanos: u64,
}

/// A batch of `(query_id, query)` jobs served under **one** generation pin, with
/// shared stitch-fetch state and pooled scratch (see the [module docs](self)).
///
/// Construction is cheap and reusable: build one with [`QueryBatch::of`] or
/// [`QueryBatch::push`], hand it to [`crate::ServeHandle::serve_batch`]
/// (sequential, one reader) or [`crate::ReaderPool::serve_batch`] (fanned across
/// the pool with a deterministic `slot % threads` query→worker assignment).
/// Answers come back in submission order and are bit-identical to serving each
/// query alone — batching changes cost, never answers.
#[derive(Debug, Clone, Default)]
pub struct QueryBatch {
    pub(crate) jobs: Vec<(u64, Query)>,
    pub(crate) deadline: Option<DeadlineBudget>,
}

impl QueryBatch {
    /// An empty batch.
    pub fn new() -> Self {
        QueryBatch::default()
    }

    /// A batch of the given `(query_id, query)` jobs.
    pub fn of(jobs: &[(u64, Query)]) -> Self {
        QueryBatch {
            jobs: jobs.to_vec(),
            deadline: None,
        }
    }

    /// Appends one job to the batch.
    pub fn push(&mut self, query_id: u64, query: Query) {
        self.jobs.push((query_id, query));
    }

    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the batch holds no queries.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Gives every query in the batch a deadline budget of `budget_nanos` against
    /// `clock` (each query starts its own timer at walk start).  With a frozen
    /// [`ppr_telemetry::ManualClock`] the cut points — and therefore the answers
    /// — are deterministic; with a real monotonic clock the cut point is
    /// timing-dependent by design, which is what a tail-latency SLO wants.
    pub fn with_deadline(mut self, clock: Arc<dyn Clock>, budget_nanos: u64) -> Self {
        self.deadline = Some(DeadlineBudget {
            clock,
            budget_nanos,
        });
        self
    }
}

/// The per-batch execution context: a batch-local adjacency layer over the
/// generation's shared [`FetchCache`], plus every reusable per-query buffer the
/// answer path needs.
///
/// One context serves one *lane* of a batch (a sequence of queries on one
/// thread).  The local layer is cleared at batch start — adjacency is only valid
/// for the generation the batch pinned — while the scratch buffers persist across
/// batches through the session's context pool, so steady-state batch serving
/// allocates nothing per query.  Contexts never affect answers: the walker's own
/// per-walk memory already makes each walk's fetch *count* independent of any
/// cache layer below it, and every buffer here is fully reset before reuse.
#[derive(Debug, Default)]
pub struct StitchContext {
    /// Batch-local adjacency: nodes some query in this lane already fetched this
    /// batch.  Probed lock-free before the shared generation cache.
    pub(crate) local: HashMap<NodeId, Arc<Vec<NodeId>>>,
    /// Fetches answered by the batch-local layer this batch (`query.batch_fetch_saved`).
    pub(crate) saved: u64,
    /// Walk working memory (fetched-node map + recycled adjacency buffers).
    pub(crate) walk: WalkScratch,
    /// The walk outcome buffer (visit counts reused across queries).
    pub(crate) result: PersonalizedWalkResult,
    /// Seed + friends exclusion set, rebuilt per query into the same allocation.
    pub(crate) exclude: HashSet<NodeId>,
    /// Index-keyed exclusion set for score-vector selections (SALSA/global).
    pub(crate) exclude_indices: HashSet<usize>,
    /// Top-k candidate accumulator.
    pub(crate) topk: TopKScratch,
    /// Score vector buffer for global-rank queries.
    pub(crate) scores: Vec<f64>,
}

impl StitchContext {
    /// Readies the context for a new batch: drops the previous batch's local
    /// adjacency layer (it belonged to another pin) and resets the saved-fetch
    /// counter.  Scratch buffers are kept — they are reset per query.
    pub(crate) fn begin_batch(&mut self) {
        self.local.clear();
        self.saved = 0;
    }

    /// Fetches answered by the batch-local layer since [`Self::begin_batch`].
    pub(crate) fn saved(&self) -> u64 {
        self.saved
    }
}

/// [`AdjacencyFetch`] over a pinned generation *through* a batch-local layer:
/// probes the lane's own map first (lock-free), then the generation's shared
/// cache, filling both on a true miss.  `RefCell`/`Cell` because fetches arrive
/// through `&self` but a lane is strictly single-threaded.
pub(crate) struct StitchFetch<'a> {
    pub(crate) graph: &'a FrozenGraph,
    pub(crate) cache: &'a FetchCache,
    pub(crate) local: RefCell<&'a mut HashMap<NodeId, Arc<Vec<NodeId>>>>,
    pub(crate) saved: Cell<u64>,
}

impl AdjacencyFetch for StitchFetch<'_> {
    fn node_count(&self) -> usize {
        GraphView::node_count(self.graph)
    }

    fn fetch_out(&self, node: NodeId, out: &mut Vec<NodeId>) {
        let mut local = self.local.borrow_mut();
        let adj = match local.entry(node) {
            Entry::Occupied(hit) => {
                self.saved.set(self.saved.get() + 1);
                Arc::clone(hit.get())
            }
            Entry::Vacant(slot) => Arc::clone(
                slot.insert(
                    self.cache
                        .get_or_fill(node, || self.graph.shared_out_neighbors(node)),
                ),
            ),
        };
        drop(local);
        out.clear();
        out.extend_from_slice(&adj);
    }
}

/// The session-wide pool of [`StitchContext`]s: batch entry points pop one per
/// lane and push it back when the lane completes, so a steady stream of batches
/// reuses the same walk memory, visit buffers, and accumulators indefinitely.
#[derive(Debug, Default)]
pub(crate) struct ScratchPool {
    pool: Mutex<Vec<StitchContext>>,
}

impl ScratchPool {
    /// Pops a pooled context, or makes a fresh one (first batches warm the pool).
    pub(crate) fn take(&self) -> StitchContext {
        self.pool
            .lock()
            .expect("scratch pool poisoned")
            .pop()
            .unwrap_or_default()
    }

    /// Returns a lane's context to the pool.  Bounded: the pool never holds more
    /// contexts than the widest reader fan-out that ever ran.
    pub(crate) fn put(&self, ctx: StitchContext) {
        let mut pool = self.pool.lock().expect("scratch pool poisoned");
        if pool.len() < 64 {
            pool.push(ctx);
        }
    }
}
