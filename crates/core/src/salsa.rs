//! Incremental Monte Carlo SALSA (Section 2.3, Theorem 6).
//!
//! SALSA is the stationary behaviour of an alternating forward/backward random walk: a
//! *hub* position follows a random out-edge to an *authority* position, which follows a
//! random in-edge back to a hub position, and so on, with ε-resets allowed only before
//! forward steps.  To estimate hub and authority scores the engine stores `2R` segments
//! per node — `R` starting with a forward step (the node acts as a hub) and `R` starting
//! with a backward step (the node acts as an authority) — and counts visits by parity.
//!
//! Incremental maintenance mirrors the PageRank case, except that an arriving edge
//! `(u, v)` can disturb walks at two places: forward steps taken out of `u` (with
//! probability `1/outdeg(u)` per hub visit) and backward steps taken out of `v` (with
//! probability `1/indeg(v)` per authority visit).  Theorem 6 shows the total update work
//! is within a factor 16 of the PageRank bound; the closed form this engine
//! instantiates is [`crate::bounds::salsa_total_update_work`].
//!
//! Like the PageRank engine, the SALSA engine is generic over the PageRank Store layout
//! (any [`ppr_store::WalkIndexMut`]; flat [`WalkStore`] by default, sharded via
//! [`IncrementalSalsa::from_graph_sharded`]), and
//! [`IncrementalSalsa::apply_arrivals`] batches a stream of arrivals through the same
//! deterministic candidate → reconcile → apply pipeline (see [`crate::batch`]): forward
//! coin flips group per source, backward coin flips per target, every
//! `(batch, pivot, segment, direction)` repair draws from its own split RNG stream, and
//! conflicting claims resolve to the smallest reroute position — so results are
//! bit-identical at any shard count and thread count.
//!
//! Personalized SALSA scores are obtained with a direct alternating walk with resets to
//! the seed; the paper's fetch-stitching analysis (Theorem 8) is developed for PageRank
//! and the same store layout would apply, but the reproduction keeps the SALSA
//! personalization simple because no experiment in the paper measures its fetch count.

use crate::batch::{self, BatchProfile, CandidateSet};
use crate::config::{MonteCarloConfig, RerouteStrategy};
use crate::walker;
use ppr_graph::{DynamicGraph, Edge, GraphView, NodeId};
use ppr_store::{
    SegmentId, SegmentRewrites, ShardedWalkStore, SocialStore, WalkIndex, WalkIndexMut,
    WalkIndexView, WalkStore, WorkCounter,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

use crate::incremental::UpdateStats;

/// Derives hub/authority estimates from any [`WalkIndexView`] holding `2R` SALSA
/// segments per node (slots `0..R` forward-start, `R..2R` backward-start — the
/// [`IncrementalSalsa`] layout).  Pure reads: this is the query the serving layer
/// answers from an epoch-pinned generation snapshot, and
/// [`IncrementalSalsa::estimates`] is exactly this function over the live store.
pub fn salsa_estimates_from<V: WalkIndexView>(walks: &V) -> SalsaEstimates {
    let n = walks.node_count();
    let r2 = walks.r();
    let mut hub_visits = vec![0u64; n];
    let mut auth_visits = vec![0u64; n];
    for node in 0..n {
        let node = NodeId::from_index(node);
        for id in walks.segment_ids_of(node) {
            let hub_parity = usize::from(id.slot(r2) >= r2 / 2);
            for (pos, &visited) in walks.segment_path(id).iter().enumerate() {
                if pos % 2 == hub_parity {
                    hub_visits[visited.index()] += 1;
                } else {
                    auth_visits[visited.index()] += 1;
                }
            }
        }
    }
    SalsaEstimates {
        hubs: normalize(&hub_visits),
        authorities: normalize(&auth_visits),
    }
}

/// Personalized SALSA authority scores on any [`GraphView`]: a direct alternating
/// walk of `walk_length` visits with ε-resets to `seed` before forward steps,
/// drawing from the supplied stream.  [`IncrementalSalsa::personalized_authorities`]
/// is this function over the live graph with the engine's seed derivation; the
/// serving layer runs it against a pinned [`ppr_store::FrozenGraph`] with a
/// `(query_seed, query_id)` stream.
pub fn personalized_authorities_on<G: GraphView + ?Sized>(
    graph: &G,
    seed: NodeId,
    walk_length: usize,
    epsilon: f64,
    rng: &mut SmallRng,
) -> Vec<f64> {
    assert!(
        seed.index() < graph.node_count(),
        "seed node {seed} outside the graph"
    );
    let n = graph.node_count();
    let mut auth_visits = vec![0u64; n];
    let mut total_auth = 0u64;

    let mut current = seed;
    let mut forward = true;
    let mut visits = 0usize;
    while visits < walk_length {
        visits += 1;
        if forward {
            if rng.gen_bool(epsilon) {
                current = seed;
                forward = true;
                continue;
            }
            let out = graph.out_neighbors(current);
            if out.is_empty() {
                current = seed;
                forward = true;
            } else {
                let next = out[rng.gen_range(0..out.len())];
                auth_visits[next.index()] += 1;
                total_auth += 1;
                current = next;
                forward = false;
            }
        } else {
            let incoming = graph.in_neighbors(current);
            if incoming.is_empty() {
                current = seed;
            } else {
                current = incoming[rng.gen_range(0..incoming.len())];
            }
            forward = true;
        }
    }

    if total_auth == 0 {
        return vec![0.0; n];
    }
    auth_visits
        .iter()
        .map(|&v| v as f64 / total_auth as f64)
        .collect()
}

/// Top-`k` of a personalized score vector, skipping `exclude` (the seed and its
/// friends), ties broken by node id — the paper's recommender post-processing,
/// shared by the engine and the serving layer.
pub fn top_k_scores(scores: &[f64], exclude: &HashSet<usize>, k: usize) -> Vec<(NodeId, f64)> {
    let mut candidates: Vec<(usize, f64)> = scores
        .iter()
        .enumerate()
        .filter(|&(i, &s)| s > 0.0 && !exclude.contains(&i))
        .map(|(i, &s)| (i, s))
        .collect();
    candidates.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    candidates.truncate(k);
    candidates
        .into_iter()
        .map(|(i, s)| (NodeId::from_index(i), s))
        .collect()
}

/// Hub and authority estimates derived from the stored SALSA segments.
#[derive(Debug, Clone)]
pub struct SalsaEstimates {
    /// Normalised hub scores (sum to 1 when any hub visit exists).
    pub hubs: Vec<f64>,
    /// Normalised authority scores (sum to 1 when any authority visit exists).
    pub authorities: Vec<f64>,
}

/// One pivot's share of a SALSA batch: `forward` groups key on edge sources (hub steps
/// out of the pivot changed), backward groups on edge targets (authority steps).
#[derive(Debug)]
struct SalsaGroup {
    pivot: NodeId,
    prior_degree: usize,
    targets: Vec<NodeId>,
    forward: bool,
}

/// Monte Carlo SALSA with incrementally maintained alternating walk segments, generic
/// over the PageRank Store layout (`W`).
#[derive(Debug)]
pub struct IncrementalSalsa<W: WalkIndexMut = WalkStore> {
    pub(crate) store: SocialStore,
    pub(crate) walks: W,
    pub(crate) config: MonteCarloConfig,
    pub(crate) rng: SmallRng,
    pub(crate) work: WorkCounter,
    /// Worker threads for the batched reroute pipeline (results never depend on this).
    pub(crate) threads: usize,
    /// Index of the next arrival batch, mixed into every repair-stream seed.
    pub(crate) batch_index: u64,
    /// Reusable path buffer for segment repairs (keeps deletions allocation-free).
    pub(crate) scratch: Vec<NodeId>,
    /// Reusable buffer for the ids of the segments visiting the updated node.
    pub(crate) visiting: Vec<SegmentId>,
    /// Reusable phase-1 outputs, one per route shard.
    pub(crate) candidate_sets: Vec<CandidateSet>,
    /// Reusable per-shard phase-1 timing buffer.
    pub(crate) phase1_times: Vec<std::time::Duration>,
    /// Reusable reconciled rewrite plan.
    pub(crate) rewrites: SegmentRewrites,
    /// Accumulated wall-time breakdown of the arrival batches (observability only).
    pub(crate) profile: BatchProfile,
    /// Attached write-ahead log; `None` for purely in-memory engines.
    pub(crate) durability: Option<crate::durable::DurableLog>,
    /// Sequence number of the next WAL record (count of batches ever logged).
    pub(crate) wal_seq: u64,
}

impl IncrementalSalsa {
    /// Builds the engine over a graph or an existing Social Store, storing `2R` segments
    /// per node in a single-shard [`WalkStore`].  Pass the graph by value to avoid
    /// copying it; `&DynamicGraph` is also accepted (and cloned) for callers that keep
    /// theirs.
    pub fn from_graph(graph: impl Into<SocialStore>, config: MonteCarloConfig) -> Self {
        let store = graph.into();
        let walks = WalkStore::new(store.node_count(), 2 * config.r);
        Self::with_store(store, walks, config, 1)
    }

    /// Builds the engine over an empty graph with `node_count` isolated nodes.
    pub fn new_empty(node_count: usize, config: MonteCarloConfig) -> Self {
        Self::from_graph(DynamicGraph::with_nodes(node_count), config)
    }
}

impl IncrementalSalsa<ShardedWalkStore> {
    /// Builds the engine over a [`ShardedWalkStore`] split `shards` ways, repairing
    /// arrival batches with up to `threads` worker threads.  Results are bit-identical
    /// to the single-shard engine's for every `(shards, threads)` combination.
    pub fn from_graph_sharded(
        graph: impl Into<SocialStore>,
        config: MonteCarloConfig,
        shards: usize,
        threads: usize,
    ) -> Self {
        assert!(shards >= 1, "need at least one shard");
        assert!(threads >= 1, "need at least one worker thread");
        let store = graph.into();
        let store = if store.shard_count() == shards {
            store
        } else {
            SocialStore::from_graph(store.into_graph(), shards)
        };
        let walks = ShardedWalkStore::new(store.node_count(), 2 * config.r, shards);
        Self::with_store(store, walks, config, threads)
    }
}

impl<W: WalkIndexMut + Sync> IncrementalSalsa<W> {
    pub(crate) fn with_store(
        store: SocialStore,
        walks: W,
        config: MonteCarloConfig,
        threads: usize,
    ) -> Self {
        let node_count = store.node_count();
        let mut walks = walks;
        walks.set_compaction_threshold(config.compaction_threshold);
        let rng = SmallRng::seed_from_u64(config.seed.wrapping_add(0x5a15a));
        let mut engine = IncrementalSalsa {
            store,
            walks,
            config,
            rng,
            work: WorkCounter::new(),
            threads,
            batch_index: 0,
            scratch: Vec::new(),
            visiting: Vec::new(),
            candidate_sets: Vec::new(),
            phase1_times: Vec::new(),
            rewrites: SegmentRewrites::new(),
            profile: BatchProfile::default(),
            durability: None,
            wal_seq: 0,
        };
        for node in 0..node_count {
            engine.generate_segments_for(NodeId::from_index(node));
        }
        engine
    }

    /// Appends one batch to the attached write-ahead log (no-op for in-memory
    /// engines), before the batch mutates any state.
    pub(crate) fn log_wal(&mut self, op: ppr_persist::WalOp, edges: &[Edge]) {
        if let Some(log) = self.durability.as_mut() {
            log.append(self.wal_seq, op, edges);
            self.wal_seq += 1;
        }
    }

    /// Accumulated wall-time breakdown of every arrival batch since construction (see
    /// [`BatchProfile`]).
    pub fn batch_profile(&self) -> &BatchProfile {
        &self.profile
    }

    /// Resets the accumulated batch profile.
    pub fn reset_batch_profile(&mut self) {
        self.profile = BatchProfile::default();
    }

    /// The engine's configuration.
    pub fn config(&self) -> &MonteCarloConfig {
        &self.config
    }

    /// The underlying graph.
    pub fn graph(&self) -> &DynamicGraph {
        self.store.graph()
    }

    /// The Social Store (adjacency + fetch accounting).
    pub fn social_store(&self) -> &SocialStore {
        &self.store
    }

    /// The store holding the `2R` SALSA segments per node.
    pub fn walk_store(&self) -> &W {
        &self.walks
    }

    /// The reconciled rewrite plan of the most recent mutation (arrival batch,
    /// deletion batch, or single-edge wrapper): exactly the segment rewrites the
    /// store absorbed, in plan order.  The serving layer replays this plan into its
    /// copy-on-write generation mirror after each commit; empty when the mutation
    /// touched no segment.
    pub fn last_rewrites(&self) -> &SegmentRewrites {
        &self.rewrites
    }

    /// Number of worker threads the batched reroute pipeline may use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Sets the worker-thread budget (results are bit-identical for every value).
    pub fn set_threads(&mut self, threads: usize) {
        assert!(threads >= 1, "need at least one worker thread");
        self.threads = threads;
    }

    /// Cumulative update work since construction.
    pub fn work(&self) -> &WorkCounter {
        &self.work
    }

    /// Resets the cumulative work counter.
    pub fn reset_work(&mut self) {
        self.work = WorkCounter::new();
    }

    /// Number of nodes currently known to the engine.
    pub fn node_count(&self) -> usize {
        self.store.node_count()
    }

    /// Whether the segment in `slot` of a node starts with a forward step.
    fn slot_is_forward(&self, slot: usize) -> bool {
        slot < self.config.r
    }

    /// Parity of hub visits within a segment: forward-start segments occupy hub
    /// positions at even indices, backward-start segments at odd indices.
    fn hub_parity(&self, id: SegmentId) -> usize {
        if self.slot_is_forward(id.slot(self.walks.r())) {
            0
        } else {
            1
        }
    }

    /// Current hub/authority estimates from the stored segments — `&self`, via the
    /// shared [`salsa_estimates_from`] query over the store's [`WalkIndexView`].
    pub fn estimates(&self) -> SalsaEstimates {
        salsa_estimates_from(&self.walks)
    }

    /// Authority scores personalized on `seed`, estimated with a direct alternating walk
    /// of `walk_length` visits that resets to the seed before forward steps with
    /// probability ε.
    pub fn personalized_authorities(&self, seed: NodeId, walk_length: usize) -> Vec<f64> {
        let mut rng = SmallRng::seed_from_u64(
            self.config.seed ^ 0xa55a_0000u64 ^ (seed.0 as u64).wrapping_mul(0x9e37_79b9),
        );
        personalized_authorities_on(
            self.store.graph(),
            seed,
            walk_length,
            self.config.epsilon,
            &mut rng,
        )
    }

    /// Top-`k` friend recommendations for `seed` by personalized authority score,
    /// excluding the seed and its existing friends.
    pub fn personalized_top_k(
        &self,
        seed: NodeId,
        k: usize,
        walk_length: usize,
    ) -> Vec<(NodeId, f64)> {
        let scores = self.personalized_authorities(seed, walk_length);
        let mut exclude: HashSet<usize> = HashSet::new();
        exclude.insert(seed.index());
        exclude.extend(
            self.store
                .graph()
                .out_neighbors(seed)
                .iter()
                .map(|n| n.index()),
        );
        top_k_scores(&scores, &exclude, k)
    }

    /// Processes the arrival of `edge`, repairing affected forward and backward steps.
    ///
    /// A single arrival is exactly a batch of one: this delegates to
    /// [`Self::apply_arrivals`], so the two paths are on identical RNG streams.
    pub fn add_edge(&mut self, edge: Edge) -> UpdateStats {
        self.apply_arrivals(std::slice::from_ref(&edge))
    }

    /// Processes a whole batch of edge arrivals, grouping forward coin flips per source
    /// node and backward coin flips per target node, through the same deterministic
    /// candidate → reconcile → apply pipeline as
    /// [`crate::IncrementalPageRank::apply_arrivals`].  A forward and a backward group
    /// can claim the same segment; as always, the smallest reroute position wins (the
    /// two directions disturb positions of opposite parity, so no tie is possible).
    pub fn apply_arrivals(&mut self, edges: &[Edge]) -> UpdateStats {
        self.rewrites.clear();
        let mut stats = UpdateStats::default();
        let Some(needed) = edges
            .iter()
            .map(|e| e.source.index().max(e.target.index()) + 1)
            .max()
        else {
            return stats;
        };
        self.log_wal(ppr_persist::WalOp::Arrivals, edges);
        let batch_started = std::time::Instant::now();
        let arena_before = self.walks.arena_stats();
        self.ensure_nodes(needed);

        // Forward groups key on the source (out-degree coins), backward groups on the
        // target (in-degree coins); both capture pre-batch degrees, then all edges are
        // inserted at once.
        let forward = batch::group_arrivals(
            &self.store,
            edges,
            |e| (e.source, e.target),
            |s, n| s.out_degree(n),
        );
        let backward = batch::group_arrivals(
            &self.store,
            edges,
            |e| (e.target, e.source),
            |s, n| s.in_degree(n),
        );
        let groups: Vec<SalsaGroup> = forward
            .into_iter()
            .map(|(pivot, prior_degree, targets)| SalsaGroup {
                pivot,
                prior_degree,
                targets,
                forward: true,
            })
            .chain(
                backward
                    .into_iter()
                    .map(|(pivot, prior_degree, targets)| SalsaGroup {
                        pivot,
                        prior_degree,
                        targets,
                        forward: false,
                    }),
            )
            .collect();
        for &edge in edges {
            self.store.add_edge(edge);
        }
        let batch_index = self.batch_index;
        self.batch_index += 1;
        let threads = self.threads;

        // Phase 1: candidates, partitioned by the shard owning each segment.
        let mut sets = std::mem::take(&mut self.candidate_sets);
        let mut phase1_times = std::mem::take(&mut self.phase1_times);
        {
            let graph = self.store.graph();
            let walks = &self.walks;
            let config = &self.config;
            let groups = &groups;
            let shards = walks.route_shards();
            let r2 = walks.r();
            batch::fan_out_candidates(walks, threads, &mut sets, &mut phase1_times, |sid, set| {
                let mut scratch = std::mem::take(&mut set.scratch);
                for (gi, group) in groups.iter().enumerate() {
                    for (id, _) in walks.segments_visiting(group.pivot) {
                        if shards > 1 && (id.index() / r2) % shards != sid {
                            continue;
                        }
                        if let Some((pos, steps)) = salsa_candidate(
                            graph,
                            walks,
                            config,
                            batch_index,
                            group,
                            id,
                            &mut scratch,
                        ) {
                            set.push(id, pos, gi, steps, &scratch);
                        }
                    }
                }
                set.scratch = scratch;
            });
        }

        // Phase 2: reconcile (smallest reroute position wins) into a plan.
        let winners = batch::reconcile_candidates(&sets);
        let mut rewrites = std::mem::take(&mut self.rewrites);
        rewrites.clear();
        let mut touched = vec![false; groups.len()];
        for &(si, ci) in &winners {
            let cand = &sets[si].candidates[ci];
            rewrites.push(cand.seg, sets[si].path(cand));
            stats.record_segment(cand.steps);
            touched[cand.group as usize] = true;
        }

        // Phase 3: the store applies the plan.
        self.walks.apply_rewrites(&rewrites, threads);
        self.profile.record(
            batch_started.elapsed(),
            &phase1_times,
            self.walks.last_apply_shard_times(),
        );
        self.profile
            .record_compactions(&arena_before, &self.walks.arena_stats());
        self.candidate_sets = sets;
        self.phase1_times = phase1_times;
        self.rewrites = rewrites;

        // As in the per-edge path, an arrival counts as filtered when neither of its
        // endpoints' groups disturbed any segment.
        let mut touched_forward: HashSet<NodeId> = HashSet::new();
        let mut touched_backward: HashSet<NodeId> = HashSet::new();
        for (gi, group) in groups.iter().enumerate() {
            if touched[gi] {
                if group.forward {
                    touched_forward.insert(group.pivot);
                } else {
                    touched_backward.insert(group.pivot);
                }
            }
        }
        for &edge in edges {
            if !touched_forward.contains(&edge.source) && !touched_backward.contains(&edge.target) {
                self.work.arrivals_filtered += 1;
            }
        }
        self.work.edges_processed += edges.len() as u64;
        self.work.segments_updated += stats.segments_updated;
        self.work.walk_steps += stats.walk_steps;
        stats
    }

    /// Processes the deletion of `edge`.  Returns `None` if the edge was not present.
    pub fn remove_edge(&mut self, edge: Edge) -> Option<UpdateStats> {
        self.rewrites.clear();
        if !self.store.graph().has_edge(edge) {
            return None;
        }
        self.log_wal(ppr_persist::WalOp::Deletions, std::slice::from_ref(&edge));
        let removed = self.store.remove_edge(edge);
        debug_assert!(removed, "has_edge implies remove_edge succeeds");
        let u = edge.source;
        let v = edge.target;
        let mut stats = UpdateStats::default();

        if !self.store.graph().has_edge(edge) {
            // Forward traversals u -> v at hub positions of u.
            let mut visiting = std::mem::take(&mut self.visiting);
            self.walks.collect_visiting(u, &mut visiting);
            for &id in &visiting {
                self.reroute_deleted_traversal(id, u, v, true, &mut stats);
            }
            // Backward traversals v -> u at authority positions of v.
            self.walks.collect_visiting(v, &mut visiting);
            for &id in &visiting {
                self.reroute_deleted_traversal(id, v, u, false, &mut stats);
            }
            self.visiting = visiting;
        }

        self.work.edges_processed += 1;
        self.work.segments_updated += stats.segments_updated;
        self.work.walk_steps += stats.walk_steps;
        if !stats.touched_walk_store {
            self.work.arrivals_filtered += 1;
        }
        Some(stats)
    }

    /// Verifies that every stored segment is a valid alternating walk in the current
    /// graph: forward positions follow out-edges, backward positions follow in-edges.
    pub fn validate_segments(&self) -> Result<(), String> {
        let graph = self.store.graph();
        for node in graph.nodes() {
            for id in self.walks.segment_ids_of(node) {
                let path = self.walks.segment_path(id);
                if path.first() != Some(&node) {
                    return Err(format!("segment {id:?} does not start at {node}"));
                }
                let hub_parity = self.hub_parity(id);
                for (pos, pair) in path.windows(2).enumerate() {
                    let forward = pos % 2 == hub_parity;
                    let edge = if forward {
                        Edge {
                            source: pair[0],
                            target: pair[1],
                        }
                    } else {
                        Edge {
                            source: pair[1],
                            target: pair[0],
                        }
                    };
                    if !graph.has_edge(edge) {
                        return Err(format!(
                            "segment {id:?} traverses missing edge {edge} at position {pos}"
                        ));
                    }
                }
            }
        }
        self.walks.check_consistency()
    }

    // ----- internal helpers -------------------------------------------------------

    fn ensure_nodes(&mut self, n: usize) {
        let before = self.store.node_count();
        if n <= before {
            return;
        }
        self.store.ensure_nodes(n);
        self.walks.ensure_nodes(n);
        for node in before..n {
            self.generate_segments_for(NodeId::from_index(node));
        }
    }

    fn generate_segments_for(&mut self, node: NodeId) {
        let r2 = 2 * self.config.r;
        for slot in 0..r2 {
            let id = SegmentId::new(node, slot, r2);
            walker::salsa_segment_into(
                self.store.graph(),
                node,
                slot < self.config.r,
                self.config.epsilon,
                self.config.max_segment_length,
                &mut self.rng,
                &mut self.scratch,
            );
            self.walks.set_segment(id, &self.scratch);
        }
    }

    fn reroute_deleted_traversal(
        &mut self,
        id: SegmentId,
        from: NodeId,
        to: NodeId,
        forward: bool,
        stats: &mut UpdateStats,
    ) {
        let hub_parity = self.hub_parity(id);
        let affected_parity = if forward { hub_parity } else { 1 - hub_parity };
        let pos = self
            .walks
            .segment_path(id)
            .windows(2)
            .enumerate()
            .find_map(|(pos, pair)| {
                (pos % 2 == affected_parity && pair[0] == from && pair[1] == to).then_some(pos)
            });
        let Some(pos) = pos else {
            return;
        };
        self.rebuild_deleted_suffix(id, pos, forward, stats);
    }

    /// Rebuilds the suffix of segment `id` after position `pos`, whose outgoing step
    /// (direction `forward`) traversed a now-deleted edge and must be re-sampled.
    fn rebuild_deleted_suffix(
        &mut self,
        id: SegmentId,
        pos: usize,
        forward: bool,
        stats: &mut UpdateStats,
    ) {
        if self.config.reroute == RerouteStrategy::FromSource {
            let r2 = 2 * self.config.r;
            let source = id.source(r2);
            let steps = walker::salsa_segment_into(
                self.store.graph(),
                source,
                self.slot_is_forward(id.slot(r2)),
                self.config.epsilon,
                self.config.max_segment_length,
                &mut self.rng,
                &mut self.scratch,
            );
            self.walks.set_segment(id, &self.scratch);
            self.rewrites.push(id, &self.scratch);
            stats.record_segment(steps);
            return;
        }

        self.scratch.clear();
        self.scratch
            .extend_from_slice(&self.walks.segment_path(id)[..=pos]);
        let mut steps = 0u64;
        let mut direction_forward = forward;

        // Re-sample the step that used to traverse the deleted edge; the reset coin
        // for a forward step was already spent when the segment was first built.
        let current = *self.scratch.last().expect("prefix is non-empty");
        let next = if direction_forward {
            self.store
                .graph()
                .random_out_neighbor(current, &mut self.rng)
        } else {
            self.store
                .graph()
                .random_in_neighbor(current, &mut self.rng)
        };
        if let Some(next) = next {
            if self.scratch.len() < self.config.max_segment_length {
                self.scratch.push(next);
                steps += 1;
                direction_forward = !direction_forward;
            }
        } else {
            // The pivot lost its last edge in that direction: the segment now ends here.
            self.walks.set_segment(id, &self.scratch);
            self.rewrites.push(id, &self.scratch);
            stats.record_segment(steps);
            return;
        }

        // Continue the alternating walk until a reset / missing edge / the length cap.
        steps += walker::extend_salsa_walk(
            self.store.graph(),
            &mut self.scratch,
            direction_forward,
            self.config.epsilon,
            self.config.max_segment_length,
            &mut self.rng,
        );

        self.walks.set_segment(id, &self.scratch);
        self.rewrites.push(id, &self.scratch);
        stats.record_segment(steps);
    }
}

/// Decides whether (and where) segment `id` reroutes for one SALSA arrival group,
/// drawing from the repair's own split RNG stream, and on a hit generates the full
/// replacement path into `scratch` against the post-batch graph.  See
/// [`crate::incremental`]'s `pagerank_candidate` for why reading only the pre-batch
/// path is sound.
fn salsa_candidate<W: WalkIndex>(
    graph: &DynamicGraph,
    walks: &W,
    config: &MonteCarloConfig,
    batch_index: u64,
    group: &SalsaGroup,
    id: SegmentId,
    scratch: &mut Vec<NodeId>,
) -> Option<(usize, u64)> {
    let path = walks.segment_path(id);
    if path.is_empty() {
        return None;
    }
    let k = group.targets.len();
    let r2 = walks.r();
    let hub_parity = if id.slot(r2) < r2 / 2 { 0 } else { 1 };
    let affected_parity = if group.forward {
        hub_parity
    } else {
        1 - hub_parity
    };
    let last_index = path.len() - 1;
    let mut rng = SmallRng::seed_from_u64(batch::repair_seed(
        config.seed,
        batch_index,
        group.pivot,
        id,
        !group.forward,
    ));

    let mut reroute_at: Option<(usize, NodeId)> = None;
    for (pos, &visit) in path.iter().enumerate() {
        if visit != group.pivot || pos % 2 != affected_parity {
            continue;
        }
        if pos < last_index {
            // The step leaving this visit now has `prior_degree + k` choices; it lands
            // on a new edge with probability k/(d₀+k), uniformly among them.
            if rng.gen_bool(k as f64 / (group.prior_degree + k) as f64) {
                let target = walker::pick_new_target(&mut rng, &group.targets);
                reroute_at = Some((pos, target));
                break;
            }
        } else if group.prior_degree == 0 {
            // The segment previously stopped here because the pivot had no edge in
            // the required direction.  Forward steps are preceded by a reset coin
            // (continue with probability 1 − ε); backward steps are unconditional.
            let continue_probability = if group.forward {
                1.0 - config.epsilon
            } else {
                1.0
            };
            if rng.gen_bool(continue_probability) {
                let target = walker::pick_new_target(&mut rng, &group.targets);
                reroute_at = Some((pos, target));
                break;
            }
        }
    }

    let (pos, target) = reroute_at?;
    let steps = match config.reroute {
        RerouteStrategy::FromUpdatePoint => {
            scratch.clear();
            scratch.extend_from_slice(&path[..=pos]);
            let mut steps = 0u64;
            let mut direction_forward = group.forward;
            if scratch.len() < config.max_segment_length {
                scratch.push(target);
                steps += 1;
                direction_forward = !direction_forward;
            }
            steps += walker::extend_salsa_walk(
                graph,
                scratch,
                direction_forward,
                config.epsilon,
                config.max_segment_length,
                &mut rng,
            );
            steps
        }
        RerouteStrategy::FromSource => walker::salsa_segment_into(
            graph,
            id.source(r2),
            id.slot(r2) < r2 / 2,
            config.epsilon,
            config.max_segment_length,
            &mut rng,
            scratch,
        ),
    };
    Some((pos, steps))
}

fn normalize(counts: &[u64]) -> Vec<f64> {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return vec![0.0; counts.len()];
    }
    counts.iter().map(|&c| c as f64 / total as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_baselines::salsa_exact::salsa_exact;
    use ppr_graph::generators::{
        directed_cycle, preferential_attachment, preferential_attachment_edges, star_inward,
        PreferentialAttachmentConfig,
    };

    fn config(r: usize, seed: u64) -> MonteCarloConfig {
        MonteCarloConfig::new(0.2, r).with_seed(seed)
    }

    #[test]
    fn initialization_stores_two_r_segments_per_node() {
        let g = directed_cycle(6);
        let engine = IncrementalSalsa::from_graph(&g, config(3, 1));
        assert_eq!(engine.walk_store().r(), 6);
        for node in g.nodes() {
            assert_eq!(engine.walk_store().segment_ids_of(node).count(), 6);
        }
        engine.validate_segments().unwrap();
    }

    #[test]
    fn authority_estimates_track_indegree_on_a_star() {
        // Global SALSA authority ≈ in-degree share (as the paper notes for ε -> 0); the
        // star concentrates every authority visit on the centre.
        let g = star_inward(8);
        let engine = IncrementalSalsa::from_graph(&g, config(20, 3));
        let est = engine.estimates();
        // The backward-start segments seed every node (including leaves) with one
        // authority visit, so the centre does not get *all* the mass, but it dominates.
        assert!(
            est.authorities[0] > 0.7,
            "centre authority {}",
            est.authorities[0]
        );
        for &leaf in &est.authorities[1..] {
            assert!(leaf < 0.06, "leaf authority {leaf} should be tiny");
        }
        let hub_sum: f64 = est.hubs.iter().sum();
        assert!((hub_sum - 1.0).abs() < 1e-9);
        assert!(
            est.hubs[0] < 0.1,
            "the centre follows nobody so it is barely a hub"
        );
    }

    #[test]
    fn authority_estimates_agree_with_exact_salsa() {
        let g = preferential_attachment(150, 4, 7);
        let engine = IncrementalSalsa::from_graph(&g, config(25, 9));
        let mc = engine.estimates();
        let exact = salsa_exact(&g, 30);
        let tvd: f64 = 0.5
            * mc.authorities
                .iter()
                .zip(&exact.authorities)
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>();
        assert!(
            tvd < 0.15,
            "Monte Carlo SALSA authorities should track the exact ones, TVD = {tvd:.4}"
        );
    }

    #[test]
    fn add_edge_keeps_alternating_segments_valid() {
        let mut engine = IncrementalSalsa::new_empty(6, config(4, 11));
        let edges = [
            Edge::new(0, 1),
            Edge::new(1, 2),
            Edge::new(2, 3),
            Edge::new(3, 0),
            Edge::new(4, 0),
            Edge::new(5, 2),
            Edge::new(0, 5),
        ];
        for &edge in &edges {
            engine.add_edge(edge);
            engine.validate_segments().unwrap();
        }
        assert_eq!(engine.graph().edge_count(), edges.len());
    }

    #[test]
    fn batched_arrivals_keep_alternating_segments_valid_and_accurate() {
        let pa = PreferentialAttachmentConfig::new(120, 4, 18);
        let edges = preferential_attachment_edges(&pa);
        let mut engine = IncrementalSalsa::new_empty(120, config(15, 20));
        for chunk in edges.chunks(48) {
            engine.apply_arrivals(chunk);
            engine.validate_segments().unwrap();
        }
        assert_eq!(engine.graph().edge_count(), edges.len());
        let exact = salsa_exact(engine.graph(), 30);
        let mc = engine.estimates();
        let tvd: f64 = 0.5
            * mc.authorities
                .iter()
                .zip(&exact.authorities)
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>();
        assert!(
            tvd < 0.2,
            "batched incremental SALSA should stay accurate, TVD = {tvd:.4}"
        );
        // Empty batches are a no-op.
        assert_eq!(engine.apply_arrivals(&[]), UpdateStats::default());
    }

    #[test]
    fn batched_and_sequential_single_edges_agree() {
        // add_edge is a batch of one: identical RNG streams, identical reroutes.
        let g = directed_cycle(10);
        let mut a = IncrementalSalsa::from_graph(&g, config(4, 22));
        let mut b = IncrementalSalsa::from_graph(&g, config(4, 22));
        for edge in [Edge::new(0, 5), Edge::new(3, 7), Edge::new(7, 0)] {
            let sa = a.add_edge(edge);
            let sb = b.apply_arrivals(std::slice::from_ref(&edge));
            assert_eq!(sa, sb);
        }
        let ea = a.estimates();
        let eb = b.estimates();
        assert_eq!(ea.hubs, eb.hubs);
        assert_eq!(ea.authorities, eb.authorities);
    }

    #[test]
    fn sharded_salsa_is_bit_identical_to_single_shard() {
        let pa = PreferentialAttachmentConfig::new(60, 3, 24);
        let edges = preferential_attachment_edges(&pa);
        let mut flat = IncrementalSalsa::new_empty(60, config(3, 26));
        let mut sharded =
            IncrementalSalsa::from_graph_sharded(DynamicGraph::with_nodes(60), config(3, 26), 4, 4);
        for chunk in edges.chunks(31) {
            let sa = flat.apply_arrivals(chunk);
            let sb = sharded.apply_arrivals(chunk);
            assert_eq!(sa, sb, "batch stats must match");
        }
        let ea = flat.estimates();
        let eb = sharded.estimates();
        assert_eq!(ea.hubs, eb.hubs);
        assert_eq!(ea.authorities, eb.authorities);
        assert_eq!(
            WalkIndexView::visit_counts(flat.walk_store()),
            sharded.walk_store().visit_counts()
        );
        sharded.validate_segments().unwrap();
    }

    #[test]
    fn remove_edge_repairs_both_directions() {
        let g = preferential_attachment(60, 3, 13);
        let mut engine = IncrementalSalsa::from_graph(&g, config(5, 15));
        let edges = engine.graph().collect_edges();
        for edge in edges.into_iter().step_by(7).take(10).collect::<Vec<_>>() {
            engine.remove_edge(edge);
            engine.validate_segments().unwrap();
        }
    }

    #[test]
    fn incremental_build_matches_exact_salsa() {
        let pa = PreferentialAttachmentConfig::new(120, 4, 17);
        let edges = preferential_attachment_edges(&pa);
        let mut engine = IncrementalSalsa::new_empty(120, config(15, 19));
        for &edge in &edges {
            engine.add_edge(edge);
        }
        engine.validate_segments().unwrap();
        let exact = salsa_exact(engine.graph(), 30);
        let mc = engine.estimates();
        let tvd: f64 = 0.5
            * mc.authorities
                .iter()
                .zip(&exact.authorities)
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>();
        assert!(
            tvd < 0.2,
            "incremental SALSA should stay accurate, TVD = {tvd:.4}"
        );
    }

    #[test]
    fn personalized_authorities_prefer_seed_neighbourhood() {
        // Two communities bridged by one edge; personalized SALSA for a node in
        // community A should give community A most of the authority mass.
        let mut g = DynamicGraph::with_nodes(8);
        for &(s, t) in &[(0, 1), (1, 0), (1, 2), (2, 1), (0, 2), (2, 0), (3, 0)] {
            g.add_edge(Edge::new(s, t));
        }
        for &(s, t) in &[(4, 5), (5, 4), (5, 6), (6, 5), (6, 7), (7, 6)] {
            g.add_edge(Edge::new(s, t));
        }
        g.add_edge(Edge::new(2, 4));
        let engine = IncrementalSalsa::from_graph(&g, config(5, 21));
        let scores = engine.personalized_authorities(NodeId(0), 30_000);
        let mass_a: f64 = scores[..4].iter().sum();
        let mass_b: f64 = scores[4..].iter().sum();
        assert!(mass_a > mass_b, "A = {mass_a:.3}, B = {mass_b:.3}");
        let top = engine.personalized_top_k(NodeId(0), 3, 30_000);
        assert!(!top.is_empty());
        for &(node, _) in &top {
            assert_ne!(node, NodeId(0));
            assert_ne!(node, NodeId(1), "existing friends are excluded");
            assert_ne!(node, NodeId(2), "existing friends are excluded");
        }
    }

    #[test]
    fn update_work_counter_accumulates() {
        let mut engine = IncrementalSalsa::new_empty(10, config(2, 23));
        for i in 0..9u32 {
            engine.add_edge(Edge::new(i, i + 1));
        }
        assert_eq!(engine.work().edges_processed, 9);
        assert!(engine.work().total_work() > 0);
        engine.reset_work();
        assert_eq!(engine.work().edges_processed, 0);
    }

    #[test]
    fn removing_absent_edge_is_noop() {
        let mut engine = IncrementalSalsa::from_graph(directed_cycle(4), config(2, 25));
        assert!(engine.remove_edge(Edge::new(0, 2)).is_none());
    }

    #[test]
    #[should_panic(expected = "seed node")]
    fn personalized_rejects_bad_seed() {
        let engine = IncrementalSalsa::from_graph(directed_cycle(3), config(2, 27));
        let _ = engine.personalized_authorities(NodeId(9), 100);
    }
}
