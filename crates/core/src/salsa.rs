//! Incremental Monte Carlo SALSA (Section 2.3, Theorem 6).
//!
//! SALSA is the stationary behaviour of an alternating forward/backward random walk: a
//! *hub* position follows a random out-edge to an *authority* position, which follows a
//! random in-edge back to a hub position, and so on, with ε-resets allowed only before
//! forward steps.  To estimate hub and authority scores the engine stores `2R` segments
//! per node — `R` starting with a forward step (the node acts as a hub) and `R` starting
//! with a backward step (the node acts as an authority) — and counts visits by parity.
//!
//! Incremental maintenance mirrors the PageRank case, except that an arriving edge
//! `(u, v)` can disturb walks at two places: forward steps taken out of `u` (with
//! probability `1/outdeg(u)` per hub visit) and backward steps taken out of `v` (with
//! probability `1/indeg(v)` per authority visit).  Theorem 6 shows the total update work
//! is within a factor 16 of the PageRank bound; the closed form this engine
//! instantiates is [`crate::bounds::salsa_total_update_work`].
//!
//! Like the PageRank engine, all store reads go through the [`ppr_store::WalkIndex`] API, repairs
//! reuse one scratch buffer (zero steady-state allocations), and
//! [`IncrementalSalsa::apply_arrivals`] batches a stream of arrivals by grouping the
//! forward coin flips per source and the backward coin flips per target.
//!
//! Personalized SALSA scores are obtained with a direct alternating walk with resets to
//! the seed; the paper's fetch-stitching analysis (Theorem 8) is developed for PageRank
//! and the same store layout would apply, but the reproduction keeps the SALSA
//! personalization simple because no experiment in the paper measures its fetch count.

use crate::batch;
use crate::config::{MonteCarloConfig, RerouteStrategy};
use crate::walker;
use ppr_graph::{DynamicGraph, Edge, GraphView, NodeId};
use ppr_store::{SegmentId, SocialStore, WalkStore, WorkCounter};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};

use crate::incremental::UpdateStats;

/// Hub and authority estimates derived from the stored SALSA segments.
#[derive(Debug, Clone)]
pub struct SalsaEstimates {
    /// Normalised hub scores (sum to 1 when any hub visit exists).
    pub hubs: Vec<f64>,
    /// Normalised authority scores (sum to 1 when any authority visit exists).
    pub authorities: Vec<f64>,
}

/// Monte Carlo SALSA with incrementally maintained alternating walk segments.
#[derive(Debug)]
pub struct IncrementalSalsa {
    store: SocialStore,
    walks: WalkStore,
    config: MonteCarloConfig,
    rng: SmallRng,
    work: WorkCounter,
    /// Reusable path buffer for segment repairs (keeps reroutes allocation-free).
    scratch: Vec<NodeId>,
    /// Reusable buffer for the ids of the segments visiting the updated node.
    visiting: Vec<SegmentId>,
    /// Per-batch reroute frontier, as in the PageRank engine.
    batch_limits: HashMap<SegmentId, usize>,
}

impl IncrementalSalsa {
    /// Builds the engine over a graph or an existing Social Store, storing `2R` segments
    /// per node.  Pass the graph by value to avoid copying it; `&DynamicGraph` is also
    /// accepted (and cloned) for callers that keep theirs.
    pub fn from_graph(graph: impl Into<SocialStore>, config: MonteCarloConfig) -> Self {
        let store = graph.into();
        let node_count = store.node_count();
        let walks = WalkStore::new(node_count, 2 * config.r);
        let rng = SmallRng::seed_from_u64(config.seed.wrapping_add(0x5a15a));
        let mut engine = IncrementalSalsa {
            store,
            walks,
            config,
            rng,
            work: WorkCounter::new(),
            scratch: Vec::new(),
            visiting: Vec::new(),
            batch_limits: HashMap::new(),
        };
        for node in 0..node_count {
            engine.generate_segments_for(NodeId::from_index(node));
        }
        engine
    }

    /// Builds the engine over an empty graph with `node_count` isolated nodes.
    pub fn new_empty(node_count: usize, config: MonteCarloConfig) -> Self {
        Self::from_graph(DynamicGraph::with_nodes(node_count), config)
    }

    /// The engine's configuration.
    pub fn config(&self) -> &MonteCarloConfig {
        &self.config
    }

    /// The underlying graph.
    pub fn graph(&self) -> &DynamicGraph {
        self.store.graph()
    }

    /// The store holding the `2R` SALSA segments per node.
    pub fn walk_store(&self) -> &WalkStore {
        &self.walks
    }

    /// Cumulative update work since construction.
    pub fn work(&self) -> &WorkCounter {
        &self.work
    }

    /// Resets the cumulative work counter.
    pub fn reset_work(&mut self) {
        self.work = WorkCounter::new();
    }

    /// Number of nodes currently known to the engine.
    pub fn node_count(&self) -> usize {
        self.store.node_count()
    }

    /// Whether the segment in `slot` of a node starts with a forward step.
    fn slot_is_forward(&self, slot: usize) -> bool {
        slot < self.config.r
    }

    /// Parity of hub visits within a segment: forward-start segments occupy hub
    /// positions at even indices, backward-start segments at odd indices.
    fn hub_parity(&self, id: SegmentId) -> usize {
        if self.slot_is_forward(id.slot(self.walks.r())) {
            0
        } else {
            1
        }
    }

    /// Current hub/authority estimates from the stored segments.
    pub fn estimates(&self) -> SalsaEstimates {
        let n = self.node_count();
        let mut hub_visits = vec![0u64; n];
        let mut auth_visits = vec![0u64; n];
        for node in self.store.graph().nodes() {
            for id in self.walks.segment_ids_of(node) {
                let hub_parity = self.hub_parity(id);
                for (pos, &visited) in self.walks.segment_path(id).iter().enumerate() {
                    if pos % 2 == hub_parity {
                        hub_visits[visited.index()] += 1;
                    } else {
                        auth_visits[visited.index()] += 1;
                    }
                }
            }
        }
        SalsaEstimates {
            hubs: normalize(&hub_visits),
            authorities: normalize(&auth_visits),
        }
    }

    /// Authority scores personalized on `seed`, estimated with a direct alternating walk
    /// of `walk_length` visits that resets to the seed before forward steps with
    /// probability ε.
    pub fn personalized_authorities(&self, seed: NodeId, walk_length: usize) -> Vec<f64> {
        assert!(
            seed.index() < self.node_count(),
            "seed node {seed} outside the graph"
        );
        let mut rng = SmallRng::seed_from_u64(
            self.config.seed ^ 0xa55a_0000u64 ^ (seed.0 as u64).wrapping_mul(0x9e37_79b9),
        );
        let graph = self.store.graph();
        let epsilon = self.config.epsilon;
        let n = self.node_count();
        let mut auth_visits = vec![0u64; n];
        let mut total_auth = 0u64;

        let mut current = seed;
        let mut forward = true;
        let mut visits = 0usize;
        while visits < walk_length {
            visits += 1;
            if forward {
                if rng.gen_bool(epsilon) {
                    current = seed;
                    forward = true;
                    continue;
                }
                match graph.random_out_neighbor(current, &mut rng) {
                    Some(next) => {
                        auth_visits[next.index()] += 1;
                        total_auth += 1;
                        current = next;
                        forward = false;
                    }
                    None => {
                        current = seed;
                        forward = true;
                    }
                }
            } else {
                match graph.random_in_neighbor(current, &mut rng) {
                    Some(next) => {
                        current = next;
                        forward = true;
                    }
                    None => {
                        current = seed;
                        forward = true;
                    }
                }
            }
        }

        if total_auth == 0 {
            return vec![0.0; n];
        }
        auth_visits
            .iter()
            .map(|&v| v as f64 / total_auth as f64)
            .collect()
    }

    /// Top-`k` friend recommendations for `seed` by personalized authority score,
    /// excluding the seed and its existing friends.
    pub fn personalized_top_k(
        &self,
        seed: NodeId,
        k: usize,
        walk_length: usize,
    ) -> Vec<(NodeId, f64)> {
        let scores = self.personalized_authorities(seed, walk_length);
        let mut exclude: HashSet<usize> = HashSet::new();
        exclude.insert(seed.index());
        exclude.extend(
            self.store
                .graph()
                .out_neighbors(seed)
                .iter()
                .map(|n| n.index()),
        );
        let mut candidates: Vec<(usize, f64)> = scores
            .iter()
            .enumerate()
            .filter(|&(i, &s)| s > 0.0 && !exclude.contains(&i))
            .map(|(i, &s)| (i, s))
            .collect();
        candidates.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        candidates.truncate(k);
        candidates
            .into_iter()
            .map(|(i, s)| (NodeId::from_index(i), s))
            .collect()
    }

    /// Processes the arrival of `edge`, repairing affected forward and backward steps.
    pub fn add_edge(&mut self, edge: Edge) -> UpdateStats {
        let needed = edge.source.index().max(edge.target.index()) + 1;
        self.ensure_nodes(needed);
        let prior_out = self.store.out_degree(edge.source);
        let prior_in = self.store.in_degree(edge.target);
        self.store.add_edge(edge);

        let mut stats = UpdateStats::default();
        self.batch_limits.clear();
        // Forward steps out of u (hub visits to u).
        self.process_salsa_group(
            edge.source,
            prior_out,
            std::slice::from_ref(&edge.target),
            true,
            &mut stats,
        );
        // Backward steps out of v (authority visits to v).
        self.process_salsa_group(
            edge.target,
            prior_in,
            std::slice::from_ref(&edge.source),
            false,
            &mut stats,
        );

        self.work.edges_processed += 1;
        self.work.segments_updated += stats.segments_updated;
        self.work.walk_steps += stats.walk_steps;
        if !stats.touched_walk_store {
            self.work.arrivals_filtered += 1;
        }
        stats
    }

    /// Processes a whole batch of edge arrivals, grouping forward coin flips per source
    /// node and backward coin flips per target node, exactly as
    /// [`crate::IncrementalPageRank::apply_arrivals`] does for the PageRank walks.
    pub fn apply_arrivals(&mut self, edges: &[Edge]) -> UpdateStats {
        let mut stats = UpdateStats::default();
        let Some(needed) = edges
            .iter()
            .map(|e| e.source.index().max(e.target.index()) + 1)
            .max()
        else {
            return stats;
        };
        self.ensure_nodes(needed);

        // Forward groups key on the source (out-degree coins), backward groups on the
        // target (in-degree coins); both capture pre-batch degrees, then all edges are
        // inserted at once.
        let forward = batch::group_arrivals(
            &self.store,
            edges,
            |e| (e.source, e.target),
            |s, n| s.out_degree(n),
        );
        let backward = batch::group_arrivals(
            &self.store,
            edges,
            |e| (e.target, e.source),
            |s, n| s.in_degree(n),
        );
        for &edge in edges {
            self.store.add_edge(edge);
        }

        self.batch_limits.clear();
        let mut touched_forward: HashSet<NodeId> = HashSet::new();
        let mut touched_backward: HashSet<NodeId> = HashSet::new();
        for (u, prior_out, targets) in forward {
            let before = stats.segments_updated;
            self.process_salsa_group(u, prior_out, &targets, true, &mut stats);
            if stats.segments_updated > before {
                touched_forward.insert(u);
            }
        }
        for (v, prior_in, sources) in backward {
            let before = stats.segments_updated;
            self.process_salsa_group(v, prior_in, &sources, false, &mut stats);
            if stats.segments_updated > before {
                touched_backward.insert(v);
            }
        }

        self.work.edges_processed += edges.len() as u64;
        self.work.segments_updated += stats.segments_updated;
        self.work.walk_steps += stats.walk_steps;
        // As in the per-edge path, an arrival counts as filtered when neither of its
        // endpoints' groups disturbed any segment.
        for &edge in edges {
            if !touched_forward.contains(&edge.source) && !touched_backward.contains(&edge.target) {
                self.work.arrivals_filtered += 1;
            }
        }
        stats
    }

    /// Processes the deletion of `edge`.  Returns `None` if the edge was not present.
    pub fn remove_edge(&mut self, edge: Edge) -> Option<UpdateStats> {
        if !self.store.remove_edge(edge) {
            return None;
        }
        let u = edge.source;
        let v = edge.target;
        let mut stats = UpdateStats::default();

        if !self.store.graph().has_edge(edge) {
            // Forward traversals u -> v at hub positions of u.
            let mut visiting = std::mem::take(&mut self.visiting);
            self.walks.collect_visiting(u, &mut visiting);
            for &id in &visiting {
                self.reroute_deleted_traversal(id, u, v, true, &mut stats);
            }
            // Backward traversals v -> u at authority positions of v.
            self.walks.collect_visiting(v, &mut visiting);
            for &id in &visiting {
                self.reroute_deleted_traversal(id, v, u, false, &mut stats);
            }
            self.visiting = visiting;
        }

        self.work.edges_processed += 1;
        self.work.segments_updated += stats.segments_updated;
        self.work.walk_steps += stats.walk_steps;
        if !stats.touched_walk_store {
            self.work.arrivals_filtered += 1;
        }
        Some(stats)
    }

    /// Verifies that every stored segment is a valid alternating walk in the current
    /// graph: forward positions follow out-edges, backward positions follow in-edges.
    pub fn validate_segments(&self) -> Result<(), String> {
        let graph = self.store.graph();
        for node in graph.nodes() {
            for id in self.walks.segment_ids_of(node) {
                let path = self.walks.segment_path(id);
                if path.first() != Some(&node) {
                    return Err(format!("segment {id:?} does not start at {node}"));
                }
                let hub_parity = self.hub_parity(id);
                for (pos, pair) in path.windows(2).enumerate() {
                    let forward = pos % 2 == hub_parity;
                    let edge = if forward {
                        Edge {
                            source: pair[0],
                            target: pair[1],
                        }
                    } else {
                        Edge {
                            source: pair[1],
                            target: pair[0],
                        }
                    };
                    if !graph.has_edge(edge) {
                        return Err(format!(
                            "segment {id:?} traverses missing edge {edge} at position {pos}"
                        ));
                    }
                }
            }
        }
        self.walks.check_consistency()
    }

    // ----- internal helpers -------------------------------------------------------

    fn ensure_nodes(&mut self, n: usize) {
        let before = self.store.node_count();
        if n <= before {
            return;
        }
        self.store.ensure_nodes(n);
        self.walks.ensure_nodes(n);
        for node in before..n {
            self.generate_segments_for(NodeId::from_index(node));
        }
    }

    fn generate_segments_for(&mut self, node: NodeId) {
        let r2 = 2 * self.config.r;
        for slot in 0..r2 {
            let id = SegmentId::new(node, slot, r2);
            walker::salsa_segment_into(
                self.store.graph(),
                node,
                slot < self.config.r,
                self.config.epsilon,
                self.config.max_segment_length,
                &mut self.rng,
                &mut self.scratch,
            );
            self.walks.set_segment(id, &self.scratch);
        }
    }

    /// Repairs the segments visiting `pivot` after it gained `targets.len()` new edges
    /// in one direction: out-edges when `forward` (the pivot's hub steps changed),
    /// in-edges otherwise (its authority steps changed).  `prior_degree` is the pivot's
    /// relevant degree before the group was inserted.
    fn process_salsa_group(
        &mut self,
        pivot: NodeId,
        prior_degree: usize,
        targets: &[NodeId],
        forward: bool,
        stats: &mut UpdateStats,
    ) {
        debug_assert!(!targets.is_empty());
        let mut visiting = std::mem::take(&mut self.visiting);
        self.walks.collect_visiting(pivot, &mut visiting);
        for &id in &visiting {
            let limit = self.batch_limits.get(&id).copied().unwrap_or(usize::MAX);
            if limit == 0 {
                continue;
            }
            if let Some(pos) =
                self.maybe_reroute_group(id, pivot, prior_degree, targets, forward, limit, stats)
            {
                let new_limit = match self.config.reroute {
                    RerouteStrategy::FromUpdatePoint => pos,
                    RerouteStrategy::FromSource => 0,
                };
                self.batch_limits.insert(id, new_limit);
            }
        }
        self.visiting = visiting;
    }

    /// Decides whether (and where) segment `id` reroutes for a group of new edges at
    /// `pivot`, performs the repair, and returns the reroute position.
    #[allow(clippy::too_many_arguments)]
    fn maybe_reroute_group(
        &mut self,
        id: SegmentId,
        pivot: NodeId,
        prior_degree: usize,
        targets: &[NodeId],
        forward: bool,
        limit: usize,
        stats: &mut UpdateStats,
    ) -> Option<usize> {
        let k = targets.len();
        let path_len = self.walks.segment_len(id);
        if path_len == 0 {
            return None;
        }
        let hub_parity = self.hub_parity(id);
        let affected_parity = if forward { hub_parity } else { 1 - hub_parity };
        let last_index = path_len - 1;

        let mut reroute_at: Option<(usize, NodeId)> = None;
        for pos in self.walks.positions_of(id, pivot) {
            if pos >= limit {
                break;
            }
            if pos % 2 != affected_parity {
                continue;
            }
            if pos < last_index {
                // The step leaving this visit now has `prior_degree + k` choices; it
                // lands on a new edge with probability k/(d₀+k), uniformly among them.
                if self.rng.gen_bool(k as f64 / (prior_degree + k) as f64) {
                    let target = walker::pick_new_target(&mut self.rng, targets);
                    reroute_at = Some((pos, target));
                    break;
                }
            } else if prior_degree == 0 {
                // The segment previously stopped here because the pivot had no edge in
                // the required direction.  Forward steps are preceded by a reset coin
                // (continue with probability 1 − ε); backward steps are unconditional.
                let continue_probability = if forward {
                    1.0 - self.config.epsilon
                } else {
                    1.0
                };
                if self.rng.gen_bool(continue_probability) {
                    let target = walker::pick_new_target(&mut self.rng, targets);
                    reroute_at = Some((pos, target));
                    break;
                }
            }
        }

        let (pos, target) = reroute_at?;
        self.rebuild_suffix(id, pos, Some(target), forward, stats);
        Some(pos)
    }

    fn reroute_deleted_traversal(
        &mut self,
        id: SegmentId,
        from: NodeId,
        to: NodeId,
        forward: bool,
        stats: &mut UpdateStats,
    ) {
        let hub_parity = self.hub_parity(id);
        let affected_parity = if forward { hub_parity } else { 1 - hub_parity };
        let pos = self
            .walks
            .segment_path(id)
            .windows(2)
            .enumerate()
            .find_map(|(pos, pair)| {
                (pos % 2 == affected_parity && pair[0] == from && pair[1] == to).then_some(pos)
            });
        let Some(pos) = pos else {
            return;
        };
        self.rebuild_suffix(id, pos, None, forward, stats);
    }

    /// Rebuilds the suffix of segment `id` after position `pos`.  If `forced_next` is
    /// set, that node is taken as the next visit (an arrival reroute); otherwise the
    /// next step is re-sampled (a deletion repair).  `forward` is the direction of the
    /// step leaving position `pos`.
    fn rebuild_suffix(
        &mut self,
        id: SegmentId,
        pos: usize,
        forced_next: Option<NodeId>,
        forward: bool,
        stats: &mut UpdateStats,
    ) {
        if self.config.reroute == RerouteStrategy::FromSource {
            let r2 = 2 * self.config.r;
            let source = id.source(r2);
            let steps = walker::salsa_segment_into(
                self.store.graph(),
                source,
                self.slot_is_forward(id.slot(r2)),
                self.config.epsilon,
                self.config.max_segment_length,
                &mut self.rng,
                &mut self.scratch,
            );
            self.walks.set_segment(id, &self.scratch);
            stats.record_segment(steps);
            return;
        }

        self.scratch.clear();
        self.scratch
            .extend_from_slice(&self.walks.segment_path(id)[..=pos]);
        let mut steps = 0u64;
        let mut direction_forward = forward;

        if let Some(next) = forced_next {
            if self.scratch.len() < self.config.max_segment_length {
                self.scratch.push(next);
                steps += 1;
                direction_forward = !direction_forward;
            }
        } else {
            // Re-sample the step that used to traverse the deleted edge; the reset coin
            // for a forward step was already spent when the segment was first built.
            let current = *self.scratch.last().expect("prefix is non-empty");
            let next = if direction_forward {
                self.store
                    .graph()
                    .random_out_neighbor(current, &mut self.rng)
            } else {
                self.store
                    .graph()
                    .random_in_neighbor(current, &mut self.rng)
            };
            if let Some(next) = next {
                if self.scratch.len() < self.config.max_segment_length {
                    self.scratch.push(next);
                    steps += 1;
                    direction_forward = !direction_forward;
                }
            } else {
                // The pivot lost its last edge in that direction: the segment now ends here.
                self.walks.set_segment(id, &self.scratch);
                stats.record_segment(steps);
                return;
            }
        }

        // Continue the alternating walk until a reset / missing edge / the length cap.
        steps += walker::extend_salsa_walk(
            self.store.graph(),
            &mut self.scratch,
            direction_forward,
            self.config.epsilon,
            self.config.max_segment_length,
            &mut self.rng,
        );

        self.walks.set_segment(id, &self.scratch);
        stats.record_segment(steps);
    }
}

fn normalize(counts: &[u64]) -> Vec<f64> {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return vec![0.0; counts.len()];
    }
    counts.iter().map(|&c| c as f64 / total as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_baselines::salsa_exact::salsa_exact;
    use ppr_graph::generators::{
        directed_cycle, preferential_attachment, preferential_attachment_edges, star_inward,
        PreferentialAttachmentConfig,
    };

    fn config(r: usize, seed: u64) -> MonteCarloConfig {
        MonteCarloConfig::new(0.2, r).with_seed(seed)
    }

    #[test]
    fn initialization_stores_two_r_segments_per_node() {
        let g = directed_cycle(6);
        let engine = IncrementalSalsa::from_graph(&g, config(3, 1));
        assert_eq!(engine.walk_store().r(), 6);
        for node in g.nodes() {
            assert_eq!(engine.walk_store().segment_ids_of(node).count(), 6);
        }
        engine.validate_segments().unwrap();
    }

    #[test]
    fn authority_estimates_track_indegree_on_a_star() {
        // Global SALSA authority ≈ in-degree share (as the paper notes for ε -> 0); the
        // star concentrates every authority visit on the centre.
        let g = star_inward(8);
        let engine = IncrementalSalsa::from_graph(&g, config(20, 3));
        let est = engine.estimates();
        // The backward-start segments seed every node (including leaves) with one
        // authority visit, so the centre does not get *all* the mass, but it dominates.
        assert!(
            est.authorities[0] > 0.7,
            "centre authority {}",
            est.authorities[0]
        );
        for &leaf in &est.authorities[1..] {
            assert!(leaf < 0.06, "leaf authority {leaf} should be tiny");
        }
        let hub_sum: f64 = est.hubs.iter().sum();
        assert!((hub_sum - 1.0).abs() < 1e-9);
        assert!(
            est.hubs[0] < 0.1,
            "the centre follows nobody so it is barely a hub"
        );
    }

    #[test]
    fn authority_estimates_agree_with_exact_salsa() {
        let g = preferential_attachment(150, 4, 7);
        let engine = IncrementalSalsa::from_graph(&g, config(25, 9));
        let mc = engine.estimates();
        let exact = salsa_exact(&g, 30);
        let tvd: f64 = 0.5
            * mc.authorities
                .iter()
                .zip(&exact.authorities)
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>();
        assert!(
            tvd < 0.15,
            "Monte Carlo SALSA authorities should track the exact ones, TVD = {tvd:.4}"
        );
    }

    #[test]
    fn add_edge_keeps_alternating_segments_valid() {
        let mut engine = IncrementalSalsa::new_empty(6, config(4, 11));
        let edges = [
            Edge::new(0, 1),
            Edge::new(1, 2),
            Edge::new(2, 3),
            Edge::new(3, 0),
            Edge::new(4, 0),
            Edge::new(5, 2),
            Edge::new(0, 5),
        ];
        for &edge in &edges {
            engine.add_edge(edge);
            engine.validate_segments().unwrap();
        }
        assert_eq!(engine.graph().edge_count(), edges.len());
    }

    #[test]
    fn batched_arrivals_keep_alternating_segments_valid_and_accurate() {
        let pa = PreferentialAttachmentConfig::new(120, 4, 18);
        let edges = preferential_attachment_edges(&pa);
        let mut engine = IncrementalSalsa::new_empty(120, config(15, 20));
        for chunk in edges.chunks(48) {
            engine.apply_arrivals(chunk);
            engine.validate_segments().unwrap();
        }
        assert_eq!(engine.graph().edge_count(), edges.len());
        let exact = salsa_exact(engine.graph(), 30);
        let mc = engine.estimates();
        let tvd: f64 = 0.5
            * mc.authorities
                .iter()
                .zip(&exact.authorities)
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>();
        assert!(
            tvd < 0.2,
            "batched incremental SALSA should stay accurate, TVD = {tvd:.4}"
        );
        // Empty batches are a no-op.
        assert_eq!(engine.apply_arrivals(&[]), UpdateStats::default());
    }

    #[test]
    fn remove_edge_repairs_both_directions() {
        let g = preferential_attachment(60, 3, 13);
        let mut engine = IncrementalSalsa::from_graph(&g, config(5, 15));
        let edges = engine.graph().collect_edges();
        for edge in edges.into_iter().step_by(7).take(10).collect::<Vec<_>>() {
            engine.remove_edge(edge);
            engine.validate_segments().unwrap();
        }
    }

    #[test]
    fn incremental_build_matches_exact_salsa() {
        let pa = PreferentialAttachmentConfig::new(120, 4, 17);
        let edges = preferential_attachment_edges(&pa);
        let mut engine = IncrementalSalsa::new_empty(120, config(15, 19));
        for &edge in &edges {
            engine.add_edge(edge);
        }
        engine.validate_segments().unwrap();
        let exact = salsa_exact(engine.graph(), 30);
        let mc = engine.estimates();
        let tvd: f64 = 0.5
            * mc.authorities
                .iter()
                .zip(&exact.authorities)
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>();
        assert!(
            tvd < 0.2,
            "incremental SALSA should stay accurate, TVD = {tvd:.4}"
        );
    }

    #[test]
    fn personalized_authorities_prefer_seed_neighbourhood() {
        // Two communities bridged by one edge; personalized SALSA for a node in
        // community A should give community A most of the authority mass.
        let mut g = DynamicGraph::with_nodes(8);
        for &(s, t) in &[(0, 1), (1, 0), (1, 2), (2, 1), (0, 2), (2, 0), (3, 0)] {
            g.add_edge(Edge::new(s, t));
        }
        for &(s, t) in &[(4, 5), (5, 4), (5, 6), (6, 5), (6, 7), (7, 6)] {
            g.add_edge(Edge::new(s, t));
        }
        g.add_edge(Edge::new(2, 4));
        let engine = IncrementalSalsa::from_graph(&g, config(5, 21));
        let scores = engine.personalized_authorities(NodeId(0), 30_000);
        let mass_a: f64 = scores[..4].iter().sum();
        let mass_b: f64 = scores[4..].iter().sum();
        assert!(mass_a > mass_b, "A = {mass_a:.3}, B = {mass_b:.3}");
        let top = engine.personalized_top_k(NodeId(0), 3, 30_000);
        assert!(!top.is_empty());
        for &(node, _) in &top {
            assert_ne!(node, NodeId(0));
            assert_ne!(node, NodeId(1), "existing friends are excluded");
            assert_ne!(node, NodeId(2), "existing friends are excluded");
        }
    }

    #[test]
    fn update_work_counter_accumulates() {
        let mut engine = IncrementalSalsa::new_empty(10, config(2, 23));
        for i in 0..9u32 {
            engine.add_edge(Edge::new(i, i + 1));
        }
        assert_eq!(engine.work().edges_processed, 9);
        assert!(engine.work().total_work() > 0);
        engine.reset_work();
        assert_eq!(engine.work().edges_processed, 0);
    }

    #[test]
    fn removing_absent_edge_is_noop() {
        let mut engine = IncrementalSalsa::from_graph(directed_cycle(4), config(2, 25));
        assert!(engine.remove_edge(Edge::new(0, 2)).is_none());
    }

    #[test]
    #[should_panic(expected = "seed node")]
    fn personalized_rejects_bad_seed() {
        let engine = IncrementalSalsa::from_graph(directed_cycle(3), config(2, 27));
        let _ = engine.personalized_authorities(NodeId(9), 100);
    }
}
