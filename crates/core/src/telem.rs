//! Telemetry adapters for the incremental engines.
//!
//! [`MetricSource`] impls for this crate's stats structs, plus an
//! `emit_telemetry` method on each engine that folds *every* layer the engine
//! owns — Social Store access counts, cumulative update work, batch wall-time
//! profile, the walk store's own counters (arena; plus pager / residency /
//! on-disk compaction for [`ppr_persist::DiskWalkStore`]), and the attached
//! WAL — into one snapshot builder.  This is what lets a single
//! `TelemetrySnapshot` see the whole stack.

use crate::batch::BatchProfile;
use crate::incremental::{IncrementalPageRank, UpdateStats};
use crate::salsa::IncrementalSalsa;
use ppr_store::index::WalkIndexMut;
use ppr_telemetry::{MetricSource, SnapshotBuilder};

impl MetricSource for BatchProfile {
    fn emit(&self, out: &mut SnapshotBuilder) {
        out.counter("total_nanos", self.total.as_nanos() as u64);
        out.counter("compactions", self.compactions);
        out.counter("compaction_nanos", self.compaction_time.as_nanos() as u64);
        out.counter("compaction_steps_moved", self.compaction_steps_moved);
        out.gauge(
            "critical_path_nanos",
            self.critical_path().as_nanos() as f64,
        );
        out.gauge("shards", self.phase1_shard_times.len() as f64);
    }
}

impl MetricSource for UpdateStats {
    fn emit(&self, out: &mut SnapshotBuilder) {
        out.counter("segments_updated", self.segments_updated);
        out.counter("walk_steps", self.walk_steps);
        out.gauge(
            "touched_walk_store",
            if self.touched_walk_store { 1.0 } else { 0.0 },
        );
    }
}

impl<W: WalkIndexMut> IncrementalPageRank<W> {
    /// Emits every observability layer this engine owns into `out`: Social
    /// Store access metrics (`store.*`), cumulative update work (`work.*`),
    /// the batch wall-time profile (`batch.*`), the walk store's counters
    /// (`arena.*` always; `disk.*` / `pager.*` / `residency.*` /
    /// `shard_load.*` per layout), and WAL counters (`wal.*`) when a durable
    /// log is attached.
    pub fn emit_telemetry(&self, out: &mut SnapshotBuilder) {
        out.source("store", &self.store.metrics());
        out.source("work", &self.work);
        out.source("batch", &self.profile);
        self.walks.emit_telemetry(out);
        if let Some(log) = &self.durability {
            out.source("wal", &log.wal_stats());
        }
    }
}

impl<W: WalkIndexMut> IncrementalSalsa<W> {
    /// Emits every observability layer this engine owns into `out`; see
    /// [`IncrementalPageRank::emit_telemetry`] — the layout is identical.
    pub fn emit_telemetry(&self, out: &mut SnapshotBuilder) {
        out.source("store", &self.store.metrics());
        out.source("work", &self.work);
        out.source("batch", &self.profile);
        self.walks.emit_telemetry(out);
        if let Some(log) = &self.durability {
            out.source("wal", &log.wal_stats());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MonteCarloConfig;
    use ppr_graph::{DynamicGraph, Edge};
    use ppr_telemetry::TelemetrySnapshot;

    fn tiny_graph() -> DynamicGraph {
        let mut graph = DynamicGraph::with_nodes(4);
        for (src, dst) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
            graph.add_edge(Edge::new(src, dst));
        }
        graph
    }

    #[test]
    fn engine_emits_store_work_batch_and_arena_layers() {
        let config = MonteCarloConfig::new(0.2, 2).with_seed(7);
        let mut engine = IncrementalPageRank::from_graph(tiny_graph(), config);
        engine.apply_arrivals(&[Edge::new(0, 2)]);
        let mut out = SnapshotBuilder::new();
        out.scoped("engine", |out| engine.emit_telemetry(out));
        let snap = TelemetrySnapshot::from_builder(0, out);
        assert!(snap.counter("engine.store.fetches").is_some());
        assert!(snap.counter("engine.work.walk_steps").is_some());
        assert!(snap.counter("engine.batch.total_nanos").is_some());
        assert!(snap.counter("engine.arena.in_place_writes").is_some());
        // In-memory engine: no WAL layer.
        assert_eq!(snap.counter("engine.wal.appended"), None);
    }

    #[test]
    fn salsa_engine_emits_the_same_layout() {
        let config = MonteCarloConfig::new(0.2, 2).with_seed(7);
        let mut engine = IncrementalSalsa::from_graph(tiny_graph(), config);
        engine.apply_arrivals(&[Edge::new(1, 3)]);
        let mut out = SnapshotBuilder::new();
        engine.emit_telemetry(&mut out);
        let snap = TelemetrySnapshot::from_builder(0, out);
        assert!(snap.counter("store.fetches").is_some());
        assert!(snap.counter("arena.in_place_writes").is_some());
    }
}
