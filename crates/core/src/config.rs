//! Configuration of the Monte Carlo engines.

/// How a walk segment is repaired when an arriving or departing edge invalidates it.
///
/// Section 2.2 of the paper: *"For each walk segment that needs an update, we can redo
/// the walk starting at the updated node, or even more simply starting at the
/// corresponding source node."*  Both strategies cost `O(1/ε)` expected steps per
/// segment; rerouting from the update point preserves the already-valid prefix of the
/// segment, rebuilding from the source is simpler and is what the looser analysis
/// charges.  The choice is exposed so the ablation bench can compare them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RerouteStrategy {
    /// Keep the prefix of the segment up to (and including) the invalidated visit and
    /// regenerate only the suffix.
    #[default]
    FromUpdatePoint,
    /// Throw the whole segment away and regenerate it from its source node.
    FromSource,
}

/// Parameters of the Monte Carlo PageRank/SALSA engines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloConfig {
    /// Reset probability ε of the PageRank random walk.  The paper's experiments use
    /// `0.2`; every stored segment has expected length `1/ε`.
    pub epsilon: f64,
    /// Number of walk segments stored per node (`R`).  Theorem 1 shows `R = 1` already
    /// concentrates for above-average PageRank values and `R = Θ(ln n)` for all nodes.
    pub r: usize,
    /// RNG seed for reproducible experiments.
    pub seed: u64,
    /// Repair strategy for invalidated segments.
    pub reroute: RerouteStrategy,
    /// Hard cap on the length of a single stored segment, guarding against the
    /// (probability-zero under ε > 0, but worth bounding) pathological long walk.
    pub max_segment_length: usize,
    /// Arena compaction trigger: relocation garbage above this ratio of the live
    /// walk data compacts the PageRank Store's step arena(s).  `1.0` is the classic
    /// half-dead rule; a tighter ratio trades more frequent compaction pauses for a
    /// smaller resident buffer (the `ArenaStats` / `BatchProfile` compaction
    /// counters measure both sides).  Purely a space/latency knob — results never
    /// depend on it.
    pub compaction_threshold: f64,
}

impl MonteCarloConfig {
    /// Creates a configuration with the given reset probability and segments per node.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not in `(0, 1)` or `r` is zero.
    pub fn new(epsilon: f64, r: usize) -> Self {
        assert!(
            epsilon > 0.0 && epsilon < 1.0,
            "epsilon must be in (0, 1), got {epsilon}"
        );
        assert!(r >= 1, "at least one walk segment per node is required");
        MonteCarloConfig {
            epsilon,
            r,
            seed: 0,
            reroute: RerouteStrategy::default(),
            max_segment_length: Self::default_max_segment_length(epsilon),
            compaction_threshold: ppr_store::arena::DEFAULT_COMPACT_RATIO,
        }
    }

    /// The paper's experimental setting: ε = 0.2.
    pub fn paper_defaults(r: usize) -> Self {
        Self::new(0.2, r)
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the segment repair strategy.
    pub fn with_reroute(mut self, reroute: RerouteStrategy) -> Self {
        self.reroute = reroute;
        self
    }

    /// Sets the hard cap on stored segment length.
    pub fn with_max_segment_length(mut self, max_segment_length: usize) -> Self {
        assert!(
            max_segment_length >= 1,
            "segments must be allowed at least one node"
        );
        self.max_segment_length = max_segment_length;
        self
    }

    /// Sets the arena compaction trigger ratio (garbage-to-live; see
    /// [`MonteCarloConfig::compaction_threshold`]).
    ///
    /// # Panics
    ///
    /// Panics unless `ratio` is finite and positive.
    pub fn with_compaction_threshold(mut self, ratio: f64) -> Self {
        assert!(
            ratio.is_finite() && ratio > 0.0,
            "compaction threshold must be a positive ratio, got {ratio}"
        );
        self.compaction_threshold = ratio;
        self
    }

    /// Expected length of one stored segment, `1/ε`.
    pub fn expected_segment_length(&self) -> f64 {
        1.0 / self.epsilon
    }

    /// Expected total stored walk length, `nR/ε`, which is also the cost of initialising
    /// the walk store from scratch.
    pub fn expected_initialization_cost(&self, nodes: usize) -> f64 {
        nodes as f64 * self.r as f64 / self.epsilon
    }

    fn default_max_segment_length(epsilon: f64) -> usize {
        // 60 expected lengths: the probability of a geometric(ε) exceeding this is
        // (1-ε)^(60/ε) ≤ e^{-60}, i.e. never in practice, so the cap does not bias the
        // estimates while still bounding memory for adversarial RNG streams.
        ((60.0 / epsilon).ceil() as usize).max(16)
    }
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        Self::paper_defaults(5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_all_fields() {
        let config = MonteCarloConfig::new(0.25, 7)
            .with_seed(99)
            .with_reroute(RerouteStrategy::FromSource)
            .with_max_segment_length(500)
            .with_compaction_threshold(0.25);
        assert_eq!(config.epsilon, 0.25);
        assert_eq!(config.r, 7);
        assert_eq!(config.seed, 99);
        assert_eq!(config.reroute, RerouteStrategy::FromSource);
        assert_eq!(config.max_segment_length, 500);
        assert_eq!(config.compaction_threshold, 0.25);
    }

    #[test]
    fn paper_defaults_use_epsilon_point_two() {
        let config = MonteCarloConfig::paper_defaults(10);
        assert_eq!(config.epsilon, 0.2);
        assert_eq!(config.r, 10);
        assert_eq!(config.expected_segment_length(), 5.0);
    }

    #[test]
    fn expected_costs_follow_the_formulas() {
        let config = MonteCarloConfig::new(0.2, 4);
        assert_eq!(
            config.expected_initialization_cost(1_000),
            1_000.0 * 4.0 / 0.2
        );
        assert!(config.max_segment_length >= (60.0 / 0.2) as usize);
    }

    #[test]
    fn default_is_paper_defaults_with_five_segments() {
        let d = MonteCarloConfig::default();
        assert_eq!(d.epsilon, 0.2);
        assert_eq!(d.r, 5);
        assert_eq!(d.reroute, RerouteStrategy::FromUpdatePoint);
    }

    #[test]
    #[should_panic(expected = "epsilon must be in (0, 1)")]
    fn rejects_epsilon_one() {
        let _ = MonteCarloConfig::new(1.0, 3);
    }

    #[test]
    #[should_panic(expected = "epsilon must be in (0, 1)")]
    fn rejects_epsilon_zero() {
        let _ = MonteCarloConfig::new(0.0, 3);
    }

    #[test]
    #[should_panic(expected = "at least one walk segment")]
    fn rejects_zero_r() {
        let _ = MonteCarloConfig::new(0.2, 0);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn rejects_zero_cap() {
        let _ = MonteCarloConfig::new(0.2, 1).with_max_segment_length(0);
    }

    #[test]
    #[should_panic(expected = "positive ratio")]
    fn rejects_non_positive_compaction_threshold() {
        let _ = MonteCarloConfig::new(0.2, 1).with_compaction_threshold(0.0);
    }
}
