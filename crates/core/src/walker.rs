//! Primitive random-walk generation.
//!
//! A *segment* is one continuous session of the PageRank random surfer: starting at its
//! source node, at every step the surfer resets with probability ε (ending the segment)
//! and otherwise moves to a uniformly random out-neighbour of the current node.  A
//! surfer stranded on a dangling node (no outgoing edges) also ends its session — the
//! corresponding Markov chain treats dangling nodes as resetting, exactly like the
//! power-iteration baseline in `ppr-baselines`, so the two agree on the stationary
//! distribution.
//!
//! SALSA segments alternate forward (out-edge) and backward (in-edge) steps, resetting
//! only before forward steps, giving an expected length of `2/ε` (Section 2.3).

use ppr_graph::{DynamicGraph, NodeId};
use rand::Rng;

/// A freshly generated walk and the number of random steps it took to produce it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneratedWalk {
    /// The visited path, starting at the walk's first node.
    pub path: Vec<NodeId>,
    /// Number of random-walk steps executed (edges traversed), the work unit of the
    /// paper's cost analysis.
    pub steps: u64,
}

/// Generates one PageRank walk segment starting at `start`: the segment always contains
/// `start` and continues until the first ε-reset, a dangling node, or `max_length`
/// visits.
pub fn pagerank_segment<R: Rng + ?Sized>(
    graph: &DynamicGraph,
    start: NodeId,
    epsilon: f64,
    max_length: usize,
    rng: &mut R,
) -> GeneratedWalk {
    let mut path = Vec::with_capacity((2.0 / epsilon) as usize);
    let steps = pagerank_segment_into(graph, start, epsilon, max_length, rng, &mut path);
    GeneratedWalk { path, steps }
}

/// Allocation-free variant of [`pagerank_segment`]: generates the walk into `buf`
/// (cleared first) and returns the number of steps taken.  The engines' reroute paths
/// reuse one scratch buffer across repairs so that steady-state maintenance performs no
/// per-segment heap allocation.
pub fn pagerank_segment_into<R: Rng + ?Sized>(
    graph: &DynamicGraph,
    start: NodeId,
    epsilon: f64,
    max_length: usize,
    rng: &mut R,
    buf: &mut Vec<NodeId>,
) -> u64 {
    debug_assert!(max_length >= 1);
    buf.clear();
    buf.push(start);
    extend_pagerank_walk(graph, buf, epsilon, max_length, rng)
}

/// Continues a PageRank walk whose current node is `path.last()`, pushing newly visited
/// nodes onto `path` until the first reset / dangling node / the `max_length` cap.
/// Returns the number of steps taken.
pub fn extend_pagerank_walk<R: Rng + ?Sized>(
    graph: &DynamicGraph,
    path: &mut Vec<NodeId>,
    epsilon: f64,
    max_length: usize,
    rng: &mut R,
) -> u64 {
    let mut steps = 0u64;
    let mut current = *path.last().expect("walk must have a current node");
    while path.len() < max_length {
        if rng.gen_bool(epsilon) {
            break;
        }
        match graph.random_out_neighbor(current, rng) {
            Some(next) => {
                path.push(next);
                current = next;
                steps += 1;
            }
            None => break,
        }
    }
    steps
}

/// Generates one SALSA walk segment starting at `start`.
///
/// If `start_forward` is true the segment starts with a forward step (its even positions
/// are hub visits, odd positions authority visits); otherwise it starts with a backward
/// step (even positions are authority visits).  Resets happen only before forward steps,
/// with probability ε, so the expected segment length is `2/ε`.
pub fn salsa_segment<R: Rng + ?Sized>(
    graph: &DynamicGraph,
    start: NodeId,
    start_forward: bool,
    epsilon: f64,
    max_length: usize,
    rng: &mut R,
) -> GeneratedWalk {
    let mut path = Vec::with_capacity((4.0 / epsilon) as usize);
    let steps = salsa_segment_into(
        graph,
        start,
        start_forward,
        epsilon,
        max_length,
        rng,
        &mut path,
    );
    GeneratedWalk { path, steps }
}

/// Allocation-free variant of [`salsa_segment`]: generates the walk into `buf` (cleared
/// first) and returns the number of steps taken.
pub fn salsa_segment_into<R: Rng + ?Sized>(
    graph: &DynamicGraph,
    start: NodeId,
    start_forward: bool,
    epsilon: f64,
    max_length: usize,
    rng: &mut R,
    buf: &mut Vec<NodeId>,
) -> u64 {
    debug_assert!(max_length >= 1);
    buf.clear();
    buf.push(start);
    extend_salsa_walk(graph, buf, start_forward, epsilon, max_length, rng)
}

/// Continues an alternating SALSA walk whose current node is `path.last()`, where
/// `forward` is the direction of the next step.  Resets (probability ε) are rolled only
/// before forward steps; the walk also ends on a node with no edge in the required
/// direction or at the `max_length` cap.  Returns the number of steps taken.
pub fn extend_salsa_walk<R: Rng + ?Sized>(
    graph: &DynamicGraph,
    path: &mut Vec<NodeId>,
    mut forward: bool,
    epsilon: f64,
    max_length: usize,
    rng: &mut R,
) -> u64 {
    let mut steps = 0u64;
    let mut current = *path.last().expect("walk must have a current node");
    while path.len() < max_length {
        if forward && rng.gen_bool(epsilon) {
            break;
        }
        let next = if forward {
            graph.random_out_neighbor(current, rng)
        } else {
            graph.random_in_neighbor(current, rng)
        };
        match next {
            Some(node) => {
                path.push(node);
                current = node;
                steps += 1;
                forward = !forward;
            }
            None => break,
        }
    }
    steps
}

/// Picks the forced reroute target among a batch group's new edges, uniformly.
///
/// The single-edge case must not consume a random draw: it keeps `add_edge` and
/// `apply_arrivals(&[edge])` on identical RNG streams, which is what makes the batched
/// path a strict generalization of the sequential one (and is asserted by tests).
#[inline]
pub(crate) fn pick_new_target<R: Rng + ?Sized>(rng: &mut R, targets: &[NodeId]) -> NodeId {
    if targets.len() == 1 {
        targets[0]
    } else {
        targets[rng.gen_range(0..targets.len())]
    }
}

/// Empirical mean length of `samples` PageRank segments started from `start`; used by
/// tests to check the geometric-length property (`E[length] ≈ 1/ε` counted in steps,
/// i.e. `1 + (1-ε)/ε` visits on a graph with no dangling nodes).
pub fn mean_segment_length<R: Rng + ?Sized>(
    graph: &DynamicGraph,
    start: NodeId,
    epsilon: f64,
    max_length: usize,
    samples: usize,
    rng: &mut R,
) -> f64 {
    let total: usize = (0..samples)
        .map(|_| {
            pagerank_segment(graph, start, epsilon, max_length, rng)
                .path
                .len()
        })
        .sum();
    total as f64 / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_graph::generators::{complete_graph, directed_cycle, directed_path, star_outward};
    use ppr_graph::Edge;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn segment_starts_at_source_and_follows_edges() {
        let g = directed_cycle(10);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            let walk = pagerank_segment(&g, NodeId(3), 0.3, 1_000, &mut rng);
            assert_eq!(walk.path[0], NodeId(3));
            for pair in walk.path.windows(2) {
                assert!(g.has_edge(Edge {
                    source: pair[0],
                    target: pair[1]
                }));
            }
            assert_eq!(walk.steps as usize, walk.path.len() - 1);
        }
    }

    #[test]
    fn mean_length_matches_geometric_expectation() {
        // On a cycle there are no dangling nodes, so the number of *steps* is geometric:
        // E[steps] = (1-ε)/ε and E[visits] = 1 + (1-ε)/ε = 1/ε.  For ε = 0.2 that is 5.
        let g = directed_cycle(50);
        let mut rng = SmallRng::seed_from_u64(7);
        let mean = mean_segment_length(&g, NodeId(0), 0.2, 10_000, 20_000, &mut rng);
        let expected = 1.0 + (1.0 - 0.2) / 0.2;
        assert!(
            (mean - expected).abs() < 0.15,
            "mean visit count {mean}, expected ≈ {expected}"
        );
    }

    #[test]
    fn dangling_node_terminates_the_walk() {
        let g = directed_path(3); // 0 -> 1 -> 2, node 2 dangling
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..200 {
            let walk = pagerank_segment(&g, NodeId(0), 0.01, 1_000, &mut rng);
            assert!(walk.path.len() <= 3);
            assert_eq!(walk.path[0], NodeId(0));
        }
        // Starting on the dangling node itself gives a single-visit segment.
        let walk = pagerank_segment(&g, NodeId(2), 0.2, 1_000, &mut rng);
        assert_eq!(walk.path, vec![NodeId(2)]);
        assert_eq!(walk.steps, 0);
    }

    #[test]
    fn max_length_caps_the_segment() {
        let g = directed_cycle(4);
        let mut rng = SmallRng::seed_from_u64(11);
        let walk = pagerank_segment(&g, NodeId(0), 0.001, 8, &mut rng);
        assert!(walk.path.len() <= 8);
    }

    #[test]
    fn extend_walk_continues_from_last_node() {
        let g = complete_graph(5);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut path = vec![NodeId(2)];
        let steps = extend_pagerank_walk(&g, &mut path, 0.5, 100, &mut rng);
        assert_eq!(path[0], NodeId(2));
        assert_eq!(steps as usize, path.len() - 1);
    }

    #[test]
    fn salsa_segment_alternates_directions() {
        // Outward star: centre 0 -> leaves.  A forward-start SALSA walk from the centre
        // must go centre -> leaf (forward along out-edge) -> centre (backward along the
        // leaf's only in-edge) -> leaf -> ...
        let g = star_outward(6);
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..50 {
            let walk = salsa_segment(&g, NodeId(0), true, 0.3, 1_000, &mut rng);
            for (i, &node) in walk.path.iter().enumerate() {
                if i % 2 == 0 {
                    assert_eq!(node, NodeId(0), "even positions must be the hub centre");
                } else {
                    assert_ne!(node, NodeId(0), "odd positions must be leaves");
                }
            }
        }
    }

    #[test]
    fn salsa_backward_start_uses_in_edges_first() {
        // Inward star: leaves -> centre.  A backward-start walk from the centre first
        // moves to a leaf along an in-edge.
        let g = ppr_graph::generators::star_inward(5);
        let mut rng = SmallRng::seed_from_u64(2);
        let walk = salsa_segment(&g, NodeId(0), false, 0.9, 4, &mut rng);
        assert_eq!(walk.path[0], NodeId(0));
        if walk.path.len() > 1 {
            assert_ne!(walk.path[1], NodeId(0));
        }
    }

    #[test]
    fn salsa_mean_length_is_roughly_double_pagerank() {
        // Resets only before forward steps: expected number of forward steps is
        // (1-ε)/ε, each followed by a backward step, so expected visits ≈ 1 + 2(1-ε)/ε.
        let g = complete_graph(20);
        let mut rng = SmallRng::seed_from_u64(21);
        let mut total = 0usize;
        let samples = 20_000;
        for _ in 0..samples {
            total += salsa_segment(&g, NodeId(0), true, 0.2, 10_000, &mut rng)
                .path
                .len();
        }
        let mean = total as f64 / samples as f64;
        let expected = 1.0 + 2.0 * (1.0 - 0.2) / 0.2;
        assert!(
            (mean - expected).abs() < 0.3,
            "mean SALSA length {mean}, expected ≈ {expected}"
        );
    }

    #[test]
    fn salsa_walk_stops_when_direction_has_no_edges() {
        // Path 0 -> 1: forward from 0 reaches 1; backward from 1 returns to 0; forward
        // from 0 reaches 1 again, etc.  But a backward-start walk from 0 stops at once
        // because 0 has no in-edges.
        let g = directed_path(2);
        let mut rng = SmallRng::seed_from_u64(4);
        let walk = salsa_segment(&g, NodeId(0), false, 0.2, 100, &mut rng);
        assert_eq!(walk.path, vec![NodeId(0)]);
    }
}
