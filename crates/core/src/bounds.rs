//! Closed-form bounds from the paper, used by tests and by the experiment harness to
//! draw the "theoretical" curves next to the measured ones.
//!
//! | Function | Paper statement |
//! |---|---|
//! | [`per_arrival_update_work`] | Theorem 4, per-arrival form `nR/(t ε²)` |
//! | [`total_update_work`] | Theorem 4, total form `nR·H_m/ε² ≤ nR ln m/ε²` |
//! | [`deletion_update_work`] | Proposition 5, `nR/(m ε²)` |
//! | [`salsa_total_update_work`] | Theorem 6, `16 nR ln m/ε²` |
//! | [`walk_length_for_top_k`] | Equation 4, `s_k = c·k·(n/k)^{1−α}/(1−α)` |
//! | [`expected_fetches`] | Theorem 8, `1 + (2(1−α)/nR)^{1/α−1}·s^{1/α}` |
//! | [`top_k_fetches`] | Corollary 9, `1 + c^{1/α} k / ((1−α)(R/2)^{1/α−1})` |

/// Expected walk-segment update work when the `t`-th edge arrives (Theorem 4):
/// `nR / (t ε²)` walk steps.
pub fn per_arrival_update_work(n: usize, r: usize, t: usize, epsilon: f64) -> f64 {
    assert!(t >= 1, "arrivals are numbered from 1");
    check_epsilon(epsilon);
    n as f64 * r as f64 / (t as f64 * epsilon * epsilon)
}

/// Expected total update work over `m` random-order arrivals (Theorem 4):
/// `nR·H_m/ε²`, which is at most `nR ln m/ε²` plus the `t = 1` term.
pub fn total_update_work(n: usize, r: usize, m: usize, epsilon: f64) -> f64 {
    check_epsilon(epsilon);
    let harmonic: f64 = (1..=m).map(|t| 1.0 / t as f64).sum();
    n as f64 * r as f64 * harmonic / (epsilon * epsilon)
}

/// Expected update work for deleting one uniformly random edge from a graph with `m`
/// edges (Proposition 5): `nR / (m ε²)`.
pub fn deletion_update_work(n: usize, r: usize, m: usize, epsilon: f64) -> f64 {
    assert!(m >= 1, "the graph must have at least one edge to delete");
    check_epsilon(epsilon);
    n as f64 * r as f64 / (m as f64 * epsilon * epsilon)
}

/// Expected total SALSA update work over `m` random-order arrivals (Theorem 6):
/// `16·nR·ln m/ε²`.
pub fn salsa_total_update_work(n: usize, r: usize, m: usize, epsilon: f64) -> f64 {
    check_epsilon(epsilon);
    16.0 * n as f64 * r as f64 * (m.max(2) as f64).ln() / (epsilon * epsilon)
}

/// Walk length needed to see each of the top `k` nodes `c` times in expectation under
/// the power-law model with exponent `alpha` over `n` nodes (Equation 4):
/// `s_k = c·k·(n/k)^{1−α}/(1−α)`.
pub fn walk_length_for_top_k(k: usize, c: f64, alpha: f64, n: usize) -> f64 {
    check_alpha(alpha);
    assert!(k >= 1 && n >= k, "need 1 <= k <= n");
    assert!(c > 0.0, "the target visit count must be positive");
    c / (1.0 - alpha) * k as f64 * (n as f64 / k as f64).powf(1.0 - alpha)
}

/// Expected number of fetches needed to take a stitched walk of length `s` when every
/// node caches `R` segments, under the power-law model with exponent `alpha` over `n`
/// nodes (Theorem 8): `1 + (2(1−α)/(nR))^{1/α − 1}·s^{1/α}`.
pub fn expected_fetches(s: f64, n: usize, r: usize, alpha: f64) -> f64 {
    check_alpha(alpha);
    assert!(s >= 0.0, "walk length must be non-negative");
    assert!(r >= 1, "at least one cached segment per node is required");
    let base = 2.0 * (1.0 - alpha) / (n as f64 * r as f64);
    1.0 + base.powf(1.0 / alpha - 1.0) * s.powf(1.0 / alpha)
}

/// Expected number of fetches needed to find the top `k` personalized nodes
/// (Corollary 9): `1 + c^{1/α}·k / ((1−α)·(R/2)^{1/α − 1})`.
pub fn top_k_fetches(k: usize, c: f64, alpha: f64, r: usize) -> f64 {
    check_alpha(alpha);
    assert!(k >= 1, "k must be positive");
    assert!(c > 0.0 && r >= 1);
    1.0 + c.powf(1.0 / alpha) * k as f64
        / ((1.0 - alpha) * (r as f64 / 2.0).powf(1.0 / alpha - 1.0))
}

fn check_epsilon(epsilon: f64) {
    assert!(
        epsilon > 0.0 && epsilon < 1.0,
        "epsilon must be in (0, 1), got {epsilon}"
    );
}

fn check_alpha(alpha: f64) {
    assert!(
        alpha > 0.0 && alpha < 1.0,
        "the power-law exponent must be in (0, 1), got {alpha}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_arrival_work_decays_like_one_over_t() {
        let w1 = per_arrival_update_work(1_000, 5, 1, 0.2);
        let w10 = per_arrival_update_work(1_000, 5, 10, 0.2);
        assert!((w1 / w10 - 10.0).abs() < 1e-9);
        assert!((w1 - 1_000.0 * 5.0 / 0.04).abs() < 1e-6);
    }

    #[test]
    fn total_work_is_harmonic_sum_of_per_arrival_work() {
        let n = 500;
        let r = 3;
        let m = 200;
        let eps = 0.25;
        let total = total_update_work(n, r, m, eps);
        let summed: f64 = (1..=m).map(|t| per_arrival_update_work(n, r, t, eps)).sum();
        assert!((total - summed).abs() < 1e-6);
        // And it is bounded by nR (ln m + 1) / ε².
        let upper = n as f64 * r as f64 * ((m as f64).ln() + 1.0) / (eps * eps);
        assert!(total <= upper);
    }

    #[test]
    fn deletion_work_matches_proposition_5() {
        let w = deletion_update_work(1_000, 5, 10_000, 0.2);
        assert!((w - 1_000.0 * 5.0 / (10_000.0 * 0.04)).abs() < 1e-9);
        // Deleting from a larger graph is cheaper.
        assert!(deletion_update_work(1_000, 5, 100_000, 0.2) < w);
    }

    #[test]
    fn salsa_work_is_sixteen_times_pagerank_leading_term() {
        let n = 1_000;
        let r = 5;
        let m = 10_000;
        let eps = 0.2;
        let pagerank_leading = n as f64 * r as f64 * (m as f64).ln() / (eps * eps);
        assert!((salsa_total_update_work(n, r, m, eps) / pagerank_leading - 16.0).abs() < 1e-9);
    }

    #[test]
    fn remark_2_walk_length_matches_the_paper() {
        // α = 0.75, c = 5, R = 10, k = 100, n = 10⁸: the paper reports s_k ≈ 632·k.
        let s_k = walk_length_for_top_k(100, 5.0, 0.75, 100_000_000);
        assert!(
            (s_k / 100.0 - 632.0).abs() < 1.0,
            "expected ≈ 632 steps per result, got {}",
            s_k / 100.0
        );
    }

    #[test]
    fn remark_2_fetch_bound_matches_the_paper() {
        // Same parameters: the paper reports ≈ 20·k = 2000 fetches.
        let fetches = top_k_fetches(100, 5.0, 0.75, 10);
        assert!(
            (fetches / 100.0 - 20.0).abs() < 0.2,
            "expected ≈ 20 fetches per result, got {}",
            fetches / 100.0
        );
    }

    #[test]
    fn corollary_9_is_theorem_8_evaluated_at_s_k() {
        // Plugging s_k (Eq. 4) into Theorem 8 must give Corollary 9 (up to the constant
        // "+1" bookkeeping the paper also keeps).
        let (k, c, alpha, r, n) = (50usize, 4.0, 0.7, 8usize, 1_000_000usize);
        let s_k = walk_length_for_top_k(k, c, alpha, n);
        let via_theorem8 = expected_fetches(s_k, n, r, alpha);
        let via_corollary9 = top_k_fetches(k, c, alpha, r);
        let rel = (via_theorem8 - via_corollary9).abs() / via_corollary9;
        assert!(
            rel < 1e-9,
            "Theorem 8 at s_k gives {via_theorem8}, Corollary 9 gives {via_corollary9}"
        );
    }

    #[test]
    fn fetches_grow_superlinearly_in_walk_length_but_shrink_with_r() {
        let base = expected_fetches(10_000.0, 1_000_000, 10, 0.75);
        assert!(expected_fetches(20_000.0, 1_000_000, 10, 0.75) > 2.0 * (base - 1.0));
        assert!(expected_fetches(10_000.0, 1_000_000, 20, 0.75) < base);
    }

    #[test]
    fn fetch_bound_is_far_below_the_walk_length() {
        // The whole point of stitching: the fetch bound is orders of magnitude smaller
        // than the number of walk steps (Remark 2 compares 63 200 steps to 2 000 fetches).
        let s = walk_length_for_top_k(100, 5.0, 0.75, 100_000_000);
        let fetches = expected_fetches(s, 100_000_000, 10, 0.75);
        assert!(fetches * 10.0 < s);
    }

    #[test]
    #[should_panic(expected = "power-law exponent must be in (0, 1)")]
    fn rejects_alpha_one() {
        let _ = walk_length_for_top_k(10, 5.0, 1.0, 100);
    }

    #[test]
    #[should_panic(expected = "epsilon must be in (0, 1)")]
    fn rejects_bad_epsilon() {
        let _ = total_update_work(10, 1, 10, 1.5);
    }

    #[test]
    #[should_panic(expected = "arrivals are numbered from 1")]
    fn rejects_zeroth_arrival() {
        let _ = per_arrival_update_work(10, 1, 0, 0.2);
    }
}
