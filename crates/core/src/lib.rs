//! The paper's contribution: Monte Carlo PageRank/SALSA with incremental walk-segment
//! maintenance and personalized top-k retrieval.
//!
//! *Fast Incremental and Personalized PageRank* (Bahmani, Chowdhury, Goel; VLDB 2010)
//! maintains `R` short random-walk segments per node (each run until its first ε-reset)
//! and shows that:
//!
//! 1. the visit counts of those segments give sharply concentrated PageRank estimates
//!    (Theorem 1) — [`estimator`];
//! 2. under random-permutation edge arrivals the segments can be kept up to date with
//!    only `O(nR ln m / ε²)` total work over `m` arrivals (Theorem 4), and deletions cost
//!    `O(nR/(m ε²))` each (Proposition 5) — [`incremental`];
//! 3. the same machinery extends to SALSA with a constant-factor overhead (Theorem 6) —
//!    [`salsa`];
//! 4. the cached segments can be stitched into long personalized walks that find the
//!    top-k personalized PageRank nodes with `O(k / R^{(1−α)/α})` fetches against the
//!    social store under a power-law score model (Theorem 8, Corollary 9) —
//!    [`personalized`];
//! 5. the closed-form bounds themselves — [`bounds`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod bounds;
pub mod config;
pub mod durable;
pub mod estimator;
pub mod incremental;
pub mod personalized;
pub mod query;
pub mod salsa;
pub mod telem;
pub mod walker;

pub use batch::BatchProfile;
pub use config::{MonteCarloConfig, RerouteStrategy};
pub use durable::{DurabilityOptions, DurablePageRank, PersistError, PersistResult};
pub use estimator::PageRankEstimates;
pub use incremental::{IncrementalPageRank, UpdateStats};
pub use personalized::{PersonalizedWalkResult, PersonalizedWalker, TopKScratch, WalkScratch};
pub use ppr_persist::GroupCommit;
pub use query::{query_rng, query_stream_seed};
pub use salsa::{IncrementalSalsa, SalsaEstimates};
