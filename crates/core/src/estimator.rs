//! Monte Carlo PageRank estimates from stored walk segments (Section 2.1, Theorem 1).
//!
//! With `R` segments per node and reset probability ε, the expected total stored walk
//! length is `nR/ε` and the estimator is
//!
//! ```text
//! π̃_v = X_v / (nR/ε)
//! ```
//!
//! where `X_v` is the number of visits to `v` across all stored segments.  Theorem 1
//! shows `π̃_v` is sharply concentrated around `π_v`.  Because our walker (like the
//! paper's) ends a session early when it strands on a dangling node, the *realised*
//! total walk length can be below `nR/ε`; [`PageRankEstimates::normalized`] therefore
//! also exposes the self-normalised estimate `X_v / Σ_u X_u`, which always sums to one
//! and is what the accuracy experiments compare against power iteration.
//!
//! The `nR/ε` expected stored length that normalises this estimator is the same
//! quantity that drives the maintenance bounds in [`crate::bounds`]: keeping these
//! segments up to date costs [`crate::bounds::total_update_work`] over `m` arrivals
//! (Theorem 4) and [`crate::bounds::deletion_update_work`] per deletion
//! (Proposition 5).

use ppr_graph::NodeId;
use ppr_store::WalkIndexView;

/// PageRank estimates derived from any [`WalkIndexView`] store or snapshot.
#[derive(Debug, Clone)]
pub struct PageRankEstimates {
    raw: Vec<f64>,
    normalized: Vec<f64>,
}

impl PageRankEstimates {
    /// Builds estimates from the visit counts of `store`, using the paper's
    /// normalisation constant `nR/ε`.  Reads go through the read-only [`WalkIndexView`]
    /// API, so any store layout — or a frozen generation snapshot — works.
    pub fn from_store<W: WalkIndexView>(store: &W, epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon < 1.0,
            "epsilon must be in (0, 1), got {epsilon}"
        );
        let n = store.node_count();
        let denom = n as f64 * store.r() as f64 / epsilon;
        let total = store.total_visits() as f64;
        let counts = store.visit_counts();
        let raw: Vec<f64> = counts.iter().map(|&x| x as f64 / denom).collect();
        let normalized: Vec<f64> = if total > 0.0 {
            counts.iter().map(|&x| x as f64 / total).collect()
        } else {
            vec![0.0; n]
        };
        PageRankEstimates { raw, normalized }
    }

    /// The paper's estimator `X_v / (nR/ε)` for every node.
    pub fn raw(&self) -> &[f64] {
        &self.raw
    }

    /// Self-normalised estimates `X_v / Σ_u X_u` (sum to 1 whenever any visit exists).
    pub fn normalized(&self) -> &[f64] {
        &self.normalized
    }

    /// The raw estimate of a single node.
    pub fn score(&self, node: NodeId) -> f64 {
        self.raw[node.index()]
    }

    /// Number of nodes covered by the estimates.
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// `true` when the estimate vectors are empty.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// Mean absolute error between the normalised estimates and a reference score
    /// vector (typically power iteration), `Σ_v |π̃_v − π_v| / n`.
    pub fn mean_absolute_error(&self, reference: &[f64]) -> f64 {
        assert_eq!(
            reference.len(),
            self.normalized.len(),
            "reference vector has the wrong length"
        );
        if self.normalized.is_empty() {
            return 0.0;
        }
        self.normalized
            .iter()
            .zip(reference)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / self.normalized.len() as f64
    }

    /// Total variation distance `½ Σ_v |π̃_v − π_v|` between the normalised estimates
    /// and a reference distribution.
    pub fn total_variation_distance(&self, reference: &[f64]) -> f64 {
        assert_eq!(
            reference.len(),
            self.normalized.len(),
            "reference vector has the wrong length"
        );
        0.5 * self
            .normalized
            .iter()
            .zip(reference)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_store::{SegmentId, WalkStore};

    fn store_with_paths(node_count: usize, r: usize, paths: &[(u32, usize, &[u32])]) -> WalkStore {
        let mut store = WalkStore::new(node_count, r);
        for &(node, slot, path) in paths {
            let path: Vec<NodeId> = path.iter().map(|&x| NodeId(x)).collect();
            store.set_segment(SegmentId::new(NodeId(node), slot, r), &path);
        }
        store
    }

    #[test]
    fn raw_estimates_follow_the_paper_formula() {
        // n = 2, R = 1, ε = 0.5  =>  denominator nR/ε = 4.
        let store = store_with_paths(2, 1, &[(0, 0, &[0, 1]), (1, 0, &[1])]);
        let est = PageRankEstimates::from_store(&store, 0.5);
        assert_eq!(est.len(), 2);
        assert!((est.score(NodeId(0)) - 0.25).abs() < 1e-12);
        assert!((est.score(NodeId(1)) - 0.5).abs() < 1e-12);
        assert_eq!(est.raw(), &[0.25, 0.5]);
    }

    #[test]
    fn normalized_estimates_sum_to_one() {
        let store = store_with_paths(3, 2, &[(0, 0, &[0, 1, 2]), (1, 1, &[1, 2]), (2, 0, &[2])]);
        let est = PageRankEstimates::from_store(&store, 0.2);
        let sum: f64 = est.normalized().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // Node 2 is visited 3 times out of 6 total visits.
        assert!((est.normalized()[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_store_gives_zero_estimates() {
        let store = WalkStore::new(4, 2);
        let est = PageRankEstimates::from_store(&store, 0.2);
        assert!(est.raw().iter().all(|&x| x == 0.0));
        assert!(est.normalized().iter().all(|&x| x == 0.0));
        assert!(!est.is_empty());
    }

    #[test]
    fn error_metrics_against_reference() {
        let store = store_with_paths(2, 1, &[(0, 0, &[0]), (1, 0, &[1])]);
        let est = PageRankEstimates::from_store(&store, 0.5);
        // Normalised estimates are [0.5, 0.5]; compare to [0.75, 0.25].
        let reference = vec![0.75, 0.25];
        assert!((est.mean_absolute_error(&reference) - 0.25).abs() < 1e-12);
        assert!((est.total_variation_distance(&reference) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn error_metrics_check_lengths() {
        let store = WalkStore::new(2, 1);
        let est = PageRankEstimates::from_store(&store, 0.2);
        let _ = est.mean_absolute_error(&[0.5]);
    }

    #[test]
    #[should_panic(expected = "epsilon must be in (0, 1)")]
    fn rejects_bad_epsilon() {
        let store = WalkStore::new(2, 1);
        let _ = PageRankEstimates::from_store(&store, 0.0);
    }
}
