//! Personalized PageRank by stitching cached walk segments (Algorithm 1, Section 3).
//!
//! To answer a personalized query for seed `w`, the walker simulates a long random walk
//! with resets to `w`, but instead of paying one social-store access per step it
//! opportunistically consumes the `R` cached walk segments of every node it reaches:
//!
//! * with probability ε the walk resets to `w`;
//! * otherwise, if the current node still has an unused cached segment, the whole
//!   segment is appended to the walk and the walk resets (the segment already ends at a
//!   reset);
//! * otherwise, if the current node has already been fetched, one random out-edge is
//!   taken in memory;
//! * otherwise a *fetch* is issued, bringing the node's adjacency (and its cached
//!   segments) into memory.
//!
//! The number of fetches is the cost the paper bounds in Theorem 8 / Corollary 9 and
//! measures in Figure 6.  The closed forms this walker instantiates are
//! [`crate::bounds::expected_fetches`] (Theorem 8) and [`crate::bounds::top_k_fetches`]
//! (Corollary 9), with the walk length set by [`crate::bounds::walk_length_for_top_k`]
//! (Equation 4).
//!
//! # The read path is shared, not exclusive
//!
//! The walker reads its two stores purely through `&self` APIs — [`WalkIndexView`]
//! for the cached segments, [`AdjacencyFetch`] for the graph — so the same query code
//! serves from a live engine *or* from an epoch-pinned generation snapshot
//! ([`ppr_store::FrozenWalks`] / [`ppr_store::FrozenGraph`]), which is how
//! `ppr-serve` answers queries concurrently with a live write stream.  Determinism
//! follows the split-stream rule of [`crate::query`]: [`PersonalizedWalker::walk_query`]
//! takes `&self` and draws from the `(query_seed, query_id)` stream, so a result is a
//! pure function of `(store generation, query_seed, query_id)` — bit-identical on any
//! thread, at any interleaving with writers or other readers.

use crate::query::query_rng;
use ppr_graph::{GraphView, NodeId};
use ppr_store::{AdjacencyFetch, SocialStore, WalkIndexView, WalkStore};
use ppr_telemetry::Clock;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};

/// Outcome of one stitched personalized walk.
#[derive(Debug, Clone, Default)]
pub struct PersonalizedWalkResult {
    /// Visit counts per node (the empirical personalized distribution).
    pub visits: Vec<u64>,
    /// Total number of visits recorded (≥ the requested length; the final appended
    /// segment may overshoot).
    pub total_visits: u64,
    /// Number of fetch operations issued against the Social Store.
    pub fetches: u64,
    /// Number of cached walk segments consumed.
    pub segments_used: u64,
    /// Number of single random steps taken from already-fetched adjacency.
    pub random_steps: u64,
    /// Number of ε-resets (and dangling-node resets) back to the seed.
    pub resets: u64,
    /// `true` when the walk stopped early because its Corollary 9 fetch budget ran
    /// out (see [`PersonalizedWalker::with_fetch_budget`]); the recorded visits are
    /// the prefix the budget paid for.
    pub budget_exhausted: bool,
    /// `true` when the walk stopped early because its deadline budget expired (see
    /// [`PersonalizedWalker::with_deadline_budget`]); like fetch exhaustion, the
    /// recorded visits are the prefix the deadline paid for.
    pub deadline_exhausted: bool,
}

impl PersonalizedWalkResult {
    /// Normalised visit frequency of `node`.
    pub fn frequency(&self, node: NodeId) -> f64 {
        if self.total_visits == 0 {
            0.0
        } else {
            self.visits[node.index()] as f64 / self.total_visits as f64
        }
    }

    /// The full normalised personalized score vector.
    pub fn frequencies(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.frequencies_into(&mut out);
        out
    }

    /// [`Self::frequencies`] into a caller-owned buffer, so a loop computing score
    /// vectors for many walks reuses one allocation instead of paying an `O(n)`
    /// `Vec` per call.
    pub fn frequencies_into(&self, out: &mut Vec<f64>) {
        out.clear();
        if self.total_visits == 0 {
            out.resize(self.visits.len(), 0.0);
            return;
        }
        out.extend(
            self.visits
                .iter()
                .map(|&v| v as f64 / self.total_visits as f64),
        );
    }

    /// The top-`k` nodes by visit count, skipping every node in `exclude`, as
    /// `(node, normalised frequency)` pairs in decreasing order.
    pub fn top_k(&self, k: usize, exclude: &HashSet<NodeId>) -> Vec<(NodeId, f64)> {
        self.top_k_with(k, exclude, &mut TopKScratch::default())
    }

    /// [`Self::top_k`] with a caller-owned accumulator: the `O(touched nodes)`
    /// candidate buffer lives in `scratch` and is reused across calls, so a batch
    /// of queries allocates nothing here beyond the `k`-element answer itself.
    /// Same candidates, same ordering, same ties — bit-identical to
    /// [`Self::top_k`].
    pub fn top_k_with(
        &self,
        k: usize,
        exclude: &HashSet<NodeId>,
        scratch: &mut TopKScratch,
    ) -> Vec<(NodeId, f64)> {
        let candidates = &mut scratch.candidates;
        candidates.clear();
        candidates.extend(
            self.visits
                .iter()
                .enumerate()
                .filter(|&(i, &count)| count > 0 && !exclude.contains(&NodeId::from_index(i)))
                .map(|(i, &count)| (NodeId::from_index(i), count)),
        );
        candidates.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        candidates.truncate(k);
        candidates
            .iter()
            .map(|&(node, count)| (node, count as f64 / self.total_visits.max(1) as f64))
            .collect()
    }

    /// Resets the result in place for reuse by another walk over `n` nodes,
    /// keeping the visit buffer's allocation.
    fn reset_for(&mut self, n: usize) {
        self.visits.clear();
        self.visits.resize(n, 0);
        self.total_visits = 0;
        self.fetches = 0;
        self.segments_used = 0;
        self.random_steps = 0;
        self.resets = 0;
        self.budget_exhausted = false;
        self.deadline_exhausted = false;
    }
}

/// Reusable accumulator for [`PersonalizedWalkResult::top_k_with`]: holds the
/// `O(touched nodes)` candidate buffer so selection allocates nothing in steady
/// state when one scratch serves a stream of queries.
#[derive(Debug, Default)]
pub struct TopKScratch {
    candidates: Vec<(NodeId, u64)>,
}

/// Reusable per-walk working memory for [`PersonalizedWalker::walk_query_into`]:
/// the fetched-node map plus a pool of recycled adjacency buffers.  One scratch
/// serves any number of walks sequentially; reuse never changes a walk's bits
/// (the map is drained before every walk, and adjacency buffers are refilled
/// from scratch by each fetch).
#[derive(Debug, Default)]
pub struct WalkScratch {
    memory: HashMap<NodeId, FetchedNode>,
    /// Emptied adjacency buffers recycled from the previous walk's fetches; the
    /// pool never exceeds the largest single-walk fetch set.
    spare_adjacency: Vec<Vec<NodeId>>,
}

impl WalkScratch {
    /// A fresh scratch (equivalent to `Default`).
    pub fn new() -> Self {
        WalkScratch::default()
    }

    /// Readies the scratch for the next walk: drains the fetched-node map and
    /// recycles its adjacency buffers.
    fn begin(&mut self) {
        for (_, fetched) in self.memory.drain() {
            let mut buf = fetched.out_neighbors;
            buf.clear();
            self.spare_adjacency.push(buf);
        }
    }

    /// An empty adjacency buffer, recycled when one is pooled.
    fn take_buffer(&mut self) -> Vec<NodeId> {
        self.spare_adjacency.pop().unwrap_or_default()
    }
}

/// Per-node state the walker keeps in main memory after fetching the node.
#[derive(Debug)]
struct FetchedNode {
    out_neighbors: Vec<NodeId>,
    next_unused_segment: usize,
}

/// The stitched personalized walker of Algorithm 1.
///
/// The walker consumes the PageRank Store purely through the [`WalkIndexView`] API
/// and the graph purely through [`AdjacencyFetch`], so it runs unchanged over any
/// live store layout *or* over an epoch-pinned generation snapshot — the arena-backed
/// [`WalkStore`] + [`SocialStore`] pair being the default.
#[derive(Debug)]
pub struct PersonalizedWalker<'a, W: WalkIndexView = WalkStore, S: AdjacencyFetch = SocialStore> {
    store: &'a S,
    walks: &'a W,
    epsilon: f64,
    /// Corollary 9 budget: the walk ends early once this many fetches were spent.
    fetch_budget: Option<u64>,
    /// Deadline budget `(clock, nanos)`: each walk ends early once the clock has
    /// advanced `nanos` past the walk's start.
    deadline: Option<(&'a dyn Clock, u64)>,
    /// Stream for the stateful [`Self::walk`] path; [`Self::walk_query`] derives its
    /// own per-query stream instead.
    rng: SmallRng,
}

impl<'a, W: WalkIndexView, S: AdjacencyFetch> PersonalizedWalker<'a, W, S> {
    /// Creates a walker over the given stores with reset probability `epsilon`.
    pub fn new(store: &'a S, walks: &'a W, epsilon: f64, seed: u64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon < 1.0,
            "epsilon must be in (0, 1), got {epsilon}"
        );
        assert_eq!(
            store.node_count(),
            walks.node_count(),
            "Social Store and PageRank Store must cover the same node set"
        );
        PersonalizedWalker {
            store,
            walks,
            epsilon,
            fetch_budget: None,
            deadline: None,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Caps the number of fetches a walk may spend (Corollary 9 budget enforcement):
    /// the walk stops — with [`PersonalizedWalkResult::budget_exhausted`] set — at
    /// the first fetch that would exceed the cap.  The budget is part of the query,
    /// so a budgeted walk replays bit-identically.
    pub fn with_fetch_budget(mut self, budget: u64) -> Self {
        self.fetch_budget = Some(budget);
        self
    }

    /// Caps the wall-clock time a walk may spend: the Corollary 9 fetch budget
    /// extended into a *time* budget.  Each walk reads `clock` once at its start
    /// and stops — with [`PersonalizedWalkResult::deadline_exhausted`] set — at
    /// the first fetch attempted at or after `start + budget_nanos`, returning the
    /// visits recorded so far as a partial result.  The check sits on the fetch
    /// arm because fetches are the walk's only unbounded-cost step (everything
    /// else is in-memory); a walk that never fetches never expires.
    ///
    /// Determinism is per clock reading, not per wall: against an injectable
    /// [`ppr_telemetry::ManualClock`] the walk replays bit-identically, while a
    /// real monotonic clock makes the *cut point* timing-dependent by design —
    /// which is why the differential harnesses drive this with a manual clock.
    pub fn with_deadline_budget(mut self, clock: &'a dyn Clock, budget_nanos: u64) -> Self {
        self.deadline = Some((clock, budget_nanos));
        self
    }

    /// Runs Algorithm 1 from `seed` until at least `length` visits are recorded,
    /// drawing from this walker's own sequential stream (advanced by every call).
    /// Prefer [`Self::walk_query`] for served queries: it is `&self` and keyed.
    pub fn walk(&mut self, seed: NodeId, length: usize) -> PersonalizedWalkResult {
        let mut rng = std::mem::replace(&mut self.rng, SmallRng::seed_from_u64(0));
        let result = self.run(seed, length, &mut rng);
        self.rng = rng;
        result
    }

    /// Runs Algorithm 1 from `seed` on the `(query_seed, query_id)` split stream of
    /// [`crate::query::query_rng`].  Takes `&self`: the walker has no mutable state
    /// on this path, so one walker (or one pinned generation) can serve many queries
    /// from many threads, each bit-identical to its single-threaded replay.
    pub fn walk_query(
        &self,
        seed: NodeId,
        length: usize,
        query_seed: u64,
        query_id: u64,
    ) -> PersonalizedWalkResult {
        let mut rng = query_rng(query_seed, query_id);
        self.run(seed, length, &mut rng)
    }

    /// [`Self::walk_query`] into caller-owned buffers: the walk's working memory
    /// comes from `scratch` and the outcome lands in `result`, both reset before
    /// use — so a batch of queries sharing one scratch allocates nothing per walk
    /// in steady state.  Bit-identical to [`Self::walk_query`] on the same stream.
    pub fn walk_query_into(
        &self,
        seed: NodeId,
        length: usize,
        query_seed: u64,
        query_id: u64,
        scratch: &mut WalkScratch,
        result: &mut PersonalizedWalkResult,
    ) {
        let mut rng = query_rng(query_seed, query_id);
        self.run_into(seed, length, &mut rng, scratch, result);
    }

    fn run(&self, seed: NodeId, length: usize, rng: &mut SmallRng) -> PersonalizedWalkResult {
        let mut scratch = WalkScratch::default();
        let mut result = PersonalizedWalkResult::default();
        self.run_into(seed, length, rng, &mut scratch, &mut result);
        result
    }

    fn run_into(
        &self,
        seed: NodeId,
        length: usize,
        rng: &mut SmallRng,
        scratch: &mut WalkScratch,
        result: &mut PersonalizedWalkResult,
    ) {
        assert!(
            seed.index() < self.store.node_count(),
            "seed node {seed} outside the store"
        );
        assert!(length >= 1, "the walk must record at least one visit");

        let n = self.store.node_count();
        let r = self.walks.r();
        result.reset_for(n);
        scratch.begin();
        // The deadline clock is read once per walk: every fetch compares against
        // this walk's own expiry, so each query in a batch gets the full budget.
        let expiry = self
            .deadline
            .map(|(clock, budget)| (clock, clock.now_nanos().saturating_add(budget)));
        let visit = |node: NodeId, result: &mut PersonalizedWalkResult| {
            result.visits[node.index()] += 1;
            result.total_visits += 1;
        };

        let mut current = seed;
        visit(seed, result);

        while (result.total_visits as usize) < length {
            if rng.gen_bool(self.epsilon) {
                result.resets += 1;
                current = seed;
                visit(seed, result);
                continue;
            }

            match scratch.memory.get_mut(&current) {
                Some(state) if state.next_unused_segment < r => {
                    // Consume one cached segment: append its continuation, then reset.
                    let slot = state.next_unused_segment;
                    state.next_unused_segment += 1;
                    let id = ppr_store::SegmentId::new(current, slot, r);
                    result.segments_used += 1;
                    for &node in self.walks.segment_path(id).iter().skip(1) {
                        visit(node, result);
                    }
                    result.resets += 1;
                    current = seed;
                    visit(seed, result);
                }
                Some(state) => {
                    // All cached segments consumed: take a single in-memory random step.
                    if state.out_neighbors.is_empty() {
                        // Dangling node: the surfer's session ends, i.e. reset.
                        result.resets += 1;
                        current = seed;
                        visit(seed, result);
                    } else {
                        let next = state.out_neighbors[rng.gen_range(0..state.out_neighbors.len())];
                        result.random_steps += 1;
                        current = next;
                        visit(next, result);
                    }
                }
                None => {
                    // Fetch the node; the walk does not advance this round (Algorithm 1).
                    if self
                        .fetch_budget
                        .is_some_and(|budget| result.fetches >= budget)
                    {
                        result.budget_exhausted = true;
                        break;
                    }
                    if expiry.is_some_and(|(clock, at)| clock.now_nanos() >= at) {
                        result.deadline_exhausted = true;
                        break;
                    }
                    let mut out_neighbors = scratch.take_buffer();
                    self.store.fetch_out(current, &mut out_neighbors);
                    scratch.memory.insert(
                        current,
                        FetchedNode {
                            out_neighbors,
                            next_unused_segment: 0,
                        },
                    );
                    result.fetches += 1;
                }
            }
        }
    }
}

impl<'a, W: WalkIndexView> PersonalizedWalker<'a, W, SocialStore> {
    /// Convenience wrapper: runs [`Self::walk`] and returns the top-`k` nodes, excluding
    /// the seed itself and (if `exclude_friends`) its direct friends, exactly as the
    /// paper's recommender evaluation does.
    pub fn top_k(
        &mut self,
        seed: NodeId,
        k: usize,
        walk_length: usize,
        exclude_friends: bool,
    ) -> Vec<(NodeId, f64)> {
        let result = self.walk(seed, walk_length);
        let mut exclude: HashSet<NodeId> = HashSet::new();
        exclude.insert(seed);
        if exclude_friends {
            exclude.extend(self.store.graph().out_neighbors(seed).iter().copied());
        }
        result.top_k(k, &exclude)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MonteCarloConfig;
    use crate::incremental::IncrementalPageRank;
    use ppr_graph::generators::{directed_cycle, preferential_attachment};
    use ppr_graph::{DynamicGraph, Edge};
    use ppr_store::{FrozenGraph, FrozenWalks};

    fn engine(graph: &DynamicGraph, r: usize, seed: u64) -> IncrementalPageRank {
        IncrementalPageRank::from_graph(graph, MonteCarloConfig::new(0.2, r).with_seed(seed))
    }

    #[test]
    fn walk_reaches_requested_length() {
        let g = directed_cycle(10);
        let eng = engine(&g, 3, 1);
        let mut walker = PersonalizedWalker::new(eng.social_store(), eng.walk_store(), 0.2, 7);
        let result = walker.walk(NodeId(0), 500);
        assert!(result.total_visits >= 500);
        assert_eq!(result.visits.iter().sum::<u64>(), result.total_visits);
        assert!(result.visits[0] > 0, "the seed is always visited");
        assert!(!result.budget_exhausted);
    }

    #[test]
    fn only_reachable_nodes_are_visited() {
        // Two disjoint cycles 0-1-2 and 3-4-5; a walk from node 0 must never see 3..6.
        let mut g = DynamicGraph::with_nodes(6);
        for &(s, t) in &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            g.add_edge(Edge::new(s, t));
        }
        let eng = engine(&g, 4, 3);
        let mut walker = PersonalizedWalker::new(eng.social_store(), eng.walk_store(), 0.2, 11);
        let result = walker.walk(NodeId(0), 2_000);
        for node in 3..6 {
            assert_eq!(
                result.visits[node], 0,
                "unreachable node {node} was visited"
            );
        }
        assert!(result.frequency(NodeId(0)) > 0.2);
    }

    #[test]
    fn fetches_are_counted_and_bounded_by_touched_nodes() {
        let g = preferential_attachment(300, 4, 5);
        let eng = engine(&g, 5, 7);
        eng.social_store().reset_metrics();
        let mut walker = PersonalizedWalker::new(eng.social_store(), eng.walk_store(), 0.2, 13);
        let result = walker.walk(NodeId(10), 3_000);
        assert!(
            result.fetches > 0,
            "a non-trivial walk must fetch something"
        );
        assert_eq!(
            result.fetches,
            eng.social_store().metrics().fetches,
            "walker fetch count must agree with the store's accounting"
        );
        let touched = result.visits.iter().filter(|&&v| v > 0).count() as u64;
        assert!(
            result.fetches <= touched,
            "each fetch targets a distinct visited node ({} fetches, {touched} touched)",
            result.fetches
        );
    }

    #[test]
    fn caching_segments_reduces_fetches_versus_plain_walking() {
        // With R cached segments per node the walk needs far fewer fetches than visits.
        let g = preferential_attachment(500, 5, 9);
        let eng = engine(&g, 10, 11);
        let mut walker = PersonalizedWalker::new(eng.social_store(), eng.walk_store(), 0.2, 17);
        let result = walker.walk(NodeId(0), 5_000);
        assert!(
            (result.fetches as f64) < 0.5 * result.total_visits as f64,
            "stitching should save most per-step accesses: {} fetches for {} visits",
            result.fetches,
            result.total_visits
        );
        assert!(result.segments_used > 0);
    }

    #[test]
    fn frequencies_sum_to_one() {
        let g = directed_cycle(5);
        let eng = engine(&g, 2, 13);
        let mut walker = PersonalizedWalker::new(eng.social_store(), eng.walk_store(), 0.2, 19);
        let result = walker.walk(NodeId(2), 800);
        let sum: f64 = result.frequencies().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn top_k_excludes_seed_and_friends() {
        let mut g = DynamicGraph::with_nodes(6);
        for &(s, t) in &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 2)] {
            g.add_edge(Edge::new(s, t));
        }
        let eng = engine(&g, 5, 17);
        let mut walker = PersonalizedWalker::new(eng.social_store(), eng.walk_store(), 0.2, 23);
        let top = walker.top_k(NodeId(0), 4, 3_000, true);
        for &(node, _) in &top {
            assert_ne!(node, NodeId(0));
            assert_ne!(node, NodeId(1), "friend 1 must be excluded");
            assert_ne!(node, NodeId(2), "friend 2 must be excluded");
        }
        assert!(!top.is_empty());
        // Scores are sorted in decreasing order.
        for pair in top.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
    }

    #[test]
    fn personalized_distribution_favours_nearby_nodes() {
        // On a long path-with-return, nodes close to the seed get higher frequency.
        let mut g = DynamicGraph::with_nodes(20);
        for i in 0..19u32 {
            g.add_edge(Edge::new(i, i + 1));
        }
        g.add_edge(Edge::new(19, 0));
        let eng = engine(&g, 5, 19);
        let mut walker = PersonalizedWalker::new(eng.social_store(), eng.walk_store(), 0.3, 29);
        let result = walker.walk(NodeId(0), 20_000);
        assert!(result.frequency(NodeId(1)) > result.frequency(NodeId(10)));
        assert!(result.frequency(NodeId(2)) > result.frequency(NodeId(15)));
    }

    #[test]
    fn result_top_k_respects_exclusions_and_order() {
        let result = PersonalizedWalkResult {
            visits: vec![10, 5, 7, 0, 3],
            total_visits: 25,
            ..PersonalizedWalkResult::default()
        };
        let exclude: HashSet<NodeId> = [NodeId(0)].into_iter().collect();
        let top = result.top_k(2, &exclude);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, NodeId(2));
        assert_eq!(top[1].0, NodeId(1));
        assert!((top[0].1 - 7.0 / 25.0).abs() < 1e-12);
        // The scratch-reusing variant is the same selection, and one scratch
        // serves repeated calls.
        let mut scratch = TopKScratch::default();
        assert_eq!(result.top_k_with(2, &exclude, &mut scratch), top);
        assert_eq!(result.top_k_with(2, &exclude, &mut scratch), top);
        let mut buf = vec![99.0; 1];
        result.frequencies_into(&mut buf);
        assert_eq!(buf, result.frequencies());
    }

    #[test]
    fn walk_query_is_a_pure_function_of_seed_and_id() {
        let g = preferential_attachment(200, 4, 21);
        let eng = engine(&g, 4, 23);
        let walker = PersonalizedWalker::new(eng.social_store(), eng.walk_store(), 0.2, 0);
        let a = walker.walk_query(NodeId(3), 2_000, 99, 7);
        let b = walker.walk_query(NodeId(3), 2_000, 99, 7);
        assert_eq!(a.visits, b.visits, "same stream, same walk");
        assert_eq!(a.fetches, b.fetches);
        let c = walker.walk_query(NodeId(3), 2_000, 99, 8);
        assert_ne!(
            a.visits, c.visits,
            "different query ids draw different walks"
        );
    }

    #[test]
    fn walk_query_matches_across_live_store_and_frozen_view() {
        // The serving contract in miniature: the same (query_seed, query_id) against
        // the live stores and against a frozen generation gives identical results.
        let g = preferential_attachment(150, 4, 31);
        let eng = engine(&g, 3, 37);
        let live = PersonalizedWalker::new(eng.social_store(), eng.walk_store(), 0.2, 0);
        let frozen_walks = FrozenWalks::from_index(eng.walk_store(), 0);
        let frozen_graph = FrozenGraph::from_graph(eng.graph());
        let pinned = PersonalizedWalker::new(&frozen_graph, &frozen_walks, 0.2, 0);
        for qid in 0..4u64 {
            let a = live.walk_query(NodeId(5), 1_500, 41, qid);
            let b = pinned.walk_query(NodeId(5), 1_500, 41, qid);
            assert_eq!(a.visits, b.visits, "query {qid} diverges across views");
            assert_eq!(a.fetches, b.fetches);
            assert_eq!(a.segments_used, b.segments_used);
        }
    }

    #[test]
    fn fetch_budget_stops_the_walk_deterministically() {
        let g = preferential_attachment(300, 4, 41);
        let eng = engine(&g, 2, 43);
        let unbounded = PersonalizedWalker::new(eng.social_store(), eng.walk_store(), 0.2, 0);
        let full = unbounded.walk_query(NodeId(1), 5_000, 5, 0);
        assert!(full.fetches > 4, "need a walk that actually fetches");

        let budget = full.fetches / 2;
        let bounded = PersonalizedWalker::new(eng.social_store(), eng.walk_store(), 0.2, 0)
            .with_fetch_budget(budget);
        let cut = bounded.walk_query(NodeId(1), 5_000, 5, 0);
        assert!(cut.budget_exhausted, "the cap must trip");
        assert_eq!(cut.fetches, budget, "spends exactly the budget");
        assert!(cut.total_visits < full.total_visits);
        // Replaying the budgeted query is bit-identical too.
        let again = bounded.walk_query(NodeId(1), 5_000, 5, 0);
        assert_eq!(cut.visits, again.visits);
        // A generous budget never trips.
        let roomy = PersonalizedWalker::new(eng.social_store(), eng.walk_store(), 0.2, 0)
            .with_fetch_budget(full.fetches);
        assert!(!roomy.walk_query(NodeId(1), 5_000, 5, 0).budget_exhausted);
    }

    #[test]
    fn walk_query_into_reuses_scratch_bit_identically() {
        let g = preferential_attachment(250, 4, 51);
        let eng = engine(&g, 3, 53);
        let walker = PersonalizedWalker::new(eng.social_store(), eng.walk_store(), 0.2, 0);
        let mut scratch = WalkScratch::new();
        let mut pooled = PersonalizedWalkResult::default();
        // Interleave different queries through the same scratch: every outcome
        // must match the allocating path bit for bit.
        for qid in 0..6u64 {
            let seed = NodeId((qid % 5) as u32);
            walker.walk_query_into(seed, 1_200, 77, qid, &mut scratch, &mut pooled);
            let fresh = walker.walk_query(seed, 1_200, 77, qid);
            assert_eq!(pooled.visits, fresh.visits, "query {qid} diverges");
            assert_eq!(pooled.fetches, fresh.fetches);
            assert_eq!(pooled.segments_used, fresh.segments_used);
            assert_eq!(pooled.total_visits, fresh.total_visits);
        }
    }

    #[test]
    fn deadline_budget_is_deterministic_under_a_manual_clock() {
        use ppr_telemetry::ManualClock;
        let g = preferential_attachment(300, 4, 61);
        let eng = engine(&g, 2, 63);

        // A frozen clock with a nonzero budget never expires: bit-identical to
        // the unbudgeted walk.
        let clock = ManualClock::new();
        let free = PersonalizedWalker::new(eng.social_store(), eng.walk_store(), 0.2, 0);
        let full = free.walk_query(NodeId(1), 5_000, 5, 0);
        let roomy = PersonalizedWalker::new(eng.social_store(), eng.walk_store(), 0.2, 0)
            .with_deadline_budget(&clock, 1);
        let timed = roomy.walk_query(NodeId(1), 5_000, 5, 0);
        assert_eq!(timed.visits, full.visits);
        assert!(!timed.deadline_exhausted);

        // A zero budget expires at the first fetch: a deterministic partial
        // result with the deadline flag set, stable under replay.
        let strict = PersonalizedWalker::new(eng.social_store(), eng.walk_store(), 0.2, 0)
            .with_deadline_budget(&clock, 0);
        let cut = strict.walk_query(NodeId(1), 5_000, 5, 0);
        assert!(
            cut.deadline_exhausted,
            "zero budget trips at the first fetch"
        );
        assert!(!cut.budget_exhausted, "the fetch budget was never involved");
        assert_eq!(cut.fetches, 0);
        assert!(cut.total_visits < full.total_visits);
        let again = strict.walk_query(NodeId(1), 5_000, 5, 0);
        assert_eq!(
            cut.visits, again.visits,
            "deadline cuts replay bit-identically"
        );

        // Advancing the clock between walks does not leak budget across walks:
        // each walk reads its own start time.
        clock.advance(1_000_000);
        let after = roomy.walk_query(NodeId(1), 5_000, 5, 0);
        assert_eq!(
            after.visits, full.visits,
            "budget is per walk, not per walker"
        );
    }

    #[test]
    #[should_panic(expected = "seed node")]
    fn rejects_out_of_range_seed() {
        let g = directed_cycle(3);
        let eng = engine(&g, 1, 23);
        let mut walker = PersonalizedWalker::new(eng.social_store(), eng.walk_store(), 0.2, 31);
        let _ = walker.walk(NodeId(50), 10);
    }

    #[test]
    #[should_panic(expected = "must cover the same node set")]
    fn rejects_mismatched_stores() {
        let g = directed_cycle(3);
        let eng = engine(&g, 1, 29);
        let other_walks = ppr_store::WalkStore::new(10, 1);
        let _ = PersonalizedWalker::new(eng.social_store(), &other_walks, 0.2, 37);
    }
}
