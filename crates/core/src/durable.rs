//! Durable engines: `create_durable` / `open` / `checkpoint` on both Monte Carlo
//! engines, built on `ppr-persist`.
//!
//! # The recovery contract
//!
//! A durable engine owns a [`StoreDir`]: generation-numbered snapshots plus a
//! write-ahead log of every batch applied since the snapshot.  Three facts make the
//! combination a *bit-exact* recovery mechanism rather than a best-effort one:
//!
//! 1. **Batches are the only inputs.**  After construction, engine state evolves
//!    only through `apply_arrivals` / `apply_deletions` (and per-edge wrappers,
//!    which *are* singleton batches).  Each call appends its edge batch to the WAL
//!    before touching any state.
//! 2. **The pipeline is deterministic.**  Every repair draws from a split RNG
//!    stream seeded by `(engine seed, batch index, pivot, segment)`, and the
//!    engine's own sequential RNG state is part of the snapshot metadata — so
//!    replaying the logged batches over a snapshot reproduces scores, postings, and
//!    paths byte for byte, at any shard or thread count.
//! 3. **Snapshots are atomic, logs truncate cleanly.**  Snapshots are immutable
//!    generation files published by renaming `CURRENT`; a crash mid-checkpoint
//!    leaves the previous generation authoritative.  A crash mid-append leaves a
//!    torn WAL tail that recovery truncates at the last CRC-valid record.
//!
//! Recovery therefore is: read `CURRENT` → load that generation's snapshot (falling
//! back to the previous generation if the file is corrupt) → replay the WAL tail
//! through the ordinary batch pipeline → truncate the torn tail, if any → attach the
//! writer and continue.  The restart-equivalence differential test
//! (`tests/durability.rs`) holds the whole stack to "crash anywhere, recover,
//! resume ≡ never crashed".
//!
//! # Durability semantics
//!
//! With the default options every batch is `fdatasync`ed before `apply_*` returns:
//! an acknowledged batch survives power loss, and at most the one batch that was
//! mid-write can be lost (and is then *cleanly absent*, never half-applied).  A WAL
//! append failure panics — an engine that can no longer log cannot honour the
//! durability it promised, and limping on in memory would silently break it.
//!
//! A store directory admits a **single writer process**, and the contract is
//! enforced: `create_durable*` and `open` acquire the directory's `LOCK` file
//! ([`ppr_persist::StoreLock`]) and hold it for the engine's lifetime, so a second
//! writer fails fast with [`ppr_persist::PersistError::Locked`] naming the holder.
//! A lock left behind by a crashed process (the PID no longer runs) is stolen
//! automatically, so crash recovery never needs manual cleanup.

use crate::config::{MonteCarloConfig, RerouteStrategy};
use crate::incremental::IncrementalPageRank;
use crate::salsa::IncrementalSalsa;
use ppr_graph::{Edge, GraphView};
use ppr_persist::dir::StoreDir;
use ppr_persist::graph::{decode_graph, encode_graph};
use ppr_persist::io::{corrupt, format_err, ByteReader, ByteWriter};
use ppr_persist::layout::PersistentWalkStore;
use ppr_persist::lock::StoreLock;
use ppr_persist::snapshot::{
    SnapshotFile, SnapshotWriter, SECTION_GRAPH, SECTION_META, SECTION_WALKS,
};
use ppr_persist::wal::{self, GroupCommit, WalRecord, WalWriter};
use ppr_persist::{DiskWalkStore, PagedWalks, WalOp};
use ppr_store::{ShardedWalkStore, SocialStore, WalkIndexMut, WalkStore, WorkCounter};
use rand::rngs::SmallRng;
use std::path::Path;

pub use ppr_persist::{PersistError, PersistResult};

/// A PageRank engine whose walk store is the file-backed
/// [`ppr_persist::DiskWalkStore`] — checkpoints write back only dirty pages.
pub type DurablePageRank = IncrementalPageRank<DiskWalkStore>;

const ENGINE_PAGERANK: u8 = 1;
const ENGINE_SALSA: u8 = 2;

/// Runtime durability options (not persisted; chosen per process).
#[derive(Debug, Clone, Copy)]
pub struct DurabilityOptions {
    /// `fdatasync` the WAL on every batch (the durability contract).  Disable only
    /// for bulk loads where a crash may cheaply restart the load.
    pub fsync_wal: bool,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        DurabilityOptions { fsync_wal: true }
    }
}

/// The durability state attached to a running engine: its store directory, active
/// generation, and open WAL writer.
#[derive(Debug)]
pub struct DurableLog {
    dir: StoreDir,
    /// The held cross-process lock on the store directory; released when the engine
    /// (and with it this log) is dropped.
    lock: StoreLock,
    gen: u64,
    /// Newest generation (besides `gen`) whose snapshot is known good — the one this
    /// process last loaded or wrote.  Pruning never deletes generations at or above
    /// it, so after a fallback recovery the known-good base survives checkpoints and
    /// the known-corrupt snapshot is never left as the only fallback.
    last_good: u64,
    writer: WalWriter,
    options: DurabilityOptions,
    /// The active WAL group-commit handle, if the serving layer switched the log
    /// into pipelined durability.  Carried (and rebound) across WAL rotations.
    group: Option<GroupCommit>,
}

impl DurableLog {
    /// Appends one batch record.
    ///
    /// # Panics
    ///
    /// Panics if the append fails: the engine promised durability for every
    /// acknowledged batch and can no longer deliver it.
    pub(crate) fn append(&mut self, seq: u64, op: WalOp, edges: &[Edge]) {
        self.writer
            .append(seq, op, edges)
            .expect("WAL append failed; cannot continue without breaking durability");
    }

    /// Switches the WAL into group-commit mode and returns the handle driving its
    /// coalesced syncs (see [`ppr_persist::GroupCommit`]).  Returns `None` when the
    /// log was opened with `fsync_wal: false` — there are no syncs to coalesce, and
    /// appends stay exactly as cheap as they already were.  Idempotent: a second
    /// call returns a clone of the active handle.
    pub fn begin_group_commit(&mut self) -> Option<GroupCommit> {
        if !self.options.fsync_wal {
            return None;
        }
        if let Some(group) = &self.group {
            return Some(group.clone());
        }
        let group = self
            .writer
            .begin_group_commit()
            .expect("duplicating the WAL handle for group commit failed");
        self.group = Some(group.clone());
        Some(group)
    }

    /// Leaves group-commit mode: one final coalesced sync covers every outstanding
    /// append, then appends go back to fsyncing individually.
    pub fn end_group_commit(&mut self) {
        self.group = None;
        self.writer
            .end_group_commit()
            .expect("final group-commit sync failed; cannot break durability silently");
    }

    /// The active generation number.
    pub fn generation(&self) -> u64 {
        self.gen
    }

    /// Point-in-time WAL counters (appends, fsyncs, group-commit watermarks) of
    /// the open writer; see [`ppr_persist::WalStats`].
    pub fn wal_stats(&self) -> ppr_persist::WalStats {
        self.writer.stats()
    }

    /// The store directory root.
    pub fn root(&self) -> &Path {
        self.dir.root()
    }
}

/// Engine metadata persisted in the snapshot's META section.
#[derive(Debug, Clone, Copy)]
struct EngineMeta {
    kind: u8,
    config: MonteCarloConfig,
    threads: usize,
    batch_index: u64,
    wal_seq: u64,
    rng: [u64; 4],
    initialization_steps: u64,
    work: WorkCounter,
}

fn encode_meta(m: &EngineMeta) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(96);
    w.put_u8(m.kind);
    w.put_f64(m.config.epsilon);
    w.put_u64(m.config.r as u64);
    w.put_u64(m.config.seed);
    w.put_u8(match m.config.reroute {
        RerouteStrategy::FromUpdatePoint => 0,
        RerouteStrategy::FromSource => 1,
    });
    w.put_u64(m.config.max_segment_length as u64);
    w.put_f64(m.config.compaction_threshold);
    w.put_u64(m.threads as u64);
    w.put_u64(m.batch_index);
    w.put_u64(m.wal_seq);
    for word in m.rng {
        w.put_u64(word);
    }
    w.put_u64(m.initialization_steps);
    w.put_u64(m.work.segments_updated);
    w.put_u64(m.work.walk_steps);
    w.put_u64(m.work.edges_processed);
    w.put_u64(m.work.arrivals_filtered);
    w.into_bytes()
}

/// Decodes the META section written by container version `version`: version 1
/// (PR 4) predates the `compaction_threshold` field, which then defaults to the
/// half-dead rule every version-1 store was built with.
fn decode_meta(payload: &[u8], version: u32) -> PersistResult<EngineMeta> {
    let mut r = ByteReader::new(payload);
    let kind = r.get_u8()?;
    let epsilon = r.get_f64()?;
    let segments = r.get_len()?;
    let seed = r.get_u64()?;
    let reroute = match r.get_u8()? {
        0 => RerouteStrategy::FromUpdatePoint,
        1 => RerouteStrategy::FromSource,
        other => return Err(corrupt(format!("unknown reroute strategy {other}"))),
    };
    let max_segment_length = r.get_len()?;
    let compaction_threshold = if version >= 2 {
        r.get_f64()?
    } else {
        ppr_store::arena::DEFAULT_COMPACT_RATIO
    };
    if !(epsilon > 0.0 && epsilon < 1.0)
        || segments == 0
        || max_segment_length == 0
        || !(compaction_threshold.is_finite() && compaction_threshold > 0.0)
    {
        return Err(corrupt("engine config out of range"));
    }
    let config = MonteCarloConfig::new(epsilon, segments)
        .with_seed(seed)
        .with_reroute(reroute)
        .with_max_segment_length(max_segment_length)
        .with_compaction_threshold(compaction_threshold);
    let threads = r.get_len()?.max(1);
    let batch_index = r.get_u64()?;
    let wal_seq = r.get_u64()?;
    let rng = [r.get_u64()?, r.get_u64()?, r.get_u64()?, r.get_u64()?];
    if rng.iter().all(|&w| w == 0) {
        return Err(corrupt("all-zero RNG state"));
    }
    let initialization_steps = r.get_u64()?;
    let work = WorkCounter {
        segments_updated: r.get_u64()?,
        walk_steps: r.get_u64()?,
        edges_processed: r.get_u64()?,
        arrivals_filtered: r.get_u64()?,
    };
    r.expect_end("engine metadata")?;
    Ok(EngineMeta {
        kind,
        config,
        threads,
        batch_index,
        wal_seq,
        rng,
        initialization_steps,
        work,
    })
}

/// Writes one complete generation snapshot and invokes the store's post-publish hook.
fn write_generation<W: PersistentWalkStore>(
    dir: &StoreDir,
    gen: u64,
    meta: &EngineMeta,
    social: &SocialStore,
    walks: &mut W,
) -> PersistResult<()> {
    let mut snap = SnapshotWriter::new();
    snap.add_section(SECTION_META, encode_meta(meta));
    snap.add_section(
        SECTION_GRAPH,
        encode_graph(social.graph(), social.shard_count() as u32),
    );
    snap.add_section(SECTION_WALKS, walks.encode_walks()?);
    let path = dir.snapshot_path(gen);
    snap.write_to(&path)?;
    walks.after_checkpoint(&path)?;
    Ok(())
}

/// Everything recovered from a store directory, before engine assembly.
struct Recovered<W> {
    meta: EngineMeta,
    lock: StoreLock,
    social: SocialStore,
    walks: W,
    replay: Vec<WalRecord>,
    writer: WalWriter,
    dir: StoreDir,
    current_gen: u64,
    /// Generation of the snapshot actually loaded (differs from `current_gen` after
    /// a fallback recovery) — the known-good base pruning must preserve.
    snap_gen: u64,
}

fn try_load_generation<W: PersistentWalkStore>(
    dir: &StoreDir,
    gen: u64,
) -> PersistResult<(EngineMeta, SocialStore, W)> {
    let path = dir.snapshot_path(gen);
    let mut snap = SnapshotFile::open(&path)?;
    let meta = decode_meta(&snap.read_section(SECTION_META)?, snap.version())?;
    let (graph, shard_count) = decode_graph(&snap.read_section(SECTION_GRAPH)?)?;
    drop(snap);
    let walks = W::decode_walks(PagedWalks::open(&path)?)?;
    // Surface deferred corruption (a demand-paged store leaves its heap unread)
    // while generation fallback is still possible; see `verify_walks`.
    walks.verify_walks()?;
    if walks.node_count() != graph.node_count() {
        return Err(corrupt(format!(
            "walk store addresses {} nodes but the graph has {}",
            walks.node_count(),
            graph.node_count()
        )));
    }
    let social = SocialStore::from_graph(graph, shard_count as usize);
    Ok((meta, social, walks))
}

/// Loads the latest valid generation of `dir` and collects the WAL records to
/// replay.  If the current snapshot is corrupt, falls back to older generations
/// (scanning down while their snapshot files exist — after a fallback recovery the
/// directory legitimately holds more than two) and replays every log from the
/// loaded snapshot forward; sequence numbers dedupe against the older snapshot.
fn load_store<W: PersistentWalkStore>(dir: StoreDir) -> PersistResult<Recovered<W>> {
    let lock = StoreLock::acquire(dir.root())?;
    let current_gen = dir.current_gen()?;
    // Bit rot can land in format-sensitive bytes (a version field corrupts into a
    // Format error just as easily as a payload byte corrupts into a Corrupt one),
    // so *every* load failure falls back to older generations.  A genuine caller
    // error — opening a sharded store with the flat engine — fails identically at
    // every generation, so the scan ends by returning the primary error anyway.
    let (snap_gen, (meta, social, walks)) = match try_load_generation::<W>(&dir, current_gen) {
        Ok(parts) => (current_gen, parts),
        Err(primary) => {
            let mut recovered = None;
            for gen in (0..current_gen).rev() {
                if !dir.snapshot_path(gen).exists() {
                    break;
                }
                if let Ok(parts) = try_load_generation::<W>(&dir, gen) {
                    recovered = Some((gen, parts));
                    break;
                }
            }
            match recovered {
                Some(parts) => parts,
                None => return Err(primary),
            }
        }
    };

    let mut replay = Vec::new();
    // Logs of generations between the loaded snapshot and the current one were
    // sealed by later checkpoints, and a log is always complete when sealed (a
    // crash mid-append is truncated by the recovery that precedes the sealing
    // checkpoint).  A torn tail here is therefore post-seal corruption of records
    // the newer (corrupt) snapshot had absorbed — a hard error, never silent loss
    // of acknowledged batches.
    for gen in snap_gen..current_gen {
        let scan = wal::read_records(&dir.wal_path(gen))?;
        if scan.torn_tail {
            return Err(corrupt(format!(
                "sealed WAL of generation {gen} is corrupt past record {}",
                scan.records.len()
            )));
        }
        replay.extend(scan.records);
    }
    let (scan, writer) = WalWriter::open_truncating(&dir.wal_path(current_gen))?;
    replay.extend(scan.records);
    Ok(Recovered {
        meta,
        lock,
        social,
        walks,
        replay,
        writer,
        dir,
        current_gen,
        snap_gen,
    })
}

/// Replays recovered WAL records through `apply`, enforcing sequence contiguity.
/// Records the snapshot already absorbed (seq < `start_seq`) are skipped.
fn replay_records(
    start_seq: u64,
    records: &[WalRecord],
    mut apply: impl FnMut(WalOp, &[Edge]),
) -> PersistResult<u64> {
    let mut next = start_seq;
    for record in records {
        if record.seq < start_seq {
            continue;
        }
        if record.seq != next {
            return Err(corrupt(format!(
                "WAL sequence gap: expected record {next}, found {}",
                record.seq
            )));
        }
        apply(record.op, &record.edges);
        next += 1;
    }
    Ok(next)
}

/// Shared checkpoint driver: writes generation `gen + 1`, rotates the WAL, publishes
/// `CURRENT`, prunes old generations.  On failure the previous `DurableLog` is
/// returned unchanged so the engine stays durable on the old generation.
fn run_checkpoint<W: PersistentWalkStore>(
    log: DurableLog,
    meta: &EngineMeta,
    social: &SocialStore,
    walks: &mut W,
) -> (DurableLog, PersistResult<u64>) {
    let new_gen = log.gen + 1;
    let attempt = (|| {
        write_generation(&log.dir, new_gen, meta, social, walks)?;
        // A wal-<new_gen> can only pre-exist if an earlier checkpoint attempt died
        // between creating it and publishing CURRENT — it was never part of a
        // published generation (nothing is ever appended before the publish), so
        // clearing it is what makes checkpointing retryable after such a crash.
        let wal_path = log.dir.wal_path(new_gen);
        if wal_path.exists() {
            std::fs::remove_file(&wal_path)?;
        }
        let writer = WalWriter::create(&wal_path)?;
        log.dir.publish_gen(new_gen)?;
        Ok(writer)
    })();
    match attempt {
        Ok(mut writer) => {
            writer.set_fsync(log.options.fsync_wal);
            // An active group-commit handle survives rotation: rebind it onto the
            // fresh WAL so the committer thread's syncs land on the right file, and
            // the superseded appends are credited durable (the snapshot holds them).
            if let Some(group) = &log.group {
                writer
                    .adopt_group(group)
                    .expect("rebinding group commit to the rotated WAL failed");
            }
            // Keep everything from the last known-good snapshot up: normally that is
            // the generation just superseded, but after a fallback recovery it is
            // the older base — the known-corrupt snapshot in between must never
            // become the only fallback.
            log.dir.prune_generations_below(log.last_good.min(log.gen));
            (
                DurableLog {
                    dir: log.dir,
                    lock: log.lock,
                    gen: new_gen,
                    // The snapshot just written (and fsynced) is the new known-good
                    // base; the next checkpoint may prune everything below it.
                    last_good: new_gen,
                    writer,
                    options: log.options,
                    group: log.group,
                },
                Ok(new_gen),
            )
        }
        Err(e) => (log, Err(e)),
    }
}

/// Attaches a fresh store directory to a just-built engine: generation 0 snapshot,
/// empty WAL, `CURRENT` published.
fn attach_fresh<W: PersistentWalkStore>(
    root: impl Into<std::path::PathBuf>,
    options: DurabilityOptions,
    meta: &EngineMeta,
    social: &SocialStore,
    walks: &mut W,
) -> PersistResult<DurableLog> {
    let dir = StoreDir::init(root)?;
    let lock = StoreLock::acquire(dir.root())?;
    write_generation(&dir, 0, meta, social, walks)?;
    // StoreDir::init guarantees no CURRENT exists, so a leftover wal-0 is debris
    // from a create attempt that died before publishing — clear it so creation is
    // retryable.
    let wal_path = dir.wal_path(0);
    if wal_path.exists() {
        std::fs::remove_file(&wal_path)?;
    }
    let mut writer = WalWriter::create(&wal_path)?;
    writer.set_fsync(options.fsync_wal);
    dir.publish_gen(0)?;
    Ok(DurableLog {
        dir,
        lock,
        gen: 0,
        last_good: 0,
        writer,
        options,
        group: None,
    })
}

// ---------------------------------------------------------------------------------
// IncrementalPageRank
// ---------------------------------------------------------------------------------

impl<W: WalkIndexMut + PersistentWalkStore + Sync> IncrementalPageRank<W> {
    fn engine_meta(&self) -> EngineMeta {
        EngineMeta {
            kind: ENGINE_PAGERANK,
            config: self.config,
            threads: self.threads,
            batch_index: self.batch_index,
            wal_seq: self.wal_seq,
            rng: self.rng.state(),
            initialization_steps: self.initialization_steps,
            work: self.work,
        }
    }

    /// Opens a durable PageRank engine from `root`, performing full crash recovery:
    /// latest valid snapshot, WAL-tail replay, torn-tail truncation.  The recovered
    /// engine is bit-identical to the one that crashed (up to the at-most-one
    /// unsynced batch).
    pub fn open(root: impl AsRef<Path>) -> PersistResult<Self> {
        Self::open_with(root, DurabilityOptions::default())
    }

    /// [`Self::open`] with explicit durability options.
    pub fn open_with(root: impl AsRef<Path>, options: DurabilityOptions) -> PersistResult<Self> {
        let recovered = load_store::<W>(StoreDir::open(root.as_ref().to_path_buf())?)?;
        if recovered.meta.kind != ENGINE_PAGERANK {
            return Err(format_err(
                "store directory holds a SALSA engine, not PageRank".to_string(),
            ));
        }
        let meta = recovered.meta;
        let mut engine = IncrementalPageRank {
            store: recovered.social,
            walks: recovered.walks,
            config: meta.config,
            rng: SmallRng::from_state(meta.rng),
            work: meta.work,
            initialization_steps: meta.initialization_steps,
            threads: meta.threads,
            batch_index: meta.batch_index,
            scratch: Vec::new(),
            candidate_sets: Vec::new(),
            phase1_times: Vec::new(),
            rewrites: ppr_store::SegmentRewrites::new(),
            profile: crate::batch::BatchProfile::default(),
            durability: None,
            wal_seq: meta.wal_seq,
        };
        let next_seq = replay_records(meta.wal_seq, &recovered.replay, |op, edges| match op {
            WalOp::Arrivals => {
                engine.apply_arrivals(edges);
            }
            WalOp::Deletions => {
                engine.apply_deletions(edges);
            }
        })?;
        engine.wal_seq = next_seq;
        let mut writer = recovered.writer;
        writer.set_fsync(options.fsync_wal);
        engine.durability = Some(DurableLog {
            dir: recovered.dir,
            lock: recovered.lock,
            gen: recovered.current_gen,
            last_good: recovered.snap_gen,
            writer,
            options,
            group: None,
        });
        Ok(engine)
    }

    /// Writes a new snapshot generation, rotates the WAL, and publishes it as
    /// `CURRENT`.  Returns the new generation number.  Fails (leaving the engine
    /// durable on its previous generation) if the engine was not opened or created
    /// durable.
    pub fn checkpoint(&mut self) -> PersistResult<u64> {
        let Some(log) = self.durability.take() else {
            return Err(format_err(
                "engine has no durable store attached; build it with create_durable or open"
                    .to_string(),
            ));
        };
        let meta = self.engine_meta();
        let (log, result) = run_checkpoint(log, &meta, &self.store, &mut self.walks);
        self.durability = Some(log);
        result
    }

    /// `true` when the engine logs to a durable store directory.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// The attached durability state, if any.
    pub fn durable_log(&self) -> Option<&DurableLog> {
        self.durability.as_ref()
    }

    fn make_durable(
        mut self,
        root: impl Into<std::path::PathBuf>,
        options: DurabilityOptions,
    ) -> PersistResult<Self> {
        let meta = self.engine_meta();
        let log = attach_fresh(root, options, &meta, &self.store, &mut self.walks)?;
        self.durability = Some(log);
        Ok(self)
    }
}

impl<W: WalkIndexMut + Sync> IncrementalPageRank<W> {
    /// Switches the attached WAL (if any, and if fsyncing) into group-commit mode;
    /// see [`DurableLog::begin_group_commit`].
    pub fn wal_group_commit(&mut self) -> Option<GroupCommit> {
        self.durability
            .as_mut()
            .and_then(DurableLog::begin_group_commit)
    }

    /// Leaves WAL group-commit mode with one final covering sync.
    pub fn wal_end_group_commit(&mut self) {
        if let Some(log) = self.durability.as_mut() {
            log.end_group_commit();
        }
    }
}

impl IncrementalPageRank<WalkStore> {
    /// Builds a flat-store engine over `graph` and initialises a durable store
    /// directory at `root` (generation-0 snapshot plus an empty WAL).
    pub fn create_durable(
        root: impl AsRef<Path>,
        graph: impl Into<SocialStore>,
        config: MonteCarloConfig,
    ) -> PersistResult<Self> {
        Self::from_graph(graph, config)
            .make_durable(root.as_ref().to_path_buf(), DurabilityOptions::default())
    }
}

impl IncrementalPageRank<ShardedWalkStore> {
    /// Builds a sharded engine over `graph` and initialises a durable store
    /// directory at `root`.  The shard count is recorded in the snapshot; `open`
    /// restores it.
    pub fn create_durable_sharded(
        root: impl AsRef<Path>,
        graph: impl Into<SocialStore>,
        config: MonteCarloConfig,
        shards: usize,
        threads: usize,
    ) -> PersistResult<Self> {
        Self::from_graph_sharded(graph, config, shards, threads)
            .make_durable(root.as_ref().to_path_buf(), DurabilityOptions::default())
    }
}

impl DurablePageRank {
    /// Builds an engine over the file-backed [`DiskWalkStore`] and initialises a
    /// durable store directory at `root`.  Subsequent [`Self::checkpoint`] calls
    /// write back only the heap pages the batches since the last checkpoint dirtied.
    pub fn create_durable_disk(
        root: impl AsRef<Path>,
        graph: impl Into<SocialStore>,
        config: MonteCarloConfig,
    ) -> PersistResult<Self> {
        let store = graph.into();
        let walks = DiskWalkStore::new(store.node_count(), config.r);
        Self::with_store(store, walks, config, 1)
            .make_durable(root.as_ref().to_path_buf(), DurabilityOptions::default())
    }
}

// ---------------------------------------------------------------------------------
// IncrementalSalsa
// ---------------------------------------------------------------------------------

impl<W: WalkIndexMut + PersistentWalkStore + Sync> IncrementalSalsa<W> {
    fn engine_meta(&self) -> EngineMeta {
        EngineMeta {
            kind: ENGINE_SALSA,
            config: self.config,
            threads: self.threads,
            batch_index: self.batch_index,
            wal_seq: self.wal_seq,
            rng: self.rng.state(),
            initialization_steps: 0,
            work: self.work,
        }
    }

    /// Opens a durable SALSA engine from `root` with full crash recovery (see
    /// [`IncrementalPageRank::open`]; the mechanism is identical).  SALSA deletions
    /// replay through the sequential per-edge path, whose RNG state the snapshot
    /// carries, so recovery is bit-exact for it as well.
    pub fn open(root: impl AsRef<Path>) -> PersistResult<Self> {
        Self::open_with(root, DurabilityOptions::default())
    }

    /// [`Self::open`] with explicit durability options.
    pub fn open_with(root: impl AsRef<Path>, options: DurabilityOptions) -> PersistResult<Self> {
        let recovered = load_store::<W>(StoreDir::open(root.as_ref().to_path_buf())?)?;
        if recovered.meta.kind != ENGINE_SALSA {
            return Err(format_err(
                "store directory holds a PageRank engine, not SALSA".to_string(),
            ));
        }
        let meta = recovered.meta;
        let mut engine = IncrementalSalsa {
            store: recovered.social,
            walks: recovered.walks,
            config: meta.config,
            rng: SmallRng::from_state(meta.rng),
            work: meta.work,
            threads: meta.threads,
            batch_index: meta.batch_index,
            scratch: Vec::new(),
            visiting: Vec::new(),
            candidate_sets: Vec::new(),
            phase1_times: Vec::new(),
            rewrites: ppr_store::SegmentRewrites::new(),
            profile: crate::batch::BatchProfile::default(),
            durability: None,
            wal_seq: meta.wal_seq,
        };
        let next_seq = replay_records(meta.wal_seq, &recovered.replay, |op, edges| match op {
            WalOp::Arrivals => {
                engine.apply_arrivals(edges);
            }
            WalOp::Deletions => {
                for &edge in edges {
                    engine.remove_edge(edge);
                }
            }
        })?;
        engine.wal_seq = next_seq;
        let mut writer = recovered.writer;
        writer.set_fsync(options.fsync_wal);
        engine.durability = Some(DurableLog {
            dir: recovered.dir,
            lock: recovered.lock,
            gen: recovered.current_gen,
            last_good: recovered.snap_gen,
            writer,
            options,
            group: None,
        });
        Ok(engine)
    }

    /// Writes a new snapshot generation and rotates the WAL (see
    /// [`IncrementalPageRank::checkpoint`]).
    pub fn checkpoint(&mut self) -> PersistResult<u64> {
        let Some(log) = self.durability.take() else {
            return Err(format_err(
                "engine has no durable store attached; build it with create_durable or open"
                    .to_string(),
            ));
        };
        let meta = self.engine_meta();
        let (log, result) = run_checkpoint(log, &meta, &self.store, &mut self.walks);
        self.durability = Some(log);
        result
    }

    /// `true` when the engine logs to a durable store directory.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    fn make_durable(
        mut self,
        root: impl Into<std::path::PathBuf>,
        options: DurabilityOptions,
    ) -> PersistResult<Self> {
        let meta = self.engine_meta();
        let log = attach_fresh(root, options, &meta, &self.store, &mut self.walks)?;
        self.durability = Some(log);
        Ok(self)
    }
}

impl<W: WalkIndexMut + Sync> IncrementalSalsa<W> {
    /// Switches the attached WAL (if any, and if fsyncing) into group-commit mode;
    /// see [`DurableLog::begin_group_commit`].
    pub fn wal_group_commit(&mut self) -> Option<GroupCommit> {
        self.durability
            .as_mut()
            .and_then(DurableLog::begin_group_commit)
    }

    /// Leaves WAL group-commit mode with one final covering sync.
    pub fn wal_end_group_commit(&mut self) {
        if let Some(log) = self.durability.as_mut() {
            log.end_group_commit();
        }
    }
}

impl IncrementalSalsa<WalkStore> {
    /// Builds a flat-store SALSA engine over `graph` and initialises a durable store
    /// directory at `root`.
    pub fn create_durable(
        root: impl AsRef<Path>,
        graph: impl Into<SocialStore>,
        config: MonteCarloConfig,
    ) -> PersistResult<Self> {
        Self::from_graph(graph, config)
            .make_durable(root.as_ref().to_path_buf(), DurabilityOptions::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_round_trips_exactly() {
        let meta = EngineMeta {
            kind: ENGINE_PAGERANK,
            config: MonteCarloConfig::new(0.25, 7)
                .with_seed(99)
                .with_reroute(RerouteStrategy::FromSource)
                .with_max_segment_length(321),
            threads: 4,
            batch_index: 17,
            wal_seq: 23,
            rng: [1, 2, 3, 4],
            initialization_steps: 555,
            work: WorkCounter {
                segments_updated: 1,
                walk_steps: 2,
                edges_processed: 3,
                arrivals_filtered: 4,
            },
        };
        let decoded = decode_meta(&encode_meta(&meta), ppr_persist::snapshot::VERSION).unwrap();
        assert_eq!(decoded.kind, meta.kind);
        assert_eq!(decoded.config, meta.config);
        assert_eq!(decoded.threads, meta.threads);
        assert_eq!(decoded.batch_index, meta.batch_index);
        assert_eq!(decoded.wal_seq, meta.wal_seq);
        assert_eq!(decoded.rng, meta.rng);
        assert_eq!(decoded.initialization_steps, meta.initialization_steps);
        assert_eq!(decoded.work, meta.work);
    }

    #[test]
    fn meta_decoding_rejects_nonsense() {
        let meta = EngineMeta {
            kind: ENGINE_SALSA,
            config: MonteCarloConfig::new(0.2, 3),
            threads: 1,
            batch_index: 0,
            wal_seq: 0,
            rng: [9, 0, 0, 0],
            initialization_steps: 0,
            work: WorkCounter::default(),
        };
        let clean = encode_meta(&meta);
        let v = ppr_persist::snapshot::VERSION;
        assert!(
            decode_meta(&clean[..clean.len() - 1], v).is_err(),
            "truncated"
        );
        let mut bad = clean.clone();
        bad[1..9].fill(0xFF); // epsilon = NaN-ish bits
        assert!(decode_meta(&bad, v).is_err());
        let mut bad = clean;
        bad[25] = 9; // reroute discriminant
        assert!(decode_meta(&bad, v).is_err());
    }

    #[test]
    fn version_1_meta_decodes_with_the_default_compaction_threshold() {
        // A PR 4 store's META is the current layout minus the compaction_threshold
        // f64 at bytes 33..41; decoding it as version 1 must succeed and fall back
        // to the half-dead default, so old directories stay openable.
        let meta = EngineMeta {
            kind: ENGINE_PAGERANK,
            config: MonteCarloConfig::new(0.25, 7)
                .with_seed(99)
                .with_max_segment_length(321),
            threads: 4,
            batch_index: 17,
            wal_seq: 23,
            rng: [1, 2, 3, 4],
            initialization_steps: 555,
            work: WorkCounter::default(),
        };
        let current = encode_meta(&meta);
        let mut v1 = current.clone();
        // Layout: kind u8 | epsilon f64 | r u64 | seed u64 | reroute u8 |
        // max_segment_length u64 | compaction_threshold f64 | ...
        v1.drain(34..42); // strip the appended threshold field
        let decoded = decode_meta(&v1, 1).unwrap();
        assert_eq!(decoded.config.epsilon, meta.config.epsilon);
        assert_eq!(decoded.config.max_segment_length, 321);
        assert_eq!(decoded.threads, 4);
        assert_eq!(decoded.rng, meta.rng);
        assert_eq!(
            decoded.config.compaction_threshold,
            ppr_store::arena::DEFAULT_COMPACT_RATIO
        );
        // The same bytes read as version 2 are rejected, not misread.
        assert!(decode_meta(&v1, 2).is_err());
    }

    #[test]
    fn replay_enforces_contiguity() {
        let rec = |seq| WalRecord {
            seq,
            op: WalOp::Arrivals,
            edges: vec![],
        };
        let mut applied = 0;
        let next =
            replay_records(2, &[rec(0), rec(1), rec(2), rec(3)], |_, _| applied += 1).unwrap();
        assert_eq!((applied, next), (2, 4));
        assert!(replay_records(0, &[rec(0), rec(2)], |_, _| {}).is_err());
        assert_eq!(replay_records(5, &[], |_, _| {}).unwrap(), 5);
    }
}
