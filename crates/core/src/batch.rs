//! Shared batching machinery for the engines' `apply_arrivals` paths: arrival
//! grouping, the split-RNG seed derivation, and the candidate/reconcile plumbing the
//! deterministic parallel reroute is built on.
//!
//! # The deterministic repair pipeline
//!
//! Both engines process a batch of arrivals in three phases:
//!
//! 1. **Candidate generation** (read-only, parallel): arrival groups are formed per
//!    pivot node; for every group and every segment visiting its pivot, an independent
//!    RNG stream — seeded from `(engine seed, batch index, pivot, segment)` via
//!    `repair_seed` — flips the reroute coins over the segment's *pre-batch* path and,
//!    on a hit, generates the candidate replacement path against the post-batch graph.
//!    Because every `(group, segment)` pair has its own stream and only reads immutable
//!    state, candidates can be computed in any order, by any number of threads, split
//!    any way across shards, with bit-identical results.
//! 2. **Reconciliation** (sequential, cheap): when several groups claim the same
//!    segment, the candidate with the **smallest reroute position** wins.  Under
//!    prefix-preserving reroutes this is exactly the fixed point the sequential
//!    limit-tracking loop reaches — a reroute at position `p` makes later groups skip
//!    positions `>= p`, so the surviving reroute is always the minimum over first-hit
//!    positions — but stated order-independently.  Under from-source reroutes any
//!    winner regenerates the whole segment on the post-batch graph, so the rule only
//!    selects which RNG stream draws the (identically distributed) replacement.
//! 3. **Apply** ([`ppr_store::WalkIndexMut::apply_rewrites`]): the winning rewrites,
//!    sorted by segment id, are applied by the store — sequentially for the flat
//!    [`ppr_store::WalkStore`], one worker thread per shard for the
//!    [`ppr_store::ShardedWalkStore`].
//!
//! The fan-out in phase 1 partitions segments by their *owning shard* (the shard of
//! their source node, [`ppr_store::WalkIndex::route_shards`] wide), which also keeps
//! every worker's output deterministic in isolation.

use ppr_graph::{Edge, NodeId};
use ppr_store::{SegmentId, SocialStore, WalkIndex};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// One pivot node's share of a batch: the pivot, its relevant degree from *before* the
/// batch, and the forced reroute targets its new edges contribute, in arrival order.
pub(crate) type ArrivalGroup = (NodeId, usize, Vec<NodeId>);

/// Groups a batch of arrivals by pivot node in first-arrival order, capturing each
/// pivot's pre-batch degree.
///
/// Must be called **before** any edge of the batch is inserted into `store`: the
/// captured degree is the pivot's degree with no batch edge applied, which is what the
/// `k/(d₀+k)` reservoir composition of the per-edge coins needs.  `key` maps an edge to
/// `(pivot, forced_target)` — `(source, target)` for PageRank and SALSA's forward
/// direction, `(target, source)` for SALSA's backward direction — and `degree` reads
/// the pivot's relevant degree (out-degree for forward steps, in-degree for backward).
pub(crate) fn group_arrivals(
    store: &SocialStore,
    edges: &[Edge],
    key: impl Fn(Edge) -> (NodeId, NodeId),
    degree: impl Fn(&SocialStore, NodeId) -> usize,
) -> Vec<ArrivalGroup> {
    let mut groups: Vec<ArrivalGroup> = Vec::new();
    let mut index: HashMap<NodeId, usize> = HashMap::new();
    for &edge in edges {
        let (pivot, target) = key(edge);
        let slot = *index.entry(pivot).or_insert_with(|| {
            groups.push((pivot, degree(store, pivot), Vec::new()));
            groups.len() - 1
        });
        groups[slot].2.push(target);
    }
    groups
}

/// Groups a batch of *successfully removed* edges per source node in
/// first-occurrence order.  Unlike arrivals, no pre-batch degree capture is needed:
/// deletion rerouting is deterministic — a segment reroutes iff it traverses an edge
/// that no longer exists after the batch — so a group only carries the pivot and its
/// removed targets.
pub(crate) fn group_deletions(edges: &[Edge]) -> Vec<(NodeId, Vec<NodeId>)> {
    let mut groups: Vec<(NodeId, Vec<NodeId>)> = Vec::new();
    let mut index: HashMap<NodeId, usize> = HashMap::new();
    for &edge in edges {
        let slot = *index.entry(edge.source).or_insert_with(|| {
            groups.push((edge.source, Vec::new()));
            groups.len() - 1
        });
        groups[slot].1.push(edge.target);
    }
    groups
}

/// Derives the RNG seed of one `(batch, pivot, segment)` repair stream.
///
/// The split is deliberately finer than one stream per shard: seeding per repair
/// stream makes the candidate computation independent of *which* shard or thread
/// executes it, so the sharded engine is bit-identical to the single-shard engine at
/// any `(shard count, thread count)` — the property the differential harness locks in.
/// `backward` distinguishes SALSA's two walk directions, which can both touch the same
/// `(pivot, segment)` pair in one batch.
pub(crate) fn repair_seed(
    seed: u64,
    batch: u64,
    pivot: NodeId,
    segment: SegmentId,
    backward: bool,
) -> u64 {
    let mut x = seed
        ^ batch.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (pivot.0 as u64 + 1).wrapping_mul(0xD1B5_4A32_D192_ED03)
        ^ (segment.index() as u64 + 1).wrapping_mul(0x2545_F491_4F6C_DD1D)
        ^ ((backward as u64) << 63);
    // splitmix64 finalizer: decorrelates the streams of neighbouring ids.
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One proposed segment repair: group `group` reroutes `seg` at path position `pos`,
/// replacing its path with `start..start + len` of the owning [`CandidateSet`]'s flat
/// path buffer, at a cost of `steps` regenerated walk steps.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Candidate {
    pub seg: SegmentId,
    pub pos: u32,
    pub group: u32,
    pub steps: u64,
    start: u32,
    len: u32,
}

/// One phase-1 worker's output: its candidates plus the flat buffer holding their
/// replacement paths.  Buffers are reused across batches.
#[derive(Debug, Default)]
pub(crate) struct CandidateSet {
    pub candidates: Vec<Candidate>,
    paths: Vec<NodeId>,
    /// Per-worker scratch path for generating one candidate (taken/restored around
    /// generation so workers stay allocation-free in steady state).
    pub scratch: Vec<NodeId>,
}

impl CandidateSet {
    pub fn clear(&mut self) {
        self.candidates.clear();
        self.paths.clear();
    }

    /// Records a candidate whose replacement path is currently in `path`.
    pub fn push(&mut self, seg: SegmentId, pos: usize, group: usize, steps: u64, path: &[NodeId]) {
        let start = self.paths.len() as u32;
        self.paths.extend_from_slice(path);
        self.candidates.push(Candidate {
            seg,
            pos: pos as u32,
            group: group as u32,
            steps,
            start,
            len: path.len() as u32,
        });
    }

    /// The replacement path of one of this set's candidates.
    pub fn path(&self, c: &Candidate) -> &[NodeId] {
        &self.paths[c.start as usize..(c.start + c.len) as usize]
    }
}

/// Runs `worker(shard, set)` for every route shard of `walks`, filling one
/// [`CandidateSet`] per shard — sequentially when `threads <= 1` (or the store has a
/// single shard), otherwise fanned out over `min(threads, shards)` scoped threads.
/// Workers receive disjoint output sets and must only read shared state, so the filled
/// sets are identical for every `threads` value.  `times` receives the wall time each
/// shard's worker took (observability only; see [`BatchProfile`]).
pub(crate) fn fan_out_candidates<W, F>(
    walks: &W,
    threads: usize,
    sets: &mut Vec<CandidateSet>,
    times: &mut Vec<Duration>,
    worker: F,
) where
    W: WalkIndex + Sync,
    F: Fn(usize, &mut CandidateSet) + Sync,
{
    let shards = walks.route_shards();
    sets.resize_with(shards, CandidateSet::default);
    for set in sets.iter_mut() {
        set.clear();
    }
    times.clear();
    times.resize(shards, Duration::ZERO);
    let workers = if shards > 1 { threads.min(shards) } else { 1 };
    if workers <= 1 {
        for (sid, (set, time)) in sets.iter_mut().zip(times.iter_mut()).enumerate() {
            let start = Instant::now();
            worker(sid, set);
            *time = start.elapsed();
        }
        return;
    }
    let chunk = shards.div_ceil(workers);
    let worker = &worker;
    std::thread::scope(|scope| {
        for ((ci, set_chunk), time_chunk) in sets
            .chunks_mut(chunk)
            .enumerate()
            .zip(times.chunks_mut(chunk))
        {
            scope.spawn(move || {
                for ((off, set), time) in set_chunk.iter_mut().enumerate().zip(time_chunk) {
                    let start = Instant::now();
                    worker(ci * chunk + off, set);
                    *time = start.elapsed();
                }
            });
        }
    });
}

/// Wall-time breakdown of the most recent arrival batches, accumulated per engine
/// since construction (or the last reset): the total time spent in `apply_arrivals`,
/// plus the per-shard times of the two parallelizable phases (candidate generation and
/// plan application).
///
/// The point of the per-shard split is measuring scalability independently of the
/// machine the measurement runs on: [`BatchProfile::critical_path`] charges each
/// parallel phase its *slowest shard* instead of the shard sum, which is the wall time
/// a deployment with one core per shard would pay.  Profiles are observability only —
/// they never influence results.
#[derive(Debug, Clone, Default)]
pub struct BatchProfile {
    /// Total wall time spent inside `apply_arrivals` (and `apply_deletions`).
    pub total: Duration,
    /// Per-shard wall time of candidate generation (phase 1).
    pub phase1_shard_times: Vec<Duration>,
    /// Per-shard wall time of plan application (phase 3).
    pub apply_shard_times: Vec<Duration>,
    /// Arena compaction passes triggered by the profiled batches.  Compactions run
    /// inline on the apply path, so they are the latency-tail component the ROADMAP's
    /// "compaction policy tuning" item asks to measure.
    pub compactions: u64,
    /// Wall time spent inside those compaction passes (contained in
    /// [`BatchProfile::total`]; the pause the slowest batch actually felt).
    pub compaction_time: Duration,
    /// Live walk steps the compaction passes copied (4 bytes each).
    pub compaction_steps_moved: u64,
}

impl BatchProfile {
    fn add_shard_times(acc: &mut Vec<Duration>, times: &[Duration]) {
        if acc.len() < times.len() {
            acc.resize(times.len(), Duration::ZERO);
        }
        for (a, t) in acc.iter_mut().zip(times) {
            *a += *t;
        }
    }

    pub(crate) fn record(&mut self, total: Duration, phase1: &[Duration], apply: &[Duration]) {
        self.total += total;
        Self::add_shard_times(&mut self.phase1_shard_times, phase1);
        Self::add_shard_times(&mut self.apply_shard_times, apply);
    }

    /// Charges the arena-compaction delta of one batch (stats captured before and
    /// after the batch) to the profile.
    pub(crate) fn record_compactions(
        &mut self,
        before: &ppr_store::ArenaStats,
        after: &ppr_store::ArenaStats,
    ) {
        self.compactions += after.compactions - before.compactions;
        self.compaction_time +=
            Duration::from_nanos(after.compaction_nanos - before.compaction_nanos);
        self.compaction_steps_moved += after.compaction_steps_moved - before.compaction_steps_moved;
    }

    /// The accumulated wall time with each parallel phase charged its slowest shard:
    /// `sequential residue + max(phase 1) + max(apply)`.  With one shard this equals
    /// [`BatchProfile::total`]; with `S` balanced shards it approaches `total / S`
    /// plus the residue.
    pub fn critical_path(&self) -> Duration {
        let phase1_sum: Duration = self.phase1_shard_times.iter().sum();
        let apply_sum: Duration = self.apply_shard_times.iter().sum();
        let residue = self
            .total
            .saturating_sub(phase1_sum)
            .saturating_sub(apply_sum);
        residue
            + self
                .phase1_shard_times
                .iter()
                .max()
                .copied()
                .unwrap_or_default()
            + self
                .apply_shard_times
                .iter()
                .max()
                .copied()
                .unwrap_or_default()
    }
}

/// Reconciles the candidates of all shards: for every segment claimed by more than one
/// group, the candidate with the smallest reroute position wins (positions are visits
/// to distinct pivots, so no tie is possible).  Returns `(set index, candidate index)`
/// winners sorted by segment id — a deterministic plan order regardless of how phase 1
/// was scheduled.
pub(crate) fn reconcile_candidates(sets: &[CandidateSet]) -> Vec<(usize, usize)> {
    let mut best: HashMap<SegmentId, (usize, usize)> = HashMap::new();
    for (si, set) in sets.iter().enumerate() {
        for (ci, cand) in set.candidates.iter().enumerate() {
            match best.entry(cand.seg) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert((si, ci));
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let (bsi, bci) = *e.get();
                    let incumbent = sets[bsi].candidates[bci].pos;
                    debug_assert_ne!(
                        incumbent, cand.pos,
                        "two groups claimed the same reroute position"
                    );
                    if cand.pos < incumbent {
                        e.insert((si, ci));
                    }
                }
            }
        }
    }
    let mut winners: Vec<(usize, usize)> = best.into_values().collect();
    winners.sort_by_key(|&(si, ci)| sets[si].candidates[ci].seg);
    winners
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_store::WalkStore;

    #[test]
    fn groups_preserve_first_arrival_order_and_pre_batch_degrees() {
        let mut store = SocialStore::new(4, 1);
        store.add_edge(Edge::new(2, 0)); // node 2 has pre-batch out-degree 1
        let batch = [
            Edge::new(2, 1),
            Edge::new(0, 3),
            Edge::new(2, 3),
            Edge::new(0, 1),
        ];
        let groups = group_arrivals(
            &store,
            &batch,
            |e| (e.source, e.target),
            |s, n| s.out_degree(n),
        );
        assert_eq!(
            groups,
            vec![
                (NodeId(2), 1, vec![NodeId(1), NodeId(3)]),
                (NodeId(0), 0, vec![NodeId(3), NodeId(1)]),
            ]
        );
    }

    #[test]
    fn backward_key_groups_by_target_with_in_degrees() {
        let store = SocialStore::new(3, 1);
        let batch = [Edge::new(0, 2), Edge::new(1, 2)];
        let groups = group_arrivals(
            &store,
            &batch,
            |e| (e.target, e.source),
            |s, n| s.in_degree(n),
        );
        assert_eq!(groups, vec![(NodeId(2), 0, vec![NodeId(0), NodeId(1)])]);
    }

    #[test]
    fn repair_seeds_are_distinct_across_every_axis() {
        let base = repair_seed(7, 0, NodeId(0), SegmentId(0), false);
        assert_ne!(base, repair_seed(8, 0, NodeId(0), SegmentId(0), false));
        assert_ne!(base, repair_seed(7, 1, NodeId(0), SegmentId(0), false));
        assert_ne!(base, repair_seed(7, 0, NodeId(1), SegmentId(0), false));
        assert_ne!(base, repair_seed(7, 0, NodeId(0), SegmentId(1), false));
        assert_ne!(base, repair_seed(7, 0, NodeId(0), SegmentId(0), true));
        // Deterministic: the same coordinates always give the same stream.
        assert_eq!(base, repair_seed(7, 0, NodeId(0), SegmentId(0), false));
    }

    #[test]
    fn candidate_sets_round_trip_paths() {
        let mut set = CandidateSet::default();
        set.push(SegmentId(4), 2, 0, 5, &[NodeId(1), NodeId(2)]);
        set.push(SegmentId(9), 0, 1, 0, &[NodeId(3)]);
        assert_eq!(set.path(&set.candidates[0]), &[NodeId(1), NodeId(2)]);
        assert_eq!(set.path(&set.candidates[1]), &[NodeId(3)]);
        set.clear();
        assert!(set.candidates.is_empty());
    }

    #[test]
    fn reconcile_picks_minimum_position_and_sorts_by_segment() {
        let mut a = CandidateSet::default();
        let mut b = CandidateSet::default();
        a.push(SegmentId(5), 4, 0, 1, &[NodeId(0)]);
        b.push(SegmentId(5), 2, 1, 1, &[NodeId(1)]); // earlier position wins
        b.push(SegmentId(1), 7, 2, 1, &[NodeId(2)]);
        let winners = reconcile_candidates(&[a, b]);
        assert_eq!(winners, vec![(1, 1), (1, 0)]); // SegmentId(1) first, then (5)
    }

    #[test]
    fn fan_out_fills_one_set_per_shard_for_any_thread_count() {
        let store = WalkStore::new(4, 1); // single route shard
        let mut sets = Vec::new();
        let mut times = Vec::new();
        fan_out_candidates(&store, 8, &mut sets, &mut times, |sid, set| {
            set.push(SegmentId(sid as u32), sid, 0, 0, &[]);
        });
        assert_eq!(sets.len(), 1);
        assert_eq!(times.len(), 1);
        assert_eq!(sets[0].candidates.len(), 1);

        let sharded = ppr_store::ShardedWalkStore::new(12, 1, 3);
        for threads in [1usize, 2, 8] {
            fan_out_candidates(&sharded, threads, &mut sets, &mut times, |sid, set| {
                set.push(SegmentId(sid as u32), sid, 0, 0, &[]);
            });
            assert_eq!(sets.len(), 3);
            assert_eq!(times.len(), 3);
            for (sid, set) in sets.iter().enumerate() {
                assert_eq!(set.candidates.len(), 1);
                assert_eq!(set.candidates[0].seg, SegmentId(sid as u32));
            }
        }
    }

    #[test]
    fn deletion_groups_preserve_first_occurrence_order_and_multiplicity() {
        let batch = [
            Edge::new(5, 1),
            Edge::new(0, 3),
            Edge::new(5, 1), // parallel deletion
            Edge::new(5, 2),
        ];
        let groups = group_deletions(&batch);
        assert_eq!(
            groups,
            vec![
                (NodeId(5), vec![NodeId(1), NodeId(1), NodeId(2)]),
                (NodeId(0), vec![NodeId(3)]),
            ]
        );
        assert!(group_deletions(&[]).is_empty());
    }

    #[test]
    fn compaction_deltas_accumulate_into_the_profile() {
        let before = ppr_store::ArenaStats {
            compactions: 1,
            compaction_nanos: 500,
            compaction_steps_moved: 10,
            ..Default::default()
        };
        let after = ppr_store::ArenaStats {
            compactions: 3,
            compaction_nanos: 2_500,
            compaction_steps_moved: 250,
            ..Default::default()
        };
        let mut profile = BatchProfile::default();
        profile.record_compactions(&before, &after);
        profile.record_compactions(&after, &after); // no-op delta
        assert_eq!(profile.compactions, 2);
        assert_eq!(profile.compaction_time, Duration::from_nanos(2_000));
        assert_eq!(profile.compaction_steps_moved, 240);
    }

    #[test]
    fn batch_profile_critical_path_charges_the_slowest_shard() {
        let mut profile = BatchProfile::default();
        profile.record(
            Duration::from_millis(10),
            &[Duration::from_millis(4), Duration::from_millis(2)],
            &[Duration::from_millis(1), Duration::from_millis(2)],
        );
        // residue = 10 - 6 - 3 = 1ms; critical path = 1 + 4 + 2 = 7ms.
        assert_eq!(profile.critical_path(), Duration::from_millis(7));
        // Accumulation is element-wise, so a second identical batch doubles it.
        profile.record(
            Duration::from_millis(10),
            &[Duration::from_millis(4), Duration::from_millis(2)],
            &[Duration::from_millis(1), Duration::from_millis(2)],
        );
        assert_eq!(profile.critical_path(), Duration::from_millis(14));
        // An empty profile has a zero critical path.
        assert_eq!(BatchProfile::default().critical_path(), Duration::ZERO);
    }
}
