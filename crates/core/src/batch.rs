//! Shared batching machinery for the engines' `apply_arrivals` paths.

use ppr_graph::{Edge, NodeId};
use ppr_store::SocialStore;
use std::collections::HashMap;

/// One pivot node's share of a batch: the pivot, its relevant degree from *before* the
/// batch, and the forced reroute targets its new edges contribute, in arrival order.
pub(crate) type ArrivalGroup = (NodeId, usize, Vec<NodeId>);

/// Groups a batch of arrivals by pivot node in first-arrival order, capturing each
/// pivot's pre-batch degree.
///
/// Must be called **before** any edge of the batch is inserted into `store`: the
/// captured degree is the pivot's degree with no batch edge applied, which is what the
/// `k/(d₀+k)` reservoir composition of the per-edge coins needs.  `key` maps an edge to
/// `(pivot, forced_target)` — `(source, target)` for PageRank and SALSA's forward
/// direction, `(target, source)` for SALSA's backward direction — and `degree` reads
/// the pivot's relevant degree (out-degree for forward steps, in-degree for backward).
pub(crate) fn group_arrivals(
    store: &SocialStore,
    edges: &[Edge],
    key: impl Fn(Edge) -> (NodeId, NodeId),
    degree: impl Fn(&SocialStore, NodeId) -> usize,
) -> Vec<ArrivalGroup> {
    let mut groups: Vec<ArrivalGroup> = Vec::new();
    let mut index: HashMap<NodeId, usize> = HashMap::new();
    for &edge in edges {
        let (pivot, target) = key(edge);
        let slot = *index.entry(pivot).or_insert_with(|| {
            groups.push((pivot, degree(store, pivot), Vec::new()));
            groups.len() - 1
        });
        groups[slot].2.push(target);
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_preserve_first_arrival_order_and_pre_batch_degrees() {
        let mut store = SocialStore::new(4, 1);
        store.add_edge(Edge::new(2, 0)); // node 2 has pre-batch out-degree 1
        let batch = [
            Edge::new(2, 1),
            Edge::new(0, 3),
            Edge::new(2, 3),
            Edge::new(0, 1),
        ];
        let groups = group_arrivals(
            &store,
            &batch,
            |e| (e.source, e.target),
            |s, n| s.out_degree(n),
        );
        assert_eq!(
            groups,
            vec![
                (NodeId(2), 1, vec![NodeId(1), NodeId(3)]),
                (NodeId(0), 0, vec![NodeId(3), NodeId(1)]),
            ]
        );
    }

    #[test]
    fn backward_key_groups_by_target_with_in_degrees() {
        let store = SocialStore::new(3, 1);
        let batch = [Edge::new(0, 2), Edge::new(1, 2)];
        let groups = group_arrivals(
            &store,
            &batch,
            |e| (e.target, e.source),
            |s, n| s.in_degree(n),
        );
        assert_eq!(groups, vec![(NodeId(2), 0, vec![NodeId(0), NodeId(1)])]);
    }
}
