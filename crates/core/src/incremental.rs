//! Incremental maintenance of Monte Carlo PageRank under edge arrivals and deletions
//! (Section 2.2: Proposition 2, Lemma 3, Theorem 4, Proposition 5).
//!
//! [`IncrementalPageRank`] owns the Social Store (the evolving graph) and the PageRank
//! Store (the `R` walk segments per node).  When an edge `(u, v)` arrives:
//!
//! * only segments that visit `u` can be affected — the store's visit postings find them
//!   without scanning anything else;
//! * each visit of such a segment to `u` would have taken the new edge with probability
//!   `1/outdeg(u)`, so the segment is rerouted at its first visit for which an
//!   independent coin with that bias comes up heads;
//! * a rerouted segment keeps its (still valid) prefix and regenerates the suffix —
//!   or, under [`RerouteStrategy::FromSource`], is regenerated entirely — at an expected
//!   cost of `O(1/ε)` walk steps.
//!
//! Deletions are symmetric: only segments that actually traverse the vanished edge are
//! rerouted from the point of traversal.
//!
//! The engine is generic over the PageRank Store layout: any
//! [`ppr_store::WalkIndexMut`] works, with the flat [`WalkStore`] as the default and
//! the sharded [`ShardedWalkStore`] available through
//! [`IncrementalPageRank::from_graph_sharded`].
//!
//! [`IncrementalPageRank::apply_arrivals`] processes a whole batch of arrivals at once,
//! grouping the coin flips and index maintenance per source node: for a source gaining
//! `k` edges on top of `d₀` existing ones, every visit reroutes with probability
//! `k/(d₀+k)` to a uniformly chosen new edge — exactly the distribution the `k`
//! single-edge updates compose to (each per-edge coin `1/(d₀+i)` composes by the
//! reservoir argument to `1/(d₀+k)` per new edge).  Repairs run as a deterministic
//! three-phase pipeline (candidates → reconcile → apply, see [`crate::batch`]): every
//! `(batch, source, segment)` repair draws from its own split RNG stream, so the result
//! is **bit-identical for every shard count and thread count**, including the
//! single-shard sequential engine — `tests/differential_shard.rs` holds the system to
//! exactly that contract.  With a sharded store, phase 1 fans segment repairs out
//! across shards with `std::thread::scope`, and phase 3 applies the reconciled plan
//! with one worker per shard.
//!
//! The engine keeps a [`WorkCounter`] so experiments can compare the measured update
//! work against the `nR ln m / ε²` bound of Theorem 4 and the `nR/(m ε²)` deletion bound
//! of Proposition 5.  The closed forms this engine instantiates are
//! [`crate::bounds::per_arrival_update_work`] and [`crate::bounds::total_update_work`]
//! (Theorem 4) for arrivals, and [`crate::bounds::deletion_update_work`]
//! (Proposition 5) for deletions.

use crate::batch::{self, BatchProfile, CandidateSet};
use crate::config::{MonteCarloConfig, RerouteStrategy};
use crate::estimator::PageRankEstimates;
use crate::personalized::PersonalizedWalker;
use crate::walker;
use ppr_graph::{DynamicGraph, Edge, GraphView, NodeId};
use ppr_store::{
    SegmentId, SegmentRewrites, ShardedWalkStore, SocialStore, WalkIndex, WalkIndexMut, WalkStore,
    WorkCounter,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Work performed while processing a single edge arrival or deletion (or a whole
/// batch, when returned by [`IncrementalPageRank::apply_arrivals`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UpdateStats {
    /// Number of walk segments rerouted or rebuilt.
    pub segments_updated: u64,
    /// Number of random-walk steps executed to repair them.
    pub walk_steps: u64,
    /// Whether any segment was touched at all (if `false`, the arrival was absorbed by
    /// the `1 − (1 − 1/d)^{W}` filter of Section 2.2 without touching the PageRank
    /// Store).
    pub touched_walk_store: bool,
}

impl UpdateStats {
    pub(crate) fn record_segment(&mut self, steps: u64) {
        self.segments_updated += 1;
        self.walk_steps += steps;
        self.touched_walk_store = true;
    }
}

/// Monte Carlo PageRank with incrementally maintained walk segments, generic over the
/// PageRank Store layout (`W`).
///
/// Fields are `pub(crate)` so the durability layer ([`crate::durable`]) can snapshot
/// and reassemble engines without widening the public API.
#[derive(Debug)]
pub struct IncrementalPageRank<W: WalkIndexMut = WalkStore> {
    pub(crate) store: SocialStore,
    pub(crate) walks: W,
    pub(crate) config: MonteCarloConfig,
    pub(crate) rng: SmallRng,
    pub(crate) work: WorkCounter,
    pub(crate) initialization_steps: u64,
    /// Worker threads used for the batched reroute pipeline (always 1 for a
    /// single-shard store; results never depend on this).
    pub(crate) threads: usize,
    /// Index of the next batch (arrivals or deletions), mixed into every
    /// repair-stream seed.
    pub(crate) batch_index: u64,
    /// Reusable path buffer for segment repairs.
    pub(crate) scratch: Vec<NodeId>,
    /// Reusable phase-1 outputs, one per route shard.
    pub(crate) candidate_sets: Vec<CandidateSet>,
    /// Reusable per-shard phase-1 timing buffer.
    pub(crate) phase1_times: Vec<std::time::Duration>,
    /// Reusable reconciled rewrite plan.
    pub(crate) rewrites: SegmentRewrites,
    /// Accumulated wall-time breakdown of the update batches (observability only).
    pub(crate) profile: BatchProfile,
    /// Attached write-ahead log; `None` for purely in-memory engines.
    pub(crate) durability: Option<crate::durable::DurableLog>,
    /// Sequence number of the next WAL record (count of batches ever logged).
    pub(crate) wal_seq: u64,
}

impl IncrementalPageRank {
    /// Builds the engine over a graph or an existing Social Store, generating `R` walk
    /// segments per node in a single-shard [`WalkStore`].  Pass the graph by value to
    /// avoid copying it; `&DynamicGraph` is also accepted (and cloned) for callers that
    /// keep theirs.
    pub fn from_graph(graph: impl Into<SocialStore>, config: MonteCarloConfig) -> Self {
        Self::from_social_store(graph.into(), config)
    }

    /// Builds the engine over an existing Social Store, generating `R` walk segments per
    /// node.
    pub fn from_social_store(store: SocialStore, config: MonteCarloConfig) -> Self {
        let walks = WalkStore::new(store.node_count(), config.r);
        Self::with_store(store, walks, config, 1)
    }

    /// Builds the engine over an empty graph with `node_count` isolated nodes.
    pub fn new_empty(node_count: usize, config: MonteCarloConfig) -> Self {
        Self::from_graph(DynamicGraph::with_nodes(node_count), config)
    }
}

impl IncrementalPageRank<ShardedWalkStore> {
    /// Builds the engine over a [`ShardedWalkStore`] split `shards` ways, repairing
    /// arrival batches with up to `threads` worker threads.  The Social Store is
    /// re-sharded to the same shard count, so both stores place every node on the same
    /// shard (the shared [`ppr_store::routing::shard_of`] rule).
    ///
    /// Scores, segments, and postings are **bit-identical** to the single-shard
    /// engine's for every `(shards, threads)` combination; the knobs only change how
    /// the repair work is scheduled.
    pub fn from_graph_sharded(
        graph: impl Into<SocialStore>,
        config: MonteCarloConfig,
        shards: usize,
        threads: usize,
    ) -> Self {
        assert!(shards >= 1, "need at least one shard");
        assert!(threads >= 1, "need at least one worker thread");
        let store = graph.into();
        let store = if store.shard_count() == shards {
            store
        } else {
            SocialStore::from_graph(store.into_graph(), shards)
        };
        let walks = ShardedWalkStore::new(store.node_count(), config.r, shards);
        Self::with_store(store, walks, config, threads)
    }
}

impl<W: WalkIndexMut + Sync> IncrementalPageRank<W> {
    pub(crate) fn with_store(
        store: SocialStore,
        walks: W,
        config: MonteCarloConfig,
        threads: usize,
    ) -> Self {
        let node_count = store.node_count();
        let mut walks = walks;
        walks.set_compaction_threshold(config.compaction_threshold);
        let rng = SmallRng::seed_from_u64(config.seed);
        let mut engine = IncrementalPageRank {
            store,
            walks,
            config,
            rng,
            work: WorkCounter::new(),
            initialization_steps: 0,
            threads,
            batch_index: 0,
            scratch: Vec::new(),
            candidate_sets: Vec::new(),
            phase1_times: Vec::new(),
            rewrites: SegmentRewrites::new(),
            profile: BatchProfile::default(),
            durability: None,
            wal_seq: 0,
        };
        for node in 0..node_count {
            engine.generate_segments_for(NodeId::from_index(node));
        }
        engine
    }

    /// Appends one batch to the attached write-ahead log (no-op for in-memory
    /// engines).  Called **before** the batch mutates any state, so an acknowledged
    /// batch is always recoverable.
    pub(crate) fn log_wal(&mut self, op: ppr_persist::WalOp, edges: &[Edge]) {
        if let Some(log) = self.durability.as_mut() {
            log.append(self.wal_seq, op, edges);
            self.wal_seq += 1;
        }
    }

    /// Accumulated wall-time breakdown of every arrival batch since construction (or
    /// the last [`Self::reset_batch_profile`]): total time plus per-shard times of the
    /// two parallelizable phases.  [`BatchProfile::critical_path`] turns it into the
    /// wall time a one-core-per-shard deployment would pay.
    pub fn batch_profile(&self) -> &BatchProfile {
        &self.profile
    }

    /// Resets the accumulated batch profile.
    pub fn reset_batch_profile(&mut self) {
        self.profile = BatchProfile::default();
    }

    /// The engine's configuration.
    pub fn config(&self) -> &MonteCarloConfig {
        &self.config
    }

    /// The Social Store (graph plus fetch accounting).
    pub fn social_store(&self) -> &SocialStore {
        &self.store
    }

    /// The underlying graph.
    pub fn graph(&self) -> &DynamicGraph {
        self.store.graph()
    }

    /// The PageRank Store holding the walk segments.
    pub fn walk_store(&self) -> &W {
        &self.walks
    }

    /// The reconciled rewrite plan of the most recent mutation (arrival batch,
    /// deletion batch, or single-edge wrapper): exactly the segment rewrites the
    /// store absorbed, in plan order.  The serving layer replays this plan into its
    /// copy-on-write generation mirror after each commit; empty when the mutation
    /// touched no segment.
    pub fn last_rewrites(&self) -> &SegmentRewrites {
        &self.rewrites
    }

    /// Number of worker threads the batched reroute pipeline may use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Sets the worker-thread budget.  Results are bit-identical for every value; only
    /// scheduling changes.
    pub fn set_threads(&mut self, threads: usize) {
        assert!(threads >= 1, "need at least one worker thread");
        self.threads = threads;
    }

    /// Number of nodes currently known to the engine.
    pub fn node_count(&self) -> usize {
        self.store.node_count()
    }

    /// Cumulative update work performed since construction (excluding initialization).
    pub fn work(&self) -> &WorkCounter {
        &self.work
    }

    /// Walk steps spent generating the initial segments (the `nR/ε` initialization cost
    /// the paper compares the update cost against).
    pub fn initialization_steps(&self) -> u64 {
        self.initialization_steps
    }

    /// Resets the cumulative work counter (initialization cost is kept).
    pub fn reset_work(&mut self) {
        self.work = WorkCounter::new();
    }

    /// Adds an isolated node and generates its walk segments; returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::from_index(self.node_count());
        self.ensure_nodes(id.index() + 1);
        id
    }

    /// Current PageRank estimates.
    pub fn estimates(&self) -> PageRankEstimates {
        PageRankEstimates::from_store(&self.walks, self.config.epsilon)
    }

    /// Self-normalised PageRank scores for every node (sum to 1).
    pub fn scores(&self) -> Vec<f64> {
        self.estimates().normalized().to_vec()
    }

    /// The paper's raw estimator `X_v / (nR/ε)` for a single node.
    pub fn score(&self, node: NodeId) -> f64 {
        self.estimates().score(node)
    }

    /// Runs the personalized walk of Algorithm 1 from `seed` for `walk_length` visits
    /// and returns the top-`k` nodes by visit count, excluding `seed` itself and its
    /// direct friends (as the paper's recommender does).
    ///
    /// The walk draws from the `(query_seed, query_id)` split stream of
    /// [`crate::query`] with the engine seed as the query seed and the seed node as
    /// the query id, so the answer is a pure function of the store state — identical
    /// on any thread, at any interleaving with other queries.
    pub fn personalized_top_k(
        &self,
        seed: NodeId,
        k: usize,
        walk_length: usize,
    ) -> Vec<(NodeId, f64)> {
        let walker = PersonalizedWalker::new(&self.store, &self.walks, self.config.epsilon, 0);
        let result = walker.walk_query(seed, walk_length, self.config.seed, seed.0 as u64);
        let mut exclude: std::collections::HashSet<NodeId> = std::collections::HashSet::new();
        exclude.insert(seed);
        exclude.extend(self.store.graph().out_neighbors(seed).iter().copied());
        result.top_k(k, &exclude)
    }

    /// Processes the arrival of `edge`, repairing every affected walk segment.
    ///
    /// A single arrival is exactly a batch of one: this delegates to
    /// [`Self::apply_arrivals`], so the two paths are on identical RNG streams.
    pub fn add_edge(&mut self, edge: Edge) -> UpdateStats {
        self.apply_arrivals(std::slice::from_ref(&edge))
    }

    /// Processes a whole batch of edge arrivals, grouping the coin flips and the visit
    /// index maintenance per source node.
    ///
    /// All edges are inserted into the Social Store first; then, for every source `u`
    /// that gained `k` edges on top of `d₀` existing ones, the segments visiting `u` are
    /// enumerated **once** and each eligible visit reroutes with probability `k/(d₀+k)`
    /// to a uniformly chosen new edge — the exact composition of the `k` per-edge
    /// `1/(d₀+i)` coins.  Suffixes are regenerated on the post-batch graph.
    ///
    /// Repairs run as the deterministic candidate → reconcile → apply pipeline of
    /// [`crate::batch`]: each `(source, segment)` repair draws from its own split RNG
    /// stream, candidate generation fans out over the store's shards (up to
    /// [`Self::threads`] workers), and when several sources claim the same segment the
    /// smallest reroute position wins — under the default prefix-preserving reroute,
    /// the same fixed point the sequential limit-tracking loop reaches (see
    /// [`crate::batch`] for the [`RerouteStrategy::FromSource`] case) — so results
    /// are bit-identical at any shard and thread count.
    ///
    /// Returns the aggregate statistics over the whole batch.
    pub fn apply_arrivals(&mut self, edges: &[Edge]) -> UpdateStats {
        self.rewrites.clear();
        let mut stats = UpdateStats::default();
        let Some(needed) = edges
            .iter()
            .map(|e| e.source.index().max(e.target.index()) + 1)
            .max()
        else {
            return stats;
        };
        self.log_wal(ppr_persist::WalOp::Arrivals, edges);
        let batch_started = std::time::Instant::now();
        let arena_before = self.walks.arena_stats();
        self.ensure_nodes(needed);

        // Group targets per source in first-arrival order, capturing each source's
        // out-degree from before the batch, then insert every edge.
        let groups = batch::group_arrivals(
            &self.store,
            edges,
            |e| (e.source, e.target),
            |s, n| s.out_degree(n),
        );
        for &edge in edges {
            self.store.add_edge(edge);
        }
        let batch_index = self.batch_index;
        self.batch_index += 1;
        let threads = self.threads;

        // Phase 1: candidate generation, read-only against the pre-batch walk store
        // and the post-batch graph, partitioned by the shard owning each segment.
        let mut sets = std::mem::take(&mut self.candidate_sets);
        let mut phase1_times = std::mem::take(&mut self.phase1_times);
        {
            let graph = self.store.graph();
            let walks = &self.walks;
            let config = &self.config;
            let groups = &groups;
            let shards = walks.route_shards();
            let r = walks.r();
            batch::fan_out_candidates(walks, threads, &mut sets, &mut phase1_times, |sid, set| {
                let mut scratch = std::mem::take(&mut set.scratch);
                for (gi, (u, prior_degree, targets)) in groups.iter().enumerate() {
                    for (id, _) in walks.segments_visiting(*u) {
                        if shards > 1 && (id.index() / r) % shards != sid {
                            continue;
                        }
                        if let Some((pos, steps)) = pagerank_candidate(
                            graph,
                            walks,
                            config,
                            batch_index,
                            *u,
                            *prior_degree,
                            targets,
                            id,
                            &mut scratch,
                        ) {
                            set.push(id, pos, gi, steps, &scratch);
                        }
                    }
                }
                set.scratch = scratch;
            });
        }

        // Phase 2: reconcile conflicting claims (smallest reroute position wins) into
        // a rewrite plan ordered by segment id.
        let winners = batch::reconcile_candidates(&sets);
        let mut rewrites = std::mem::take(&mut self.rewrites);
        rewrites.clear();
        let mut touched = vec![false; groups.len()];
        for &(si, ci) in &winners {
            let cand = &sets[si].candidates[ci];
            rewrites.push(cand.seg, sets[si].path(cand));
            stats.record_segment(cand.steps);
            touched[cand.group as usize] = true;
        }

        // Phase 3: the store applies the plan (parallel per shard when it can).
        self.walks.apply_rewrites(&rewrites, threads);
        self.profile.record(
            batch_started.elapsed(),
            &phase1_times,
            self.walks.last_apply_shard_times(),
        );
        self.profile
            .record_compactions(&arena_before, &self.walks.arena_stats());
        self.candidate_sets = sets;
        self.phase1_times = phase1_times;
        self.rewrites = rewrites;

        for (gi, (_, _, targets)) in groups.iter().enumerate() {
            if !touched[gi] {
                self.work.arrivals_filtered += targets.len() as u64;
            }
        }
        self.work.edges_processed += edges.len() as u64;
        self.work.segments_updated += stats.segments_updated;
        self.work.walk_steps += stats.walk_steps;
        stats
    }

    /// Processes the deletion of `edge`, repairing every segment that traversed it.
    /// Returns `None` if the edge was not present.
    ///
    /// A single deletion is exactly a batch of one: this delegates to
    /// [`Self::apply_deletions`], so the two paths are on identical RNG streams.
    pub fn remove_edge(&mut self, edge: Edge) -> Option<UpdateStats> {
        if !self.store.graph().has_edge(edge) {
            return None;
        }
        Some(self.apply_deletions(std::slice::from_ref(&edge)))
    }

    /// Processes a whole batch of edge deletions, grouping the repair work per source
    /// node exactly as [`Self::apply_arrivals`] groups arrivals.
    ///
    /// All present edges are removed from the Social Store first; then, for every
    /// source `u` that lost edges, the segments visiting `u` are enumerated **once**
    /// and each segment's *earliest* traversal of a fully deleted edge (one with no
    /// surviving parallel copy) is repaired: under the default prefix-preserving
    /// strategy the still-valid prefix is kept and the suffix regenerates on the
    /// post-deletion graph.  Absent edges are skipped.
    ///
    /// Repairs run through the same deterministic candidate → reconcile → apply
    /// pipeline as arrivals, with one split RNG stream per `(batch, source, segment)`
    /// repair; when several sources claim one segment, the smallest reroute position
    /// wins — which is the segment's globally earliest invalidated traversal, so the
    /// kept prefix never traverses a deleted edge.  Results are **bit-identical at
    /// any shard and thread count**, which is what makes deletion batches WAL
    /// records just like arrival batches (one record kind each).
    pub fn apply_deletions(&mut self, edges: &[Edge]) -> UpdateStats {
        self.rewrites.clear();
        let mut stats = UpdateStats::default();
        if edges.is_empty() {
            return stats;
        }
        self.log_wal(ppr_persist::WalOp::Deletions, edges);
        let batch_started = std::time::Instant::now();
        let arena_before = self.walks.arena_stats();

        // Remove every present edge from the Social Store up front, so candidate
        // generation sees the post-batch graph (as it does for arrivals).
        let mut removed: Vec<Edge> = Vec::with_capacity(edges.len());
        for &edge in edges {
            if self.store.remove_edge(edge) {
                removed.push(edge);
            }
        }
        self.work.edges_processed += removed.len() as u64;
        if removed.is_empty() {
            return stats;
        }

        // Group per source; a group reroutes only over targets with no surviving
        // parallel copy — while a copy exists, every traversal remains a legal step
        // whose distribution the arrival-time reroutes already account for.
        let groups: Vec<(NodeId, Vec<NodeId>)> = batch::group_deletions(&removed)
            .into_iter()
            .map(|(u, targets)| {
                let mut gone: Vec<NodeId> = targets
                    .into_iter()
                    .filter(|&t| {
                        !self.store.graph().has_edge(Edge {
                            source: u,
                            target: t,
                        })
                    })
                    .collect();
                gone.sort_unstable();
                gone.dedup();
                (u, gone)
            })
            .collect();
        let batch_index = self.batch_index;
        self.batch_index += 1;
        let threads = self.threads;

        // Phase 1: per group, find each visiting segment's earliest invalidated
        // traversal and draw its replacement suffix from the repair's own stream.
        let mut sets = std::mem::take(&mut self.candidate_sets);
        let mut phase1_times = std::mem::take(&mut self.phase1_times);
        {
            let graph = self.store.graph();
            let walks = &self.walks;
            let config = &self.config;
            let groups = &groups;
            let shards = walks.route_shards();
            let r = walks.r();
            batch::fan_out_candidates(walks, threads, &mut sets, &mut phase1_times, |sid, set| {
                let mut scratch = std::mem::take(&mut set.scratch);
                for (gi, (u, gone)) in groups.iter().enumerate() {
                    if gone.is_empty() {
                        continue;
                    }
                    for (id, _) in walks.segments_visiting(*u) {
                        if shards > 1 && (id.index() / r) % shards != sid {
                            continue;
                        }
                        if let Some((pos, steps)) = deletion_candidate(
                            graph,
                            walks,
                            config,
                            batch_index,
                            *u,
                            gone,
                            id,
                            &mut scratch,
                        ) {
                            set.push(id, pos, gi, steps, &scratch);
                        }
                    }
                }
                set.scratch = scratch;
            });
        }

        // Phase 2: reconcile.  The winner's position is the minimum over per-group
        // first hits, i.e. the segment's globally earliest invalidated traversal, so
        // its kept prefix is valid on the post-deletion graph.
        let winners = batch::reconcile_candidates(&sets);
        let mut rewrites = std::mem::take(&mut self.rewrites);
        rewrites.clear();
        let mut touched = vec![false; groups.len()];
        for &(si, ci) in &winners {
            let cand = &sets[si].candidates[ci];
            rewrites.push(cand.seg, sets[si].path(cand));
            stats.record_segment(cand.steps);
            touched[cand.group as usize] = true;
        }

        // Phase 3: the store applies the plan.
        self.walks.apply_rewrites(&rewrites, threads);
        self.profile.record(
            batch_started.elapsed(),
            &phase1_times,
            self.walks.last_apply_shard_times(),
        );
        self.profile
            .record_compactions(&arena_before, &self.walks.arena_stats());
        self.candidate_sets = sets;
        self.phase1_times = phase1_times;
        self.rewrites = rewrites;

        for (gi, (u, _)) in groups.iter().enumerate() {
            if !touched[gi] {
                self.work.arrivals_filtered +=
                    removed.iter().filter(|e| e.source == *u).count() as u64;
            }
        }
        self.work.segments_updated += stats.segments_updated;
        self.work.walk_steps += stats.walk_steps;
        stats
    }

    /// Verifies that every stored segment is a valid walk in the *current* graph: it
    /// starts at its source node and every consecutive pair of visits is an existing
    /// edge.  This is the invariant incremental maintenance must preserve.
    pub fn validate_segments(&self) -> Result<(), String> {
        let graph = self.store.graph();
        for node in graph.nodes() {
            for id in self.walks.segment_ids_of(node) {
                let path = self.walks.segment_path(id);
                if path.is_empty() {
                    return Err(format!("segment {id:?} of node {node} was never generated"));
                }
                if path.first() != Some(&node) {
                    return Err(format!(
                        "segment {id:?} starts at {:?}, expected {node}",
                        path.first()
                    ));
                }
                for pair in path.windows(2) {
                    let edge = Edge {
                        source: pair[0],
                        target: pair[1],
                    };
                    if !graph.has_edge(edge) {
                        return Err(format!("segment {id:?} traverses missing edge {edge}"));
                    }
                }
            }
        }
        self.walks.check_consistency()
    }

    // ----- internal helpers -------------------------------------------------------

    fn ensure_nodes(&mut self, n: usize) {
        let before = self.store.node_count();
        if n <= before {
            return;
        }
        self.store.ensure_nodes(n);
        self.walks.ensure_nodes(n);
        for node in before..n {
            self.generate_segments_for(NodeId::from_index(node));
        }
    }

    fn generate_segments_for(&mut self, node: NodeId) {
        for slot in 0..self.config.r {
            let id = SegmentId::new(node, slot, self.config.r);
            let steps = walker::pagerank_segment_into(
                self.store.graph(),
                node,
                self.config.epsilon,
                self.config.max_segment_length,
                &mut self.rng,
                &mut self.scratch,
            );
            self.initialization_steps += steps;
            self.walks.set_segment(id, &self.scratch);
        }
    }
}

/// Decides whether (and where) segment `id` must be repaired for the deletion group
/// of source `u`, whose fully deleted targets are `gone` (sorted).  Unlike arrivals,
/// detection is deterministic: the segment repairs iff it traverses `u -> t` for some
/// `t ∈ gone`, at its earliest such position.  On a hit, generates the replacement
/// path into `scratch` against the post-deletion graph, drawing from the repair's own
/// split RNG stream, and returns `(reroute position, walk steps)`.
///
/// Reads only the segment's pre-batch path; when several groups claim one segment,
/// reconciliation keeps the smallest position — the globally earliest invalidated
/// traversal — whose kept prefix therefore contains no deleted edge.
#[allow(clippy::too_many_arguments)]
fn deletion_candidate<W: WalkIndex>(
    graph: &DynamicGraph,
    walks: &W,
    config: &MonteCarloConfig,
    batch_index: u64,
    u: NodeId,
    gone: &[NodeId],
    id: SegmentId,
    scratch: &mut Vec<NodeId>,
) -> Option<(usize, u64)> {
    let path = walks.segment_path(id);
    let pos = path
        .windows(2)
        .position(|w| w[0] == u && gone.binary_search(&w[1]).is_ok())?;
    let mut rng =
        SmallRng::seed_from_u64(batch::repair_seed(config.seed, batch_index, u, id, false));
    let steps = match config.reroute {
        RerouteStrategy::FromUpdatePoint => {
            scratch.clear();
            scratch.extend_from_slice(&path[..=pos]);
            walker::extend_pagerank_walk(
                graph,
                scratch,
                config.epsilon,
                config.max_segment_length,
                &mut rng,
            )
        }
        RerouteStrategy::FromSource => walker::pagerank_segment_into(
            graph,
            walks.source_of(id),
            config.epsilon,
            config.max_segment_length,
            &mut rng,
            scratch,
        ),
    };
    Some((pos, steps))
}

/// Decides whether (and where) segment `id` reroutes for a group of `targets.len()`
/// new edges out of `u` (on top of `prior_degree` pre-batch ones), drawing from the
/// repair's own split RNG stream.  On a hit, generates the full replacement path into
/// `scratch` against the post-batch graph and returns `(reroute position, walk steps)`.
///
/// Reads only the segment's pre-batch path.  Under
/// [`RerouteStrategy::FromUpdatePoint`] this is sound because a reroute by another
/// group only changes the path *after* its own reroute position, and reconciliation
/// keeps the smallest position — coins flipped on stale suffix positions can only
/// produce candidates that lose, never a wrong winner.  Under
/// [`RerouteStrategy::FromSource`] the winning group differs from the old sequential
/// first-group-wins rule, but any winner regenerates the whole segment as a fresh
/// from-source walk on the post-batch graph, and the segment regenerates iff any
/// group's coin hits under both rules — so the choice of winner only selects which RNG
/// stream draws the (identically distributed) replacement.
///
/// A candidate that later loses reconciliation wastes its generated walk (rare:
/// several pivots of one batch must hit the same segment); only applied repairs are
/// charged to [`UpdateStats`]/[`WorkCounter`], so `walk_steps` counts the work the
/// store actually absorbed.
#[allow(clippy::too_many_arguments)]
fn pagerank_candidate<W: WalkIndex>(
    graph: &DynamicGraph,
    walks: &W,
    config: &MonteCarloConfig,
    batch_index: u64,
    u: NodeId,
    prior_degree: usize,
    targets: &[NodeId],
    id: SegmentId,
    scratch: &mut Vec<NodeId>,
) -> Option<(usize, u64)> {
    let path = walks.segment_path(id);
    if path.is_empty() {
        return None;
    }
    let k = targets.len();
    let last_index = path.len() - 1;
    let mut rng =
        SmallRng::seed_from_u64(batch::repair_seed(config.seed, batch_index, u, id, false));

    // Decide where (if anywhere) the segment must be rerouted.
    let mut reroute_at: Option<(usize, NodeId)> = None;
    for (pos, &visit) in path.iter().enumerate() {
        if visit != u {
            continue;
        }
        if pos < last_index {
            // At an interior visit the surfer took one of the `prior_degree + k`
            // now-existing edges uniformly; it lands on a new one with probability
            // k/(d₀+k) (the reservoir composition of the k per-edge 1/(d₀+i) coins),
            // each new edge being equally likely.
            if rng.gen_bool(k as f64 / (prior_degree + k) as f64) {
                let target = walker::pick_new_target(&mut rng, targets);
                reroute_at = Some((pos, target));
                break;
            }
        } else if prior_degree == 0 {
            // The segment ended at u because u was dangling; now that u has outgoing
            // edges the surfer would have continued with probability 1 − ε, choosing
            // uniformly among the new edges.
            if rng.gen_bool(1.0 - config.epsilon) {
                let target = walker::pick_new_target(&mut rng, targets);
                reroute_at = Some((pos, target));
                break;
            }
        }
        // A final visit to a non-dangling u ended with an ε-reset, which the new
        // edges do not affect.
    }

    let (pos, target) = reroute_at?;
    let steps = match config.reroute {
        RerouteStrategy::FromUpdatePoint => {
            scratch.clear();
            scratch.extend_from_slice(&path[..=pos]);
            let mut steps = 0u64;
            if scratch.len() < config.max_segment_length {
                scratch.push(target);
                steps += 1;
                steps += walker::extend_pagerank_walk(
                    graph,
                    scratch,
                    config.epsilon,
                    config.max_segment_length,
                    &mut rng,
                );
            }
            steps
        }
        RerouteStrategy::FromSource => walker::pagerank_segment_into(
            graph,
            walks.source_of(id),
            config.epsilon,
            config.max_segment_length,
            &mut rng,
            scratch,
        ),
    };
    Some((pos, steps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_baselines::power_iteration::{power_iteration, PowerIterationConfig};
    use ppr_graph::generators::{
        directed_cycle, example1_gadget, preferential_attachment_edges,
        PreferentialAttachmentConfig,
    };
    use ppr_store::WalkIndexView;

    fn config(r: usize, seed: u64) -> MonteCarloConfig {
        MonteCarloConfig::new(0.2, r).with_seed(seed)
    }

    #[test]
    fn initialization_creates_r_segments_per_node() {
        let g = directed_cycle(10);
        let engine = IncrementalPageRank::from_graph(&g, config(3, 1));
        assert_eq!(engine.node_count(), 10);
        for node in g.nodes() {
            for id in engine.walk_store().segment_ids_of(node) {
                assert_eq!(engine.walk_store().segment_source(id), Some(node));
            }
        }
        assert!(engine.validate_segments().is_ok());
        assert!(engine.initialization_steps() > 0);
        assert_eq!(engine.work().edges_processed, 0);
    }

    #[test]
    fn add_edge_keeps_segments_valid() {
        let mut engine = IncrementalPageRank::new_empty(5, config(4, 2));
        let edges = [
            Edge::new(0, 1),
            Edge::new(1, 2),
            Edge::new(2, 3),
            Edge::new(3, 4),
            Edge::new(4, 0),
            Edge::new(0, 2),
            Edge::new(2, 0),
        ];
        for &edge in &edges {
            engine.add_edge(edge);
            engine.validate_segments().unwrap();
        }
        assert_eq!(engine.graph().edge_count(), edges.len());
        assert_eq!(engine.work().edges_processed, edges.len() as u64);
    }

    #[test]
    fn add_edge_grows_the_node_set_and_generates_segments() {
        let mut engine = IncrementalPageRank::new_empty(1, config(2, 3));
        engine.add_edge(Edge::new(0, 7));
        assert_eq!(engine.node_count(), 8);
        for node in 0..8 {
            for id in engine.walk_store().segment_ids_of(NodeId(node)) {
                assert!(!engine.walk_store().segment_is_empty(id));
            }
        }
        engine.validate_segments().unwrap();
    }

    #[test]
    fn first_outgoing_edge_extends_previously_dangling_walks() {
        // Node 0 starts with no outgoing edges: all its segments are just [0].  After
        // the first edge 0 -> 1 arrives, a (1 − ε) fraction of them should continue.
        let mut engine = IncrementalPageRank::new_empty(2, config(200, 5));
        let before: usize = engine
            .walk_store()
            .segment_ids_of(NodeId(0))
            .map(|id| engine.walk_store().segment_len(id))
            .sum();
        assert_eq!(before, 200, "dangling node segments are single visits");
        let stats = engine.add_edge(Edge::new(0, 1));
        assert!(stats.segments_updated > 100, "most segments should extend");
        let extended = engine
            .walk_store()
            .segment_ids_of(NodeId(0))
            .filter(|&id| engine.walk_store().segment_len(id) > 1)
            .count();
        assert!(
            (120..=200).contains(&extended),
            "≈ (1-ε) of 200 segments should now leave node 0, got {extended}"
        );
        engine.validate_segments().unwrap();
    }

    #[test]
    fn arrival_update_probability_scales_with_out_degree() {
        // When u already has many outgoing edges, a new edge rarely disturbs walks.
        let mut dense = IncrementalPageRank::from_graph(
            ppr_graph::generators::complete_graph(50),
            config(5, 7),
        );
        let stats_dense = dense.add_edge(Edge::new(0, 1)); // parallel edge, outdeg 50
        let mut sparse = IncrementalPageRank::from_graph(directed_cycle(50), config(5, 7));
        let stats_sparse = sparse.add_edge(Edge::new(0, 25)); // outdeg becomes 2
        assert!(
            stats_sparse.segments_updated >= stats_dense.segments_updated,
            "sparse arrival should disturb at least as many segments ({} vs {})",
            stats_sparse.segments_updated,
            stats_dense.segments_updated
        );
        dense.validate_segments().unwrap();
        sparse.validate_segments().unwrap();
    }

    #[test]
    fn remove_edge_repairs_traversing_segments() {
        let g = directed_cycle(6);
        let mut engine = IncrementalPageRank::from_graph(&g, config(10, 11));
        // Add a chord so node 0 still has an out-edge after the deletion.
        engine.add_edge(Edge::new(0, 3));
        let stats = engine.remove_edge(Edge::new(0, 1)).expect("edge exists");
        assert!(stats.touched_walk_store || stats.segments_updated == 0);
        engine.validate_segments().unwrap();
        assert!(!engine.graph().has_edge(Edge::new(0, 1)));
    }

    #[test]
    fn remove_edge_that_leaves_node_dangling_truncates_walks() {
        let g = directed_cycle(4);
        let mut engine = IncrementalPageRank::from_graph(&g, config(8, 13));
        engine.remove_edge(Edge::new(2, 3)).expect("edge exists");
        engine.validate_segments().unwrap();
        // No stored segment may traverse 2 -> 3 any more.
        for node in engine.graph().nodes() {
            for id in engine.walk_store().segment_ids_of(node) {
                assert!(!engine.walk_store().uses_edge(id, NodeId(2), NodeId(3)));
            }
        }
    }

    #[test]
    fn removing_a_missing_edge_is_a_no_op() {
        let mut engine = IncrementalPageRank::from_graph(directed_cycle(4), config(2, 1));
        assert!(engine.remove_edge(Edge::new(0, 2)).is_none());
        assert_eq!(engine.work().edges_processed, 0);
    }

    #[test]
    fn estimates_track_power_iteration_after_incremental_build() {
        // Build a 300-node preferential-attachment graph edge by edge and compare the
        // Monte Carlo estimates with power iteration on the final graph.
        let pa = PreferentialAttachmentConfig::new(300, 4, 17);
        let edges = preferential_attachment_edges(&pa);
        let mut engine = IncrementalPageRank::new_empty(300, config(20, 23));
        for &edge in &edges {
            engine.add_edge(edge);
        }
        engine.validate_segments().unwrap();

        let exact = power_iteration(engine.graph(), &PowerIterationConfig::with_epsilon(0.2));
        let estimates = engine.estimates();
        let tvd = estimates.total_variation_distance(&exact.scores);
        assert!(
            tvd < 0.12,
            "incrementally maintained estimates should track power iteration, TVD = {tvd:.4}"
        );

        // The incremental estimates should be about as good as estimates built from
        // scratch on the final graph with the same parameters.
        let fresh = IncrementalPageRank::from_graph(engine.graph(), config(20, 29));
        let fresh_tvd = fresh.estimates().total_variation_distance(&exact.scores);
        assert!(
            tvd < fresh_tvd * 2.0 + 0.02,
            "incremental TVD {tvd:.4} should be comparable to fresh TVD {fresh_tvd:.4}"
        );
    }

    #[test]
    fn batched_arrivals_match_sequential_accuracy() {
        // Replay the same preferential-attachment stream through apply_arrivals in
        // chunks; the estimates must track power iteration exactly as the per-edge
        // replay does, and every invariant must hold after every batch.
        let pa = PreferentialAttachmentConfig::new(300, 4, 19);
        let edges = preferential_attachment_edges(&pa);
        let mut engine = IncrementalPageRank::new_empty(300, config(20, 31));
        for chunk in edges.chunks(64) {
            let stats = engine.apply_arrivals(chunk);
            assert!(stats.segments_updated >= stats.touched_walk_store as u64);
            engine.validate_segments().unwrap();
        }
        assert_eq!(engine.graph().edge_count(), edges.len());
        assert_eq!(engine.work().edges_processed, edges.len() as u64);

        let exact = power_iteration(engine.graph(), &PowerIterationConfig::with_epsilon(0.2));
        let tvd = engine.estimates().total_variation_distance(&exact.scores);
        assert!(
            tvd < 0.12,
            "batched arrivals must stay as accurate as sequential ones, TVD = {tvd:.4}"
        );
    }

    #[test]
    fn batched_arrivals_group_work_per_source() {
        // A hub gaining many edges at once: one batch touches the hub's postings once,
        // and the result is a valid, accurate store.
        let mut engine = IncrementalPageRank::new_empty(40, config(5, 37));
        let spokes: Vec<Edge> = (1..40u32).map(|i| Edge::new(0, i)).collect();
        let stats = engine.apply_arrivals(&spokes);
        engine.validate_segments().unwrap();
        assert!(stats.touched_walk_store, "a dangling hub must extend walks");
        // Empty batches are a no-op.
        let empty = engine.apply_arrivals(&[]);
        assert_eq!(empty, UpdateStats::default());
    }

    #[test]
    fn batched_and_sequential_single_edges_agree() {
        // apply_arrivals over singleton slices is behaviourally identical to add_edge
        // (same RNG streams, same reroutes) — add_edge *is* a batch of one.
        let g = directed_cycle(12);
        let mut a = IncrementalPageRank::from_graph(&g, config(6, 41));
        let mut b = IncrementalPageRank::from_graph(&g, config(6, 41));
        for (i, edge) in [Edge::new(0, 5), Edge::new(3, 9), Edge::new(5, 1)]
            .into_iter()
            .enumerate()
        {
            let sa = a.add_edge(edge);
            let sb = b.apply_arrivals(std::slice::from_ref(&edge));
            assert_eq!(sa, sb, "edge {i}: stats must match");
        }
        assert_eq!(a.scores(), b.scores());
    }

    #[test]
    fn sharded_engine_is_bit_identical_to_single_shard() {
        // The full differential harness lives in tests/differential_shard.rs; this is
        // the in-crate smoke version of the same contract.
        let pa = PreferentialAttachmentConfig::new(80, 3, 59);
        let edges = preferential_attachment_edges(&pa);
        let mut flat = IncrementalPageRank::new_empty(80, config(4, 61));
        let mut sharded = IncrementalPageRank::from_graph_sharded(
            DynamicGraph::with_nodes(80),
            config(4, 61),
            4,
            4,
        );
        for chunk in edges.chunks(37) {
            let sa = flat.apply_arrivals(chunk);
            let sb = sharded.apply_arrivals(chunk);
            assert_eq!(sa, sb, "batch stats must match");
        }
        assert_eq!(flat.scores(), sharded.scores());
        assert_eq!(
            flat.walk_store().total_visits(),
            sharded.walk_store().total_visits()
        );
        assert_eq!(
            WalkIndexView::visit_counts(flat.walk_store()),
            sharded.walk_store().visit_counts()
        );
        sharded.validate_segments().unwrap();
    }

    #[test]
    fn thread_count_never_changes_results() {
        let pa = PreferentialAttachmentConfig::new(60, 3, 67);
        let edges = preferential_attachment_edges(&pa);
        let mut one = IncrementalPageRank::from_graph_sharded(
            DynamicGraph::with_nodes(60),
            config(3, 71),
            3,
            1,
        );
        let mut many = IncrementalPageRank::from_graph_sharded(
            DynamicGraph::with_nodes(60),
            config(3, 71),
            3,
            4,
        );
        for chunk in edges.chunks(25) {
            one.apply_arrivals(chunk);
            many.apply_arrivals(chunk);
            // Retargeting the thread budget mid-stream must not matter either.
            many.set_threads(if many.threads() == 4 { 2 } else { 4 });
        }
        assert_eq!(one.scores(), many.scores());
        assert_eq!(
            one.walk_store().visit_counts(),
            many.walk_store().visit_counts()
        );
    }

    #[test]
    fn sharded_engine_reshards_the_social_store_to_match() {
        let engine =
            IncrementalPageRank::from_graph_sharded(directed_cycle(9), config(2, 73), 3, 2);
        assert_eq!(engine.social_store().shard_count(), 3);
        assert_eq!(engine.walk_store().shard_count(), 3);
        for node in 0..9u32 {
            assert_eq!(
                engine.social_store().shard_of(NodeId(node)),
                engine.walk_store().shard_of(NodeId(node))
            );
        }
        engine.validate_segments().unwrap();
    }

    #[test]
    fn steady_state_arrivals_reuse_arena_slots() {
        // Build the graph fully (slot capacities discover their segments' length
        // range), then churn it with further arrivals: reroutes in this steady state
        // must overwhelmingly rewrite their arena slot in place — relocation is the
        // only allocating path, and it only fires when a segment outgrows every length
        // it has ever had.
        let pa = PreferentialAttachmentConfig::new(400, 5, 43);
        let edges = preferential_attachment_edges(&pa);
        let mut engine = IncrementalPageRank::new_empty(400, config(5, 47));
        engine.apply_arrivals(&edges);
        // Churn: re-deliver a third of the edges as parallel copies, three times; the
        // first two rounds let every hot slot discover its length range.
        let churn: Vec<Edge> = edges.iter().copied().step_by(3).collect();
        engine.apply_arrivals(&churn);
        engine.apply_arrivals(&churn);
        let warm = engine.walk_store().arena_stats();
        engine.apply_arrivals(&churn);
        let done = engine.walk_store().arena_stats();
        let writes = done.in_place_writes - warm.in_place_writes;
        let relocations = done.relocations - warm.relocations;
        assert!(writes > 100, "the churn phase must reroute many segments");
        assert!(
            relocations * 10 < writes,
            "steady-state reroutes must be dominated by in-place slot reuse: \
             {relocations} relocations vs {writes} in-place writes"
        );
        engine.validate_segments().unwrap();
    }

    #[test]
    fn compaction_threshold_knob_reaches_the_store_arenas() {
        // First use of the PR 4 ArenaStats instrumentation as a *control* signal:
        // the MonteCarloConfig knob must thread through to the arena's half-dead
        // rule.  Long segments (small ε) overflow their power-of-two slots under
        // churn, so relocations pile up garbage; the tighter engine must compact
        // more often and hold strictly less dead arena space for the same stream.
        let pa = PreferentialAttachmentConfig::new(120, 4, 83);
        let edges = preferential_attachment_edges(&pa);
        let run = |threshold: f64| {
            let config = MonteCarloConfig::new(0.05, 2)
                .with_seed(89)
                .with_compaction_threshold(threshold);
            let mut engine = IncrementalPageRank::new_empty(120, config);
            engine.apply_arrivals(&edges);
            let churn: Vec<Edge> = edges.iter().copied().step_by(2).collect();
            for _ in 0..6 {
                engine.apply_arrivals(&churn);
            }
            engine.validate_segments().unwrap();
            engine.walk_store().arena_stats()
        };
        let default = run(1.0);
        let tight = run(0.2);
        assert!(
            default.relocations > 0,
            "the churn must actually relocate segments: {default:?}"
        );
        assert!(
            tight.compactions > default.compactions,
            "tighter threshold must compact more: {tight:?} vs {default:?}"
        );
        assert!(
            tight.dead_steps < default.dead_steps,
            "tighter threshold must waste fewer live bytes: {} vs {}",
            tight.dead_steps,
            default.dead_steps
        );
        // The batch profile charges those extra passes to the batches that ran them.
        assert!(tight.compaction_nanos >= default.compaction_nanos);
    }

    #[test]
    fn update_work_is_much_cheaper_than_reinitialization() {
        // Theorem 4: the marginal update cost for late edges is tiny compared with
        // rebuilding all walks (nR/ε steps).
        let pa = PreferentialAttachmentConfig::new(400, 5, 31);
        let edges = preferential_attachment_edges(&pa);
        let (prefix, suffix) = ppr_graph::stream::split_at_fraction(&edges, 0.9);
        let base = DynamicGraph::from_edges(&prefix, 400);
        let mut engine = IncrementalPageRank::from_graph(&base, config(5, 37));
        engine.reset_work();
        for &edge in &suffix {
            engine.add_edge(edge);
        }
        let per_edge_steps = engine.work().steps_per_edge();
        let reinit_cost = engine.config().expected_initialization_cost(400);
        assert!(
            per_edge_steps < reinit_cost / 50.0,
            "per-edge update cost {per_edge_steps:.1} should be far below re-initialization {reinit_cost:.0}"
        );
    }

    #[test]
    fn adversarial_example1_forces_many_updates() {
        // Example 1 of the paper: with the adversarial arrival order (every edge into
        // the hub first, the hub's own edges last), delivering u -> v1 while the hub is
        // still dangling forces Ω(n) segment updates, because a constant fraction of
        // all walks terminate on the hub and must now be extended.
        let ex = example1_gadget(50);
        let n = ex.graph.node_count();
        let prefix = ex.adversarial_prefix_graph();
        let mut engine = IncrementalPageRank::from_graph(&prefix, config(5, 41));
        engine.reset_work();
        let stats = engine.add_edge(ex.adversarial_edge);
        assert!(
            stats.segments_updated as usize > n / 2,
            "the adversarial edge should disturb Ω(n) segments, got {} (n = {n})",
            stats.segments_updated
        );
        engine.validate_segments().unwrap();

        // For contrast, the same edge arriving after the hub's other out-edges (the
        // random-permutation-friendly order) disturbs only O(R/ε) segments.
        let mut late_engine = IncrementalPageRank::from_graph(&ex.graph, config(5, 43));
        late_engine.reset_work();
        let late_stats = late_engine.add_edge(ex.adversarial_edge);
        assert!(
            late_stats.segments_updated * 4 < stats.segments_updated,
            "late arrival ({}) should be far cheaper than the adversarial one ({})",
            late_stats.segments_updated,
            stats.segments_updated
        );
    }

    #[test]
    fn from_source_strategy_also_preserves_validity_and_accuracy() {
        let pa = PreferentialAttachmentConfig::new(200, 4, 43);
        let edges = preferential_attachment_edges(&pa);
        let mut engine = IncrementalPageRank::new_empty(
            200,
            MonteCarloConfig::new(0.2, 10)
                .with_seed(47)
                .with_reroute(RerouteStrategy::FromSource),
        );
        for &edge in &edges {
            engine.add_edge(edge);
        }
        engine.validate_segments().unwrap();
        let exact = power_iteration(engine.graph(), &PowerIterationConfig::with_epsilon(0.2));
        let tvd = engine.estimates().total_variation_distance(&exact.scores);
        assert!(
            tvd < 0.15,
            "FromSource rerouting should stay accurate, TVD = {tvd:.4}"
        );
    }

    #[test]
    fn batched_arrivals_stay_valid_under_from_source_rerouting() {
        let pa = PreferentialAttachmentConfig::new(150, 4, 53);
        let edges = preferential_attachment_edges(&pa);
        let mut engine = IncrementalPageRank::new_empty(
            150,
            MonteCarloConfig::new(0.2, 6)
                .with_seed(59)
                .with_reroute(RerouteStrategy::FromSource),
        );
        for chunk in edges.chunks(32) {
            engine.apply_arrivals(chunk);
        }
        engine.validate_segments().unwrap();
    }

    #[test]
    fn scores_sum_to_one_and_add_node_works() {
        let mut engine = IncrementalPageRank::from_graph(directed_cycle(5), config(3, 53));
        let scores = engine.scores();
        assert_eq!(scores.len(), 5);
        assert!((scores.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let new = engine.add_node();
        assert_eq!(new, NodeId(5));
        assert_eq!(engine.node_count(), 6);
        assert_eq!(engine.scores().len(), 6);
        engine.validate_segments().unwrap();
    }

    #[test]
    fn from_graph_by_value_avoids_keeping_the_original() {
        // Satellite regression: the engine can consume its graph outright, so building
        // over a large graph does not require a second copy to stay alive.
        let graph = directed_cycle(30);
        let engine = IncrementalPageRank::from_graph(graph, config(2, 61));
        assert_eq!(engine.node_count(), 30);
        engine.validate_segments().unwrap();
    }

    #[test]
    fn personalized_top_k_returns_reachable_non_friends() {
        let mut engine = IncrementalPageRank::from_graph(directed_cycle(8), config(5, 59));
        // Add chords so node 0 has friends {1, 4}.
        engine.add_edge(Edge::new(0, 4));
        let top = engine.personalized_top_k(NodeId(0), 3, 2_000);
        assert!(top.len() <= 3);
        assert!(!top.is_empty());
        for &(node, score) in &top {
            assert!(score > 0.0);
            assert_ne!(node, NodeId(0), "the seed must be excluded");
            assert_ne!(node, NodeId(1), "direct friends must be excluded");
            assert_ne!(node, NodeId(4), "direct friends must be excluded");
        }
        // The friends-of-friends (nodes 2 and 5, reached through friends 1 and 4) are
        // the strongest recommendations; they are symmetric so either may rank first.
        let top_nodes: Vec<NodeId> = top.iter().map(|&(n, _)| n).collect();
        assert!(top_nodes.contains(&NodeId(2)));
        assert!(top_nodes.contains(&NodeId(5)));
        assert!(top[0].0 == NodeId(2) || top[0].0 == NodeId(5));
    }
}
