//! Incremental maintenance of Monte Carlo PageRank under edge arrivals and deletions
//! (Section 2.2: Proposition 2, Lemma 3, Theorem 4, Proposition 5).
//!
//! [`IncrementalPageRank`] owns the Social Store (the evolving graph) and the PageRank
//! Store (the `R` walk segments per node).  When an edge `(u, v)` arrives:
//!
//! * only segments that visit `u` can be affected — the store's visit index finds them
//!   without scanning anything else;
//! * each visit of such a segment to `u` would have taken the new edge with probability
//!   `1/outdeg(u)`, so the segment is rerouted at its first visit for which an
//!   independent coin with that bias comes up heads;
//! * a rerouted segment keeps its (still valid) prefix and regenerates the suffix —
//!   or, under [`RerouteStrategy::FromSource`], is regenerated entirely — at an expected
//!   cost of `O(1/ε)` walk steps.
//!
//! Deletions are symmetric: only segments that actually traverse the vanished edge are
//! rerouted from the point of traversal.
//!
//! The engine keeps a [`WorkCounter`] so experiments can compare the measured update
//! work against the `nR ln m / ε²` bound of Theorem 4 and the `nR/(m ε²)` deletion bound
//! of Proposition 5.  The closed forms this engine instantiates are
//! [`crate::bounds::per_arrival_update_work`] and [`crate::bounds::total_update_work`]
//! (Theorem 4) for arrivals, and [`crate::bounds::deletion_update_work`]
//! (Proposition 5) for deletions.

use crate::config::{MonteCarloConfig, RerouteStrategy};
use crate::estimator::PageRankEstimates;
use crate::personalized::PersonalizedWalker;
use crate::walker;
use ppr_graph::{DynamicGraph, Edge, GraphView, NodeId};
use ppr_store::{SegmentId, SocialStore, WalkStore, WorkCounter};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Work performed while processing a single edge arrival or deletion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UpdateStats {
    /// Number of walk segments rerouted or rebuilt.
    pub segments_updated: u64,
    /// Number of random-walk steps executed to repair them.
    pub walk_steps: u64,
    /// Whether any segment was touched at all (if `false`, the arrival was absorbed by
    /// the `1 − (1 − 1/d)^{W}` filter of Section 2.2 without touching the PageRank
    /// Store).
    pub touched_walk_store: bool,
}

impl UpdateStats {
    pub(crate) fn record_segment(&mut self, steps: u64) {
        self.segments_updated += 1;
        self.walk_steps += steps;
        self.touched_walk_store = true;
    }
}

/// Monte Carlo PageRank with incrementally maintained walk segments.
#[derive(Debug)]
pub struct IncrementalPageRank {
    store: SocialStore,
    walks: WalkStore,
    config: MonteCarloConfig,
    rng: SmallRng,
    work: WorkCounter,
    initialization_steps: u64,
}

impl IncrementalPageRank {
    /// Builds the engine over an existing graph, generating `R` walk segments per node.
    pub fn from_graph(graph: &DynamicGraph, config: MonteCarloConfig) -> Self {
        Self::from_social_store(SocialStore::from_graph(graph.clone(), 1), config)
    }

    /// Builds the engine over an existing Social Store, generating `R` walk segments per
    /// node.
    pub fn from_social_store(store: SocialStore, config: MonteCarloConfig) -> Self {
        let node_count = store.node_count();
        let walks = WalkStore::new(node_count, config.r);
        let rng = SmallRng::seed_from_u64(config.seed);
        let mut engine = IncrementalPageRank {
            store,
            walks,
            config,
            rng,
            work: WorkCounter::new(),
            initialization_steps: 0,
        };
        for node in 0..node_count {
            engine.generate_segments_for(NodeId::from_index(node));
        }
        engine
    }

    /// Builds the engine over an empty graph with `node_count` isolated nodes.
    pub fn new_empty(node_count: usize, config: MonteCarloConfig) -> Self {
        Self::from_graph(&DynamicGraph::with_nodes(node_count), config)
    }

    /// The engine's configuration.
    pub fn config(&self) -> &MonteCarloConfig {
        &self.config
    }

    /// The Social Store (graph plus fetch accounting).
    pub fn social_store(&self) -> &SocialStore {
        &self.store
    }

    /// The underlying graph.
    pub fn graph(&self) -> &DynamicGraph {
        self.store.graph()
    }

    /// The PageRank Store holding the walk segments.
    pub fn walk_store(&self) -> &WalkStore {
        &self.walks
    }

    /// Number of nodes currently known to the engine.
    pub fn node_count(&self) -> usize {
        self.store.node_count()
    }

    /// Cumulative update work performed since construction (excluding initialization).
    pub fn work(&self) -> &WorkCounter {
        &self.work
    }

    /// Walk steps spent generating the initial segments (the `nR/ε` initialization cost
    /// the paper compares the update cost against).
    pub fn initialization_steps(&self) -> u64 {
        self.initialization_steps
    }

    /// Resets the cumulative work counter (initialization cost is kept).
    pub fn reset_work(&mut self) {
        self.work = WorkCounter::new();
    }

    /// Adds an isolated node and generates its walk segments; returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::from_index(self.node_count());
        self.ensure_nodes(id.index() + 1);
        id
    }

    /// Current PageRank estimates.
    pub fn estimates(&self) -> PageRankEstimates {
        PageRankEstimates::from_store(&self.walks, self.config.epsilon)
    }

    /// Self-normalised PageRank scores for every node (sum to 1).
    pub fn scores(&self) -> Vec<f64> {
        self.estimates().normalized().to_vec()
    }

    /// The paper's raw estimator `X_v / (nR/ε)` for a single node.
    pub fn score(&self, node: NodeId) -> f64 {
        self.estimates().score(node)
    }

    /// Runs the personalized walk of Algorithm 1 from `seed` for `walk_length` visits
    /// and returns the top-`k` nodes by visit count, excluding `seed` itself and its
    /// direct friends (as the paper's recommender does).
    pub fn personalized_top_k(
        &self,
        seed: NodeId,
        k: usize,
        walk_length: usize,
    ) -> Vec<(NodeId, f64)> {
        let mut walker = PersonalizedWalker::new(
            &self.store,
            &self.walks,
            self.config.epsilon,
            self.config.seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(seed.0 as u64 + 1)),
        );
        walker.top_k(seed, k, walk_length, true)
    }

    /// Processes the arrival of `edge`, repairing every affected walk segment.
    pub fn add_edge(&mut self, edge: Edge) -> UpdateStats {
        let needed = edge.source.index().max(edge.target.index()) + 1;
        self.ensure_nodes(needed);
        self.store.add_edge(edge);

        let u = edge.source;
        let v = edge.target;
        let d = self.store.out_degree(u);
        let mut stats = UpdateStats::default();

        let visiting: Vec<SegmentId> = self.walks.segments_visiting(u).map(|(id, _)| id).collect();
        for id in visiting {
            self.maybe_reroute_for_arrival(id, u, v, d, &mut stats);
        }

        self.work.edges_processed += 1;
        self.work.segments_updated += stats.segments_updated;
        self.work.walk_steps += stats.walk_steps;
        if !stats.touched_walk_store {
            self.work.arrivals_filtered += 1;
        }
        stats
    }

    /// Processes the deletion of `edge`, repairing every segment that traversed it.
    /// Returns `None` if the edge was not present.
    pub fn remove_edge(&mut self, edge: Edge) -> Option<UpdateStats> {
        if !self.store.remove_edge(edge) {
            return None;
        }
        let u = edge.source;
        let v = edge.target;
        let mut stats = UpdateStats::default();

        // If a parallel copy of the edge survives, every traversal of u -> v is still a
        // legal step of the walk and the uniform-neighbour distribution at u is already
        // reflected by the reroute performed when that copy arrived, so nothing to do.
        if !self.store.graph().has_edge(edge) {
            let visiting: Vec<SegmentId> =
                self.walks.segments_visiting(u).map(|(id, _)| id).collect();
            for id in visiting {
                self.maybe_reroute_for_deletion(id, u, v, &mut stats);
            }
        }

        self.work.edges_processed += 1;
        self.work.segments_updated += stats.segments_updated;
        self.work.walk_steps += stats.walk_steps;
        if !stats.touched_walk_store {
            self.work.arrivals_filtered += 1;
        }
        Some(stats)
    }

    /// Verifies that every stored segment is a valid walk in the *current* graph: it
    /// starts at its source node and every consecutive pair of visits is an existing
    /// edge.  This is the invariant incremental maintenance must preserve.
    pub fn validate_segments(&self) -> Result<(), String> {
        let graph = self.store.graph();
        for node in graph.nodes() {
            for id in self.walks.segment_ids_of(node) {
                let segment = self.walks.segment(id);
                if segment.is_empty() {
                    return Err(format!("segment {id:?} of node {node} was never generated"));
                }
                if segment.source() != Some(node) {
                    return Err(format!(
                        "segment {id:?} starts at {:?}, expected {node}",
                        segment.source()
                    ));
                }
                for pair in segment.path().windows(2) {
                    let edge = Edge {
                        source: pair[0],
                        target: pair[1],
                    };
                    if !graph.has_edge(edge) {
                        return Err(format!("segment {id:?} traverses missing edge {edge}"));
                    }
                }
            }
        }
        self.walks.check_consistency()
    }

    // ----- internal helpers -------------------------------------------------------

    fn ensure_nodes(&mut self, n: usize) {
        let before = self.store.node_count();
        if n <= before {
            return;
        }
        self.store.ensure_nodes(n);
        self.walks.ensure_nodes(n);
        for node in before..n {
            self.generate_segments_for(NodeId::from_index(node));
        }
    }

    fn generate_segments_for(&mut self, node: NodeId) {
        for slot in 0..self.config.r {
            let id = SegmentId::new(node, slot, self.config.r);
            let walk = walker::pagerank_segment(
                self.store.graph(),
                node,
                self.config.epsilon,
                self.config.max_segment_length,
                &mut self.rng,
            );
            self.initialization_steps += walk.steps;
            self.walks.set_segment(id, walk.path);
        }
    }

    fn maybe_reroute_for_arrival(
        &mut self,
        id: SegmentId,
        u: NodeId,
        v: NodeId,
        out_degree: usize,
        stats: &mut UpdateStats,
    ) {
        debug_assert!(out_degree >= 1);
        let path = self.walks.segment(id).path();
        let positions = self.walks.segment(id).positions_of(u);
        let last_index = path.len() - 1;

        // Decide where (if anywhere) the segment must be rerouted.
        let mut reroute_at: Option<usize> = None;
        for &pos in &positions {
            if pos < last_index {
                // At an interior visit the surfer took one of the then-existing edges;
                // with the new edge present it would have chosen it with probability
                // 1/outdeg(u).
                if self.rng.gen_bool(1.0 / out_degree as f64) {
                    reroute_at = Some(pos);
                    break;
                }
            } else if out_degree == 1 {
                // The segment ended at u because u was dangling; now that u has an
                // outgoing edge the surfer would have continued with probability 1 − ε.
                if self.rng.gen_bool(1.0 - self.config.epsilon) {
                    reroute_at = Some(pos);
                    break;
                }
            }
            // A final visit to a non-dangling u ended with an ε-reset, which the new
            // edge does not affect.
        }

        let Some(pos) = reroute_at else {
            return;
        };

        match self.config.reroute {
            RerouteStrategy::FromUpdatePoint => {
                let mut new_path: Vec<NodeId> = self.walks.segment(id).path()[..=pos].to_vec();
                let mut steps = 0u64;
                if new_path.len() < self.config.max_segment_length {
                    new_path.push(v);
                    steps += 1;
                    steps += walker::extend_pagerank_walk(
                        self.store.graph(),
                        &mut new_path,
                        self.config.epsilon,
                        self.config.max_segment_length,
                        &mut self.rng,
                    );
                }
                self.walks.set_segment(id, new_path);
                stats.record_segment(steps);
            }
            RerouteStrategy::FromSource => {
                let source = self.walks.source_of(id);
                let walk = walker::pagerank_segment(
                    self.store.graph(),
                    source,
                    self.config.epsilon,
                    self.config.max_segment_length,
                    &mut self.rng,
                );
                let steps = walk.steps;
                self.walks.set_segment(id, walk.path);
                stats.record_segment(steps);
            }
        }
    }

    fn maybe_reroute_for_deletion(
        &mut self,
        id: SegmentId,
        u: NodeId,
        v: NodeId,
        stats: &mut UpdateStats,
    ) {
        let segment = self.walks.segment(id);
        let Some(pos) = segment
            .path()
            .windows(2)
            .position(|pair| pair[0] == u && pair[1] == v)
        else {
            return;
        };

        match self.config.reroute {
            RerouteStrategy::FromUpdatePoint => {
                let mut new_path: Vec<NodeId> = segment.path()[..=pos].to_vec();
                let steps = walker::extend_pagerank_walk(
                    self.store.graph(),
                    &mut new_path,
                    self.config.epsilon,
                    self.config.max_segment_length,
                    &mut self.rng,
                );
                self.walks.set_segment(id, new_path);
                stats.record_segment(steps);
            }
            RerouteStrategy::FromSource => {
                let source = self.walks.source_of(id);
                let walk = walker::pagerank_segment(
                    self.store.graph(),
                    source,
                    self.config.epsilon,
                    self.config.max_segment_length,
                    &mut self.rng,
                );
                let steps = walk.steps;
                self.walks.set_segment(id, walk.path);
                stats.record_segment(steps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_baselines::power_iteration::{power_iteration, PowerIterationConfig};
    use ppr_graph::generators::{
        directed_cycle, example1_gadget, preferential_attachment_edges,
        PreferentialAttachmentConfig,
    };

    fn config(r: usize, seed: u64) -> MonteCarloConfig {
        MonteCarloConfig::new(0.2, r).with_seed(seed)
    }

    #[test]
    fn initialization_creates_r_segments_per_node() {
        let g = directed_cycle(10);
        let engine = IncrementalPageRank::from_graph(&g, config(3, 1));
        assert_eq!(engine.node_count(), 10);
        for node in g.nodes() {
            for id in engine.walk_store().segment_ids_of(node) {
                let segment = engine.walk_store().segment(id);
                assert_eq!(segment.source(), Some(node));
            }
        }
        assert!(engine.validate_segments().is_ok());
        assert!(engine.initialization_steps() > 0);
        assert_eq!(engine.work().edges_processed, 0);
    }

    #[test]
    fn add_edge_keeps_segments_valid() {
        let mut engine = IncrementalPageRank::new_empty(5, config(4, 2));
        let edges = [
            Edge::new(0, 1),
            Edge::new(1, 2),
            Edge::new(2, 3),
            Edge::new(3, 4),
            Edge::new(4, 0),
            Edge::new(0, 2),
            Edge::new(2, 0),
        ];
        for &edge in &edges {
            engine.add_edge(edge);
            engine.validate_segments().unwrap();
        }
        assert_eq!(engine.graph().edge_count(), edges.len());
        assert_eq!(engine.work().edges_processed, edges.len() as u64);
    }

    #[test]
    fn add_edge_grows_the_node_set_and_generates_segments() {
        let mut engine = IncrementalPageRank::new_empty(1, config(2, 3));
        engine.add_edge(Edge::new(0, 7));
        assert_eq!(engine.node_count(), 8);
        for node in 0..8 {
            for id in engine.walk_store().segment_ids_of(NodeId(node)) {
                assert!(!engine.walk_store().segment(id).is_empty());
            }
        }
        engine.validate_segments().unwrap();
    }

    #[test]
    fn first_outgoing_edge_extends_previously_dangling_walks() {
        // Node 0 starts with no outgoing edges: all its segments are just [0].  After
        // the first edge 0 -> 1 arrives, a (1 − ε) fraction of them should continue.
        let mut engine = IncrementalPageRank::new_empty(2, config(200, 5));
        let before: usize = engine
            .walk_store()
            .segment_ids_of(NodeId(0))
            .map(|id| engine.walk_store().segment(id).len())
            .sum();
        assert_eq!(before, 200, "dangling node segments are single visits");
        let stats = engine.add_edge(Edge::new(0, 1));
        assert!(stats.segments_updated > 100, "most segments should extend");
        let extended = engine
            .walk_store()
            .segment_ids_of(NodeId(0))
            .filter(|&id| engine.walk_store().segment(id).len() > 1)
            .count();
        assert!(
            (120..=200).contains(&extended),
            "≈ (1-ε) of 200 segments should now leave node 0, got {extended}"
        );
        engine.validate_segments().unwrap();
    }

    #[test]
    fn arrival_update_probability_scales_with_out_degree() {
        // When u already has many outgoing edges, a new edge rarely disturbs walks.
        let mut dense = IncrementalPageRank::from_graph(
            &ppr_graph::generators::complete_graph(50),
            config(5, 7),
        );
        let stats_dense = dense.add_edge(Edge::new(0, 1)); // parallel edge, outdeg 50
        let mut sparse = IncrementalPageRank::from_graph(&directed_cycle(50), config(5, 7));
        let stats_sparse = sparse.add_edge(Edge::new(0, 25)); // outdeg becomes 2
        assert!(
            stats_sparse.segments_updated >= stats_dense.segments_updated,
            "sparse arrival should disturb at least as many segments ({} vs {})",
            stats_sparse.segments_updated,
            stats_dense.segments_updated
        );
        dense.validate_segments().unwrap();
        sparse.validate_segments().unwrap();
    }

    #[test]
    fn remove_edge_repairs_traversing_segments() {
        let g = directed_cycle(6);
        let mut engine = IncrementalPageRank::from_graph(&g, config(10, 11));
        // Add a chord so node 0 still has an out-edge after the deletion.
        engine.add_edge(Edge::new(0, 3));
        let stats = engine.remove_edge(Edge::new(0, 1)).expect("edge exists");
        assert!(stats.touched_walk_store || stats.segments_updated == 0);
        engine.validate_segments().unwrap();
        assert!(!engine.graph().has_edge(Edge::new(0, 1)));
    }

    #[test]
    fn remove_edge_that_leaves_node_dangling_truncates_walks() {
        let g = directed_cycle(4);
        let mut engine = IncrementalPageRank::from_graph(&g, config(8, 13));
        engine.remove_edge(Edge::new(2, 3)).expect("edge exists");
        engine.validate_segments().unwrap();
        // No stored segment may traverse 2 -> 3 any more.
        for node in engine.graph().nodes() {
            for id in engine.walk_store().segment_ids_of(node) {
                assert!(!engine
                    .walk_store()
                    .segment(id)
                    .uses_edge(NodeId(2), NodeId(3)));
            }
        }
    }

    #[test]
    fn removing_a_missing_edge_is_a_no_op() {
        let mut engine = IncrementalPageRank::from_graph(&directed_cycle(4), config(2, 1));
        assert!(engine.remove_edge(Edge::new(0, 2)).is_none());
        assert_eq!(engine.work().edges_processed, 0);
    }

    #[test]
    fn estimates_track_power_iteration_after_incremental_build() {
        // Build a 300-node preferential-attachment graph edge by edge and compare the
        // Monte Carlo estimates with power iteration on the final graph.
        let pa = PreferentialAttachmentConfig::new(300, 4, 17);
        let edges = preferential_attachment_edges(&pa);
        let mut engine = IncrementalPageRank::new_empty(300, config(20, 23));
        for &edge in &edges {
            engine.add_edge(edge);
        }
        engine.validate_segments().unwrap();

        let exact = power_iteration(engine.graph(), &PowerIterationConfig::with_epsilon(0.2));
        let estimates = engine.estimates();
        let tvd = estimates.total_variation_distance(&exact.scores);
        assert!(
            tvd < 0.12,
            "incrementally maintained estimates should track power iteration, TVD = {tvd:.4}"
        );

        // The incremental estimates should be about as good as estimates built from
        // scratch on the final graph with the same parameters.
        let fresh = IncrementalPageRank::from_graph(engine.graph(), config(20, 29));
        let fresh_tvd = fresh.estimates().total_variation_distance(&exact.scores);
        assert!(
            tvd < fresh_tvd * 2.0 + 0.02,
            "incremental TVD {tvd:.4} should be comparable to fresh TVD {fresh_tvd:.4}"
        );
    }

    #[test]
    fn update_work_is_much_cheaper_than_reinitialization() {
        // Theorem 4: the marginal update cost for late edges is tiny compared with
        // rebuilding all walks (nR/ε steps).
        let pa = PreferentialAttachmentConfig::new(400, 5, 31);
        let edges = preferential_attachment_edges(&pa);
        let (prefix, suffix) = ppr_graph::stream::split_at_fraction(&edges, 0.9);
        let base = DynamicGraph::from_edges(&prefix, 400);
        let mut engine = IncrementalPageRank::from_graph(&base, config(5, 37));
        engine.reset_work();
        for &edge in &suffix {
            engine.add_edge(edge);
        }
        let per_edge_steps = engine.work().steps_per_edge();
        let reinit_cost = engine.config().expected_initialization_cost(400);
        assert!(
            per_edge_steps < reinit_cost / 50.0,
            "per-edge update cost {per_edge_steps:.1} should be far below re-initialization {reinit_cost:.0}"
        );
    }

    #[test]
    fn adversarial_example1_forces_many_updates() {
        // Example 1 of the paper: with the adversarial arrival order (every edge into
        // the hub first, the hub's own edges last), delivering u -> v1 while the hub is
        // still dangling forces Ω(n) segment updates, because a constant fraction of
        // all walks terminate on the hub and must now be extended.
        let ex = example1_gadget(50);
        let n = ex.graph.node_count();
        let prefix = ex.adversarial_prefix_graph();
        let mut engine = IncrementalPageRank::from_graph(&prefix, config(5, 41));
        engine.reset_work();
        let stats = engine.add_edge(ex.adversarial_edge);
        assert!(
            stats.segments_updated as usize > n / 2,
            "the adversarial edge should disturb Ω(n) segments, got {} (n = {n})",
            stats.segments_updated
        );
        engine.validate_segments().unwrap();

        // For contrast, the same edge arriving after the hub's other out-edges (the
        // random-permutation-friendly order) disturbs only O(R/ε) segments.
        let mut late_engine = IncrementalPageRank::from_graph(&ex.graph, config(5, 43));
        late_engine.reset_work();
        let late_stats = late_engine.add_edge(ex.adversarial_edge);
        assert!(
            late_stats.segments_updated * 4 < stats.segments_updated,
            "late arrival ({}) should be far cheaper than the adversarial one ({})",
            late_stats.segments_updated,
            stats.segments_updated
        );
    }

    #[test]
    fn from_source_strategy_also_preserves_validity_and_accuracy() {
        let pa = PreferentialAttachmentConfig::new(200, 4, 43);
        let edges = preferential_attachment_edges(&pa);
        let mut engine = IncrementalPageRank::new_empty(
            200,
            MonteCarloConfig::new(0.2, 10)
                .with_seed(47)
                .with_reroute(RerouteStrategy::FromSource),
        );
        for &edge in &edges {
            engine.add_edge(edge);
        }
        engine.validate_segments().unwrap();
        let exact = power_iteration(engine.graph(), &PowerIterationConfig::with_epsilon(0.2));
        let tvd = engine.estimates().total_variation_distance(&exact.scores);
        assert!(
            tvd < 0.15,
            "FromSource rerouting should stay accurate, TVD = {tvd:.4}"
        );
    }

    #[test]
    fn scores_sum_to_one_and_add_node_works() {
        let mut engine = IncrementalPageRank::from_graph(&directed_cycle(5), config(3, 53));
        let scores = engine.scores();
        assert_eq!(scores.len(), 5);
        assert!((scores.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let new = engine.add_node();
        assert_eq!(new, NodeId(5));
        assert_eq!(engine.node_count(), 6);
        assert_eq!(engine.scores().len(), 6);
        engine.validate_segments().unwrap();
    }

    #[test]
    fn personalized_top_k_returns_reachable_non_friends() {
        let mut engine = IncrementalPageRank::from_graph(&directed_cycle(8), config(5, 59));
        // Add chords so node 0 has friends {1, 4}.
        engine.add_edge(Edge::new(0, 4));
        let top = engine.personalized_top_k(NodeId(0), 3, 2_000);
        assert!(top.len() <= 3);
        assert!(!top.is_empty());
        for &(node, score) in &top {
            assert!(score > 0.0);
            assert_ne!(node, NodeId(0), "the seed must be excluded");
            assert_ne!(node, NodeId(1), "direct friends must be excluded");
            assert_ne!(node, NodeId(4), "direct friends must be excluded");
        }
        // The friends-of-friends (nodes 2 and 5, reached through friends 1 and 4) are
        // the strongest recommendations; they are symmetric so either may rank first.
        let top_nodes: Vec<NodeId> = top.iter().map(|&(n, _)| n).collect();
        assert!(top_nodes.contains(&NodeId(2)));
        assert!(top_nodes.contains(&NodeId(5)));
        assert!(top[0].0 == NodeId(2) || top[0].0 == NodeId(5));
    }
}
