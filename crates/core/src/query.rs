//! Split RNG streams for queries: the read-side analogue of the write path's
//! `repair_seed` streams.
//!
//! PR 3 made *writes* deterministic at any shard/thread count by giving every
//! `(batch, pivot, segment)` repair its own RNG stream.  This module extends the same
//! contract to *reads*: a query draws from a stream derived purely from
//! `(query_seed, query_id)`, never from engine state or a walker's call history — so
//! the answer to a query is a function of the store generation it reads and nothing
//! else.  Which thread serves the query, how queries interleave with each other or
//! with write batches, and how many reader threads a deployment runs are all
//! irrelevant: the same `(generation, query_seed, query_id)` always produces the
//! bit-identical result, which is what `tests/concurrent_serving.rs` proves and the
//! experiment harness (`fig5`/`fig6`) relies on to parallelize its query loops.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Derives the seed of one query's RNG stream from `(query_seed, query_id)`.
///
/// `query_seed` identifies the workload (an experiment's master seed, a serving
/// session's seed); `query_id` identifies one query within it.  The splitmix64
/// finalizer decorrelates neighbouring ids, exactly like the write path's
/// `repair_seed`.
pub fn query_stream_seed(query_seed: u64, query_id: u64) -> u64 {
    let mut x =
        query_seed ^ query_id.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5151_5151_5151_5151u64;
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The RNG of one query: a fresh generator on the `(query_seed, query_id)` stream.
pub fn query_rng(query_seed: u64, query_id: u64) -> SmallRng {
    SmallRng::seed_from_u64(query_stream_seed(query_seed, query_id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_distinct_and_reproducible() {
        let base = query_stream_seed(7, 0);
        assert_ne!(base, query_stream_seed(7, 1));
        assert_ne!(base, query_stream_seed(8, 0));
        assert_eq!(base, query_stream_seed(7, 0));
        let a: Vec<u64> = (0..8)
            .map(|_| query_rng(7, 3).gen_range(0..1u64 << 40))
            .collect();
        let b: Vec<u64> = (0..8)
            .map(|_| query_rng(7, 3).gen_range(0..1u64 << 40))
            .collect();
        assert_eq!(a, b, "the same stream always replays identically");
    }

    #[test]
    fn neighbouring_ids_decorrelate() {
        // Weak smoke check: the low bits of consecutive streams are not a counter.
        let bits: Vec<u64> = (0..64).map(|i| query_stream_seed(1, i) & 1).collect();
        let ones: u64 = bits.iter().sum();
        assert!((16..=48).contains(&ones), "low bits look biased: {ones}/64");
    }
}
