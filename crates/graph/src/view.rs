//! The [`GraphView`] trait: a read-only view over a directed graph.
//!
//! Both the mutable [`crate::DynamicGraph`] and the immutable [`crate::CsrGraph`]
//! implement this trait, so that algorithms (power iteration, HITS, SALSA, random
//! walks) can be written once and run against either representation.

use crate::{Edge, NodeId};

/// Read-only access to a directed graph with dense node ids `0..node_count()`.
pub trait GraphView {
    /// Number of nodes in the graph.
    fn node_count(&self) -> usize;

    /// Number of directed edges in the graph.
    fn edge_count(&self) -> usize;

    /// Out-neighbours of `node` (targets of edges leaving `node`).
    fn out_neighbors(&self, node: NodeId) -> &[NodeId];

    /// In-neighbours of `node` (sources of edges entering `node`).
    fn in_neighbors(&self, node: NodeId) -> &[NodeId];

    /// Out-degree of `node`.
    #[inline]
    fn out_degree(&self, node: NodeId) -> usize {
        self.out_neighbors(node).len()
    }

    /// In-degree of `node`.
    #[inline]
    fn in_degree(&self, node: NodeId) -> usize {
        self.in_neighbors(node).len()
    }

    /// Returns `true` if `node` has no outgoing edges (a "dangling" node for PageRank).
    #[inline]
    fn is_dangling(&self, node: NodeId) -> bool {
        self.out_degree(node) == 0
    }

    /// Iterates over every node id in the graph.
    fn nodes(&self) -> NodeIter {
        NodeIter {
            next: 0,
            count: self.node_count() as u32,
        }
    }

    /// Collects every edge of the graph into a vector, in node order.
    fn collect_edges(&self) -> Vec<Edge> {
        let mut edges = Vec::with_capacity(self.edge_count());
        for u in self.nodes() {
            for &v in self.out_neighbors(u) {
                edges.push(Edge {
                    source: u,
                    target: v,
                });
            }
        }
        edges
    }

    /// Sum of out-degrees, which must equal the edge count for a consistent graph.
    fn total_out_degree(&self) -> usize {
        self.nodes().map(|u| self.out_degree(u)).sum()
    }

    /// Sum of in-degrees, which must equal the edge count for a consistent graph.
    fn total_in_degree(&self) -> usize {
        self.nodes().map(|u| self.in_degree(u)).sum()
    }
}

/// Iterator over the dense node ids of a graph.
#[derive(Debug, Clone)]
pub struct NodeIter {
    next: u32,
    count: u32,
}

impl Iterator for NodeIter {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        if self.next < self.count {
            let id = NodeId(self.next);
            self.next += 1;
            Some(id)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = (self.count - self.next) as usize;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for NodeIter {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DynamicGraph;

    fn triangle() -> DynamicGraph {
        let mut g = DynamicGraph::with_nodes(3);
        g.add_edge(Edge::new(0, 1));
        g.add_edge(Edge::new(1, 2));
        g.add_edge(Edge::new(2, 0));
        g
    }

    #[test]
    fn node_iterator_yields_all_nodes() {
        let g = triangle();
        let nodes: Vec<_> = g.nodes().collect();
        assert_eq!(nodes, vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(g.nodes().len(), 3);
    }

    #[test]
    fn collect_edges_matches_edge_count() {
        let g = triangle();
        let edges = g.collect_edges();
        assert_eq!(edges.len(), g.edge_count());
        assert!(edges.contains(&Edge::new(2, 0)));
    }

    #[test]
    fn degree_sums_are_consistent() {
        let g = triangle();
        assert_eq!(g.total_out_degree(), g.edge_count());
        assert_eq!(g.total_in_degree(), g.edge_count());
    }

    #[test]
    fn dangling_detection() {
        let mut g = DynamicGraph::with_nodes(2);
        g.add_edge(Edge::new(0, 1));
        assert!(!g.is_dangling(NodeId(0)));
        assert!(g.is_dangling(NodeId(1)));
    }
}
