//! [`CsrGraph`]: an immutable compressed-sparse-row snapshot of a directed graph.
//!
//! The linear-algebraic baselines (power iteration, HITS, exact SALSA) sweep over every
//! edge of the graph on every iteration.  A CSR layout keeps those sweeps cache-friendly
//! and allocation-free, which matters because the naive-recomputation baselines in the
//! paper's comparison run the sweep once per arriving edge.

use crate::view::GraphView;
use crate::{Edge, NodeId};

/// An immutable directed graph in compressed-sparse-row form, storing both the
/// out-adjacency and the in-adjacency.
#[derive(Debug, Clone)]
pub struct CsrGraph {
    out_offsets: Vec<usize>,
    out_targets: Vec<NodeId>,
    in_offsets: Vec<usize>,
    in_sources: Vec<NodeId>,
}

impl CsrGraph {
    /// Builds a CSR snapshot from an edge list over `node_count` nodes.
    ///
    /// # Panics
    ///
    /// Panics if any edge references a node `>= node_count`.
    pub fn from_edges(node_count: usize, edges: &[Edge]) -> Self {
        for e in edges {
            assert!(
                e.source.index() < node_count && e.target.index() < node_count,
                "edge {e} references a node outside 0..{node_count}"
            );
        }

        let mut out_degree = vec![0usize; node_count];
        let mut in_degree = vec![0usize; node_count];
        for e in edges {
            out_degree[e.source.index()] += 1;
            in_degree[e.target.index()] += 1;
        }

        let out_offsets = prefix_sum(&out_degree);
        let in_offsets = prefix_sum(&in_degree);

        let mut out_targets = vec![NodeId(0); edges.len()];
        let mut in_sources = vec![NodeId(0); edges.len()];
        let mut out_cursor = out_offsets.clone();
        let mut in_cursor = in_offsets.clone();
        for e in edges {
            let s = e.source.index();
            let t = e.target.index();
            out_targets[out_cursor[s]] = e.target;
            out_cursor[s] += 1;
            in_sources[in_cursor[t]] = e.source;
            in_cursor[t] += 1;
        }

        CsrGraph {
            out_offsets,
            out_targets,
            in_offsets,
            in_sources,
        }
    }

    /// Builds a CSR snapshot of any [`GraphView`] (typically a [`crate::DynamicGraph`]).
    pub fn from_view<G: GraphView + ?Sized>(graph: &G) -> Self {
        Self::from_edges(graph.node_count(), &graph.collect_edges())
    }
}

fn prefix_sum(degrees: &[usize]) -> Vec<usize> {
    let mut offsets = Vec::with_capacity(degrees.len() + 1);
    let mut total = 0usize;
    offsets.push(0);
    for &d in degrees {
        total += d;
        offsets.push(total);
    }
    offsets
}

impl GraphView for CsrGraph {
    #[inline]
    fn node_count(&self) -> usize {
        self.out_offsets.len() - 1
    }

    #[inline]
    fn edge_count(&self) -> usize {
        self.out_targets.len()
    }

    #[inline]
    fn out_neighbors(&self, node: NodeId) -> &[NodeId] {
        let i = node.index();
        &self.out_targets[self.out_offsets[i]..self.out_offsets[i + 1]]
    }

    #[inline]
    fn in_neighbors(&self, node: NodeId) -> &[NodeId] {
        let i = node.index();
        &self.in_sources[self.in_offsets[i]..self.in_offsets[i + 1]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DynamicGraph;

    fn sample_edges() -> Vec<Edge> {
        vec![
            Edge::new(0, 1),
            Edge::new(0, 2),
            Edge::new(1, 2),
            Edge::new(2, 0),
            Edge::new(3, 2),
        ]
    }

    #[test]
    fn csr_matches_edge_list() {
        let edges = sample_edges();
        let g = CsrGraph::from_edges(4, &edges);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.out_neighbors(NodeId(0)), &[NodeId(1), NodeId(2)]);
        assert_eq!(g.out_neighbors(NodeId(3)), &[NodeId(2)]);
        assert_eq!(
            g.in_neighbors(NodeId(2)),
            &[NodeId(0), NodeId(1), NodeId(3)]
        );
        assert_eq!(g.in_degree(NodeId(0)), 1);
        assert_eq!(g.out_degree(NodeId(2)), 1);
    }

    #[test]
    fn csr_from_view_agrees_with_dynamic_graph() {
        let edges = sample_edges();
        let dynamic = DynamicGraph::from_edges(&edges, 0);
        let csr = CsrGraph::from_view(&dynamic);
        assert_eq!(csr.node_count(), dynamic.node_count());
        assert_eq!(csr.edge_count(), dynamic.edge_count());
        for u in dynamic.nodes() {
            let mut a: Vec<_> = dynamic.out_neighbors(u).to_vec();
            let mut b: Vec<_> = csr.out_neighbors(u).to_vec();
            a.sort();
            b.sort();
            assert_eq!(a, b, "out neighbours of {u} differ");
            let mut a: Vec<_> = dynamic.in_neighbors(u).to_vec();
            let mut b: Vec<_> = csr.in_neighbors(u).to_vec();
            a.sort();
            b.sort();
            assert_eq!(a, b, "in neighbours of {u} differ");
        }
    }

    #[test]
    fn empty_and_isolated_nodes() {
        let g = CsrGraph::from_edges(3, &[]);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 0);
        assert!(g.out_neighbors(NodeId(1)).is_empty());
        assert!(g.is_dangling(NodeId(2)));
    }

    #[test]
    #[should_panic(expected = "references a node outside")]
    fn out_of_range_edge_panics() {
        let _ = CsrGraph::from_edges(2, &[Edge::new(0, 7)]);
    }

    #[test]
    fn total_degrees_equal_edge_count() {
        let g = CsrGraph::from_edges(4, &sample_edges());
        assert_eq!(g.total_out_degree(), 5);
        assert_eq!(g.total_in_degree(), 5);
    }
}
