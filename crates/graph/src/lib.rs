//! Directed-graph substrate for the `fast-ppr` workspace.
//!
//! The paper (Bahmani, Chowdhury, Goel; VLDB 2010) works over the Twitter follower
//! graph: a large directed graph that evolves one edge at a time and is accessed
//! randomly through a distributed store.  This crate provides everything the rest of
//! the workspace needs to stand in for that substrate:
//!
//! * [`dynamic::DynamicGraph`] — an adjacency-list directed graph supporting edge
//!   insertion and deletion with in/out degree tracking (the shape FlockDB exposes).
//! * [`csr::CsrGraph`] — an immutable compressed-sparse-row snapshot used by the
//!   linear-algebraic baselines (power iteration, HITS, exact SALSA).
//! * [`generators`] — synthetic social-graph generators: directed preferential
//!   attachment, Chung–Lu power-law graphs, Erdős–Rényi graphs, and the adversarial
//!   gadget of the paper's Example 1.
//! * [`stream`] — edge-arrival orderings (random permutation, Dirichlet, adversarial)
//!   used to drive the incremental experiments.
//! * [`snapshot`] — two-date snapshot splits used by the link-prediction experiment
//!   (Table 1 of the paper).
//! * [`edgelist`] — plain-text edge-list (de)serialisation helpers.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod csr;
pub mod dynamic;
pub mod edgelist;
pub mod generators;
pub mod snapshot;
pub mod stream;
pub mod view;

pub use csr::CsrGraph;
pub use dynamic::DynamicGraph;
pub use view::GraphView;

/// Identifier of a node in a graph.
///
/// Nodes are dense indices in `0..node_count()`; the newtype exists so that node
/// identifiers and ordinary counters cannot be mixed up silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node id as a `usize` index, for indexing into per-node vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a [`NodeId`] from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32::MAX"))
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(value: u32) -> Self {
        NodeId(value)
    }
}

/// A directed edge `source -> target`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Tail of the edge (the follower, in social-network terms).
    pub source: NodeId,
    /// Head of the edge (the followee).
    pub target: NodeId,
}

impl Edge {
    /// Creates an edge from raw u32 endpoints.
    #[inline]
    pub fn new(source: u32, target: u32) -> Self {
        Edge {
            source: NodeId(source),
            target: NodeId(target),
        }
    }

    /// Returns the edge with source and target swapped.
    #[inline]
    pub fn reversed(self) -> Self {
        Edge {
            source: self.target,
            target: self.source,
        }
    }

    /// Returns `true` if the edge is a self-loop.
    #[inline]
    pub fn is_self_loop(self) -> bool {
        self.source == self.target
    }
}

impl From<(u32, u32)> for Edge {
    fn from((s, t): (u32, u32)) -> Self {
        Edge::new(s, t)
    }
}

impl std::fmt::Display for Edge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} -> {}", self.source, self.target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::from_index(42);
        assert_eq!(id, NodeId(42));
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_string(), "42");
    }

    #[test]
    fn node_id_from_u32() {
        let id: NodeId = 7u32.into();
        assert_eq!(id, NodeId(7));
    }

    #[test]
    #[should_panic(expected = "node index exceeds u32::MAX")]
    fn node_id_from_oversized_index_panics() {
        let _ = NodeId::from_index(u32::MAX as usize + 1);
    }

    #[test]
    fn edge_constructors_and_accessors() {
        let e = Edge::new(1, 2);
        assert_eq!(e.source, NodeId(1));
        assert_eq!(e.target, NodeId(2));
        assert_eq!(e.reversed(), Edge::new(2, 1));
        assert!(!e.is_self_loop());
        assert!(Edge::new(3, 3).is_self_loop());
        assert_eq!(e.to_string(), "1 -> 2");
    }

    #[test]
    fn edge_from_tuple() {
        let e: Edge = (5u32, 9u32).into();
        assert_eq!(e, Edge::new(5, 9));
    }

    #[test]
    fn node_id_ordering_is_numeric() {
        assert!(NodeId(3) < NodeId(10));
        let mut v = vec![NodeId(5), NodeId(1), NodeId(3)];
        v.sort();
        assert_eq!(v, vec![NodeId(1), NodeId(3), NodeId(5)]);
    }
}
