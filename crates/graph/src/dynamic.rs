//! [`DynamicGraph`]: a directed graph under edge insertions and deletions.
//!
//! This is the in-memory stand-in for the adjacency data FlockDB serves at Twitter:
//! for every node we keep both the out-adjacency (who the node follows) and the
//! in-adjacency (who follows the node), so that forward walks (PageRank), backward
//! walks and alternating walks (SALSA) all have O(1)-amortised random access to the
//! neighbour lists while the graph keeps changing.

use crate::view::GraphView;
use crate::{Edge, NodeId};
use rand::Rng;

/// A mutable directed graph with dense node ids.
///
/// Parallel edges are permitted (the generators never produce them, but the incremental
/// engine does not care) and self-loops are permitted as well.  Edge removal is O(out
/// degree + in degree) of the endpoints, which matches the cost model of an adjacency
/// store: a deletion has to locate the entry either way.
#[derive(Debug, Clone, Default)]
pub struct DynamicGraph {
    out_adj: Vec<Vec<NodeId>>,
    in_adj: Vec<Vec<NodeId>>,
    edge_count: usize,
}

impl DynamicGraph {
    /// Creates an empty graph with zero nodes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a graph with `n` isolated nodes.
    pub fn with_nodes(n: usize) -> Self {
        DynamicGraph {
            out_adj: vec![Vec::new(); n],
            in_adj: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Builds a graph from an edge list; the node count is `max endpoint + 1` unless
    /// `min_nodes` is larger.
    pub fn from_edges(edges: &[Edge], min_nodes: usize) -> Self {
        let max_node = edges
            .iter()
            .map(|e| e.source.index().max(e.target.index()) + 1)
            .max()
            .unwrap_or(0);
        let mut graph = Self::with_nodes(max_node.max(min_nodes));
        for &edge in edges {
            graph.add_edge(edge);
        }
        graph
    }

    /// Rebuilds a graph from raw adjacency lists, preserving the **exact entry order**
    /// of both directions.
    ///
    /// Adjacency order is observable state: `remove_edge` uses `swap_remove`, and
    /// random-neighbour sampling picks by position, so two graphs with the same edge
    /// multiset but different list orders diverge under the same RNG stream.  A
    /// checkpoint/restore cycle therefore has to round-trip the lists verbatim — this
    /// is the decode half of that surface ([`crate::view::GraphView::out_neighbors`] /
    /// [`crate::view::GraphView::in_neighbors`] are the encode half).
    ///
    /// Returns an error if the two directions disagree: every `u -> v` entry in the
    /// out-lists must appear exactly as often as the matching `v`-side in-list entry,
    /// and no entry may reference a node outside `0..out_adj.len()`.
    pub fn from_adjacency(
        out_adj: Vec<Vec<NodeId>>,
        in_adj: Vec<Vec<NodeId>>,
    ) -> Result<Self, String> {
        if out_adj.len() != in_adj.len() {
            return Err(format!(
                "adjacency lists disagree on the node count: {} out vs {} in",
                out_adj.len(),
                in_adj.len()
            ));
        }
        let n = out_adj.len();
        let mut forward: Vec<(u32, u32)> = Vec::new();
        for (u, targets) in out_adj.iter().enumerate() {
            for &v in targets {
                if v.index() >= n {
                    return Err(format!(
                        "out-edge {u} -> {v} references a node outside 0..{n}"
                    ));
                }
                forward.push((u as u32, v.0));
            }
        }
        let mut backward: Vec<(u32, u32)> = Vec::new();
        for (v, sources) in in_adj.iter().enumerate() {
            for &u in sources {
                if u.index() >= n {
                    return Err(format!(
                        "in-edge {u} -> {v} references a node outside 0..{n}"
                    ));
                }
                backward.push((u.0, v as u32));
            }
        }
        forward.sort_unstable();
        backward.sort_unstable();
        if forward != backward {
            return Err(
                "out- and in-adjacency lists describe different edge multisets".to_string(),
            );
        }
        let edge_count = forward.len();
        Ok(DynamicGraph {
            out_adj,
            in_adj,
            edge_count,
        })
    }

    /// Adds a new isolated node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::from_index(self.out_adj.len());
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        id
    }

    /// Ensures the graph has at least `n` nodes, adding isolated nodes if necessary.
    pub fn ensure_nodes(&mut self, n: usize) {
        while self.out_adj.len() < n {
            self.add_node();
        }
    }

    /// Inserts a directed edge.  Both endpoints must already exist.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, edge: Edge) {
        let n = self.out_adj.len();
        assert!(
            edge.source.index() < n && edge.target.index() < n,
            "edge {edge} references a node outside 0..{n}"
        );
        self.out_adj[edge.source.index()].push(edge.target);
        self.in_adj[edge.target.index()].push(edge.source);
        self.edge_count += 1;
    }

    /// Inserts a directed edge, growing the node set if an endpoint does not exist yet.
    pub fn add_edge_growing(&mut self, edge: Edge) {
        let needed = edge.source.index().max(edge.target.index()) + 1;
        self.ensure_nodes(needed);
        self.add_edge(edge);
    }

    /// Removes one occurrence of the directed edge, returning `true` if it was present.
    pub fn remove_edge(&mut self, edge: Edge) -> bool {
        if edge.source.index() >= self.out_adj.len() || edge.target.index() >= self.in_adj.len() {
            return false;
        }
        let out = &mut self.out_adj[edge.source.index()];
        let Some(pos) = out.iter().position(|&t| t == edge.target) else {
            return false;
        };
        out.swap_remove(pos);
        let inn = &mut self.in_adj[edge.target.index()];
        let pos = inn
            .iter()
            .position(|&s| s == edge.source)
            .expect("out/in adjacency lists out of sync");
        inn.swap_remove(pos);
        self.edge_count -= 1;
        true
    }

    /// Returns `true` if at least one copy of the edge is present.
    pub fn has_edge(&self, edge: Edge) -> bool {
        edge.source.index() < self.out_adj.len()
            && self.out_adj[edge.source.index()].contains(&edge.target)
    }

    /// Picks a uniformly random out-neighbour of `node`, or `None` if it has none.
    pub fn random_out_neighbor<R: Rng + ?Sized>(
        &self,
        node: NodeId,
        rng: &mut R,
    ) -> Option<NodeId> {
        let neighbors = &self.out_adj[node.index()];
        if neighbors.is_empty() {
            None
        } else {
            Some(neighbors[rng.gen_range(0..neighbors.len())])
        }
    }

    /// Picks a uniformly random in-neighbour of `node`, or `None` if it has none.
    pub fn random_in_neighbor<R: Rng + ?Sized>(&self, node: NodeId, rng: &mut R) -> Option<NodeId> {
        let neighbors = &self.in_adj[node.index()];
        if neighbors.is_empty() {
            None
        } else {
            Some(neighbors[rng.gen_range(0..neighbors.len())])
        }
    }

    /// Returns a uniformly random node id, or `None` for an empty graph.
    pub fn random_node<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<NodeId> {
        if self.out_adj.is_empty() {
            None
        } else {
            Some(NodeId::from_index(rng.gen_range(0..self.out_adj.len())))
        }
    }

    /// Removes every edge while keeping the node set.
    pub fn clear_edges(&mut self) {
        for list in &mut self.out_adj {
            list.clear();
        }
        for list in &mut self.in_adj {
            list.clear();
        }
        self.edge_count = 0;
    }

    /// Out-degree distribution as a vector indexed by node.
    pub fn out_degrees(&self) -> Vec<usize> {
        self.out_adj.iter().map(Vec::len).collect()
    }

    /// In-degree distribution as a vector indexed by node.
    pub fn in_degrees(&self) -> Vec<usize> {
        self.in_adj.iter().map(Vec::len).collect()
    }

    /// Internal consistency check used by tests and debug assertions: the out- and
    /// in-adjacency structures must describe the same multiset of edges.
    pub fn check_consistency(&self) -> Result<(), String> {
        let out_total: usize = self.out_adj.iter().map(Vec::len).sum();
        let in_total: usize = self.in_adj.iter().map(Vec::len).sum();
        if out_total != self.edge_count {
            return Err(format!(
                "out-adjacency holds {out_total} edges but edge_count is {}",
                self.edge_count
            ));
        }
        if in_total != self.edge_count {
            return Err(format!(
                "in-adjacency holds {in_total} edges but edge_count is {}",
                self.edge_count
            ));
        }
        let mut out_edges: Vec<(u32, u32)> = Vec::with_capacity(out_total);
        for (u, targets) in self.out_adj.iter().enumerate() {
            for &t in targets {
                out_edges.push((u as u32, t.0));
            }
        }
        let mut in_edges: Vec<(u32, u32)> = Vec::with_capacity(in_total);
        for (v, sources) in self.in_adj.iter().enumerate() {
            for &s in sources {
                in_edges.push((s.0, v as u32));
            }
        }
        out_edges.sort_unstable();
        in_edges.sort_unstable();
        if out_edges != in_edges {
            return Err("out- and in-adjacency lists describe different edge sets".to_string());
        }
        Ok(())
    }
}

impl GraphView for DynamicGraph {
    #[inline]
    fn node_count(&self) -> usize {
        self.out_adj.len()
    }

    #[inline]
    fn edge_count(&self) -> usize {
        self.edge_count
    }

    #[inline]
    fn out_neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.out_adj[node.index()]
    }

    #[inline]
    fn in_neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.in_adj[node.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn empty_graph_has_no_nodes_or_edges() {
        let g = DynamicGraph::new();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(g.check_consistency().is_ok());
    }

    #[test]
    fn add_and_remove_edges() {
        let mut g = DynamicGraph::with_nodes(4);
        g.add_edge(Edge::new(0, 1));
        g.add_edge(Edge::new(0, 2));
        g.add_edge(Edge::new(3, 0));
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.out_degree(NodeId(0)), 2);
        assert_eq!(g.in_degree(NodeId(0)), 1);
        assert!(g.has_edge(Edge::new(0, 2)));

        assert!(g.remove_edge(Edge::new(0, 2)));
        assert!(!g.has_edge(Edge::new(0, 2)));
        assert_eq!(g.edge_count(), 2);
        assert!(!g.remove_edge(Edge::new(0, 2)), "double removal must fail");
        assert!(g.check_consistency().is_ok());
    }

    #[test]
    fn parallel_edges_are_counted_separately() {
        let mut g = DynamicGraph::with_nodes(2);
        g.add_edge(Edge::new(0, 1));
        g.add_edge(Edge::new(0, 1));
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.out_degree(NodeId(0)), 2);
        assert!(g.remove_edge(Edge::new(0, 1)));
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(Edge::new(0, 1)));
    }

    #[test]
    fn add_edge_growing_extends_node_set() {
        let mut g = DynamicGraph::new();
        g.add_edge_growing(Edge::new(2, 5));
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(Edge::new(2, 5)));
    }

    #[test]
    #[should_panic(expected = "references a node outside")]
    fn add_edge_out_of_range_panics() {
        let mut g = DynamicGraph::with_nodes(2);
        g.add_edge(Edge::new(0, 5));
    }

    #[test]
    fn from_edges_builds_expected_graph() {
        let edges = vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 0)];
        let g = DynamicGraph::from_edges(&edges, 0);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        let g_padded = DynamicGraph::from_edges(&edges, 10);
        assert_eq!(g_padded.node_count(), 10);
    }

    #[test]
    fn random_neighbor_sampling_respects_adjacency() {
        let mut g = DynamicGraph::with_nodes(4);
        g.add_edge(Edge::new(0, 1));
        g.add_edge(Edge::new(0, 2));
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..50 {
            let v = g.random_out_neighbor(NodeId(0), &mut rng).unwrap();
            assert!(v == NodeId(1) || v == NodeId(2));
        }
        assert!(g.random_out_neighbor(NodeId(3), &mut rng).is_none());
        assert!(g.random_in_neighbor(NodeId(0), &mut rng).is_none());
        let u = g.random_in_neighbor(NodeId(1), &mut rng).unwrap();
        assert_eq!(u, NodeId(0));
    }

    #[test]
    fn random_node_covers_range() {
        let g = DynamicGraph::with_nodes(3);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[g.random_node(&mut rng).unwrap().index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert!(DynamicGraph::new().random_node(&mut rng).is_none());
    }

    #[test]
    fn clear_edges_keeps_nodes() {
        let mut g = DynamicGraph::with_nodes(3);
        g.add_edge(Edge::new(0, 1));
        g.clear_edges();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 0);
        assert!(g.check_consistency().is_ok());
    }

    #[test]
    fn degree_vectors_match_graphview() {
        let mut g = DynamicGraph::with_nodes(3);
        g.add_edge(Edge::new(0, 1));
        g.add_edge(Edge::new(0, 2));
        g.add_edge(Edge::new(1, 2));
        assert_eq!(g.out_degrees(), vec![2, 1, 0]);
        assert_eq!(g.in_degrees(), vec![0, 1, 2]);
    }

    #[test]
    fn from_adjacency_round_trips_exact_list_order() {
        let mut g = DynamicGraph::with_nodes(4);
        for edge in [
            Edge::new(0, 2),
            Edge::new(0, 1),
            Edge::new(2, 0),
            Edge::new(0, 1), // parallel edge
            Edge::new(3, 3), // self loop
        ] {
            g.add_edge(edge);
        }
        // Deletion reorders via swap_remove; the round trip must preserve that order.
        g.remove_edge(Edge::new(0, 2));
        let out: Vec<Vec<NodeId>> = g.nodes().map(|u| g.out_neighbors(u).to_vec()).collect();
        let inn: Vec<Vec<NodeId>> = g.nodes().map(|u| g.in_neighbors(u).to_vec()).collect();
        let rebuilt = DynamicGraph::from_adjacency(out.clone(), inn.clone()).unwrap();
        assert_eq!(rebuilt.edge_count(), g.edge_count());
        for u in g.nodes() {
            assert_eq!(rebuilt.out_neighbors(u), g.out_neighbors(u));
            assert_eq!(rebuilt.in_neighbors(u), g.in_neighbors(u));
        }
        assert!(rebuilt.check_consistency().is_ok());
    }

    #[test]
    fn from_adjacency_rejects_mismatched_directions() {
        let out = vec![vec![NodeId(1)], vec![]];
        let inn = vec![vec![], vec![]];
        assert!(DynamicGraph::from_adjacency(out, inn)
            .unwrap_err()
            .contains("different edge multisets"));
        let out = vec![vec![NodeId(7)], vec![]];
        let inn = vec![vec![], vec![NodeId(0)]];
        assert!(DynamicGraph::from_adjacency(out, inn)
            .unwrap_err()
            .contains("outside"));
        assert!(DynamicGraph::from_adjacency(vec![vec![]], vec![])
            .unwrap_err()
            .contains("node count"));
    }

    #[test]
    fn self_loops_are_allowed() {
        let mut g = DynamicGraph::with_nodes(1);
        g.add_edge(Edge::new(0, 0));
        assert_eq!(g.out_degree(NodeId(0)), 1);
        assert_eq!(g.in_degree(NodeId(0)), 1);
        assert!(g.check_consistency().is_ok());
        assert!(g.remove_edge(Edge::new(0, 0)));
        assert_eq!(g.edge_count(), 0);
    }
}
