//! Plain-text edge-list (de)serialisation.
//!
//! Experiments write their inputs and outputs as simple whitespace-separated
//! `source target` lines so that runs can be reproduced and inspected without any
//! binary tooling.  Lines starting with `#` are comments.

use crate::{Edge, NodeId};
use std::io::{self, BufRead, Write};

/// Writes `edges` as `source target` lines to `writer`.
pub fn write_edges<W: Write>(writer: &mut W, edges: &[Edge]) -> io::Result<()> {
    for e in edges {
        writeln!(writer, "{} {}", e.source.0, e.target.0)?;
    }
    Ok(())
}

/// Parses `source target` lines from `reader`.  Blank lines and lines starting with `#`
/// are skipped.  Returns an error describing the offending line on malformed input.
pub fn read_edges<R: BufRead>(reader: R) -> io::Result<Vec<Edge>> {
    let mut edges = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let source = parse_node(parts.next(), lineno, trimmed)?;
        let target = parse_node(parts.next(), lineno, trimmed)?;
        if parts.next().is_some() {
            return Err(malformed(lineno, trimmed, "expected exactly two fields"));
        }
        edges.push(Edge { source, target });
    }
    Ok(edges)
}

fn parse_node(field: Option<&str>, lineno: usize, line: &str) -> io::Result<NodeId> {
    let field = field.ok_or_else(|| malformed(lineno, line, "missing field"))?;
    let value: u32 = field
        .parse()
        .map_err(|_| malformed(lineno, line, "field is not a u32"))?;
    Ok(NodeId(value))
}

fn malformed(lineno: usize, line: &str, reason: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!(
            "malformed edge list at line {}: {reason}: {line:?}",
            lineno + 1
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let edges = vec![Edge::new(0, 1), Edge::new(5, 2), Edge::new(2, 2)];
        let mut buffer = Vec::new();
        write_edges(&mut buffer, &edges).unwrap();
        let parsed = read_edges(&buffer[..]).unwrap();
        assert_eq!(parsed, edges);
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let text = "# a comment\n\n0 1\n  \n# another\n2 3\n";
        let parsed = read_edges(text.as_bytes()).unwrap();
        assert_eq!(parsed, vec![Edge::new(0, 1), Edge::new(2, 3)]);
    }

    #[test]
    fn rejects_missing_field() {
        let err = read_edges("0\n".as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn rejects_extra_fields() {
        let err = read_edges("0 1 2\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("exactly two fields"));
    }

    #[test]
    fn rejects_non_numeric() {
        let err = read_edges("a b\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("not a u32"));
    }

    #[test]
    fn empty_input_gives_empty_list() {
        assert!(read_edges("".as_bytes()).unwrap().is_empty());
    }
}
