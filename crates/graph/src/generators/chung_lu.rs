//! Chung–Lu style directed power-law graph generator.
//!
//! Each node `i` gets an expected in-weight proportional to `(i + 1)^{-alpha}` (a rank
//! power law with exponent `alpha`, matching the paper's Figure 2 where the i-th largest
//! in-degree is proportional to `i^{-0.76}`) and an expected out-weight proportional to
//! `(i + 1)^{-beta}`.  Edges are then drawn independently with both endpoints sampled
//! from the corresponding weight distributions.
//!
//! Compared with preferential attachment this generator gives direct control over the
//! power-law exponent, which is what the personalized-PageRank model of Section 3.1
//! parameterises on.

use crate::{DynamicGraph, Edge, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters for the Chung–Lu power-law generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChungLuConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of edges to draw.
    pub edges: usize,
    /// Rank power-law exponent of the expected in-degrees (the paper observes ≈ 0.76).
    pub in_exponent: f64,
    /// Rank power-law exponent of the expected out-degrees.  `0.0` gives uniform
    /// out-degrees.
    pub out_exponent: f64,
    /// RNG seed.
    pub seed: u64,
}

impl ChungLuConfig {
    /// A Twitter-like default: in-degree exponent 0.76, mildly skewed out-degrees.
    pub fn twitter_like(nodes: usize, edges: usize, seed: u64) -> Self {
        ChungLuConfig {
            nodes,
            edges,
            in_exponent: 0.76,
            out_exponent: 0.4,
            seed,
        }
    }
}

/// Pre-computed cumulative distribution over nodes with rank power-law weights.
#[derive(Debug)]
struct RankPowerLawSampler {
    cumulative: Vec<f64>,
}

impl RankPowerLawSampler {
    fn new(nodes: usize, exponent: f64) -> Self {
        assert!(nodes > 0, "sampler needs at least one node");
        assert!(exponent >= 0.0, "exponent must be non-negative");
        let mut cumulative = Vec::with_capacity(nodes);
        let mut total = 0.0f64;
        for i in 0..nodes {
            total += ((i + 1) as f64).powf(-exponent);
            cumulative.push(total);
        }
        RankPowerLawSampler { cumulative }
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> NodeId {
        let total = *self.cumulative.last().expect("non-empty cumulative table");
        let x = rng.gen_range(0.0..total);
        let idx = self.cumulative.partition_point(|&c| c <= x);
        NodeId::from_index(idx.min(self.cumulative.len() - 1))
    }
}

/// Draws the edges of a Chung–Lu power-law graph.
///
/// Self-loops are rejected and redrawn; parallel edges are allowed (they are rare and
/// the walk algorithms treat them as multi-edges, matching how a follower graph with
/// repeated follow/unfollow events would look).
pub fn chung_lu_edges(config: &ChungLuConfig) -> Vec<Edge> {
    assert!(config.nodes >= 2, "need at least two nodes");
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let in_sampler = RankPowerLawSampler::new(config.nodes, config.in_exponent);
    let out_sampler = RankPowerLawSampler::new(config.nodes, config.out_exponent);

    let mut edges = Vec::with_capacity(config.edges);
    while edges.len() < config.edges {
        let source = out_sampler.sample(&mut rng);
        let target = in_sampler.sample(&mut rng);
        if source != target {
            edges.push(Edge { source, target });
        }
    }
    edges
}

/// Builds a [`DynamicGraph`] from [`chung_lu_edges`].
pub fn chung_lu(config: &ChungLuConfig) -> DynamicGraph {
    DynamicGraph::from_edges(&chung_lu_edges(config), config.nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphView;

    #[test]
    fn generates_requested_counts() {
        let config = ChungLuConfig::twitter_like(1_000, 8_000, 3);
        let g = chung_lu(&config);
        assert_eq!(g.node_count(), 1_000);
        assert_eq!(g.edge_count(), 8_000);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let config = ChungLuConfig::twitter_like(500, 2_000, 21);
        assert_eq!(chung_lu_edges(&config), chung_lu_edges(&config));
    }

    #[test]
    fn no_self_loops() {
        let config = ChungLuConfig::twitter_like(300, 3_000, 5);
        for e in chung_lu_edges(&config) {
            assert!(!e.is_self_loop());
        }
    }

    #[test]
    fn low_rank_nodes_receive_more_edges() {
        let config = ChungLuConfig {
            nodes: 2_000,
            edges: 40_000,
            in_exponent: 0.8,
            out_exponent: 0.0,
            seed: 9,
        };
        let g = chung_lu(&config);
        let in_degrees = g.in_degrees();
        let head: usize = in_degrees[..20].iter().sum();
        let tail: usize = in_degrees[in_degrees.len() - 20..].iter().sum();
        assert!(
            head > 10 * tail.max(1),
            "rank-0 nodes should dominate: head={head}, tail={tail}"
        );
    }

    #[test]
    fn zero_out_exponent_gives_roughly_uniform_out_degrees() {
        let config = ChungLuConfig {
            nodes: 1_000,
            edges: 20_000,
            in_exponent: 0.76,
            out_exponent: 0.0,
            seed: 2,
        };
        let g = chung_lu(&config);
        let out_degrees = g.out_degrees();
        let max = *out_degrees.iter().max().unwrap() as f64;
        let mean = 20_000.0 / 1_000.0;
        assert!(
            max < mean * 4.0,
            "uniform out-degrees should not produce extreme hubs (max {max}, mean {mean})"
        );
    }

    #[test]
    fn sampler_respects_weights() {
        let sampler = RankPowerLawSampler::new(4, 1.0);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[sampler.sample(&mut rng).index()] += 1;
        }
        // Weights are 1, 1/2, 1/3, 1/4: node 0 must be sampled most, node 3 least.
        assert!(counts[0] > counts[1] && counts[1] > counts[2] && counts[2] > counts[3]);
        let ratio = counts[0] as f64 / counts[3] as f64;
        assert!(
            (3.0..5.5).contains(&ratio),
            "expected ratio near 4, got {ratio}"
        );
    }

    #[test]
    #[should_panic(expected = "need at least two nodes")]
    fn rejects_tiny_graphs() {
        let _ = chung_lu_edges(&ChungLuConfig::twitter_like(1, 10, 0));
    }
}
