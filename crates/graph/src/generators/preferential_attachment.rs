//! Directed preferential attachment (Barabási–Albert style) generator.
//!
//! Nodes arrive one at a time; each new node follows `out_degree` existing nodes chosen
//! proportionally to their current in-degree plus one.  The "+1" smoothing means that
//! freshly arrived nodes can also be followed, exactly as in the Bollobás et al. directed
//! scale-free model, and produces a power-law in-degree distribution — the property the
//! paper verifies on Twitter data in Figure 2.

use crate::{DynamicGraph, Edge, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters for the directed preferential-attachment generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreferentialAttachmentConfig {
    /// Total number of nodes to generate.
    pub nodes: usize,
    /// Number of outgoing edges each arriving node creates.
    pub out_degree: usize,
    /// Probability of choosing the target uniformly at random instead of by preferential
    /// attachment.  `0.0` gives pure preferential attachment; larger values flatten the
    /// in-degree power law (larger rank-plot exponent).
    pub uniform_mix: f64,
    /// RNG seed, so that every experiment is reproducible.
    pub seed: u64,
}

impl PreferentialAttachmentConfig {
    /// A reasonable default: pure preferential attachment.
    pub fn new(nodes: usize, out_degree: usize, seed: u64) -> Self {
        PreferentialAttachmentConfig {
            nodes,
            out_degree,
            uniform_mix: 0.0,
            seed,
        }
    }

    /// Sets the uniform-attachment mixing probability.
    pub fn with_uniform_mix(mut self, uniform_mix: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&uniform_mix),
            "uniform_mix must be a probability, got {uniform_mix}"
        );
        self.uniform_mix = uniform_mix;
        self
    }
}

/// Generates the edges of a directed preferential-attachment graph, in arrival order.
///
/// The first `out_degree + 1` nodes form a seed clique (every seed follows every other
/// seed), so that every node — including the eventual in-degree hubs, which are almost
/// always seed nodes — ends up with exactly `out_degree` outgoing edges, as a real
/// follower graph's celebrities also follow a normal number of accounts.  Each later
/// node `u` adds `out_degree` edges to distinct existing nodes chosen preferentially by
/// in-degree.
pub fn preferential_attachment_edges(config: &PreferentialAttachmentConfig) -> Vec<Edge> {
    assert!(config.nodes >= 2, "need at least two nodes");
    assert!(config.out_degree >= 1, "need at least one edge per node");
    let mut rng = SmallRng::seed_from_u64(config.seed);

    // `pool` holds one entry per node creation (the +1 smoothing) plus one entry per
    // received edge, so sampling uniformly from it samples proportionally to
    // in-degree + 1.
    let mut pool: Vec<NodeId> = Vec::with_capacity(config.nodes * (config.out_degree + 1));
    let mut edges: Vec<Edge> = Vec::with_capacity(config.nodes * config.out_degree);

    let seed_nodes = (config.out_degree + 1).min(config.nodes);
    for u in 0..seed_nodes {
        pool.push(NodeId::from_index(u));
    }
    // Seed clique: every seed node follows every other seed node.
    for u in 0..seed_nodes {
        for v in 0..seed_nodes {
            if u != v {
                edges.push(Edge::new(u as u32, v as u32));
                pool.push(NodeId::from_index(v));
            }
        }
    }

    let mut chosen: Vec<NodeId> = Vec::with_capacity(config.out_degree);
    for u in seed_nodes..config.nodes {
        let source = NodeId::from_index(u);
        chosen.clear();
        let want = config.out_degree.min(u);
        let mut attempts = 0usize;
        while chosen.len() < want && attempts < want * 20 {
            attempts += 1;
            let candidate = if rng.gen_bool(config.uniform_mix) {
                NodeId::from_index(rng.gen_range(0..u))
            } else {
                pool[rng.gen_range(0..pool.len())]
            };
            if candidate != source && !chosen.contains(&candidate) {
                chosen.push(candidate);
            }
        }
        for &target in &chosen {
            edges.push(Edge { source, target });
            pool.push(target);
        }
        pool.push(source);
    }

    edges
}

/// Generates a directed preferential-attachment graph (see
/// [`preferential_attachment_edges`] for the arrival-ordered edge list).
pub fn preferential_attachment(nodes: usize, out_degree: usize, seed: u64) -> DynamicGraph {
    let config = PreferentialAttachmentConfig::new(nodes, out_degree, seed);
    let edges = preferential_attachment_edges(&config);
    DynamicGraph::from_edges(&edges, nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphView;

    #[test]
    fn generates_expected_node_and_edge_counts() {
        let g = preferential_attachment(500, 4, 11);
        assert_eq!(g.node_count(), 500);
        // Every node — the 5 seed-clique nodes included — contributes exactly
        // `out_degree` outgoing edges.
        assert_eq!(g.edge_count(), 500 * 4);
        assert!(g.out_degrees().iter().all(|&d| d == 4));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let config = PreferentialAttachmentConfig::new(200, 3, 99);
        let a = preferential_attachment_edges(&config);
        let b = preferential_attachment_edges(&config);
        assert_eq!(a, b);
        let c = preferential_attachment_edges(&PreferentialAttachmentConfig::new(200, 3, 100));
        assert_ne!(a, c, "different seeds should give different graphs");
    }

    #[test]
    fn no_self_loops_and_no_duplicate_targets_per_node() {
        let config = PreferentialAttachmentConfig::new(300, 5, 7);
        let edges = preferential_attachment_edges(&config);
        for e in &edges {
            assert_ne!(e.source, e.target, "self loop generated: {e}");
        }
        let mut per_source: std::collections::HashMap<NodeId, Vec<NodeId>> =
            std::collections::HashMap::new();
        for e in &edges {
            per_source.entry(e.source).or_default().push(e.target);
        }
        for (source, targets) in per_source {
            let mut sorted = targets.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(
                sorted.len(),
                targets.len(),
                "node {source} follows the same node twice"
            );
        }
    }

    #[test]
    fn in_degree_is_heavy_tailed() {
        let g = preferential_attachment(3_000, 5, 13);
        let mut in_degrees = g.in_degrees();
        in_degrees.sort_unstable_by(|a, b| b.cmp(a));
        let max = in_degrees[0];
        let median = in_degrees[in_degrees.len() / 2];
        // Preferential attachment produces hubs far above the median in-degree.
        assert!(
            max >= 10 * median.max(1),
            "expected a heavy tail, max={max} median={median}"
        );
    }

    #[test]
    fn uniform_mix_flattens_the_tail() {
        let pa = preferential_attachment(2_000, 5, 17);
        let mixed = DynamicGraph::from_edges(
            &preferential_attachment_edges(
                &PreferentialAttachmentConfig::new(2_000, 5, 17).with_uniform_mix(1.0),
            ),
            2_000,
        );
        let max_pa = *pa.in_degrees().iter().max().unwrap();
        let max_mixed = *mixed.in_degrees().iter().max().unwrap();
        assert!(
            max_pa > max_mixed,
            "pure PA should have a larger hub than uniform attachment ({max_pa} vs {max_mixed})"
        );
    }

    #[test]
    #[should_panic(expected = "uniform_mix must be a probability")]
    fn invalid_uniform_mix_panics() {
        let _ = PreferentialAttachmentConfig::new(10, 2, 0).with_uniform_mix(1.5);
    }
}
