//! Small deterministic graphs and the adversarial gadget of the paper's Example 1.
//!
//! Example 1 (Section 2.2) shows that the random-permutation assumption is necessary:
//! there is a graph on `n = 3N + 1` nodes where inserting the single edge `u -> v1`
//! forces Ω(n) walk segments to be rebuilt.  [`example1_gadget`] builds that graph and
//! returns the adversarial edge so the experiment `example1_adversarial` can measure the
//! blow-up directly.

use crate::{DynamicGraph, Edge, NodeId};

/// The adversarial construction of Example 1.
///
/// The blow-up is about arrival *order*: the adversary lets every edge pointing *into*
/// the hub `u` (and the whole `v`/`y` structure) arrive first, and only then delivers
/// `u -> v1` — at which point `u` has Ω(n) walk segments ending on it and no other
/// outgoing edge, so every one of those segments must be extended.
/// [`Example1::adversarial_prefix_graph`] is the graph at that adversarial moment;
/// [`Example1::graph`] is the complete gadget (the hub's edges to the `x_j` included)
/// for experiments that want the final edge set.
#[derive(Debug, Clone)]
pub struct Example1 {
    /// The complete gadget (all edges except the adversarial one).
    pub graph: DynamicGraph,
    /// The single edge `u -> v1` delivered at the adversarial moment.
    pub adversarial_edge: Edge,
    /// The hub's outgoing edges `u -> x_j`, which the adversary schedules *after* the
    /// adversarial edge.
    pub hub_out_edges: Vec<Edge>,
    /// The hub node `u`.
    pub hub: NodeId,
    /// The cycle entry node `v1`.
    pub cycle_entry: NodeId,
    /// Size parameter `N`; the graph has `3N + 1` nodes.
    pub n_param: usize,
}

impl Example1 {
    /// The graph as it stands when the adversarial edge arrives: every edge of the
    /// gadget except the hub's own outgoing edges (`u -> x_j`), which the adversary
    /// has postponed.  At this point Ω(n) walk segments terminate at the dangling hub,
    /// and inserting `u -> v1` forces all of them to be extended.
    pub fn adversarial_prefix_graph(&self) -> DynamicGraph {
        let mut graph = self.graph.clone();
        for &edge in &self.hub_out_edges {
            let removed = graph.remove_edge(edge);
            debug_assert!(removed, "hub out-edge {edge} missing from the full gadget");
        }
        graph
    }
}

/// Builds the Example 1 gadget with parameter `n_param = N`.
///
/// Node layout (total `3N + 1` nodes):
/// * `0..N`      — the directed cycle `v_1, ..., v_N`
/// * `N`         — the hub `u`
/// * `N+1..2N+1` — the `x_j` nodes
/// * `2N+1..3N+1`— the `y_j` nodes
///
/// Edges: `v_j -> u` for all j, `u -> x_j` and `x_j -> u` for all j, `v_1 -> y_j` and
/// `y_j -> v_1` for all j, plus the cycle edges `v_j -> v_{j+1}`.
pub fn example1_gadget(n_param: usize) -> Example1 {
    assert!(n_param >= 2, "Example 1 needs N >= 2");
    let n = 3 * n_param + 1;
    let mut graph = DynamicGraph::with_nodes(n);

    let v = |j: usize| NodeId::from_index(j); // j in 0..N  (v_{j+1} in the paper)
    let u = NodeId::from_index(n_param);
    let x = |j: usize| NodeId::from_index(n_param + 1 + j);
    let y = |j: usize| NodeId::from_index(2 * n_param + 1 + j);

    let mut hub_out_edges = Vec::with_capacity(n_param);
    for j in 0..n_param {
        // Cycle edge v_j -> v_{j+1 mod N}.
        graph.add_edge(Edge {
            source: v(j),
            target: v((j + 1) % n_param),
        });
        // v_j -> u.
        graph.add_edge(Edge {
            source: v(j),
            target: u,
        });
        // u -> x_j and x_j -> u.
        let hub_edge = Edge {
            source: u,
            target: x(j),
        };
        graph.add_edge(hub_edge);
        hub_out_edges.push(hub_edge);
        graph.add_edge(Edge {
            source: x(j),
            target: u,
        });
        // v_1 -> y_j and y_j -> v_1.
        graph.add_edge(Edge {
            source: v(0),
            target: y(j),
        });
        graph.add_edge(Edge {
            source: y(j),
            target: v(0),
        });
    }

    Example1 {
        graph,
        adversarial_edge: Edge {
            source: u,
            target: v(0),
        },
        hub_out_edges,
        hub: u,
        cycle_entry: v(0),
        n_param,
    }
}

/// A directed cycle `0 -> 1 -> ... -> n-1 -> 0`.
pub fn directed_cycle(n: usize) -> DynamicGraph {
    assert!(n >= 2, "a cycle needs at least two nodes");
    let mut g = DynamicGraph::with_nodes(n);
    for i in 0..n {
        g.add_edge(Edge::new(i as u32, ((i + 1) % n) as u32));
    }
    g
}

/// A directed path `0 -> 1 -> ... -> n-1`.
pub fn directed_path(n: usize) -> DynamicGraph {
    assert!(n >= 1, "a path needs at least one node");
    let mut g = DynamicGraph::with_nodes(n);
    for i in 0..n.saturating_sub(1) {
        g.add_edge(Edge::new(i as u32, (i + 1) as u32));
    }
    g
}

/// A star where every leaf `1..n` points at the centre `0`.
pub fn star_inward(n: usize) -> DynamicGraph {
    assert!(n >= 2, "a star needs at least two nodes");
    let mut g = DynamicGraph::with_nodes(n);
    for i in 1..n {
        g.add_edge(Edge::new(i as u32, 0));
    }
    g
}

/// A star where the centre `0` points at every leaf `1..n`.
pub fn star_outward(n: usize) -> DynamicGraph {
    assert!(n >= 2, "a star needs at least two nodes");
    let mut g = DynamicGraph::with_nodes(n);
    for i in 1..n {
        g.add_edge(Edge::new(0, i as u32));
    }
    g
}

/// The complete directed graph on `n` nodes (no self-loops).
pub fn complete_graph(n: usize) -> DynamicGraph {
    assert!(n >= 2, "a complete graph needs at least two nodes");
    let mut g = DynamicGraph::with_nodes(n);
    for i in 0..n {
        for j in 0..n {
            if i != j {
                g.add_edge(Edge::new(i as u32, j as u32));
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphView;

    #[test]
    fn example1_has_expected_shape() {
        let ex = example1_gadget(10);
        let g = &ex.graph;
        assert_eq!(g.node_count(), 31);
        // 6 edges per j (cycle, v->u, u->x, x->u, v1->y, y->v1).
        assert_eq!(g.edge_count(), 60);
        assert_eq!(ex.hub, NodeId(10));
        assert_eq!(ex.cycle_entry, NodeId(0));
        // The hub is followed by every cycle node and every x node.
        assert_eq!(g.in_degree(ex.hub), 20);
        // The hub follows every x node (the adversarial edge is not inserted yet).
        assert_eq!(g.out_degree(ex.hub), 10);
        assert_eq!(ex.hub_out_edges.len(), 10);
        assert!(!g.has_edge(ex.adversarial_edge));
        assert!(g.check_consistency().is_ok());
    }

    #[test]
    fn adversarial_prefix_graph_leaves_the_hub_dangling() {
        let ex = example1_gadget(8);
        let prefix = ex.adversarial_prefix_graph();
        assert_eq!(
            prefix.out_degree(ex.hub),
            0,
            "the hub's out-edges arrive later"
        );
        assert_eq!(
            prefix.in_degree(ex.hub),
            16,
            "edges into the hub already arrived"
        );
        assert_eq!(prefix.edge_count(), ex.graph.edge_count() - ex.n_param);
        assert!(prefix.check_consistency().is_ok());
    }

    #[test]
    fn example1_cycle_entry_is_heavily_connected() {
        let ex = example1_gadget(5);
        // v1 follows: v2 (cycle), u, and all 5 y nodes = 7 out-edges.
        assert_eq!(ex.graph.out_degree(ex.cycle_entry), 7);
        // v1 is followed by: v_N (cycle) and all 5 y nodes = 6 in-edges.
        assert_eq!(ex.graph.in_degree(ex.cycle_entry), 6);
    }

    #[test]
    #[should_panic(expected = "Example 1 needs N >= 2")]
    fn example1_rejects_tiny_parameter() {
        let _ = example1_gadget(1);
    }

    #[test]
    fn cycle_path_star_complete_shapes() {
        let cycle = directed_cycle(5);
        assert_eq!(cycle.edge_count(), 5);
        assert!(cycle
            .nodes()
            .all(|u| cycle.out_degree(u) == 1 && cycle.in_degree(u) == 1));

        let path = directed_path(4);
        assert_eq!(path.edge_count(), 3);
        assert!(path.is_dangling(NodeId(3)));

        let star_in = star_inward(6);
        assert_eq!(star_in.in_degree(NodeId(0)), 5);
        assert_eq!(star_in.out_degree(NodeId(0)), 0);

        let star_out = star_outward(6);
        assert_eq!(star_out.out_degree(NodeId(0)), 5);
        assert_eq!(star_out.in_degree(NodeId(0)), 0);

        let complete = complete_graph(4);
        assert_eq!(complete.edge_count(), 12);
        assert!(complete.nodes().all(|u| complete.out_degree(u) == 3));
    }

    #[test]
    fn single_node_path_is_edgeless() {
        let path = directed_path(1);
        assert_eq!(path.node_count(), 1);
        assert_eq!(path.edge_count(), 0);
    }
}
