//! Synthetic social-graph generators.
//!
//! The paper's experiments run on the Twitter follower graph, which we cannot ship.
//! These generators produce graphs with the two properties the paper's analysis and
//! experiments actually rely on:
//!
//! 1. **Power-law in-degrees** (Figure 2; exponent ≈ 0.76 on the rank plot), supplied by
//!    [`mod@preferential_attachment`] and [`mod@chung_lu`].
//! 2. **Random-permutation edge arrivals** (Section 2.2 / Figure 1), supplied by
//!    replaying any generated edge list through [`crate::stream`].
//!
//! In addition, [`gadget`] builds the adversarial construction of the paper's Example 1,
//! and small deterministic graphs (cycles, stars, complete graphs) used heavily in unit
//! and property tests.

pub mod chung_lu;
pub mod erdos_renyi;
pub mod gadget;
pub mod preferential_attachment;

pub use chung_lu::{chung_lu, chung_lu_edges, ChungLuConfig};
pub use erdos_renyi::{erdos_renyi, erdos_renyi_edges};
pub use gadget::{
    complete_graph, directed_cycle, directed_path, example1_gadget, star_inward, star_outward,
    Example1,
};
pub use preferential_attachment::{
    preferential_attachment, preferential_attachment_edges, PreferentialAttachmentConfig,
};
