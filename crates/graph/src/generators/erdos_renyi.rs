//! Directed Erdős–Rényi G(n, m) generator.
//!
//! Used as a *non*-power-law control in the experiments (the paper's personalization
//! bound of Theorem 8 depends on the power-law assumption; the Erdős–Rényi control shows
//! what changes without it) and as a convenient random graph for unit tests.

use crate::{DynamicGraph, Edge};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Draws `edges` directed edges uniformly at random among `nodes` nodes, without
/// self-loops.  Parallel edges are allowed.
pub fn erdos_renyi_edges(nodes: usize, edges: usize, seed: u64) -> Vec<Edge> {
    assert!(nodes >= 2, "need at least two nodes to draw an edge");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(edges);
    while out.len() < edges {
        let source = rng.gen_range(0..nodes) as u32;
        let target = rng.gen_range(0..nodes) as u32;
        if source != target {
            out.push(Edge::new(source, target));
        }
    }
    out
}

/// Builds a [`DynamicGraph`] with `edges` uniformly random directed edges.
pub fn erdos_renyi(nodes: usize, edges: usize, seed: u64) -> DynamicGraph {
    DynamicGraph::from_edges(&erdos_renyi_edges(nodes, edges, seed), nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphView;

    #[test]
    fn produces_requested_counts() {
        let g = erdos_renyi(100, 500, 1);
        assert_eq!(g.node_count(), 100);
        assert_eq!(g.edge_count(), 500);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        assert_eq!(erdos_renyi_edges(50, 200, 7), erdos_renyi_edges(50, 200, 7));
        assert_ne!(erdos_renyi_edges(50, 200, 7), erdos_renyi_edges(50, 200, 8));
    }

    #[test]
    fn no_self_loops() {
        for e in erdos_renyi_edges(30, 300, 3) {
            assert!(!e.is_self_loop());
        }
    }

    #[test]
    fn degrees_are_concentrated() {
        let g = erdos_renyi(1_000, 20_000, 9);
        let max_in = *g.in_degrees().iter().max().unwrap() as f64;
        let mean_in = 20.0;
        assert!(
            max_in < mean_in * 3.5,
            "Erdős–Rényi in-degrees should concentrate around the mean (max {max_in})"
        );
    }

    #[test]
    #[should_panic(expected = "need at least two nodes")]
    fn rejects_single_node() {
        let _ = erdos_renyi_edges(1, 5, 0);
    }
}
