//! Edge-arrival orderings.
//!
//! The paper's incremental analysis (Theorem 4) is stated for the *random permutation*
//! model: the adversary picks the final edge set, but the edges arrive in a uniformly
//! random order.  Section 2.2 also analyses the *Dirichlet* arrival model and shows by
//! example that a fully adversarial order breaks the bound.  This module provides all
//! three orderings plus the prefix/suffix split used to warm up a graph before replaying
//! the remaining arrivals.

use crate::{Edge, NodeId};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// How an edge set is ordered into an arrival sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalOrder {
    /// Keep the order in which the generator emitted the edges (for preferential
    /// attachment this is already a growth order).
    AsGenerated,
    /// Uniformly random permutation (the model of Theorem 4), with the given seed.
    RandomPermutation(u64),
    /// Sort edges so that all edges out of low-degree sources arrive last.  This is a
    /// deliberately bad order used to demonstrate that the analysis needs randomness.
    AdversarialLowDegreeLast,
}

/// Applies an [`ArrivalOrder`] to an edge list, returning the arrival sequence.
pub fn order_edges(edges: &[Edge], order: ArrivalOrder) -> Vec<Edge> {
    let mut out = edges.to_vec();
    match order {
        ArrivalOrder::AsGenerated => {}
        ArrivalOrder::RandomPermutation(seed) => {
            let mut rng = SmallRng::seed_from_u64(seed);
            out.shuffle(&mut rng);
        }
        ArrivalOrder::AdversarialLowDegreeLast => {
            // Final out-degree of each source in the complete edge set.
            let max_node = edges
                .iter()
                .map(|e| e.source.index().max(e.target.index()) + 1)
                .max()
                .unwrap_or(0);
            let mut out_degree = vec![0usize; max_node];
            for e in edges {
                out_degree[e.source.index()] += 1;
            }
            // High-degree sources first, so that when a low-degree source's edge finally
            // arrives, the arriving edge captures a large fraction of that source's
            // stationary probability.
            out.sort_by(|a, b| out_degree[b.source.index()].cmp(&out_degree[a.source.index()]));
        }
    }
    out
}

/// Uniformly random permutation of an edge list (convenience wrapper).
pub fn random_permutation(edges: &[Edge], seed: u64) -> Vec<Edge> {
    order_edges(edges, ArrivalOrder::RandomPermutation(seed))
}

/// Splits an arrival sequence at `fraction` (0.0..=1.0): the prefix is used to build the
/// initial graph, the suffix is replayed as live arrivals.
pub fn split_at_fraction(edges: &[Edge], fraction: f64) -> (Vec<Edge>, Vec<Edge>) {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "fraction must be in [0, 1], got {fraction}"
    );
    let cut = ((edges.len() as f64) * fraction).round() as usize;
    let cut = cut.min(edges.len());
    (edges[..cut].to_vec(), edges[cut..].to_vec())
}

/// Generates an arrival sequence under the Dirichlet model of Section 2.2:
/// at time `t` the source `u` is chosen with probability `(d_u(t-1) + 1) / (t - 1 + n)`
/// where `d_u` is the current out-degree; the target is chosen uniformly among the other
/// nodes.
pub fn dirichlet_stream(nodes: usize, edges: usize, seed: u64) -> Vec<Edge> {
    assert!(nodes >= 2, "need at least two nodes");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(edges);
    // `pool` holds one entry per node (the +1 term) plus one entry per emitted edge,
    // so uniform sampling from it realises the Dirichlet source distribution.
    let mut pool: Vec<NodeId> = (0..nodes).map(NodeId::from_index).collect();
    for _ in 0..edges {
        let source = pool[rng.gen_range(0..pool.len())];
        let target = loop {
            let candidate = NodeId::from_index(rng.gen_range(0..nodes));
            if candidate != source {
                break candidate;
            }
        };
        out.push(Edge { source, target });
        pool.push(source);
    }
    out
}

/// The empirical statistic validated in Section 4.2: for each arriving edge `(u, w)`
/// compute `π_u / outdeg_u` *at arrival time* and report `m` times the average, which the
/// random-permutation model predicts to be ≈ 1 (the paper measured 0.81 on Twitter).
///
/// `pagerank` is a score vector over all nodes (any stationary-distribution estimate);
/// `out_degree_at_arrival[t]` must be the out-degree of `arrivals[t].source` *after* the
/// t-th edge has been inserted, matching `outdeg_{u_t}(t)` in Lemma 3.
pub fn m_times_expected_ratio(
    pagerank: &[f64],
    arrivals: &[Edge],
    out_degree_at_arrival: &[usize],
) -> f64 {
    assert_eq!(
        arrivals.len(),
        out_degree_at_arrival.len(),
        "one out-degree observation per arrival is required"
    );
    if arrivals.is_empty() {
        return 0.0;
    }
    let mean: f64 = arrivals
        .iter()
        .zip(out_degree_at_arrival)
        .map(|(e, &d)| {
            assert!(
                d > 0,
                "the arriving edge itself gives its source degree >= 1"
            );
            pagerank[e.source.index()] / d as f64
        })
        .sum::<f64>()
        / arrivals.len() as f64;
    arrivals.len() as f64 * mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::preferential_attachment_edges;
    use crate::generators::PreferentialAttachmentConfig;

    fn sample_edges() -> Vec<Edge> {
        preferential_attachment_edges(&PreferentialAttachmentConfig::new(200, 3, 5))
    }

    #[test]
    fn permutation_preserves_multiset() {
        let edges = sample_edges();
        let shuffled = random_permutation(&edges, 9);
        assert_eq!(edges.len(), shuffled.len());
        let mut a = edges.clone();
        let mut b = shuffled.clone();
        a.sort_by_key(|e| (e.source.0, e.target.0));
        b.sort_by_key(|e| (e.source.0, e.target.0));
        assert_eq!(a, b);
        assert_ne!(
            edges, shuffled,
            "a 600-edge shuffle should not be the identity"
        );
    }

    #[test]
    fn permutation_is_deterministic_per_seed() {
        let edges = sample_edges();
        assert_eq!(random_permutation(&edges, 4), random_permutation(&edges, 4));
        assert_ne!(random_permutation(&edges, 4), random_permutation(&edges, 5));
    }

    #[test]
    fn as_generated_is_identity() {
        let edges = sample_edges();
        assert_eq!(order_edges(&edges, ArrivalOrder::AsGenerated), edges);
    }

    #[test]
    fn adversarial_order_puts_low_degree_sources_last() {
        let edges = vec![
            Edge::new(0, 1),
            Edge::new(0, 2),
            Edge::new(0, 3),
            Edge::new(4, 0),
        ];
        let ordered = order_edges(&edges, ArrivalOrder::AdversarialLowDegreeLast);
        assert_eq!(ordered.last().unwrap().source, NodeId(4));
        assert_eq!(ordered[0].source, NodeId(0));
    }

    #[test]
    fn split_at_fraction_covers_whole_sequence() {
        let edges = sample_edges();
        let (prefix, suffix) = split_at_fraction(&edges, 0.8);
        assert_eq!(prefix.len() + suffix.len(), edges.len());
        assert_eq!(prefix.len(), (edges.len() as f64 * 0.8).round() as usize);
        let (all, none) = split_at_fraction(&edges, 1.0);
        assert_eq!(all.len(), edges.len());
        assert!(none.is_empty());
    }

    #[test]
    #[should_panic(expected = "fraction must be in [0, 1]")]
    fn split_rejects_bad_fraction() {
        let _ = split_at_fraction(&sample_edges(), 1.2);
    }

    #[test]
    fn dirichlet_stream_has_requested_length_and_valid_nodes() {
        let stream = dirichlet_stream(50, 500, 3);
        assert_eq!(stream.len(), 500);
        for e in &stream {
            assert!(e.source.index() < 50 && e.target.index() < 50);
            assert!(!e.is_self_loop());
        }
    }

    #[test]
    fn dirichlet_stream_is_rich_get_richer() {
        let stream = dirichlet_stream(100, 5_000, 11);
        let mut out_degree = vec![0usize; 100];
        for e in &stream {
            out_degree[e.source.index()] += 1;
        }
        let max = *out_degree.iter().max().unwrap();
        let min = *out_degree.iter().min().unwrap();
        assert!(
            max >= 3 * (min + 1),
            "Dirichlet sources should be skewed: max={max} min={min}"
        );
    }

    #[test]
    fn m_times_expected_ratio_on_uniform_inputs() {
        // Uniform PageRank 1/n and every arriving source has out-degree 1:
        // m * mean(π/d) = m * (1/n) so with m = n the statistic is exactly 1.
        let n = 10usize;
        let pagerank = vec![1.0 / n as f64; n];
        let arrivals: Vec<Edge> = (0..n)
            .map(|i| Edge::new(i as u32, ((i + 1) % n) as u32))
            .collect();
        let degrees = vec![1usize; n];
        let stat = m_times_expected_ratio(&pagerank, &arrivals, &degrees);
        assert!((stat - 1.0).abs() < 1e-12);
    }

    #[test]
    fn m_times_expected_ratio_empty_is_zero() {
        assert_eq!(m_times_expected_ratio(&[], &[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "one out-degree observation per arrival")]
    fn m_times_expected_ratio_checks_lengths() {
        let _ = m_times_expected_ratio(&[1.0], &[Edge::new(0, 1)], &[]);
    }
}
