//! Two-date snapshot splits for the link-prediction experiment (Table 1).
//!
//! The paper selects 100 Twitter users who had 20–30 friends on the first date and grew
//! their friend set by 50–100 % over five weeks, then asks how many of the *new*
//! friendships appear in the top-100 / top-1000 of each recommender.  This module
//! reproduces the selection protocol over a synthetic arrival sequence: the prefix of the
//! sequence is "date 1", the suffix supplies the held-out future friendships.

use crate::view::GraphView;
use crate::{DynamicGraph, Edge, NodeId};
use std::collections::HashSet;

/// A pair of snapshots of an evolving graph: the base graph at date 1 and the edges that
/// arrive between date 1 and date 2.
#[derive(Debug, Clone)]
pub struct SnapshotPair {
    base_edges: Vec<Edge>,
    future_edges: Vec<Edge>,
    node_count: usize,
}

/// A user selected for the link-prediction evaluation, together with the held-out
/// friendships they created after date 1.
#[derive(Debug, Clone)]
pub struct EvaluationUser {
    /// The seed user.
    pub user: NodeId,
    /// Nodes this user started following between the two dates (restricted to nodes that
    /// already existed and were "reasonably followed" at date 1).
    pub future_targets: Vec<NodeId>,
}

/// Selection criteria matching Section 4.1 / Appendix A of the paper.
#[derive(Debug, Clone, Copy)]
pub struct UserSelection {
    /// Minimum number of friends (out-degree) at date 1.  Paper: 20.
    pub min_friends: usize,
    /// Maximum number of friends at date 1.  Paper: 30.
    pub max_friends: usize,
    /// Minimum relative growth of the friend set between the dates.  Paper: 0.5.
    pub min_growth: f64,
    /// Minimum number of followers a future friend must already have at date 1 to count
    /// ("reasonably followed").  Paper: 10.
    pub min_target_followers: usize,
    /// Maximum number of users to select.
    pub max_users: usize,
}

impl Default for UserSelection {
    fn default() -> Self {
        UserSelection {
            min_friends: 20,
            max_friends: 30,
            min_growth: 0.5,
            min_target_followers: 10,
            max_users: 100,
        }
    }
}

impl SnapshotPair {
    /// Splits an arrival sequence into a base snapshot (`fraction` of the edges) and the
    /// future arrivals.
    pub fn from_arrivals(arrivals: &[Edge], fraction: f64, node_count: usize) -> Self {
        let (base_edges, future_edges) = crate::stream::split_at_fraction(arrivals, fraction);
        SnapshotPair {
            base_edges,
            future_edges,
            node_count,
        }
    }

    /// The graph as of date 1.
    pub fn base_graph(&self) -> DynamicGraph {
        DynamicGraph::from_edges(&self.base_edges, self.node_count)
    }

    /// The edges that arrive between date 1 and date 2.
    pub fn future_edges(&self) -> &[Edge] {
        &self.future_edges
    }

    /// The edges present at date 1.
    pub fn base_edges(&self) -> &[Edge] {
        &self.base_edges
    }

    /// Number of nodes in both snapshots.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Selects evaluation users according to `criteria` (a synthetic analogue of the
    /// paper's "20–30 friends, grew by 50–100 %, new friends already reasonably
    /// followed" protocol).
    pub fn select_users(&self, criteria: &UserSelection) -> Vec<EvaluationUser> {
        let base = self.base_graph();
        // Future out-edges per user, filtered to targets existing & followed at date 1
        // and not already followed by the user.
        let mut users = Vec::new();
        let mut future_by_user: Vec<Vec<NodeId>> = vec![Vec::new(); self.node_count];
        for e in &self.future_edges {
            if e.source.index() < self.node_count && e.target.index() < self.node_count {
                future_by_user[e.source.index()].push(e.target);
            }
        }

        for u in base.nodes() {
            let friends = base.out_degree(u);
            if friends < criteria.min_friends || friends > criteria.max_friends {
                continue;
            }
            let existing: HashSet<NodeId> = base.out_neighbors(u).iter().copied().collect();
            let mut targets: Vec<NodeId> = Vec::new();
            let mut seen: HashSet<NodeId> = HashSet::new();
            for &t in &future_by_user[u.index()] {
                if t == u || existing.contains(&t) || seen.contains(&t) {
                    continue;
                }
                if base.in_degree(t) < criteria.min_target_followers {
                    continue;
                }
                seen.insert(t);
                targets.push(t);
            }
            let growth = targets.len() as f64 / friends.max(1) as f64;
            if growth + 1e-12 < criteria.min_growth {
                continue;
            }
            users.push(EvaluationUser {
                user: u,
                future_targets: targets,
            });
            if users.len() >= criteria.max_users {
                break;
            }
        }
        users
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{preferential_attachment_edges, PreferentialAttachmentConfig};

    fn snapshot() -> SnapshotPair {
        let config = PreferentialAttachmentConfig::new(2_000, 25, 77);
        let edges = preferential_attachment_edges(&config);
        // Replay in random order so that each user's follows are spread across the two
        // snapshots (in pure generation order a node creates all its edges at birth).
        let arrivals = crate::stream::random_permutation(&edges, 7);
        SnapshotPair::from_arrivals(&arrivals, 0.7, 2_000)
    }

    #[test]
    fn split_preserves_every_edge() {
        let snap = snapshot();
        let config = PreferentialAttachmentConfig::new(2_000, 25, 77);
        let all = preferential_attachment_edges(&config);
        assert_eq!(
            snap.base_edges().len() + snap.future_edges().len(),
            all.len()
        );
        assert_eq!(snap.node_count(), 2_000);
    }

    #[test]
    fn base_graph_has_only_prefix_edges() {
        let snap = snapshot();
        let base = snap.base_graph();
        assert_eq!(base.edge_count(), snap.base_edges().len());
        assert_eq!(base.node_count(), 2_000);
    }

    #[test]
    fn selected_users_meet_criteria() {
        let snap = snapshot();
        let criteria = UserSelection {
            min_friends: 10,
            max_friends: 30,
            min_growth: 0.05,
            min_target_followers: 3,
            max_users: 50,
        };
        let users = snap.select_users(&criteria);
        assert!(
            !users.is_empty(),
            "the synthetic snapshot should yield evaluation users"
        );
        let base = snap.base_graph();
        for eu in &users {
            let friends = base.out_degree(eu.user);
            assert!(friends >= criteria.min_friends && friends <= criteria.max_friends);
            assert!(!eu.future_targets.is_empty());
            let existing: HashSet<NodeId> = base.out_neighbors(eu.user).iter().copied().collect();
            for &t in &eu.future_targets {
                assert!(
                    !existing.contains(&t),
                    "future target already followed at date 1"
                );
                assert!(base.in_degree(t) >= criteria.min_target_followers);
                assert_ne!(t, eu.user);
            }
        }
        assert!(users.len() <= criteria.max_users);
    }

    #[test]
    fn future_targets_are_deduplicated() {
        // Build a tiny arrival sequence by hand: user 0 follows node 3 twice in the
        // future window; the duplicate must be dropped.
        let mut arrivals = vec![
            Edge::new(1, 3),
            Edge::new(2, 3),
            Edge::new(4, 3),
            Edge::new(0, 1),
            Edge::new(0, 2),
        ];
        arrivals.extend([Edge::new(0, 3), Edge::new(0, 3)]);
        let snap = SnapshotPair::from_arrivals(&arrivals, 5.0 / 7.0, 5);
        let criteria = UserSelection {
            min_friends: 1,
            max_friends: 10,
            min_growth: 0.0,
            min_target_followers: 3,
            max_users: 10,
        };
        let users = snap.select_users(&criteria);
        let user0 = users
            .iter()
            .find(|u| u.user == NodeId(0))
            .expect("user 0 selected");
        assert_eq!(user0.future_targets, vec![NodeId(3)]);
    }

    #[test]
    fn strict_criteria_can_select_nobody() {
        let snap = snapshot();
        let criteria = UserSelection {
            min_friends: 1_000,
            max_friends: 2_000,
            ..UserSelection::default()
        };
        assert!(snap.select_users(&criteria).is_empty());
    }
}
