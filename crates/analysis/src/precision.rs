//! Retrieval metrics: precision@k, recall/precision curves and the 11-point
//! interpolated average precision used in Figure 5 of the paper.
//!
//! The paper treats the top-100 of a very long (50 000-step) personalized walk as the
//! "true" result set and asks how well the top-1000 of a short (5 000-step) walk
//! retrieves it, reporting the 11-point interpolated average precision curve from
//! *Introduction to Information Retrieval* (Manning et al.).

use std::collections::HashSet;

/// Precision among the first `k` entries of `ranked` with respect to `relevant`.
///
/// If `ranked` has fewer than `k` entries, the divisor is `k` nonetheless (missing
/// results count as misses), matching how a recommender that returns too few items
/// should be penalised.
pub fn precision_at_k(ranked: &[usize], relevant: &HashSet<usize>, k: usize) -> f64 {
    assert!(k > 0, "k must be positive");
    let hits = ranked
        .iter()
        .take(k)
        .filter(|item| relevant.contains(item))
        .count();
    hits as f64 / k as f64
}

/// Number of relevant items among the first `k` entries of `ranked`.
pub fn hits_at_k(ranked: &[usize], relevant: &HashSet<usize>, k: usize) -> usize {
    ranked
        .iter()
        .take(k)
        .filter(|item| relevant.contains(item))
        .count()
}

/// The (recall, precision) curve of a ranked list: one point per rank at which a
/// relevant item is retrieved.
pub fn recall_precision_curve(ranked: &[usize], relevant: &HashSet<usize>) -> Vec<(f64, f64)> {
    if relevant.is_empty() {
        return Vec::new();
    }
    let mut curve = Vec::new();
    let mut hits = 0usize;
    for (i, item) in ranked.iter().enumerate() {
        if relevant.contains(item) {
            hits += 1;
            let recall = hits as f64 / relevant.len() as f64;
            let precision = hits as f64 / (i + 1) as f64;
            curve.push((recall, precision));
        }
    }
    curve
}

/// Interpolated precision at `recall_level`: the maximum precision achieved at any
/// recall ≥ `recall_level` (zero if that recall is never reached).
pub fn interpolated_precision_at(curve: &[(f64, f64)], recall_level: f64) -> f64 {
    curve
        .iter()
        .filter(|(recall, _)| *recall + 1e-12 >= recall_level)
        .map(|&(_, precision)| precision)
        .fold(0.0, f64::max)
}

/// The 11-point interpolated precision values at recall levels 0.0, 0.1, …, 1.0.
pub fn eleven_point_interpolated_precision(
    ranked: &[usize],
    relevant: &HashSet<usize>,
) -> [f64; 11] {
    let curve = recall_precision_curve(ranked, relevant);
    let mut out = [0.0f64; 11];
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = interpolated_precision_at(&curve, i as f64 / 10.0);
    }
    out
}

/// The 11-point interpolated *average* precision: the mean of the 11 interpolated
/// precision values (the single-number summary plotted in Figure 5).
pub fn interpolated_average_precision(ranked: &[usize], relevant: &HashSet<usize>) -> f64 {
    let points = eleven_point_interpolated_precision(ranked, relevant);
    points.iter().sum::<f64>() / points.len() as f64
}

/// Averages several 11-point curves point-wise (Figure 5 averages over 100 users).
pub fn average_curves(curves: &[[f64; 11]]) -> [f64; 11] {
    let mut out = [0.0f64; 11];
    if curves.is_empty() {
        return out;
    }
    for curve in curves {
        for (slot, value) in out.iter_mut().zip(curve.iter()) {
            *slot += value;
        }
    }
    for slot in &mut out {
        *slot /= curves.len() as f64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn relevant(items: &[usize]) -> HashSet<usize> {
        items.iter().copied().collect()
    }

    #[test]
    fn perfect_ranking_has_precision_one_everywhere() {
        let rel = relevant(&[1, 2, 3]);
        let ranked = vec![1, 2, 3, 4, 5];
        let points = eleven_point_interpolated_precision(&ranked, &rel);
        for &p in &points {
            assert!((p - 1.0).abs() < 1e-12);
        }
        assert!((interpolated_average_precision(&ranked, &rel) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn missing_everything_gives_zero() {
        let rel = relevant(&[10, 11]);
        let ranked = vec![1, 2, 3];
        assert_eq!(interpolated_average_precision(&ranked, &rel), 0.0);
        assert_eq!(precision_at_k(&ranked, &rel, 3), 0.0);
        assert_eq!(hits_at_k(&ranked, &rel, 3), 0);
    }

    #[test]
    fn precision_at_k_counts_only_the_prefix() {
        let rel = relevant(&[3, 4]);
        let ranked = vec![1, 3, 2, 4];
        assert!((precision_at_k(&ranked, &rel, 2) - 0.5).abs() < 1e-12);
        assert!((precision_at_k(&ranked, &rel, 4) - 0.5).abs() < 1e-12);
        assert_eq!(hits_at_k(&ranked, &rel, 4), 2);
        // Short lists are penalised: only 4 items returned out of k = 8.
        assert!((precision_at_k(&ranked, &rel, 8) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn textbook_example_matches_hand_computation() {
        // Relevant = {a, b, c, d, e} (5 items); ranking hits at positions 1, 3, 6, 10.
        let rel = relevant(&[0, 1, 2, 3, 4]);
        let ranked = vec![0, 100, 1, 101, 102, 2, 103, 104, 105, 3];
        let curve = recall_precision_curve(&ranked, &rel);
        assert_eq!(curve.len(), 4);
        assert!((curve[0].1 - 1.0).abs() < 1e-12);
        assert!((curve[1].1 - 2.0 / 3.0).abs() < 1e-12);
        assert!((curve[2].1 - 0.5).abs() < 1e-12);
        assert!((curve[3].1 - 0.4).abs() < 1e-12);
        // Interpolated precision at recall 0.4 is the max precision at recall >= 0.4,
        // which is achieved by the hit at rank 3 (recall 0.4, precision 2/3).
        assert!((interpolated_precision_at(&curve, 0.4) - 2.0 / 3.0).abs() < 1e-12);
        // Recall 1.0 is never reached (only 4 of 5 relevant items retrieved).
        assert_eq!(interpolated_precision_at(&curve, 1.0), 0.0);
    }

    #[test]
    fn interpolation_is_monotone_nonincreasing_in_recall() {
        let rel = relevant(&[2, 5, 9, 14]);
        let ranked: Vec<usize> = (0..20).collect();
        let points = eleven_point_interpolated_precision(&ranked, &rel);
        for pair in points.windows(2) {
            assert!(pair[0] + 1e-12 >= pair[1]);
        }
    }

    #[test]
    fn empty_relevant_set_yields_empty_curve() {
        let rel = HashSet::new();
        assert!(recall_precision_curve(&[1, 2, 3], &rel).is_empty());
        assert_eq!(interpolated_average_precision(&[1, 2, 3], &rel), 0.0);
    }

    #[test]
    fn average_curves_is_pointwise_mean() {
        let a = [1.0; 11];
        let mut b = [0.0; 11];
        b[0] = 1.0;
        let avg = average_curves(&[a, b]);
        assert!((avg[0] - 1.0).abs() < 1e-12);
        assert!((avg[5] - 0.5).abs() < 1e-12);
        assert_eq!(average_curves(&[]), [0.0; 11]);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn precision_at_zero_panics() {
        let _ = precision_at_k(&[1], &relevant(&[1]), 0);
    }
}
