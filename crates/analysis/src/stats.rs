//! Small statistical helpers shared by the experiment harness.

/// Arithmetic mean; zero for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Population standard deviation; zero for slices of length < 2.
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / values.len() as f64).sqrt()
}

/// The m-th harmonic number `H_m = Σ_{t=1..m} 1/t` (the quantity that turns the
/// per-arrival cost `nR/(tε²)` of Theorem 4 into the `nR ln m / ε²` total).
pub fn harmonic_number(m: usize) -> f64 {
    (1..=m).map(|t| 1.0 / t as f64).sum()
}

/// Five-number-ish summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

impl Summary {
    /// Summarises a sample; returns `None` for an empty slice.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Some(Summary {
            count: values.len(),
            mean: mean(values),
            std_dev: std_dev(values),
            min,
            max,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_dev_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        // Population std dev of {2, 4, 4, 4, 5, 5, 7, 9} is exactly 2.
        let sample = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((std_dev(&sample) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn harmonic_number_matches_known_values() {
        assert_eq!(harmonic_number(0), 0.0);
        assert_eq!(harmonic_number(1), 1.0);
        assert!((harmonic_number(4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
        // H_m ≈ ln m + γ for large m.
        let h = harmonic_number(100_000);
        let approx = (100_000f64).ln() + 0.5772156649;
        assert!((h - approx).abs() < 1e-4);
    }

    #[test]
    fn summary_reports_extremes() {
        let s = Summary::of(&[1.0, 3.0, 2.0]).unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.mean, 2.0);
        assert!(Summary::of(&[]).is_none());
    }
}
