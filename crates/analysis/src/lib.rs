//! Analysis toolkit used by the experiment harness.
//!
//! Everything in this crate operates on plain `f64`/`usize` slices so that it stays
//! independent of the graph and walk representations:
//!
//! * [`powerlaw`] — rank/value power-law fitting (Figures 2–4 of the paper).
//! * [`cdf`] — degree cumulative distribution functions (Figure 1).
//! * [`precision`] — 11-point interpolated average precision and related retrieval
//!   metrics (Figure 5, Table 1).
//! * [`ranking`] — top-k extraction and overlap utilities shared by the recommenders.
//! * [`stats`] — small statistical helpers (mean, standard deviation, harmonic numbers).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cdf;
pub mod powerlaw;
pub mod precision;
pub mod ranking;
pub mod stats;

pub use cdf::{arrival_degree_cdf, existing_degree_cdf, CdfPoint};
pub use powerlaw::{fit_power_law, rank_series, PowerLawFit};
pub use precision::{
    eleven_point_interpolated_precision, interpolated_average_precision, precision_at_k,
};
pub use ranking::{hits_in_top_k, top_k_indices, top_k_overlap};
pub use stats::{harmonic_number, mean, std_dev, Summary};
