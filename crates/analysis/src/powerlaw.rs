//! Rank/value power-law fitting.
//!
//! The paper plots the i-th largest value (in-degree, PageRank, personalized PageRank)
//! against the rank `i` on log–log axes and reads off the slope: `value_i ∝ i^{-α}`
//! (Figures 2–4; α ≈ 0.76 for Twitter in-degree and PageRank, mean ≈ 0.77 over the
//! personalized vectors).  [`fit_power_law`] reproduces that measurement by ordinary
//! least squares on `(ln i, ln value_i)` over a caller-chosen rank window — the paper
//! restricts the personalized fits to ranks `[2f, 20f]` where `f` is the user's friend
//! count (Remark 4), and this module lets the experiments do the same.

/// Result of a least-squares power-law fit on a rank plot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawFit {
    /// The power-law exponent α in `value_i ∝ i^{-α}` (reported positive).
    pub exponent: f64,
    /// The fitted value at rank 1 (`e^intercept` of the log–log regression).
    pub scale: f64,
    /// Coefficient of determination of the log–log regression.
    pub r_squared: f64,
    /// Number of rank/value points that entered the fit.
    pub points: usize,
}

/// Sorts `values` in decreasing order and returns `(rank, value)` pairs with 1-based
/// ranks, dropping non-positive values (they cannot appear on a log–log plot).
pub fn rank_series(values: &[f64]) -> Vec<(usize, f64)> {
    let mut sorted: Vec<f64> = values.iter().copied().filter(|&v| v > 0.0).collect();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("values must not be NaN"));
    sorted
        .into_iter()
        .enumerate()
        .map(|(i, v)| (i + 1, v))
        .collect()
}

/// Fits `value_i ∝ i^{-α}` over the ranks `rank_range` (1-based, inclusive-exclusive) of
/// the descending-sorted `values`.
///
/// Returns `None` if fewer than two usable points fall inside the window.
pub fn fit_power_law(values: &[f64], rank_range: std::ops::Range<usize>) -> Option<PowerLawFit> {
    assert!(rank_range.start >= 1, "ranks are 1-based");
    let series = rank_series(values);
    let window: Vec<(f64, f64)> = series
        .iter()
        .filter(|(rank, _)| rank_range.contains(rank))
        .map(|&(rank, value)| ((rank as f64).ln(), value.ln()))
        .collect();
    if window.len() < 2 {
        return None;
    }

    let n = window.len() as f64;
    let mean_x = window.iter().map(|(x, _)| x).sum::<f64>() / n;
    let mean_y = window.iter().map(|(_, y)| y).sum::<f64>() / n;
    let sxx: f64 = window.iter().map(|(x, _)| (x - mean_x).powi(2)).sum();
    let sxy: f64 = window
        .iter()
        .map(|(x, y)| (x - mean_x) * (y - mean_y))
        .sum();
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;

    let ss_tot: f64 = window.iter().map(|(_, y)| (y - mean_y).powi(2)).sum();
    let ss_res: f64 = window
        .iter()
        .map(|(x, y)| (y - (intercept + slope * x)).powi(2))
        .sum();
    let r_squared = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };

    Some(PowerLawFit {
        exponent: -slope,
        scale: intercept.exp(),
        r_squared,
        points: window.len(),
    })
}

/// Convenience wrapper fitting over every rank.
pub fn fit_power_law_full(values: &[f64]) -> Option<PowerLawFit> {
    fit_power_law(values, 1..usize::MAX)
}

/// The normalised power-law model of Section 3.1 (Equation 3):
/// `π_j = (1 − α) j^{-α} / n^{1−α}`.
pub fn model_score(rank: usize, n: usize, alpha: f64) -> f64 {
    assert!(rank >= 1, "ranks are 1-based");
    assert!(
        (0.0..1.0).contains(&alpha),
        "the model needs 0 <= alpha < 1"
    );
    (1.0 - alpha) * (rank as f64).powf(-alpha) / (n as f64).powf(1.0 - alpha)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_power_law(n: usize, alpha: f64) -> Vec<f64> {
        (1..=n).map(|i| (i as f64).powf(-alpha)).collect()
    }

    #[test]
    fn recovers_exact_exponent_on_synthetic_data() {
        let values = synthetic_power_law(1_000, 0.76);
        let fit = fit_power_law_full(&values).unwrap();
        assert!((fit.exponent - 0.76).abs() < 1e-9);
        assert!((fit.scale - 1.0).abs() < 1e-9);
        assert!(fit.r_squared > 0.999999);
        assert_eq!(fit.points, 1_000);
    }

    #[test]
    fn rank_window_restricts_the_fit() {
        // Head follows exponent 0.3 (ranks 1..=50), tail follows exponent 0.9 in the
        // global rank (ranks 51..=1000, scaled to keep the sequence decreasing);
        // fitting only the tail window must recover the tail exponent.
        let mut values: Vec<f64> = (1..=50).map(|i| (i as f64).powf(-0.3)).collect();
        let scale = 50f64.powf(-0.3) * 51f64.powf(0.9) * 0.999;
        values.extend((51..=1_000).map(|i| scale * (i as f64).powf(-0.9)));
        let tail_fit = fit_power_law(&values, 200..1_000).unwrap();
        assert!(
            (tail_fit.exponent - 0.9).abs() < 1e-6,
            "tail exponent {} should be 0.9",
            tail_fit.exponent
        );
    }

    #[test]
    fn rank_series_sorts_and_drops_nonpositive() {
        let series = rank_series(&[0.2, 0.0, 0.5, -1.0, 0.1]);
        assert_eq!(series, vec![(1, 0.5), (2, 0.2), (3, 0.1)]);
    }

    #[test]
    fn too_few_points_gives_none() {
        assert!(fit_power_law(&[1.0], 1..10).is_none());
        assert!(fit_power_law(&[1.0, 0.5, 0.25], 10..20).is_none());
        assert!(fit_power_law(&[], 1..10).is_none());
    }

    #[test]
    fn noisy_data_still_close() {
        // Deterministic pseudo-noise keeps the test reproducible without an RNG dep.
        let values: Vec<f64> = (1..=2_000)
            .map(|i| {
                let noise = 1.0 + 0.05 * ((i * 2_654_435_761usize % 97) as f64 / 97.0 - 0.5);
                (i as f64).powf(-0.8) * noise
            })
            .collect();
        let fit = fit_power_law_full(&values).unwrap();
        assert!((fit.exponent - 0.8).abs() < 0.02, "got {}", fit.exponent);
        assert!(fit.r_squared > 0.99);
    }

    #[test]
    fn model_score_is_normalised_approximately() {
        let n = 100_000;
        let alpha = 0.75;
        let total: f64 = (1..=n).map(|j| model_score(j, n, alpha)).sum();
        // The paper approximates the sum by an integral; the error is O(n^{alpha-1}).
        assert!((total - 1.0).abs() < 0.05, "total mass {total}");
    }

    #[test]
    fn model_score_decreases_with_rank() {
        assert!(model_score(1, 1_000, 0.5) > model_score(2, 1_000, 0.5));
        assert!(model_score(10, 1_000, 0.5) > model_score(100, 1_000, 0.5));
    }

    #[test]
    #[should_panic(expected = "ranks are 1-based")]
    fn zero_rank_panics() {
        let _ = model_score(0, 10, 0.5);
    }
}
