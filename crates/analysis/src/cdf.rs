//! Degree cumulative distribution functions (Figure 1 of the paper).
//!
//! Section 4.2 validates the random-permutation arrival model by comparing two CDFs over
//! out-degree `d`:
//!
//! * the **arrival degree CDF** `a(d)` — the fraction of newly arriving edges whose
//!   source has out-degree at most `d`;
//! * the **existing degree CDF** `e(d)` — the fraction of all existing edges whose source
//!   has out-degree at most `d` (equivalently, `s(d)/m` where `s(d)` sums the degrees of
//!   all nodes with degree ≤ d).
//!
//! Under the proportionality consequence of the random-permutation model the two curves
//! nearly coincide, which is what Figure 1 shows and what experiment E1 reproduces.

/// A point of a cumulative distribution function over degrees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CdfPoint {
    /// Degree threshold `d`.
    pub degree: usize,
    /// Cumulative fraction at `d`.
    pub fraction: f64,
}

/// The existing degree CDF `e(d)`: for each distinct degree `d`, the fraction of edge
/// endpoints (weighted by degree) belonging to nodes with out-degree ≤ d.
///
/// `degrees` holds the out-degree of every node.  Nodes of degree zero contribute no
/// edges and therefore do not appear in the CDF.
pub fn existing_degree_cdf(degrees: &[usize]) -> Vec<CdfPoint> {
    let total: usize = degrees.iter().sum();
    if total == 0 {
        return Vec::new();
    }
    let mut sorted: Vec<usize> = degrees.iter().copied().filter(|&d| d > 0).collect();
    sorted.sort_unstable();
    cumulative(&sorted, |d| d as f64, total as f64)
}

/// The arrival degree CDF `a(d)`: for each distinct degree `d`, the fraction of observed
/// arrivals whose source had out-degree ≤ d at arrival time.
///
/// `arrival_source_degrees` holds, for every observed arrival, the out-degree of the
/// arriving edge's source (measured at arrival time, including the new edge — matching
/// how the existing CDF counts each node's own edges).
pub fn arrival_degree_cdf(arrival_source_degrees: &[usize]) -> Vec<CdfPoint> {
    if arrival_source_degrees.is_empty() {
        return Vec::new();
    }
    let mut sorted = arrival_source_degrees.to_vec();
    sorted.sort_unstable();
    cumulative(&sorted, |_| 1.0, sorted.len() as f64)
}

fn cumulative(
    sorted_degrees: &[usize],
    weight: impl Fn(usize) -> f64,
    total: f64,
) -> Vec<CdfPoint> {
    let mut points = Vec::new();
    let mut running = 0.0f64;
    let mut i = 0usize;
    while i < sorted_degrees.len() {
        let degree = sorted_degrees[i];
        while i < sorted_degrees.len() && sorted_degrees[i] == degree {
            running += weight(sorted_degrees[i]);
            i += 1;
        }
        points.push(CdfPoint {
            degree,
            fraction: running / total,
        });
    }
    points
}

/// Evaluates a CDF (as returned by the functions above) at an arbitrary degree by step
/// interpolation: the fraction of mass at or below `degree`.
pub fn evaluate_cdf(cdf: &[CdfPoint], degree: usize) -> f64 {
    match cdf.iter().rposition(|p| p.degree <= degree) {
        Some(i) => cdf[i].fraction,
        None => 0.0,
    }
}

/// Maximum absolute difference between two CDFs over the union of their degree points
/// (a Kolmogorov–Smirnov-style distance).  Figure 1's "the two cdfs track each other"
/// claim becomes "this distance is small".
pub fn max_cdf_distance(a: &[CdfPoint], b: &[CdfPoint]) -> f64 {
    let mut degrees: Vec<usize> = a.iter().chain(b.iter()).map(|p| p.degree).collect();
    degrees.sort_unstable();
    degrees.dedup();
    degrees
        .into_iter()
        .map(|d| (evaluate_cdf(a, d) - evaluate_cdf(b, d)).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn existing_cdf_weights_by_degree() {
        // Degrees 1, 1, 2: total 4 edge endpoints; nodes of degree 1 carry 2/4, degree 2
        // carries the rest.
        let cdf = existing_degree_cdf(&[1, 1, 2, 0]);
        assert_eq!(cdf.len(), 2);
        assert_eq!(cdf[0].degree, 1);
        assert!((cdf[0].fraction - 0.5).abs() < 1e-12);
        assert_eq!(cdf[1].degree, 2);
        assert!((cdf[1].fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn arrival_cdf_counts_each_arrival_once() {
        let cdf = arrival_degree_cdf(&[1, 3, 3, 3]);
        assert_eq!(
            cdf[0],
            CdfPoint {
                degree: 1,
                fraction: 0.25
            }
        );
        assert_eq!(cdf[1].degree, 3);
        assert!((cdf[1].fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdfs_are_monotone_and_end_at_one() {
        let degrees: Vec<usize> = (0..200).map(|i| (i % 17) + 1).collect();
        for cdf in [existing_degree_cdf(&degrees), arrival_degree_cdf(&degrees)] {
            for pair in cdf.windows(2) {
                assert!(pair[0].degree < pair[1].degree);
                assert!(pair[0].fraction <= pair[1].fraction + 1e-12);
            }
            assert!((cdf.last().unwrap().fraction - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_inputs_give_empty_cdfs() {
        assert!(existing_degree_cdf(&[]).is_empty());
        assert!(existing_degree_cdf(&[0, 0]).is_empty());
        assert!(arrival_degree_cdf(&[]).is_empty());
    }

    #[test]
    fn evaluate_cdf_steps_correctly() {
        let cdf = existing_degree_cdf(&[1, 2, 2]);
        assert_eq!(evaluate_cdf(&cdf, 0), 0.0);
        assert!((evaluate_cdf(&cdf, 1) - 0.2).abs() < 1e-12);
        assert!((evaluate_cdf(&cdf, 2) - 1.0).abs() < 1e-12);
        assert!((evaluate_cdf(&cdf, 100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn identical_distributions_have_zero_distance() {
        let degrees: Vec<usize> = (1..100).collect();
        let a = existing_degree_cdf(&degrees);
        let b = existing_degree_cdf(&degrees);
        assert_eq!(max_cdf_distance(&a, &b), 0.0);
    }

    #[test]
    fn disjoint_distributions_have_distance_one() {
        let a = arrival_degree_cdf(&[1, 1, 1]);
        let b = arrival_degree_cdf(&[10, 10]);
        assert!((max_cdf_distance(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn proportional_sampling_tracks_existing_cdf() {
        // If arrivals are sampled proportionally to degree, the arrival CDF matches the
        // existing CDF exactly in expectation; emulate that by repeating each node's
        // degree `degree` times.
        let degrees: Vec<usize> = (1..=50).collect();
        let existing = existing_degree_cdf(&degrees);
        let mut arrivals = Vec::new();
        for &d in &degrees {
            for _ in 0..d {
                arrivals.push(d);
            }
        }
        let arrival = arrival_degree_cdf(&arrivals);
        assert!(max_cdf_distance(&existing, &arrival) < 1e-12);
    }
}
