//! Top-k extraction and ranking-comparison utilities.
//!
//! All recommenders in this workspace (Monte Carlo personalized PageRank/SALSA, the
//! power-iteration references, HITS, COSINE) reduce to "rank nodes by a score vector,
//! excluding the seed and its existing friends"; these helpers implement that shared
//! step plus the overlap measures used to compare rankings.

use std::collections::HashSet;

/// Returns the indices of the `k` largest entries of `scores`, in decreasing score
/// order, skipping any index in `exclude`.  Ties are broken by index so the result is
/// deterministic.
pub fn top_k_indices(scores: &[f64], k: usize, exclude: &HashSet<usize>) -> Vec<usize> {
    let mut candidates: Vec<usize> = (0..scores.len())
        .filter(|i| !exclude.contains(i) && scores[*i] > 0.0)
        .collect();
    candidates.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .expect("scores must not be NaN")
            .then(a.cmp(&b))
    });
    candidates.truncate(k);
    candidates
}

/// Counts how many of `predicted`'s first `k` entries appear in `actual`.
pub fn hits_in_top_k(predicted: &[usize], actual: &HashSet<usize>, k: usize) -> usize {
    predicted
        .iter()
        .take(k)
        .filter(|item| actual.contains(item))
        .count()
}

/// The overlap fraction |top-k(a) ∩ top-k(b)| / k between two ranked lists.
pub fn top_k_overlap(a: &[usize], b: &[usize], k: usize) -> f64 {
    assert!(k > 0, "k must be positive");
    let set_a: HashSet<usize> = a.iter().take(k).copied().collect();
    let inter = b.iter().take(k).filter(|item| set_a.contains(item)).count();
    inter as f64 / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_orders_by_score_then_index() {
        let scores = vec![0.1, 0.5, 0.5, 0.9, 0.0];
        let top = top_k_indices(&scores, 3, &HashSet::new());
        assert_eq!(top, vec![3, 1, 2]);
    }

    #[test]
    fn exclusions_and_zero_scores_are_skipped() {
        let scores = vec![0.9, 0.8, 0.7, 0.0];
        let exclude: HashSet<usize> = [0].into_iter().collect();
        let top = top_k_indices(&scores, 10, &exclude);
        assert_eq!(top, vec![1, 2]);
    }

    #[test]
    fn top_k_with_k_larger_than_candidates() {
        let scores = vec![0.2, 0.1];
        assert_eq!(top_k_indices(&scores, 5, &HashSet::new()), vec![0, 1]);
        assert!(top_k_indices(&[], 5, &HashSet::new()).is_empty());
    }

    #[test]
    fn hits_in_top_k_counts_prefix_matches() {
        let actual: HashSet<usize> = [1, 2, 3].into_iter().collect();
        let predicted = vec![5, 1, 6, 2, 3];
        assert_eq!(hits_in_top_k(&predicted, &actual, 2), 1);
        assert_eq!(hits_in_top_k(&predicted, &actual, 5), 3);
        assert_eq!(hits_in_top_k(&predicted, &actual, 100), 3);
    }

    #[test]
    fn overlap_is_symmetric_and_bounded() {
        let a = vec![1, 2, 3, 4];
        let b = vec![3, 4, 5, 6];
        assert!((top_k_overlap(&a, &b, 4) - 0.5).abs() < 1e-12);
        assert!((top_k_overlap(&b, &a, 4) - 0.5).abs() < 1e-12);
        assert_eq!(top_k_overlap(&a, &a, 4), 1.0);
        assert_eq!(top_k_overlap(&a, &[7, 8], 2), 0.0);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_overlap_panics() {
        let _ = top_k_overlap(&[1], &[1], 0);
    }
}
