//! The [`Telemetry`] registry: named instruments, an injectable clock, one
//! runtime enable switch, and snapshot collection.
//!
//! A `Telemetry` is a cheaply clonable handle (one `Arc`); every serving
//! session, scenario replay, or bench regime creates its own, so tests never
//! share registry state.  Instrument *creation* takes a short mutex (name
//! lookup); the returned [`Counter`]/[`Gauge`]/[`Histogram`] handles record
//! lock-free forever after — hot paths create their handles once and keep them.
//!
//! The `enabled` flag is the runtime fast path: a single relaxed [`AtomicBool`]
//! load guards every record call, so disabled telemetry costs one predictable
//! branch.  Building the workspace without the `telemetry` feature removes even
//! that.

use crate::clock::{Clock, ManualClock, MonotonicClock};
use crate::hist::{HistCore, Histogram};
use crate::metrics::{Counter, Gauge};
use crate::snapshot::{MetricSource, SnapshotBuilder, TelemetrySnapshot};
use crate::span::OwnedSpan;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

type SourceFn = Box<dyn Fn(&mut SnapshotBuilder) + Send + Sync>;

#[derive(Default)]
struct State {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    gauges: BTreeMap<String, Arc<AtomicU64>>,
    histograms: BTreeMap<String, Arc<HistCore>>,
    sources: Vec<SourceFn>,
}

struct Inner {
    /// The runtime recording switch, `Arc`'d so every handle shares the one
    /// cell `set_enabled` flips.
    enabled: Arc<AtomicBool>,
    clock: Box<dyn Clock>,
    state: Mutex<State>,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock().expect("telemetry registry poisoned");
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled.load(Ordering::Relaxed))
            .field("counters", &state.counters.len())
            .field("gauges", &state.gauges.len())
            .field("histograms", &state.histograms.len())
            .field("sources", &state.sources.len())
            .finish()
    }
}

/// A metrics registry + clock, shared by handle.
#[derive(Debug, Clone)]
pub struct Telemetry {
    inner: Arc<Inner>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl Telemetry {
    /// An enabled registry on the production [`MonotonicClock`].
    pub fn new() -> Self {
        Telemetry::with_clock(MonotonicClock::new())
    }

    /// An enabled registry on the given clock ([`ManualClock`] for deterministic
    /// span tests).
    pub fn with_clock(clock: impl Clock + 'static) -> Self {
        Telemetry {
            inner: Arc::new(Inner {
                enabled: Arc::new(AtomicBool::new(true)),
                clock: Box::new(clock),
                state: Mutex::new(State::default()),
            }),
        }
    }

    /// A registry that starts disabled (instruments exist but record nothing
    /// until [`Telemetry::set_enabled`] turns them on).
    pub fn disabled() -> Self {
        let tele = Telemetry::new();
        tele.set_enabled(false);
        tele
    }

    /// A registry on a fresh [`ManualClock`], returning both (test convenience).
    pub fn manual() -> (Self, ManualClock) {
        let clock = ManualClock::new();
        (Telemetry::with_clock(clock.clone()), clock)
    }

    /// Flips the runtime recording switch.  Collection keeps working either
    /// way; only recording is gated.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether recording is currently enabled.
    pub fn is_enabled(&self) -> bool {
        #[cfg(feature = "telemetry")]
        {
            self.inner.enabled.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "telemetry"))]
        {
            false
        }
    }

    /// Now, on this registry's clock.
    pub fn now_nanos(&self) -> u64 {
        self.inner.clock.now_nanos()
    }

    /// The registry's clock (spans time through it).
    pub fn clock(&self) -> &dyn Clock {
        &*self.inner.clock
    }

    fn enabled_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.inner.enabled)
    }

    /// Gets or creates the named counter.
    pub fn counter(&self, name: &str) -> Counter {
        let mut state = self
            .inner
            .state
            .lock()
            .expect("telemetry registry poisoned");
        let cell = state
            .counters
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Counter {
            enabled: self.enabled_flag(),
            cell: Arc::clone(cell),
        }
    }

    /// Gets or creates the named gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut state = self
            .inner
            .state
            .lock()
            .expect("telemetry registry poisoned");
        let cell = state
            .gauges
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0f64.to_bits())));
        Gauge {
            enabled: self.enabled_flag(),
            cell: Arc::clone(cell),
        }
    }

    /// Gets or creates the named histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut state = self
            .inner
            .state
            .lock()
            .expect("telemetry registry poisoned");
        let core = state
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(HistCore::new()));
        Histogram {
            enabled: self.enabled_flag(),
            core: Arc::clone(core),
        }
    }

    /// Starts a span recording into the histogram named `name` on drop.  This
    /// looks the histogram up by name (a short lock); hot paths should create
    /// the [`Histogram`] once and use [`Telemetry::time`] instead.
    pub fn span(&self, name: &str) -> OwnedSpan {
        OwnedSpan::enter(self.histogram(name), self.clone())
    }

    /// Starts a span over a pre-created histogram handle — the allocation-free
    /// hot path (`commit.*` and `query.*` spans use this).
    pub fn time<'a>(&'a self, hist: &'a Histogram) -> crate::span::Span<'a> {
        crate::span::Span::enter(hist, self.clock())
    }

    /// Registers a collection source: a closure over shared stat cells, polled
    /// by every future [`Telemetry::collect`].
    pub fn register_source(&self, source: impl Fn(&mut SnapshotBuilder) + Send + Sync + 'static) {
        self.inner
            .state
            .lock()
            .expect("telemetry registry poisoned")
            .sources
            .push(Box::new(source));
    }

    /// Collects one snapshot of every registry instrument plus every registered
    /// source.
    pub fn collect(&self) -> TelemetrySnapshot {
        self.collect_with(&[])
    }

    /// Collects one snapshot including borrowed extra sources — how the serving
    /// layer folds engine-owned stats (store, arena, pager, WAL, …) into the
    /// same view as the registry's live instruments.
    pub fn collect_with(&self, extra: &[&dyn MetricSource]) -> TelemetrySnapshot {
        let mut out = SnapshotBuilder::new();
        {
            let state = self
                .inner
                .state
                .lock()
                .expect("telemetry registry poisoned");
            for (name, cell) in &state.counters {
                out.counter(name, cell.load(Ordering::Relaxed));
            }
            for (name, cell) in &state.gauges {
                out.gauge(name, f64::from_bits(cell.load(Ordering::Relaxed)));
            }
            for (name, core) in &state.histograms {
                let hist = Histogram {
                    enabled: self.enabled_flag(),
                    core: Arc::clone(core),
                };
                out.histogram(name, hist.snapshot());
            }
            for source in &state.sources {
                source(&mut out);
            }
        }
        for source in extra {
            source.emit(&mut out);
        }
        TelemetrySnapshot::from_builder(self.now_nanos(), out)
    }
}
