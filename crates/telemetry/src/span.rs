//! Lifecycle tracing spans: RAII guards that time a scope into a histogram.
//!
//! A span is just "record the elapsed clock nanoseconds into this histogram
//! when the guard drops".  Two flavours exist:
//!
//! * [`Span`] borrows a pre-created [`Histogram`] handle and the registry's
//!   clock — the hot-path form (no lookup, no allocation, no refcount churn).
//!   Created via [`crate::Telemetry::time`].
//! * [`OwnedSpan`] owns its handles and so can cross `await`-free thread
//!   boundaries or be returned from helpers — the convenience form behind the
//!   [`crate::span!`] macro and [`crate::Telemetry::span`].
//!
//! When the registry is disabled at span *start*, the guard never reads the
//! clock at all — the fast path is one relaxed load and a branch.

use crate::clock::Clock;
use crate::hist::Histogram;
use crate::registry::Telemetry;

/// A borrowing span guard (see module docs).
#[derive(Debug)]
pub struct Span<'a> {
    hist: &'a Histogram,
    clock: &'a dyn Clock,
    /// `Some(start)` while armed; `None` when telemetry was disabled at entry
    /// or the span was cancelled.
    start: Option<u64>,
}

impl<'a> Span<'a> {
    pub(crate) fn enter(hist: &'a Histogram, clock: &'a dyn Clock) -> Self {
        let start = hist.is_armed().then(|| clock.now_nanos());
        Span { hist, clock, start }
    }

    /// Drops the span without recording.
    pub fn cancel(mut self) {
        self.start = None;
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.hist
                .record(self.clock.now_nanos().saturating_sub(start));
        }
    }
}

/// An owning span guard (see module docs).
#[derive(Debug)]
pub struct OwnedSpan {
    hist: Histogram,
    tele: Telemetry,
    start: Option<u64>,
}

impl OwnedSpan {
    pub(crate) fn enter(hist: Histogram, tele: Telemetry) -> Self {
        let start = hist.is_armed().then(|| tele.now_nanos());
        OwnedSpan { hist, tele, start }
    }

    /// Drops the span without recording.
    pub fn cancel(mut self) {
        self.start = None;
    }
}

impl Drop for OwnedSpan {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.hist
                .record(self.tele.now_nanos().saturating_sub(start));
        }
    }
}

/// Opens a span guard over a registry: `let _span = span!(tele, "commit.publish");`
/// records the scope's duration (in nanoseconds) into the histogram named
/// `"commit.publish"` when the guard drops.
#[macro_export]
macro_rules! span {
    ($tele:expr, $name:expr) => {
        $tele.span($name)
    };
}

#[cfg(test)]
mod tests {
    use crate::Telemetry;

    #[cfg(feature = "telemetry")]
    #[test]
    fn spans_record_manual_clock_durations_exactly() {
        let (tele, clock) = Telemetry::manual();
        {
            let _span = span!(tele, "stage.alpha");
            clock.advance(1_000);
        }
        let hist = tele.histogram("stage.alpha");
        {
            let _inner = tele.time(&hist);
            clock.advance(500);
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.sum, 1_500);
        assert_eq!(snap.max, 1_000);
    }

    #[test]
    fn disabled_spans_never_touch_the_clock_histogram() {
        let (tele, clock) = Telemetry::manual();
        tele.set_enabled(false);
        {
            let _span = tele.span("stage.idle");
            clock.advance(999);
        }
        assert!(tele.histogram("stage.idle").snapshot().is_empty());
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn cancelled_spans_record_nothing() {
        let (tele, clock) = Telemetry::manual();
        let span = tele.span("stage.cancelled");
        clock.advance(123);
        span.cancel();
        assert!(tele.histogram("stage.cancelled").snapshot().is_empty());
    }
}
