//! Fixed-bucket log₂-scale histograms.
//!
//! The registry's latency and size distributions all share one shape: 65 buckets,
//! where bucket 0 holds the value `0` and bucket `b ∈ 1..=64` holds the values in
//! `[2^(b-1), 2^b)`.  Log-scale buckets trade one property for everything else:
//! any quantile read from bucket counts is exact *up to the bucket's own range* —
//! the true nearest-rank percentile provably lies between the reported bucket's
//! lower and upper bound, a relative error of at most 2× — while recording stays a
//! single `leading_zeros` plus three relaxed atomic adds, with zero allocation and
//! no locks.
//!
//! Concurrency: a histogram is split into [`SHARDS`] independent shard blocks.
//! Each recording thread picks one shard (by a cheap thread-local id) and only
//! ever touches that shard's atomics, so concurrent recorders on different
//! threads do not contend on the same cache lines.  All ordering is
//! `Relaxed`: every cell is an independent monotone accumulator — there is no
//! cross-cell invariant a reader could tear, snapshots are statistical by
//! nature, and exact totals settle once recorders quiesce (which every test
//! and every sampler in this workspace guarantees before asserting).

#[cfg(feature = "telemetry")]
use std::sync::atomic::AtomicUsize;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Number of buckets: one for zero plus one per power of two up to `2^64`.
pub const BUCKETS: usize = 65;

/// Number of independent recording shards per histogram.
pub const SHARDS: usize = 8;

/// The bucket index of `value`: 0 for 0, else `floor(log2(value)) + 1`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros()) as usize
    }
}

/// The inclusive `[low, high]` value range of bucket `index`.
pub fn bucket_range(index: usize) -> (u64, u64) {
    assert!(index < BUCKETS, "bucket index {index} out of range");
    if index == 0 {
        (0, 0)
    } else if index == 64 {
        (1u64 << 63, u64::MAX)
    } else {
        (1u64 << (index - 1), (1u64 << index) - 1)
    }
}

/// One thread-shard of a histogram: an independent bucket block.
#[derive(Debug)]
struct HistShard {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl HistShard {
    fn new() -> Self {
        HistShard {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// The shared core behind a [`Histogram`] handle.
#[derive(Debug)]
pub(crate) struct HistCore {
    shards: [HistShard; SHARDS],
}

impl HistCore {
    pub(crate) fn new() -> Self {
        HistCore {
            shards: std::array::from_fn(|_| HistShard::new()),
        }
    }
}

/// The shard this thread records into.  Assigned once per thread from a global
/// round-robin counter, so a fixed set of worker threads spreads evenly.
#[cfg(feature = "telemetry")]
#[inline]
fn thread_shard() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    SHARD.with(|s| *s)
}

/// A handle onto one named histogram in a registry.  Cheap to clone; recording is
/// lock-free and allocation-free.
#[derive(Debug, Clone)]
pub struct Histogram {
    pub(crate) enabled: Arc<AtomicBool>,
    pub(crate) core: Arc<HistCore>,
}

impl Histogram {
    /// A histogram detached from any registry (always enabled) — for tests and
    /// standalone aggregation.
    pub fn standalone() -> Self {
        Histogram {
            enabled: Arc::new(AtomicBool::new(true)),
            core: Arc::new(HistCore::new()),
        }
    }

    /// Records one sample.  No-op while the owning registry is disabled, and
    /// compiled out entirely without the `telemetry` feature.
    #[inline]
    pub fn record(&self, value: u64) {
        #[cfg(feature = "telemetry")]
        {
            if !self.enabled.load(Ordering::Relaxed) {
                return;
            }
            let shard = &self.core.shards[thread_shard()];
            shard.count.fetch_add(1, Ordering::Relaxed);
            shard.sum.fetch_add(value, Ordering::Relaxed);
            shard.max.fetch_max(value, Ordering::Relaxed);
            shard.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = (value, &self.enabled);
    }

    /// Whether a `record` call right now would actually store a sample.  Span
    /// guards check this once at entry so a disabled registry never even reads
    /// the clock.
    #[inline]
    pub(crate) fn is_armed(&self) -> bool {
        #[cfg(feature = "telemetry")]
        {
            self.enabled.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "telemetry"))]
        {
            false
        }
    }

    /// Merges every thread shard into one point-in-time snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut snap = HistogramSnapshot::default();
        for shard in &self.core.shards {
            snap.count += shard.count.load(Ordering::Relaxed);
            snap.sum += shard.sum.load(Ordering::Relaxed);
            snap.max = snap.max.max(shard.max.load(Ordering::Relaxed));
            for (b, bucket) in shard.buckets.iter().enumerate() {
                snap.buckets[b] += bucket.load(Ordering::Relaxed);
            }
        }
        snap
    }
}

/// An immutable merged view of a histogram: bucket counts plus count/sum/max.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all recorded values (wrapping add is acceptable at u64 scale).
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Per-bucket sample counts (see [`bucket_range`]).
    pub buckets: [u64; BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// True if no sample was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Adds another snapshot's samples into this one (cross-thread /
    /// cross-process merge).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// Mean of the recorded values; 0.0 on an empty histogram (never NaN).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `[low, high]` bounds of the bucket holding the nearest-rank
    /// `q`-quantile (`q ∈ [0, 1]`).  The exact nearest-rank percentile of the
    /// recorded samples is guaranteed to lie within the returned bounds; `(0, 0)`
    /// on an empty histogram.
    pub fn quantile_bounds(&self, q: f64) -> (u64, u64) {
        if self.count == 0 {
            return (0, 0);
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (index, &bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket;
            if cumulative >= rank {
                return bucket_range(index);
            }
        }
        bucket_range(BUCKETS - 1)
    }

    /// The upper bound of the bucket holding the nearest-rank `q`-quantile — a
    /// conservative (never underestimating) percentile read.
    pub fn quantile(&self, q: f64) -> u64 {
        self.quantile_bounds(q).1
    }

    /// Median upper bound.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile upper bound.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile upper bound.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th-percentile upper bound.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_matches_ranges() {
        for b in 0..BUCKETS {
            let (low, high) = bucket_range(b);
            assert_eq!(bucket_index(low), b, "low of bucket {b}");
            assert_eq!(bucket_index(high), b, "high of bucket {b}");
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn quantiles_bracket_exact_percentiles() {
        let hist = Histogram::standalone();
        let mut samples: Vec<u64> = (1..=1000u64).map(|i| i * 7 % 997).collect();
        for &s in &samples {
            hist.record(s);
        }
        samples.sort_unstable();
        let snap = hist.snapshot();
        assert_eq!(snap.count, 1000);
        for &q in &[0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * 1000f64).ceil() as usize).clamp(1, 1000);
            let exact = samples[rank - 1];
            let (low, high) = snap.quantile_bounds(q);
            assert!(
                low <= exact && exact <= high,
                "q={q}: exact {exact} outside [{low}, {high}]"
            );
        }
    }

    #[test]
    fn empty_histogram_reports_zeroes_not_nan() {
        let snap = Histogram::standalone().snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.p50(), 0);
        assert_eq!(snap.quantile_bounds(0.99), (0, 0));
        assert_eq!(snap.mean(), 0.0);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn merge_is_componentwise() {
        let a = Histogram::standalone();
        let b = Histogram::standalone();
        a.record(3);
        a.record(100);
        b.record(5);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count, 3);
        assert_eq!(merged.sum, 108);
        assert_eq!(merged.max, 100);
        assert_eq!(
            merged.buckets[bucket_index(3)] + merged.buckets[bucket_index(5)],
            2
        );
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn disabled_histograms_record_nothing() {
        let hist = Histogram::standalone();
        hist.enabled.store(false, Ordering::Relaxed);
        hist.record(42);
        assert!(hist.snapshot().is_empty());
        hist.enabled.store(true, Ordering::Relaxed);
        hist.record(42);
        assert_eq!(hist.snapshot().count, 1);
    }
}
