//! Counter and gauge handles.
//!
//! Both are single-`AtomicU64` cells shared between the registry (which
//! snapshots them) and any number of recording threads.  All accesses are
//! `Relaxed`: each cell is independent — counters are monotone accumulators,
//! gauges are last-write-wins samples — so there is no multi-cell invariant
//! that a stronger ordering would protect.  Readers may observe a counter
//! mid-burst; they can never observe a torn or invented value.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing event counter.
#[derive(Debug, Clone)]
pub struct Counter {
    pub(crate) enabled: Arc<AtomicBool>,
    pub(crate) cell: Arc<AtomicU64>,
}

impl Counter {
    /// A counter detached from any registry (always enabled).
    pub fn standalone() -> Self {
        Counter {
            enabled: Arc::new(AtomicBool::new(true)),
            cell: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.  No-op while the registry is disabled; compiled out without the
    /// `telemetry` feature.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(feature = "telemetry")]
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = (n, &self.enabled);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A last-write-wins sampled value.
///
/// Stored as `f64` bits in an `AtomicU64`; non-finite inputs are clamped to
/// `0.0` so no exposition format ever has to render `NaN` or `inf`.
#[derive(Debug, Clone)]
pub struct Gauge {
    pub(crate) enabled: Arc<AtomicBool>,
    pub(crate) cell: Arc<AtomicU64>,
}

impl Gauge {
    /// A gauge detached from any registry (always enabled).
    pub fn standalone() -> Self {
        Gauge {
            enabled: Arc::new(AtomicBool::new(true)),
            cell: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }

    /// Sets the gauge.  Non-finite values record as `0.0`.
    #[inline]
    pub fn set(&self, value: f64) {
        #[cfg(feature = "telemetry")]
        if self.enabled.load(Ordering::Relaxed) {
            let value = if value.is_finite() { value } else { 0.0 };
            self.cell.store(value.to_bits(), Ordering::Relaxed);
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = (value, &self.enabled);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.cell.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let c = Counter::standalone();
        c.inc();
        c.add(4);
        #[cfg(feature = "telemetry")]
        assert_eq!(c.get(), 5);
        #[cfg(not(feature = "telemetry"))]
        assert_eq!(c.get(), 0);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn gauges_clamp_non_finite_to_zero() {
        let g = Gauge::standalone();
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        g.set(f64::NAN);
        assert_eq!(g.get(), 0.0);
        g.set(f64::INFINITY);
        assert_eq!(g.get(), 0.0);
    }
}
