//! Exposition endpoints: Prometheus text format and JSONL time series.
//!
//! Both renderers consume a finished [`TelemetrySnapshot`], so they are pure
//! functions of collected data — rendering never touches live atomics.
//!
//! * [`render_prometheus`] produces the Prometheus text exposition format:
//!   every metric name is prefixed `ppr_` with dots mapped to underscores,
//!   histograms expand to cumulative `_bucket{le="…"}` lines plus `_sum`,
//!   `_count`, and pre-computed `_p50`/`_p90`/`_p99`/`_p999`/`_max` gauges.
//! * [`render_jsonl_line`] produces one self-contained JSON object per
//!   snapshot — append them to a file and you have a time series; the
//!   [`JsonlAppender`] does exactly that over any [`std::io::Write`].
//!
//! The JSON is hand-rendered (this workspace carries no serde); every line is
//! checked well-formed by [`crate::json::validate`] in tests and CI.

use crate::hist::{bucket_range, HistogramSnapshot};
use crate::json::escape_into;
use crate::snapshot::{MetricValue, TelemetrySnapshot};
use std::fmt::Write as _;
use std::io::{self, Write};

/// Maps a dot-namespaced metric name onto a Prometheus-legal one:
/// `query.latency` → `ppr_query_latency`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("ppr_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

fn prom_f64(value: f64) -> String {
    let value = if value.is_finite() { value } else { 0.0 };
    format!("{value:?}")
}

fn render_prom_histogram(out: &mut String, name: &str, hist: &HistogramSnapshot) {
    let _ = writeln!(out, "# TYPE {name} histogram");
    let top = hist.buckets.iter().rposition(|&c| c != 0).unwrap_or(0);
    let mut cumulative = 0u64;
    for (index, &bucket) in hist.buckets.iter().enumerate().take(top + 1) {
        cumulative += bucket;
        let (_, high) = bucket_range(index);
        let _ = writeln!(out, "{name}_bucket{{le=\"{high}\"}} {cumulative}");
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", hist.count);
    let _ = writeln!(out, "{name}_sum {}", hist.sum);
    let _ = writeln!(out, "{name}_count {}", hist.count);
    for (suffix, value) in [
        ("p50", hist.p50()),
        ("p90", hist.p90()),
        ("p99", hist.p99()),
        ("p999", hist.p999()),
        ("max", hist.max),
    ] {
        let _ = writeln!(out, "# TYPE {name}_{suffix} gauge");
        let _ = writeln!(out, "{name}_{suffix} {value}");
    }
}

/// Renders the snapshot in the Prometheus text exposition format.
pub fn render_prometheus(snapshot: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    for metric in &snapshot.metrics {
        let name = prom_name(&metric.name);
        match &metric.value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "# TYPE {name} counter");
                let _ = writeln!(out, "{name} {v}");
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "# TYPE {name} gauge");
                let _ = writeln!(out, "{name} {}", prom_f64(*v));
            }
            MetricValue::Histogram(h) => render_prom_histogram(&mut out, &name, h),
        }
    }
    out
}

fn json_histogram(out: &mut String, hist: &HistogramSnapshot) {
    let _ = write!(
        out,
        "{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{},\"buckets\":[",
        hist.count,
        hist.sum,
        hist.max,
        hist.p50(),
        hist.p90(),
        hist.p99(),
        hist.p999(),
    );
    let mut first = true;
    for (index, &count) in hist.buckets.iter().enumerate() {
        if count == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "[{index},{count}]");
    }
    out.push_str("]}");
}

/// Renders the snapshot as one self-contained JSON object (no trailing
/// newline).  Histogram buckets are sparse `[bucket_index, count]` pairs; see
/// [`bucket_range`] for the index → value-range mapping.
pub fn render_jsonl_line(snapshot: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    let _ = write!(out, "{{\"at_nanos\":{},\"label\":\"", snapshot.at_nanos);
    escape_into(&mut out, &snapshot.label);
    out.push_str("\",\"metrics\":{");
    let mut first = true;
    for metric in &snapshot.metrics {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('"');
        escape_into(&mut out, &metric.name);
        out.push_str("\":");
        match &metric.value {
            MetricValue::Counter(v) => {
                let _ = write!(out, "{v}");
            }
            MetricValue::Gauge(v) => {
                let v = if v.is_finite() { *v } else { 0.0 };
                let _ = write!(out, "{v:?}");
            }
            MetricValue::Histogram(h) => json_histogram(&mut out, h),
        }
    }
    out.push_str("}}");
    out
}

/// Appends snapshots as JSONL lines to any writer — the sampler hook sink used
/// by the scenario runner and the query engine's exporters.
#[derive(Debug)]
pub struct JsonlAppender<W: Write> {
    writer: W,
    lines: u64,
}

impl<W: Write> JsonlAppender<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        JsonlAppender { writer, lines: 0 }
    }

    /// Appends one snapshot as one JSON line.
    pub fn append(&mut self, snapshot: &TelemetrySnapshot) -> io::Result<()> {
        let line = render_jsonl_line(snapshot);
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.lines += 1;
        Ok(())
    }

    /// Number of lines appended so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(mut self) -> io::Result<W> {
        self.writer.flush()?;
        Ok(self.writer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;
    use crate::snapshot::SnapshotBuilder;
    use crate::Histogram;

    fn sample_snapshot() -> TelemetrySnapshot {
        let hist = Histogram::standalone();
        for v in [0u64, 1, 3, 900, 70_000] {
            hist.record(v);
        }
        let mut out = SnapshotBuilder::new();
        out.counter("query.served", 41);
        out.gauge("cache.hit_rate", 0.75);
        out.histogram("query.latency", hist.snapshot());
        TelemetrySnapshot::from_builder(123, out).with_label("phase \"2\"")
    }

    #[test]
    fn prometheus_output_has_buckets_quantiles_and_sanitized_names() {
        let text = render_prometheus(&sample_snapshot());
        assert!(text.contains("# TYPE ppr_query_served counter"));
        assert!(text.contains("ppr_query_served 41"));
        assert!(text.contains("ppr_cache_hit_rate 0.75"));
        assert!(text.contains("# TYPE ppr_query_latency histogram"));
        assert!(text.contains("ppr_query_latency_bucket{le=\"+Inf\"} "));
        assert!(text.contains("ppr_query_latency_p50 "));
        assert!(text.contains("ppr_query_latency_p99 "));
        #[cfg(feature = "telemetry")]
        {
            assert!(text.contains("ppr_query_latency_count 5"));
            assert!(text.contains("ppr_query_latency_bucket{le=\"0\"} 1"));
        }
    }

    #[test]
    fn jsonl_lines_are_valid_json_including_escaped_labels() {
        let snap = sample_snapshot();
        let line = render_jsonl_line(&snap);
        validate(&line).unwrap_or_else(|(at, msg)| panic!("invalid JSON at {at}: {msg}\n{line}"));
        assert!(line.contains("\"query.served\":41"));
        assert!(line.contains("phase \\\"2\\\""));
    }

    #[test]
    fn appender_counts_lines_and_flushes() {
        let snap = sample_snapshot();
        let mut appender = JsonlAppender::new(Vec::new());
        appender.append(&snap).unwrap();
        appender.append(&snap).unwrap();
        assert_eq!(appender.lines(), 2);
        let buf = appender.into_inner().unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            validate(line).expect("each JSONL line is standalone valid JSON");
        }
    }
}
