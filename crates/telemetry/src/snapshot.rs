//! Snapshot collection: one call that sees every layer.
//!
//! A [`TelemetrySnapshot`] is a sorted, point-in-time list of named metrics.
//! [`TelemetrySnapshot::collect`] gathers three kinds of inputs into one view:
//!
//! 1. the registry's own live instruments (counters, gauges, histograms —
//!    including every span's latency histogram);
//! 2. sources registered on the registry (closures over shared stat cells);
//! 3. borrowed [`MetricSource`]s passed at collect time — the adapters the
//!    workspace's existing stats structs (`StoreMetrics`, `ArenaStats`,
//!    `PagerStats`, `WalStats`, `CommitStats`, …) implement, polled off the
//!    owning engine at the moment of collection.
//!
//! Sources write through a [`SnapshotBuilder`], which namespaces metric names
//! (`"arena." + "relocations"`) and guards every ratio against zero
//! denominators, so no exposition format ever renders `NaN`.

use crate::hist::HistogramSnapshot;

/// The value of one collected metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotone event count.
    Counter(u64),
    /// A point-in-time sampled value.
    Gauge(f64),
    /// A full log₂-bucket distribution (boxed: the bucket array dwarfs the
    /// other variants).
    Histogram(Box<HistogramSnapshot>),
}

/// One named, collected metric.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Dot-namespaced metric name (e.g. `"store.fetches"`, `"commit.publish"`).
    pub name: String,
    /// The collected value.
    pub value: MetricValue,
}

/// Anything that can contribute metrics to a snapshot.
///
/// Implemented by the workspace's existing stats structs in their home crates;
/// a snapshot polls them by value at collect time, so the hot paths that fill
/// them stay exactly as they were.
pub trait MetricSource {
    /// Emits this source's metrics into the builder.
    fn emit(&self, out: &mut SnapshotBuilder);
}

impl<F: Fn(&mut SnapshotBuilder)> MetricSource for F {
    fn emit(&self, out: &mut SnapshotBuilder) {
        self(out)
    }
}

/// The sink sources emit into: accumulates namespaced metrics.
#[derive(Debug, Default)]
pub struct SnapshotBuilder {
    prefix: String,
    metrics: Vec<Metric>,
}

impl SnapshotBuilder {
    /// An empty builder with no namespace prefix.
    pub fn new() -> Self {
        SnapshotBuilder::default()
    }

    fn qualified(&self, name: &str) -> String {
        if self.prefix.is_empty() {
            name.to_string()
        } else {
            format!("{}.{name}", self.prefix)
        }
    }

    /// Runs `f` with `segment` appended to the namespace prefix: metrics emitted
    /// inside are named `prefix.segment.name`.
    pub fn scoped(&mut self, segment: &str, f: impl FnOnce(&mut SnapshotBuilder)) {
        let saved = self.prefix.len();
        if !self.prefix.is_empty() {
            self.prefix.push('.');
        }
        self.prefix.push_str(segment);
        f(self);
        self.prefix.truncate(saved);
    }

    /// Emits a counter.
    pub fn counter(&mut self, name: &str, value: u64) {
        let name = self.qualified(name);
        self.metrics.push(Metric {
            name,
            value: MetricValue::Counter(value),
        });
    }

    /// Emits a gauge.  Non-finite values are recorded as `0.0`.
    pub fn gauge(&mut self, name: &str, value: f64) {
        let name = self.qualified(name);
        let value = if value.is_finite() { value } else { 0.0 };
        self.metrics.push(Metric {
            name,
            value: MetricValue::Gauge(value),
        });
    }

    /// Emits `numerator / denominator` as a gauge, reporting `0.0` when the
    /// denominator is zero — the zero-denominator guard every hit-rate and
    /// overhead ratio in the workspace routes through.
    pub fn ratio(&mut self, name: &str, numerator: u64, denominator: u64) {
        let value = if denominator == 0 {
            0.0
        } else {
            numerator as f64 / denominator as f64
        };
        self.gauge(name, value);
    }

    /// Emits a histogram snapshot.
    pub fn histogram(&mut self, name: &str, snapshot: HistogramSnapshot) {
        let name = self.qualified(name);
        self.metrics.push(Metric {
            name,
            value: MetricValue::Histogram(Box::new(snapshot)),
        });
    }

    /// Emits a whole sub-source under `segment`.
    pub fn source(&mut self, segment: &str, source: &dyn MetricSource) {
        self.scoped(segment, |out| source.emit(out));
    }

    pub(crate) fn into_metrics(self) -> Vec<Metric> {
        self.metrics
    }
}

/// A sorted, point-in-time collection of every metric in scope.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetrySnapshot {
    /// Collection time on the registry's clock, in nanoseconds.
    pub at_nanos: u64,
    /// Free-form label (scenario phase, bench regime); empty by default.
    pub label: String,
    /// The metrics, sorted by name, names unique (later emitters win).
    pub metrics: Vec<Metric>,
}

impl TelemetrySnapshot {
    /// Finalizes a builder into a snapshot: sorts by name and dedupes (the
    /// later of two same-named emissions wins).  Registry users get this via
    /// [`crate::Telemetry::collect`]; standalone sources can build snapshots
    /// directly.
    pub fn from_builder(at_nanos: u64, builder: SnapshotBuilder) -> Self {
        let mut metrics = builder.into_metrics();
        // Sort by name; a later duplicate (same name emitted twice) wins, so
        // sources can refine registry defaults.
        metrics.sort_by(|a, b| a.name.cmp(&b.name));
        metrics.dedup_by(|later_dup, kept| {
            if later_dup.name == kept.name {
                kept.value = later_dup.value.clone();
                true
            } else {
                false
            }
        });
        TelemetrySnapshot {
            at_nanos,
            label: String::new(),
            metrics,
        }
    }

    /// Tags the snapshot with a label (scenario phase, regime name).
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Looks a metric up by exact name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics
            .binary_search_by(|m| m.name.as_str().cmp(name))
            .ok()
            .map(|i| &self.metrics[i].value)
    }

    /// The metric's value as a counter total (`None` if absent or not a counter).
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// The metric's value as a gauge (`None` if absent or not a gauge).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.get(name)? {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// The metric's histogram snapshot (`None` if absent or not a histogram).
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.get(name)? {
            MetricValue::Histogram(h) => Some(h.as_ref()),
            _ => None,
        }
    }

    /// Names of all collected metrics, in sorted order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.metrics.iter().map(|m| m.name.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_namespaces_and_sorts() {
        let mut out = SnapshotBuilder::new();
        out.scoped("store", |out| {
            out.counter("fetches", 3);
            out.scoped("inner", |out| out.gauge("depth", 1.5));
        });
        out.counter("alpha", 1);
        let snap = TelemetrySnapshot::from_builder(7, out);
        let names: Vec<_> = snap.names().collect();
        assert_eq!(names, vec!["alpha", "store.fetches", "store.inner.depth"]);
        assert_eq!(snap.counter("store.fetches"), Some(3));
        assert_eq!(snap.gauge("store.inner.depth"), Some(1.5));
        assert_eq!(snap.at_nanos, 7);
    }

    #[test]
    fn ratio_guards_zero_denominator() {
        let mut out = SnapshotBuilder::new();
        out.ratio("hit_rate", 5, 0);
        out.ratio("ok", 1, 2);
        out.gauge("nan", f64::NAN);
        let snap = TelemetrySnapshot::from_builder(0, out);
        assert_eq!(snap.gauge("hit_rate"), Some(0.0));
        assert_eq!(snap.gauge("ok"), Some(0.5));
        assert_eq!(snap.gauge("nan"), Some(0.0));
    }

    #[test]
    fn duplicate_names_keep_the_later_value() {
        let mut out = SnapshotBuilder::new();
        out.counter("x", 1);
        out.counter("x", 2);
        let snap = TelemetrySnapshot::from_builder(0, out);
        assert_eq!(snap.metrics.len(), 1);
        assert_eq!(snap.counter("x"), Some(2));
    }
}
