//! A minimal JSON validator.
//!
//! The JSONL exporter ([`crate::render_jsonl_line`]) hand-renders its output (the
//! workspace deliberately carries no serde dependency), so tests and CI
//! assertions need an independent check that every emitted line is
//! well-formed JSON.  [`validate`] is a strict recursive-descent recogniser
//! for RFC 8259 JSON — it accepts exactly one top-level value and rejects
//! trailing garbage.  It does not build a value tree; it only answers
//! "is this JSON?" plus an error offset for diagnostics.

/// Validates that `input` is exactly one well-formed JSON value (surrounded by
/// optional whitespace).  Returns `Err((byte_offset, message))` on the first
/// violation.
pub fn validate(input: &str) -> Result<(), (usize, &'static str)> {
    let bytes = input.as_bytes();
    let mut pos = skip_ws(bytes, 0);
    pos = value(bytes, pos)?;
    pos = skip_ws(bytes, pos);
    if pos != bytes.len() {
        return Err((pos, "trailing characters after JSON value"));
    }
    Ok(())
}

fn skip_ws(bytes: &[u8], mut pos: usize) -> usize {
    while pos < bytes.len() && matches!(bytes[pos], b' ' | b'\t' | b'\n' | b'\r') {
        pos += 1;
    }
    pos
}

fn value(bytes: &[u8], pos: usize) -> Result<usize, (usize, &'static str)> {
    match bytes.get(pos) {
        None => Err((pos, "unexpected end of input")),
        Some(b'{') => object(bytes, pos),
        Some(b'[') => array(bytes, pos),
        Some(b'"') => string(bytes, pos),
        Some(b't') => literal(bytes, pos, b"true"),
        Some(b'f') => literal(bytes, pos, b"false"),
        Some(b'n') => literal(bytes, pos, b"null"),
        Some(b'-' | b'0'..=b'9') => number(bytes, pos),
        Some(_) => Err((pos, "unexpected character at start of value")),
    }
}

fn literal(bytes: &[u8], pos: usize, expect: &[u8]) -> Result<usize, (usize, &'static str)> {
    if bytes[pos..].starts_with(expect) {
        Ok(pos + expect.len())
    } else {
        Err((pos, "invalid literal"))
    }
}

fn object(bytes: &[u8], mut pos: usize) -> Result<usize, (usize, &'static str)> {
    pos = skip_ws(bytes, pos + 1);
    if bytes.get(pos) == Some(&b'}') {
        return Ok(pos + 1);
    }
    loop {
        if bytes.get(pos) != Some(&b'"') {
            return Err((pos, "expected string key in object"));
        }
        pos = string(bytes, pos)?;
        pos = skip_ws(bytes, pos);
        if bytes.get(pos) != Some(&b':') {
            return Err((pos, "expected ':' after object key"));
        }
        pos = skip_ws(bytes, pos + 1);
        pos = value(bytes, pos)?;
        pos = skip_ws(bytes, pos);
        match bytes.get(pos) {
            Some(b',') => pos = skip_ws(bytes, pos + 1),
            Some(b'}') => return Ok(pos + 1),
            _ => return Err((pos, "expected ',' or '}' in object")),
        }
    }
}

fn array(bytes: &[u8], mut pos: usize) -> Result<usize, (usize, &'static str)> {
    pos = skip_ws(bytes, pos + 1);
    if bytes.get(pos) == Some(&b']') {
        return Ok(pos + 1);
    }
    loop {
        pos = value(bytes, pos)?;
        pos = skip_ws(bytes, pos);
        match bytes.get(pos) {
            Some(b',') => pos = skip_ws(bytes, pos + 1),
            Some(b']') => return Ok(pos + 1),
            _ => return Err((pos, "expected ',' or ']' in array")),
        }
    }
}

fn string(bytes: &[u8], mut pos: usize) -> Result<usize, (usize, &'static str)> {
    pos += 1; // opening quote
    while let Some(&b) = bytes.get(pos) {
        match b {
            b'"' => return Ok(pos + 1),
            b'\\' => match bytes.get(pos + 1) {
                Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => pos += 2,
                Some(b'u') => {
                    let hex = bytes
                        .get(pos + 2..pos + 6)
                        .ok_or((pos, "truncated \\u escape"))?;
                    if !hex.iter().all(u8::is_ascii_hexdigit) {
                        return Err((pos, "invalid \\u escape"));
                    }
                    pos += 6;
                }
                _ => return Err((pos, "invalid escape sequence")),
            },
            0x00..=0x1f => return Err((pos, "unescaped control character in string")),
            _ => pos += 1,
        }
    }
    Err((pos, "unterminated string"))
}

fn number(bytes: &[u8], mut pos: usize) -> Result<usize, (usize, &'static str)> {
    let start = pos;
    if bytes.get(pos) == Some(&b'-') {
        pos += 1;
    }
    match bytes.get(pos) {
        Some(b'0') => pos += 1,
        Some(b'1'..=b'9') => {
            while matches!(bytes.get(pos), Some(b'0'..=b'9')) {
                pos += 1;
            }
        }
        _ => return Err((start, "invalid number")),
    }
    if bytes.get(pos) == Some(&b'.') {
        pos += 1;
        if !matches!(bytes.get(pos), Some(b'0'..=b'9')) {
            return Err((pos, "expected digit after decimal point"));
        }
        while matches!(bytes.get(pos), Some(b'0'..=b'9')) {
            pos += 1;
        }
    }
    if matches!(bytes.get(pos), Some(b'e' | b'E')) {
        pos += 1;
        if matches!(bytes.get(pos), Some(b'+' | b'-')) {
            pos += 1;
        }
        if !matches!(bytes.get(pos), Some(b'0'..=b'9')) {
            return Err((pos, "expected digit in exponent"));
        }
        while matches!(bytes.get(pos), Some(b'0'..=b'9')) {
            pos += 1;
        }
    }
    Ok(pos)
}

/// Escapes `raw` as the contents of a JSON string (no surrounding quotes).
pub fn escape_into(out: &mut String, raw: &str) {
    for ch in raw.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_json() {
        for ok in [
            "{}",
            "[]",
            "0",
            "-1.5e3",
            "true",
            "null",
            r#""hi\nthere""#,
            r#"{"a": [1, 2.5, {"b": "é"}], "c": false}"#,
            "  {\"x\": 1}  ",
        ] {
            assert!(validate(ok).is_ok(), "should accept: {ok}");
        }
    }

    #[test]
    fn rejects_invalid_json() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "nul",
            "01",
            "1.",
            "\"unterminated",
            "{} {}",
            "NaN",
            "\"bad\\escape\"",
        ] {
            assert!(validate(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn escape_round_trips_through_validate() {
        let mut out = String::from("\"");
        escape_into(&mut out, "line\nbreak \"quoted\" back\\slash \u{1} é");
        out.push('"');
        assert!(validate(&out).is_ok(), "escaped string invalid: {out}");
    }
}
