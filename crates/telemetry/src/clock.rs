//! Injectable time sources for span timing.
//!
//! Spans measure durations through a [`Clock`] rather than calling
//! [`std::time::Instant::now`] directly, for one reason: determinism.  The
//! workspace's load-bearing invariant is that every replay is a pure function of
//! its seeds, and tests that assert on *recorded telemetry* need the same
//! property for time itself.  Production uses [`MonotonicClock`] (a monotonic
//! nanosecond counter anchored at construction); tests use [`ManualClock`] and
//! advance it by hand, making every span duration exactly reproducible.
//!
//! Telemetry never feeds back into engine behaviour, so the clock choice can
//! never change a score, an answer, or a `StoreDigest` — only what the
//! histograms say about latency.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic nanosecond source.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Nanoseconds since an arbitrary (per-clock) origin.  Must be monotone
    /// non-decreasing across calls from any thread.
    fn now_nanos(&self) -> u64;
}

/// The production clock: [`Instant`]-based, origin at construction.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is "now".
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_nanos(&self) -> u64 {
        // A u64 of nanoseconds lasts ~584 years from the origin; saturate rather
        // than wrap if something feeds us an absurd instant.
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A hand-advanced test clock: time moves only when the test says so.
///
/// Cloning shares the underlying counter, so the clone handed to a
/// [`crate::Telemetry`] and the one kept by the test tick together.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    nanos: Arc<AtomicU64>,
}

impl ManualClock {
    /// A clock frozen at zero.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Advances the clock by `nanos` nanoseconds.
    pub fn advance(&self, nanos: u64) {
        self.nanos.fetch_add(nanos, Ordering::Release);
    }

    /// Jumps the clock forward to `nanos` (monotone: never moves it backwards).
    pub fn set(&self, nanos: u64) {
        self.nanos.fetch_max(nanos, Ordering::Release);
    }
}

impl Clock for ManualClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_is_monotone() {
        let clock = MonotonicClock::new();
        let a = clock.now_nanos();
        let b = clock.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_advances_only_by_hand() {
        let clock = ManualClock::new();
        assert_eq!(clock.now_nanos(), 0);
        clock.advance(250);
        assert_eq!(clock.now_nanos(), 250);
        let shared = clock.clone();
        shared.advance(50);
        assert_eq!(clock.now_nanos(), 300);
        clock.set(200); // monotone: no-op backwards
        assert_eq!(clock.now_nanos(), 300);
        clock.set(1_000);
        assert_eq!(clock.now_nanos(), 1_000);
    }
}
