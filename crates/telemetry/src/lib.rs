//! `ppr-telemetry`: the unified observability layer for the fast-ppr workspace.
//!
//! One [`Telemetry`] registry holds named [`Counter`]s, [`Gauge`]s, and
//! log₂-bucket [`Histogram`]s; RAII [`Span`]/[`OwnedSpan`] guards time
//! lifecycle stages (commit apply → mirror → WAL fsync → publish, query pin →
//! walk → top-k) into those histograms over an injectable [`Clock`];
//! [`TelemetrySnapshot`] collection folds registry instruments together with
//! [`MetricSource`] adapters over every existing stats struct in the
//! workspace; and [`render_prometheus`] / [`JsonlAppender`] expose the result.
//!
//! Design contract, in order of importance:
//!
//! 1. **Telemetry never changes behaviour.**  Nothing in this crate feeds back
//!    into engine decisions; all differential digests stay bit-identical with
//!    telemetry on, off, or compiled out.
//! 2. **The hot path is cheap.**  Recording is one relaxed-load branch plus a
//!    few relaxed atomic adds on a thread-local shard — no locks, no
//!    allocation.  Disabling at runtime ([`Telemetry::set_enabled`]) leaves
//!    one predictable branch; building without the `telemetry` cargo feature
//!    (on by default) compiles record bodies out entirely while keeping the
//!    full API, so instrumented call sites need no cfg of their own.
//! 3. **Readings are honest.**  Quantiles come with bracketing bounds
//!    ([`HistogramSnapshot::quantile_bounds`]), every ratio guards its zero
//!    denominator, and non-finite gauges clamp to `0.0` — no exposition
//!    format ever renders `NaN`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod clock;
mod expose;
mod hist;
mod metrics;
mod registry;
mod snapshot;
mod span;

pub mod json;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use expose::{render_jsonl_line, render_prometheus, JsonlAppender};
pub use hist::{bucket_index, bucket_range, Histogram, HistogramSnapshot, BUCKETS, SHARDS};
pub use metrics::{Counter, Gauge};
pub use registry::Telemetry;
pub use snapshot::{Metric, MetricSource, MetricValue, SnapshotBuilder, TelemetrySnapshot};
pub use span::{OwnedSpan, Span};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_collects_instruments_sources_and_extras_in_one_snapshot() {
        let tele = Telemetry::new();
        tele.counter("reg.count").add(2);
        tele.gauge("reg.level").set(1.25);
        tele.histogram("reg.lat").record(8);
        tele.register_source(|out: &mut SnapshotBuilder| {
            out.scoped("shared", |out| out.counter("events", 7));
        });
        let extra = |out: &mut SnapshotBuilder| {
            out.scoped("engine", |out| out.ratio("hit_rate", 3, 4));
        };
        let snap = tele.collect_with(&[&extra]);
        assert_eq!(snap.counter("shared.events"), Some(7));
        assert_eq!(snap.gauge("engine.hit_rate"), Some(0.75));
        #[cfg(feature = "telemetry")]
        {
            assert_eq!(snap.counter("reg.count"), Some(2));
            assert_eq!(snap.gauge("reg.level"), Some(1.25));
            assert_eq!(snap.histogram("reg.lat").unwrap().count, 1);
        }
        #[cfg(not(feature = "telemetry"))]
        {
            assert_eq!(snap.counter("reg.count"), Some(0));
            assert!(snap.histogram("reg.lat").unwrap().is_empty());
        }
    }

    #[test]
    fn disabling_stops_recording_but_collection_still_works() {
        let tele = Telemetry::new();
        let counter = tele.counter("x");
        counter.inc();
        tele.set_enabled(false);
        counter.inc();
        let after_disable = tele.collect().counter("x").unwrap();
        #[cfg(feature = "telemetry")]
        assert_eq!(after_disable, 1);
        #[cfg(not(feature = "telemetry"))]
        assert_eq!(after_disable, 0);
    }

    #[test]
    fn same_name_returns_the_same_underlying_cell() {
        let tele = Telemetry::new();
        tele.counter("dup").add(1);
        tele.counter("dup").add(1);
        let snap = tele.collect();
        #[cfg(feature = "telemetry")]
        assert_eq!(snap.counter("dup"), Some(2));
        #[cfg(not(feature = "telemetry"))]
        assert_eq!(snap.counter("dup"), Some(0));
    }
}
