//! Replaying a compiled [`Trace`] through a serving engine.
//!
//! [`ScenarioRunner`] is the single replay path every harness shares: it wraps the
//! engine in a [`QueryEngine`], commits the trace's write events through the
//! serving commit path (so the published generations track the live store exactly),
//! fans query batches out over a [`ReaderPool`], and invokes [`ReplayHooks`] at
//! checkpoint events and chaos fault points.  Because the hooks take the whole
//! serving session by value and hand one back, a hook can *tear the session down
//! entirely* — drop the engine mid-WAL, corrupt a snapshot on disk, reopen from the
//! store directory — and the runner just keeps replaying into whatever came back.
//! That is what makes "SIGKILL anywhere, recover, resume ≡ never crashed" a
//! replayable property instead of a bespoke test.

use crate::chaos::{ChaosPlan, Fault};
use crate::trace::{Event, Trace};
use ppr_serve::{
    Answer, Query, QueryBatch, QueryEngine, ReaderPool, ServeEngine, ServeHandle, Served,
};
use ppr_telemetry::{JsonlAppender, Telemetry};
use std::io::{self, Write};

/// One served answer, in trace order, stripped to its replay-stable fields.
///
/// `epoch` is deliberately absent: a crash-and-reopen hook rebuilds the serving
/// session, resetting its epoch counter, so epochs differ between a faulted and a
/// clean replay even though every answer's *content* is bit-identical.  The
/// differential oracles compare exactly the fields that must survive faults.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioAnswer {
    /// The query's trace-assigned id.
    pub query_id: u64,
    /// Social Store fetches the walk made.
    pub fetches: u64,
    /// Whether the Corollary 9 fetch budget cut the walk short.
    pub budget_exhausted: bool,
    /// Whether a per-query deadline budget cut the walk short (batched serving).
    pub deadline_exhausted: bool,
    /// The answer itself.
    pub answer: Answer,
}

impl From<Served> for ScenarioAnswer {
    fn from(s: Served) -> Self {
        ScenarioAnswer {
            query_id: s.query_id,
            fetches: s.fetches,
            budget_exhausted: s.budget_exhausted,
            deadline_exhausted: s.deadline_exhausted,
            answer: s.answer,
        }
    }
}

/// Aggregate statistics of one replay.
#[derive(Debug, Clone, Default)]
pub struct RunOutcome {
    /// Every served answer, in trace order.
    pub answers: Vec<ScenarioAnswer>,
    /// Total edges arrived.
    pub arrivals: usize,
    /// Total edges deleted.
    pub deletions: usize,
    /// Checkpoint events replayed.
    pub checkpoints: usize,
    /// Faults injected.
    pub faults: usize,
    /// How many answers had their fetch budget exhausted.
    pub budget_exhausted: usize,
}

/// Hooks a replay invokes at checkpoint events and chaos fault points.  Both take
/// the serving session by value and return the session to continue with — possibly
/// a brand-new one reopened from durable storage.
pub trait ReplayHooks<E: ServeEngine> {
    /// Called at every [`Event::Checkpoint`].  The default is a no-op (in-memory
    /// engines have nothing to checkpoint).
    fn on_checkpoint(&mut self, serving: QueryEngine<E>) -> QueryEngine<E> {
        serving
    }

    /// Called after the event at a fault point designated by the [`ChaosPlan`].
    /// The default ignores the fault.
    fn on_fault(&mut self, fault: &Fault, serving: QueryEngine<E>) -> QueryEngine<E> {
        let _ = fault;
        serving
    }
}

/// The no-op hooks: checkpoints and faults leave the session untouched.
#[derive(Debug, Default)]
pub struct NoHooks;

impl<E: ServeEngine> ReplayHooks<E> for NoHooks {}

/// The telemetry side-channel of [`ScenarioRunner::replay_sampled`]: the
/// registry the serving session records into, plus the JSONL sink receiving one
/// labeled whole-stack snapshot per sampled point.
#[derive(Debug)]
pub struct TelemetrySampler<'a, W: Write> {
    tele: &'a Telemetry,
    out: &'a mut JsonlAppender<W>,
}

impl<'a, W: Write> TelemetrySampler<'a, W> {
    /// A sampler recording through `tele` and appending to `out`.
    pub fn new(tele: &'a Telemetry, out: &'a mut JsonlAppender<W>) -> Self {
        TelemetrySampler { tele, out }
    }

    /// Appends one labeled snapshot of the serving session's whole stack.
    fn sample<E: ServeEngine>(&mut self, serving: &QueryEngine<E>, label: &str) -> io::Result<()> {
        let snap = serving
            .telemetry_snapshot()
            .expect("replay_sampled always attaches its registry")
            .with_label(label);
        self.out.append(&snap)
    }
}

/// Replays traces through serving sessions.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioRunner {
    /// Seed of the serving session's query streams.
    pub query_seed: u64,
    /// Reader threads serving each query batch.
    pub readers: usize,
    /// Commit-pipeline in-flight window (0 = inline commits).
    pub pipeline: usize,
    /// Batched-serving width: query tides are chunked into [`QueryBatch`]es of
    /// this many queries and served via [`ReaderPool::serve_batch`] (0 = the
    /// per-query [`ReaderPool::serve_all`] path).  Answers are bit-identical at
    /// every width — that is the batched-execution invariant the corpus
    /// harness checks.
    pub batch_width: usize,
}

impl ScenarioRunner {
    /// A runner serving with `readers` reader threads; query streams are keyed by
    /// the scenario's own seed at replay time.  The batch width defaults to the
    /// `PPR_BATCH_WIDTH` environment variable (CI sweeps it), else 0.
    pub fn new(readers: usize) -> Self {
        ScenarioRunner {
            query_seed: 0,
            readers,
            pipeline: 0,
            batch_width: std::env::var("PPR_BATCH_WIDTH")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0),
        }
    }

    /// Overrides the query-stream seed (defaults to the scenario seed).
    pub fn with_query_seed(mut self, query_seed: u64) -> Self {
        self.query_seed = query_seed;
        self
    }

    /// Serves query tides in batches of `width` queries through the batched
    /// execution path (0 restores per-query serving).
    pub fn with_batch_width(mut self, width: usize) -> Self {
        self.batch_width = width;
        self
    }

    /// Serves one query tide: per query when `batch_width` is 0, else chunked
    /// through the one-pin-per-batch path.  Either way, answers come back in
    /// tide order.
    fn serve_jobs(
        &self,
        pool: &ReaderPool,
        handle: &ServeHandle,
        jobs: &[(u64, Query)],
    ) -> Vec<Served> {
        if self.batch_width == 0 {
            return pool.serve_all(handle, jobs);
        }
        let mut out = Vec::with_capacity(jobs.len());
        for chunk in jobs.chunks(self.batch_width) {
            out.extend(pool.serve_batch(handle, &QueryBatch::of(chunk)));
        }
        out
    }

    /// Runs commits through a pipelined committer with the given in-flight
    /// `window` (0 keeps the inline default).  The runner flushes the pipeline
    /// before every query batch, so answers stay bit-identical to an inline
    /// replay — which is exactly the property the differential harnesses check.
    pub fn with_pipeline(mut self, window: usize) -> Self {
        self.pipeline = window;
        self
    }

    /// Replays `trace` through `engine` with no chaos and no checkpoint action.
    pub fn replay<E: ServeEngine>(&self, trace: &Trace, engine: E) -> (E, RunOutcome) {
        self.replay_with(trace, engine, &ChaosPlan::none(), &mut NoHooks)
    }

    /// Replays `trace` with telemetry attached: the serving session's commit and
    /// query lifecycles record into the sampler's registry, and one labeled
    /// whole-stack snapshot line is appended to its JSONL sink at every phase
    /// boundary plus a `"final"` sample after the last event.  Chaos- and
    /// hook-free (a crash hook rebuilds the serving session, which would detach
    /// the instruments mid-run); telemetry observes only, so answers and final
    /// store state are bit-identical to [`ScenarioRunner::replay`].
    pub fn replay_sampled<E: ServeEngine, W: Write>(
        &self,
        trace: &Trace,
        engine: E,
        sampler: &mut TelemetrySampler<'_, W>,
    ) -> io::Result<(E, RunOutcome)> {
        let query_seed = if self.query_seed != 0 {
            self.query_seed
        } else {
            trace.scenario.seed
        };
        let mut serving = QueryEngine::new(engine, query_seed).with_telemetry(sampler.tele);
        if self.pipeline > 0 {
            serving = serving.with_pipeline(self.pipeline);
        }
        let pool = ReaderPool::new(self.readers.max(1));
        let mut outcome = RunOutcome::default();
        let mut current_phase = None;
        for event in &trace.events {
            if let Some(prev) = current_phase {
                if prev != event.phase {
                    // Snapshot a finished phase with its commit spans drained.
                    serving.flush_commits();
                    sampler.sample(&serving, &format!("phase{prev}"))?;
                }
            }
            current_phase = Some(event.phase);
            match &event.event {
                Event::Arrivals(edges) => {
                    if !edges.is_empty() {
                        serving.commit_arrivals(edges);
                        outcome.arrivals += edges.len();
                    }
                }
                Event::Deletions(edges) => {
                    if !edges.is_empty() {
                        serving.commit_deletions(edges);
                        outcome.deletions += edges.len();
                    }
                }
                Event::Queries(jobs) => {
                    if !jobs.is_empty() {
                        serving.flush_commits();
                        let handle = serving.handle();
                        for served in self.serve_jobs(&pool, &handle, jobs) {
                            if served.budget_exhausted {
                                outcome.budget_exhausted += 1;
                            }
                            outcome.answers.push(served.into());
                        }
                    }
                }
                Event::Checkpoint => outcome.checkpoints += 1,
            }
        }
        serving.flush_commits();
        sampler.sample(&serving, "final")?;
        Ok((serving.into_engine(), outcome))
    }

    /// Replays `trace` through `engine`, invoking `hooks` at checkpoint events and
    /// at the fault points `plan` designates.  Returns the final engine (whatever
    /// engine the last hook left serving) and the run's outcome.
    pub fn replay_with<E: ServeEngine, H: ReplayHooks<E>>(
        &self,
        trace: &Trace,
        engine: E,
        plan: &ChaosPlan,
        hooks: &mut H,
    ) -> (E, RunOutcome) {
        let query_seed = if self.query_seed != 0 {
            self.query_seed
        } else {
            trace.scenario.seed
        };
        let mut serving = QueryEngine::new(engine, query_seed);
        if self.pipeline > 0 {
            serving = serving.with_pipeline(self.pipeline);
        }
        let pool = ReaderPool::new(self.readers.max(1));
        let mut outcome = RunOutcome::default();
        for (index, event) in trace.events.iter().enumerate() {
            match &event.event {
                Event::Arrivals(edges) => {
                    if !edges.is_empty() {
                        serving.commit_arrivals(edges);
                        outcome.arrivals += edges.len();
                    }
                }
                Event::Deletions(edges) => {
                    if !edges.is_empty() {
                        serving.commit_deletions(edges);
                        outcome.deletions += edges.len();
                    }
                }
                Event::Queries(jobs) => {
                    if !jobs.is_empty() {
                        // Queries must see every commit issued so far (pipelined
                        // commits may still be in flight) — this is what keeps a
                        // pipelined replay's answers bit-identical to inline.
                        serving.flush_commits();
                        // Re-acquire the handle each batch: a crash hook may have
                        // replaced the whole serving session since the last one.
                        let handle = serving.handle();
                        for served in self.serve_jobs(&pool, &handle, jobs) {
                            if served.budget_exhausted {
                                outcome.budget_exhausted += 1;
                            }
                            outcome.answers.push(served.into());
                        }
                    }
                }
                Event::Checkpoint => {
                    serving = hooks.on_checkpoint(serving);
                    outcome.checkpoints += 1;
                }
            }
            for fault in plan.faults_after(index) {
                serving = hooks.on_fault(fault, serving);
                outcome.faults += 1;
            }
        }
        (serving.into_engine(), outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus;
    use crate::trace::Trace;
    use ppr_core::IncrementalPageRank;
    use ppr_store::{StoreDigest, WalkStore};

    #[test]
    fn replay_is_reader_count_invariant_and_pure() {
        let scenario = corpus::steady_mix();
        let trace = Trace::compile(&scenario);
        let make = || {
            IncrementalPageRank::<WalkStore>::new_empty(scenario.nodes, scenario.engine_config())
        };
        let (e1, o1) = ScenarioRunner::new(1).replay(&trace, make());
        let (e4, o4) = ScenarioRunner::new(4).replay(&trace, make());
        assert_eq!(o1.answers, o4.answers, "answers are pool-width invariant");
        assert_eq!(
            StoreDigest::of(e1.walk_store()),
            StoreDigest::of(e4.walk_store()),
        );
        assert_eq!(e1.scores(), e4.scores());
        assert!(o1.arrivals > 0);
        assert_eq!(o1.answers.len(), trace.query_count());
    }

    #[test]
    fn sampled_replay_exports_valid_jsonl_and_matches_the_plain_replay() {
        let scenario = corpus::steady_mix();
        let trace = Trace::compile(&scenario);
        let make = || {
            IncrementalPageRank::<WalkStore>::new_empty(scenario.nodes, scenario.engine_config())
        };
        let (plain_engine, plain) = ScenarioRunner::new(2).replay(&trace, make());

        let tele = ppr_telemetry::Telemetry::new();
        let mut out = ppr_telemetry::JsonlAppender::new(Vec::new());
        let mut sampler = TelemetrySampler::new(&tele, &mut out);
        let (sampled_engine, sampled) = ScenarioRunner::new(2)
            .replay_sampled(&trace, make(), &mut sampler)
            .expect("in-memory sink never fails");

        assert_eq!(plain.answers, sampled.answers, "telemetry observes only");
        assert_eq!(
            StoreDigest::of(plain_engine.walk_store()),
            StoreDigest::of(sampled_engine.walk_store()),
        );

        let phases = trace.scenario.phases.len();
        assert_eq!(out.lines(), phases as u64, "one line per phase + final");
        let exported = out.into_inner().expect("flushing a Vec cannot fail");
        let exported = String::from_utf8(exported).expect("JSONL is UTF-8");
        for line in exported.lines() {
            ppr_telemetry::json::validate(line)
                .unwrap_or_else(|(at, what)| panic!("invalid JSONL at byte {at}: {what}"));
        }
        assert!(exported.contains("\"label\":\"final\""));
        assert!(exported.contains("commit.commits"));
        assert!(exported.contains("query.latency"));
    }
}
