//! The chaos layer: deterministic fault plans and the durable-engine hooks that
//! execute them.
//!
//! A [`ChaosPlan`] names fault points by **trace event index** — the stable
//! coordinate [`crate::trace::Trace::compile`] guarantees — so the same plan
//! replayed against the same trace injects the same faults at the same logical
//! instants, on every layout and thread count.  [`DurableChaos`] is the hook set
//! that executes the faults against a durable PageRank engine:
//!
//! * [`Fault::CrashTornWal`] — the SIGKILL-mid-append fault: drop the whole
//!   serving session (abandoning in-memory state and releasing the store lock),
//!   append garbage to the live WAL the way a torn tail looks after power loss,
//!   then recover through the ordinary `open` path and resume serving.
//! * [`Fault::TornSnapshotPage`] — flip a byte mid-snapshot of the current
//!   generation and recover; the checksum rejects the snapshot and recovery falls
//!   back a generation, replaying its sealed WAL forward.  Only meaningful once a
//!   checkpoint has produced a fallback generation; the hook skips the corruption
//!   (still crashing and recovering) while the store is on generation 0.
//! * [`Fault::SlowDisk`] — install a [`SlowDisk`] I/O shim that stalls every few
//!   durability operations for the rest of the run.  Pure timing: the differential
//!   oracle asserts the run stays bit-identical anyway.
//!
//! The invariant all three exist to test: **faulted replay ≡ clean replay**, in
//! final scores, store digests, and every served answer.

use crate::runner::ReplayHooks;
use crate::trace::Trace;
use ppr_core::IncrementalPageRank;
use ppr_persist::{shim, PersistentWalkStore, SlowDisk, StoreDir};
use ppr_serve::QueryEngine;
use ppr_store::WalkIndexMut;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// One injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// SIGKILL-equivalent crash leaving a torn WAL tail, then recovery.
    CrashTornWal,
    /// A flipped byte in the current snapshot, then crash and fallback recovery.
    TornSnapshotPage,
    /// Install a slow-disk I/O shim for the rest of the run.
    SlowDisk,
}

/// A deterministic fault schedule: `(event index, fault)` pairs, applied after the
/// named event replays.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    faults: Vec<(usize, Fault)>,
}

impl ChaosPlan {
    /// The empty plan (a clean run).
    pub fn none() -> Self {
        ChaosPlan::default()
    }

    /// A plan with a single crash-with-torn-WAL after event `index`.
    pub fn crash_at(index: usize) -> Self {
        ChaosPlan {
            faults: vec![(index, Fault::CrashTornWal)],
        }
    }

    /// Adds a fault after event `index` (keeps the schedule sorted by index).
    pub fn with_fault(mut self, index: usize, fault: Fault) -> Self {
        self.faults.push((index, fault));
        self.faults.sort_by_key(|&(i, _)| i);
        self
    }

    /// The scheduled faults.
    pub fn faults(&self) -> &[(usize, Fault)] {
        &self.faults
    }

    /// The faults to inject after event `index` replays, in schedule order.
    pub fn faults_after(&self, index: usize) -> impl Iterator<Item = &Fault> {
        self.faults
            .iter()
            .filter(move |&&(i, _)| i == index)
            .map(|(_, f)| f)
    }

    /// Derives a full fault schedule for `trace` from `chaos_seed`, deterministic
    /// in `(trace, chaos_seed)`:
    ///
    /// * a slow-disk shim from the first event,
    /// * one torn-WAL crash in the first half of the trace,
    /// * one torn snapshot page after the first checkpoint (if the trace has one).
    pub fn for_trace(trace: &Trace, chaos_seed: u64) -> Self {
        let len = trace.events.len();
        let mut rng = SmallRng::seed_from_u64(chaos_seed ^ 0xC0A5_7A17_C0A5_7A17);
        let mut plan = ChaosPlan::none().with_fault(0, Fault::SlowDisk);
        if len >= 2 {
            plan = plan.with_fault(rng.gen_range(0..len / 2), Fault::CrashTornWal);
        }
        if let Some(&first_ckpt) = trace.checkpoint_indices().first() {
            plan = plan.with_fault(rng.gen_range(first_ckpt..len), Fault::TornSnapshotPage);
        }
        plan
    }
}

/// Appends garbage bytes to the live WAL of `root`'s current generation — what a
/// torn tail looks like after power loss mid-append.
fn tear_wal_tail(root: &Path) {
    use std::io::Write;
    let dir = StoreDir::open(root.to_path_buf()).expect("store dir must exist to tear");
    let gen = dir.current_gen().expect("CURRENT must be readable");
    let mut wal = std::fs::OpenOptions::new()
        .append(true)
        .open(dir.wal_path(gen))
        .expect("live WAL must exist");
    wal.write_all(&[0xEE; 9]).expect("torn-tail append");
}

/// Flips one byte in the middle of the current generation's snapshot.  Returns
/// `false` (leaving the file untouched) while the store is on generation 0, where
/// no fallback generation exists to recover into.
fn tear_snapshot_page(root: &Path) -> bool {
    let dir = StoreDir::open(root.to_path_buf()).expect("store dir must exist to tear");
    let gen = dir.current_gen().expect("CURRENT must be readable");
    if gen == 0 {
        return false;
    }
    let path = dir.snapshot_path(gen);
    let mut bytes = std::fs::read(&path).expect("current snapshot must exist");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&path, bytes).expect("snapshot corruption write");
    true
}

/// Rebuilds a serving session after a crash-recovery, preserving the crashed
/// session's commit-pipeline window (a recovered server keeps its configuration).
fn rebuild_session<E: ppr_serve::ServeEngine>(
    engine: E,
    query_seed: u64,
    window: usize,
) -> QueryEngine<E> {
    let serving = QueryEngine::new(engine, query_seed);
    if window > 0 {
        serving.with_pipeline(window)
    } else {
        serving
    }
}

/// Chaos hooks for durable PageRank engines over any persistent store layout:
/// checkpoints on [`crate::trace::Event::Checkpoint`], crash/corrupt/recover on
/// plan faults, slow-disk stalls through the `ppr-persist` I/O shim.
#[derive(Debug, Default)]
pub struct DurableChaos {
    root: PathBuf,
    slow_disk: Option<(shim::ShimGuard, Arc<SlowDisk>)>,
    crashes: usize,
    snapshot_tears: usize,
}

impl DurableChaos {
    /// Hooks operating on the durable store directory at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        DurableChaos {
            root: root.into(),
            slow_disk: None,
            crashes: 0,
            snapshot_tears: 0,
        }
    }

    /// Crash-recoveries executed so far (both fault kinds crash).
    pub fn crashes(&self) -> usize {
        self.crashes
    }

    /// Snapshot corruptions that actually landed (skipped on generation 0).
    pub fn snapshot_tears(&self) -> usize {
        self.snapshot_tears
    }

    /// Stalls the slow-disk shim has injected (0 when no [`Fault::SlowDisk`] ran).
    pub fn slow_disk_stalls(&self) -> u64 {
        self.slow_disk.as_ref().map_or(0, |(_, sd)| sd.stalls())
    }

    /// Durability operations the slow-disk shim observed.
    pub fn slow_disk_ops(&self) -> u64 {
        self.slow_disk.as_ref().map_or(0, |(_, sd)| sd.ops())
    }
}

impl<W> ReplayHooks<IncrementalPageRank<W>> for DurableChaos
where
    W: WalkIndexMut + PersistentWalkStore + Sync,
{
    fn on_checkpoint(
        &mut self,
        mut serving: QueryEngine<IncrementalPageRank<W>>,
    ) -> QueryEngine<IncrementalPageRank<W>> {
        serving
            .engine_mut()
            .checkpoint()
            .expect("scenario checkpoint must succeed");
        serving
    }

    fn on_fault(
        &mut self,
        fault: &Fault,
        serving: QueryEngine<IncrementalPageRank<W>>,
    ) -> QueryEngine<IncrementalPageRank<W>> {
        match fault {
            Fault::SlowDisk => {
                if self.slow_disk.is_none() {
                    let sd = SlowDisk::new(5, Duration::from_millis(1));
                    let guard = shim::install(sd.clone());
                    self.slow_disk = Some((guard, sd));
                }
                serving
            }
            Fault::CrashTornWal => {
                let query_seed = serving.handle().query_seed();
                let window = serving.pipeline_window();
                drop(serving.into_engine());
                self.crashes += 1;
                tear_wal_tail(&self.root);
                let engine = IncrementalPageRank::<W>::open(&self.root)
                    .expect("torn-WAL recovery must succeed");
                rebuild_session(engine, query_seed, window)
            }
            Fault::TornSnapshotPage => {
                let query_seed = serving.handle().query_seed();
                let window = serving.pipeline_window();
                drop(serving.into_engine());
                self.crashes += 1;
                if tear_snapshot_page(&self.root) {
                    self.snapshot_tears += 1;
                }
                let engine = IncrementalPageRank::<W>::open(&self.root)
                    .expect("torn-snapshot fallback recovery must succeed");
                rebuild_session(engine, query_seed, window)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus;
    use crate::trace::Event;

    #[test]
    fn plans_are_deterministic_and_respect_checkpoint_ordering() {
        let trace = Trace::compile(&corpus::spam_wave());
        let a = ChaosPlan::for_trace(&trace, 7);
        let b = ChaosPlan::for_trace(&trace, 7);
        assert_eq!(a, b);
        assert_ne!(a, ChaosPlan::for_trace(&trace, 8));
        let first_ckpt = trace.checkpoint_indices()[0];
        for &(index, fault) in a.faults() {
            assert!(index < trace.events.len());
            if fault == Fault::TornSnapshotPage {
                assert!(
                    index >= first_ckpt,
                    "snapshot tears only after a checkpoint created a fallback"
                );
            }
            if fault == Fault::CrashTornWal {
                assert!(
                    index < trace.events.len() / 2,
                    "crash lands in the first half"
                );
            }
        }
    }

    #[test]
    fn faults_after_filters_by_index_in_order() {
        let plan = ChaosPlan::none()
            .with_fault(3, Fault::CrashTornWal)
            .with_fault(3, Fault::SlowDisk)
            .with_fault(5, Fault::TornSnapshotPage);
        let at3: Vec<&Fault> = plan.faults_after(3).collect();
        assert_eq!(at3, vec![&Fault::CrashTornWal, &Fault::SlowDisk]);
        assert_eq!(plan.faults_after(4).count(), 0);
        assert_eq!(plan.faults_after(5).count(), 1);
    }

    #[test]
    fn every_corpus_trace_gets_a_crash_and_a_snapshot_tear() {
        for scenario in corpus::corpus() {
            let trace = Trace::compile(&scenario);
            assert!(
                trace
                    .events
                    .iter()
                    .any(|e| matches!(e.event, Event::Checkpoint)),
                "{}: corpus scenarios must contain a checkpoint",
                scenario.name
            );
            let plan = ChaosPlan::for_trace(&trace, 1);
            let kinds: Vec<Fault> = plan.faults().iter().map(|&(_, f)| f).collect();
            assert!(kinds.contains(&Fault::CrashTornWal), "{}", scenario.name);
            assert!(
                kinds.contains(&Fault::TornSnapshotPage),
                "{}",
                scenario.name
            );
            assert!(kinds.contains(&Fault::SlowDisk), "{}", scenario.name);
        }
    }
}
