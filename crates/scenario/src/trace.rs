//! Compiling a [`Scenario`] into its deterministic event trace.
//!
//! A [`Trace`] is the fully expanded workload: an ordered list of [`TraceEvent`]s,
//! each an edge-arrival batch, a deletion batch, a query batch, or a checkpoint
//! marker.  Compilation is pure — the same scenario always produces the
//! byte-identical trace — so a trace index is a stable coordinate: chaos plans name
//! fault points by event index, and a fault-injected replay is compared against a
//! clean replay of the *same* trace.
//!
//! Query ids are assigned sequentially across the whole trace, so every query keeps
//! its identity (and therefore its `(query_seed, query_id)` RNG stream) no matter
//! how the serving session is restarted around it.

use crate::dsl::{phase_param, skewed_node, step_rng, write_edges, PhaseKind, Scenario};
use ppr_graph::{Edge, NodeId};
use ppr_persist::WalOp;
use ppr_serve::Query;
use rand::Rng;

/// One compiled event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// An edge-arrival batch (one `apply_arrivals`/`commit_arrivals` call).
    Arrivals(Vec<Edge>),
    /// An edge-deletion batch.
    Deletions(Vec<Edge>),
    /// A query batch: `(query_id, query)` pairs served against the then-current
    /// generation.
    Queries(Vec<(u64, Query)>),
    /// A durability checkpoint on durable engines; a no-op in memory.
    Checkpoint,
}

/// One event with its source coordinates in the scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Phase index within the scenario.
    pub phase: usize,
    /// Step index within the phase.
    pub step: usize,
    /// The event itself.
    pub event: Event,
}

/// A fully compiled scenario: the workload as an ordered event list.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// The scenario this trace was compiled from.
    pub scenario: Scenario,
    /// The ordered events.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Compiles `scenario` into its event trace.  Pure: equal scenarios compile to
    /// equal traces.
    ///
    /// # Panics
    ///
    /// Panics if a [`PhaseKind::MassUnfollow`] names a phase at or after itself —
    /// deletions can only target edges that have already arrived.
    pub fn compile(scenario: &Scenario) -> Trace {
        let mut events = Vec::new();
        let mut next_query_id = 0u64;
        for (phase_idx, phase) in scenario.phases.iter().enumerate() {
            match phase.kind {
                PhaseKind::Checkpoint => events.push(TraceEvent {
                    phase: phase_idx,
                    step: 0,
                    event: Event::Checkpoint,
                }),
                PhaseKind::MassUnfollow { of_phase } => {
                    assert!(
                        of_phase < phase_idx,
                        "MassUnfollow in phase {phase_idx} targets phase {of_phase}, \
                         which has not happened yet"
                    );
                    // Unwind the target phase's batches newest-first, chunked over
                    // this phase's steps.
                    let target_steps = scenario.phases[of_phase].steps;
                    let mut unwound: Vec<Vec<Edge>> = (0..target_steps)
                        .rev()
                        .map(|step| write_edges(scenario, of_phase, step))
                        .collect();
                    let chunks = phase.steps.max(1);
                    for step in 0..chunks {
                        let take = unwound.len().div_ceil(chunks - step);
                        let batch: Vec<Edge> = unwound.drain(..take).flatten().collect();
                        events.push(TraceEvent {
                            phase: phase_idx,
                            step,
                            event: Event::Deletions(batch),
                        });
                    }
                }
                PhaseKind::FlashCrowd {
                    queries_per_step,
                    k,
                    walk_length,
                    fetch_budget,
                } => {
                    let hub = NodeId(phase_param(scenario, phase_idx, 0) % scenario.nodes as u32);
                    for step in 0..phase.steps {
                        events.push(TraceEvent {
                            phase: phase_idx,
                            step,
                            event: Event::Arrivals(write_edges(scenario, phase_idx, step)),
                        });
                        let queries = (0..queries_per_step)
                            .map(|_| {
                                let id = next_query_id;
                                next_query_id += 1;
                                (
                                    id,
                                    Query::PersonalizedTopK {
                                        seed: hub,
                                        k,
                                        walk_length,
                                        fetch_budget,
                                    },
                                )
                            })
                            .collect();
                        events.push(TraceEvent {
                            phase: phase_idx,
                            step,
                            event: Event::Queries(queries),
                        });
                    }
                }
                PhaseKind::QueryTides {
                    day_queries,
                    night_queries,
                    k,
                    walk_length,
                } => {
                    for step in 0..phase.steps {
                        events.push(TraceEvent {
                            phase: phase_idx,
                            step,
                            event: Event::Arrivals(write_edges(scenario, phase_idx, step)),
                        });
                        let count = if step % 2 == 0 {
                            day_queries
                        } else {
                            night_queries
                        };
                        // Tidal queries mix personalized (skewed seeds) and global
                        // rank probes, drawn from the step's own stream.
                        let mut rng = step_rng(scenario.seed, phase_idx, step);
                        let queries = (0..count)
                            .map(|_| {
                                let id = next_query_id;
                                next_query_id += 1;
                                let query = if rng.gen_bool(0.8) {
                                    Query::PersonalizedTopK {
                                        seed: NodeId(skewed_node(&mut rng, scenario.nodes)),
                                        k,
                                        walk_length,
                                        fetch_budget: None,
                                    }
                                } else {
                                    Query::GlobalTopK { k }
                                };
                                (id, query)
                            })
                            .collect();
                        events.push(TraceEvent {
                            phase: phase_idx,
                            step,
                            event: Event::Queries(queries),
                        });
                    }
                }
                PhaseKind::Grow { .. }
                | PhaseKind::CelebrityJoin { .. }
                | PhaseKind::SpamWave { .. } => {
                    for step in 0..phase.steps {
                        events.push(TraceEvent {
                            phase: phase_idx,
                            step,
                            event: Event::Arrivals(write_edges(scenario, phase_idx, step)),
                        });
                    }
                }
            }
        }
        Trace {
            scenario: scenario.clone(),
            events,
        }
    }

    /// The trace's write events as `(op, batch)` pairs — the stream shape the
    /// recover-smoke harness and the persistence bench feed to bare engines.
    /// Empty batches are skipped (they would be WAL records with no effect).
    pub fn write_batches(&self) -> Vec<(WalOp, Vec<Edge>)> {
        self.events
            .iter()
            .filter_map(|e| match &e.event {
                Event::Arrivals(edges) if !edges.is_empty() => {
                    Some((WalOp::Arrivals, edges.clone()))
                }
                Event::Deletions(edges) if !edges.is_empty() => {
                    Some((WalOp::Deletions, edges.clone()))
                }
                _ => None,
            })
            .collect()
    }

    /// Total number of queries in the trace.
    pub fn query_count(&self) -> usize {
        self.events
            .iter()
            .map(|e| match &e.event {
                Event::Queries(qs) => qs.len(),
                _ => 0,
            })
            .sum()
    }

    /// Indices of the checkpoint events.
    pub fn checkpoint_indices(&self) -> Vec<usize> {
        self.events
            .iter()
            .enumerate()
            .filter_map(|(i, e)| matches!(e.event, Event::Checkpoint).then_some(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::Phase;

    fn scenario() -> Scenario {
        Scenario {
            name: "trace-test".into(),
            seed: 71,
            nodes: 48,
            epsilon: 0.2,
            r: 2,
            phases: vec![
                Phase::new(PhaseKind::Grow { batch: 6 }, 3),
                Phase::new(PhaseKind::Checkpoint, 1),
                Phase::new(
                    PhaseKind::SpamWave {
                        spammers: 2,
                        fanout: 2,
                    },
                    4,
                ),
                Phase::new(PhaseKind::MassUnfollow { of_phase: 2 }, 2),
                Phase::new(
                    PhaseKind::FlashCrowd {
                        queries_per_step: 3,
                        k: 4,
                        walk_length: 400,
                        fetch_budget: Some(100),
                    },
                    2,
                ),
            ],
        }
    }

    #[test]
    fn compilation_is_pure() {
        let s = scenario();
        assert_eq!(Trace::compile(&s), Trace::compile(&s));
    }

    #[test]
    fn mass_unfollow_deletes_exactly_the_target_phases_edges_newest_first() {
        let s = scenario();
        let trace = Trace::compile(&s);
        let arrived: Vec<Edge> = (0..4).flat_map(|step| write_edges(&s, 2, step)).collect();
        let deleted: Vec<Edge> = trace
            .events
            .iter()
            .filter(|e| e.phase == 3)
            .flat_map(|e| match &e.event {
                Event::Deletions(edges) => edges.clone(),
                other => panic!("unfollow phase emitted {other:?}"),
            })
            .collect();
        let unwound: Vec<Edge> = (0..4)
            .rev()
            .flat_map(|step| write_edges(&s, 2, step))
            .collect();
        assert_eq!(deleted, unwound);
        assert_eq!(deleted.len(), arrived.len());
    }

    #[test]
    fn query_ids_are_sequential_across_the_trace() {
        let trace = Trace::compile(&scenario());
        let ids: Vec<u64> = trace
            .events
            .iter()
            .flat_map(|e| match &e.event {
                Event::Queries(qs) => qs.iter().map(|(id, _)| *id).collect(),
                _ => Vec::new(),
            })
            .collect();
        assert!(!ids.is_empty());
        assert_eq!(ids, (0..ids.len() as u64).collect::<Vec<_>>());
        assert_eq!(trace.query_count(), ids.len());
    }

    #[test]
    fn write_batches_covers_all_write_events_and_skips_empties() {
        let trace = Trace::compile(&scenario());
        let batches = trace.write_batches();
        assert!(!batches.is_empty());
        assert!(batches.iter().all(|(_, edges)| !edges.is_empty()));
        let trace_edges: usize = trace
            .events
            .iter()
            .map(|e| match &e.event {
                Event::Arrivals(v) | Event::Deletions(v) => v.len(),
                _ => 0,
            })
            .sum();
        let batch_edges: usize = batches.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(trace_edges, batch_edges);
    }

    #[test]
    fn checkpoint_indices_point_at_checkpoint_events() {
        let trace = Trace::compile(&scenario());
        let idx = trace.checkpoint_indices();
        assert_eq!(idx.len(), 1);
        assert!(matches!(trace.events[idx[0]].event, Event::Checkpoint));
    }
}
