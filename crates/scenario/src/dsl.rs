//! The scenario DSL: named, seeded workload descriptions built from phases.
//!
//! A [`Scenario`] is a pure description — a name, a seed, a node-universe size, an
//! engine configuration, and an ordered list of [`Phase`]s.  Nothing here touches an
//! engine; [`crate::trace::Trace::compile`] expands a scenario into its event trace.
//! The load-bearing property is **purity**: every edge batch and every query of a
//! scenario is a pure function of `(scenario seed, phase index, step index)`, through
//! the same splitmix64 split-stream discipline the write path uses for
//! `(batch, pivot, segment)` repairs and the read path for `(query_seed, query_id)`
//! streams.  Compiling the same scenario twice — on any machine, in any process —
//! yields byte-identical traces, which is what lets the chaos harness compare a
//! fault-injected replay against a clean reference run.
//!
//! Phase kinds model the workload shapes a social-graph serving stack actually
//! meets: steady growth, a flash crowd hammering one hub with personalized queries,
//! a celebrity join pulling a follower cascade, a spam wave followed (via
//! [`PhaseKind::MassUnfollow`]) by the exact reverse of its edges, and day/night
//! query tides.  [`PhaseKind::Checkpoint`] marks durability points so chaos plans
//! can aim faults at the WAL-rotation window.

use ppr_graph::Edge;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One phase kind: what each step of the phase emits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PhaseKind {
    /// Organic growth: each step arrives one batch of `batch` preferential-style
    /// edges (skew toward low node ids, the resident "old guard").
    Grow {
        /// Edges per step.
        batch: usize,
    },
    /// A flash crowd: every step sends `queries_per_step` personalized top-`k`
    /// queries seeded at one phase-chosen hub (plus a trickle of arrivals from
    /// onlookers following the hub), optionally under a Corollary 9 fetch budget.
    FlashCrowd {
        /// Personalized queries per step.
        queries_per_step: usize,
        /// Result-list length.
        k: usize,
        /// Total walk length `R/ε`-style budget per query.
        walk_length: usize,
        /// Optional fetch budget; `Some` exercises `budget_exhausted` semantics.
        fetch_budget: Option<u64>,
    },
    /// A celebrity joins: every step, `fans_per_step` distinct fans follow the
    /// phase-chosen celebrity, and the celebrity follows a couple back.
    CelebrityJoin {
        /// New followers per step.
        fans_per_step: usize,
    },
    /// A spam wave: `spammers` phase-chosen accounts each follow `fanout` skewed
    /// targets per step.
    SpamWave {
        /// Number of spamming accounts.
        spammers: usize,
        /// Follows per spammer per step.
        fanout: usize,
    },
    /// Mass unfollow: replays the edges of phase `of_phase` (which must precede this
    /// phase) as deletions, in reverse step order — the cleanup after a spam wave.
    MassUnfollow {
        /// Index of the earlier phase whose edges are deleted.
        of_phase: usize,
    },
    /// Query tides: even steps are daytime (`day_queries` personalized queries),
    /// odd steps are night (`night_queries`), with a trickle of arrivals throughout.
    QueryTides {
        /// Queries per daytime step.
        day_queries: usize,
        /// Queries per nighttime step.
        night_queries: usize,
        /// Result-list length.
        k: usize,
        /// Total walk length per query.
        walk_length: usize,
    },
    /// A durability checkpoint point (snapshot + WAL rotation on durable engines;
    /// a no-op on in-memory ones).
    Checkpoint,
}

/// One phase: a kind plus how many steps it runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phase {
    /// What each step emits.
    pub kind: PhaseKind,
    /// Number of steps (ignored for [`PhaseKind::Checkpoint`], which is one event).
    pub steps: usize,
}

impl Phase {
    /// Builds a phase.
    pub fn new(kind: PhaseKind, steps: usize) -> Self {
        Phase { kind, steps }
    }
}

/// A named, seeded workload description.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Corpus name (`--scenario <name>` on the smoke bins).
    pub name: String,
    /// Master seed; every event derives from `(seed, phase, step)`.
    pub seed: u64,
    /// Node-universe size (node ids are drawn in `0..nodes`).
    pub nodes: usize,
    /// Walk reset probability for the engine under test.
    pub epsilon: f64,
    /// Walk segments per node (the paper's `R`).
    pub r: usize,
    /// The ordered phases.
    pub phases: Vec<Phase>,
}

impl Scenario {
    /// The engine configuration the scenario prescribes (epsilon, `R`, and the
    /// scenario seed as the engine seed).
    pub fn engine_config(&self) -> ppr_core::MonteCarloConfig {
        ppr_core::MonteCarloConfig::new(self.epsilon, self.r).with_seed(self.seed)
    }

    /// A copy with every phase's step count multiplied by `factor` (benches use
    /// this to stretch a corpus scenario without changing its shape).
    pub fn scaled(&self, factor: usize) -> Scenario {
        let mut scaled = self.clone();
        for phase in &mut scaled.phases {
            if !matches!(phase.kind, PhaseKind::Checkpoint) {
                phase.steps *= factor;
            }
        }
        scaled.name = format!("{}-x{}", self.name, factor);
        scaled
    }
}

/// Splitmix64 finalizer shared by every scenario stream derivation.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Derives the seed of one `(phase, step)` event stream — the scenario analogue of
/// the write path's `repair_seed` and the read path's `query_stream_seed`.
pub fn step_seed(scenario_seed: u64, phase: usize, step: usize) -> u64 {
    mix(scenario_seed
        ^ (phase as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (step as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
        ^ 0x5CEA_7A10_5CEA_7A10)
}

/// The RNG of one `(phase, step)` event.
pub fn step_rng(scenario_seed: u64, phase: usize, step: usize) -> SmallRng {
    SmallRng::seed_from_u64(step_seed(scenario_seed, phase, step))
}

/// Derives a phase-level parameter stream (hub choice, celebrity id, spammer ids) —
/// a reserved salt keeps it disjoint from every step stream.
pub fn phase_rng(scenario_seed: u64, phase: usize) -> SmallRng {
    SmallRng::seed_from_u64(mix(scenario_seed
        ^ (phase as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ 0xA11C_E5ED_0F1A_5E00))
}

/// Draws one node with quadratic skew toward low ids (the resident high-degree
/// "old guard" of a preferential-attachment graph).
pub fn skewed_node(rng: &mut SmallRng, nodes: usize) -> u32 {
    let u = rng.gen_range(0.0..1.0f64);
    ((u * u * nodes as f64) as usize).min(nodes - 1) as u32
}

/// The edge batch one `(phase, step)` of `scenario` arrives (empty for pure-query
/// and checkpoint phases).  Pure: depends only on the scenario description, so
/// [`PhaseKind::MassUnfollow`] can regenerate an earlier phase's batches to delete
/// them, and a crashed replay can be compared against a clean one.
pub fn write_edges(scenario: &Scenario, phase_idx: usize, step: usize) -> Vec<Edge> {
    let phase = &scenario.phases[phase_idx];
    let n = scenario.nodes;
    let mut rng = step_rng(scenario.seed, phase_idx, step);
    match phase.kind {
        PhaseKind::Grow { batch } => (0..batch)
            .map(|_| {
                let source = rng.gen_range(0..n) as u32;
                let mut target = skewed_node(&mut rng, n);
                if target == source {
                    target = (target + 1) % n as u32;
                }
                Edge::new(source, target)
            })
            .collect(),
        PhaseKind::FlashCrowd { .. } => {
            // Onlooker trickle: a couple of accounts follow the hub they are all
            // querying about, and the hub follows one back into the skewed core —
            // so the hub's out-neighborhood (what its personalized walks explore)
            // keeps growing under the crowd.
            let hub = phase_param(scenario, phase_idx, 0) % n as u32;
            let mut edges: Vec<Edge> = (0..2)
                .map(|_| {
                    let mut source = rng.gen_range(0..n) as u32;
                    if source == hub {
                        source = (source + 1) % n as u32;
                    }
                    Edge::new(source, hub)
                })
                .collect();
            let mut back = skewed_node(&mut rng, n);
            if back == hub {
                back = (back + 1) % n as u32;
            }
            edges.push(Edge::new(hub, back));
            edges
        }
        PhaseKind::CelebrityJoin { fans_per_step } => {
            let celebrity = phase_param(scenario, phase_idx, 0) % n as u32;
            let mut edges = Vec::with_capacity(fans_per_step + 2);
            for _ in 0..fans_per_step {
                let mut fan = rng.gen_range(0..n) as u32;
                if fan == celebrity {
                    fan = (fan + 1) % n as u32;
                }
                edges.push(Edge::new(fan, celebrity));
            }
            // The celebrity follows a couple of accounts back.
            for _ in 0..2 {
                let mut back = skewed_node(&mut rng, n);
                if back == celebrity {
                    back = (back + 1) % n as u32;
                }
                edges.push(Edge::new(celebrity, back));
            }
            edges
        }
        PhaseKind::SpamWave { spammers, fanout } => {
            let mut edges = Vec::with_capacity(spammers * fanout);
            for s in 0..spammers {
                let spammer = phase_param(scenario, phase_idx, s as u64) % n as u32;
                for _ in 0..fanout {
                    let mut victim = skewed_node(&mut rng, n);
                    if victim == spammer {
                        victim = (victim + 1) % n as u32;
                    }
                    edges.push(Edge::new(spammer, victim));
                }
            }
            edges
        }
        PhaseKind::MassUnfollow { .. } | PhaseKind::QueryTides { .. } => {
            // MassUnfollow emits deletions (computed in the trace compiler from the
            // target phase); QueryTides arrives a one-edge trickle per step.
            if matches!(phase.kind, PhaseKind::QueryTides { .. }) {
                let source = rng.gen_range(0..n) as u32;
                let mut target = skewed_node(&mut rng, n);
                if target == source {
                    target = (target + 1) % n as u32;
                }
                vec![Edge::new(source, target)]
            } else {
                Vec::new()
            }
        }
        PhaseKind::Checkpoint => Vec::new(),
    }
}

/// The `slot`-th phase-level parameter of `(scenario, phase)` — hub and celebrity
/// choices, spammer identities.  Pure in `(seed, phase, slot)`.
pub fn phase_param(scenario: &Scenario, phase_idx: usize, slot: u64) -> u32 {
    let mut rng = phase_rng(scenario.seed, phase_idx);
    let mut value = 0u32;
    for _ in 0..=slot {
        value = rng.gen_range(0..u32::MAX as u64) as u32;
    }
    value
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Scenario {
        Scenario {
            name: "sample".into(),
            seed: 41,
            nodes: 64,
            epsilon: 0.2,
            r: 3,
            phases: vec![
                Phase::new(PhaseKind::Grow { batch: 8 }, 4),
                Phase::new(
                    PhaseKind::SpamWave {
                        spammers: 2,
                        fanout: 3,
                    },
                    3,
                ),
                Phase::new(PhaseKind::MassUnfollow { of_phase: 1 }, 3),
            ],
        }
    }

    #[test]
    fn write_edges_is_pure_and_streams_are_distinct() {
        let s = sample();
        assert_eq!(write_edges(&s, 0, 2), write_edges(&s, 0, 2));
        assert_ne!(write_edges(&s, 0, 2), write_edges(&s, 0, 3));
        assert_ne!(write_edges(&s, 0, 2), write_edges(&s, 1, 2));
        let other = Scenario { seed: 42, ..s };
        assert_ne!(write_edges(&other, 0, 2), write_edges(&sample(), 0, 2));
    }

    #[test]
    fn phase_params_are_pure_and_slot_dependent() {
        let s = sample();
        assert_eq!(phase_param(&s, 1, 0), phase_param(&s, 1, 0));
        assert_ne!(phase_param(&s, 1, 0), phase_param(&s, 1, 1));
        assert_ne!(phase_param(&s, 1, 0), phase_param(&s, 2, 0));
    }

    #[test]
    fn edges_stay_in_the_node_universe_and_avoid_self_loops() {
        let s = sample();
        for phase in 0..s.phases.len() {
            for step in 0..4 {
                for edge in write_edges(&s, phase, step) {
                    assert!(edge.source.index() < s.nodes);
                    assert!(edge.target.index() < s.nodes);
                    assert_ne!(edge.source, edge.target);
                }
            }
        }
    }

    #[test]
    fn scaled_multiplies_steps_but_not_checkpoints() {
        let mut s = sample();
        s.phases.push(Phase::new(PhaseKind::Checkpoint, 1));
        let big = s.scaled(3);
        assert_eq!(big.phases[0].steps, 12);
        assert_eq!(big.phases[3].steps, 1);
        assert_eq!(big.name, "sample-x3");
    }
}
