//! `ppr-scenario`: a deterministic workload simulator and chaos harness for the
//! fast-ppr stack.
//!
//! The workspace's differential oracles (shard equivalence, restart equivalence,
//! serving fidelity) all prove the same shape of statement: *two executions that
//! should be equal, are, bit for bit*.  What they lacked was a shared source of
//! realistic executions.  This crate provides it:
//!
//! * [`dsl`] — a composable scenario language: seeded [`Scenario`]s made of
//!   [`Phase`]s (organic growth, a flash crowd on one hub, a celebrity-join
//!   cascade, a spam wave and its mass-unfollow, day/night query tides, checkpoint
//!   markers).  Every event is a pure function of `(scenario seed, phase, step)` —
//!   the same split-RNG discipline as the write path's `(batch, pivot, segment)`
//!   streams and the read path's `(query_seed, query_id)` streams.
//! * [`trace`] — [`Trace::compile`] expands a scenario into its deterministic
//!   event list; event indices are the stable coordinates chaos plans target.
//! * [`runner`] — [`ScenarioRunner`] replays a trace through any engine/store
//!   layout via the `ppr-serve` commit path, fanning queries over a reader pool
//!   and invoking [`ReplayHooks`] at checkpoints and fault points.
//! * [`chaos`] — [`ChaosPlan`] schedules faults (torn-WAL crash, torn snapshot
//!   page, slow-disk stalls through the `ppr-persist` I/O shim) at trace indices;
//!   [`DurableChaos`] executes them against durable engines with real
//!   crash-and-recover cycles.
//! * [`corpus`] — the named scenarios every harness shares
//!   (`tests/scenario_corpus.rs`, the `recover-smoke` bin, the benches).
//!
//! The contract the whole crate exists to check: a fault-injected replay of any
//! corpus scenario produces **bit-identical** final scores, store state, and served
//! answers to its clean single-threaded replay — at any thread count, on any store
//! layout.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chaos;
pub mod corpus;
pub mod dsl;
pub mod runner;
pub mod trace;

pub use chaos::{ChaosPlan, DurableChaos, Fault};
pub use dsl::{Phase, PhaseKind, Scenario};
pub use runner::{
    NoHooks, ReplayHooks, RunOutcome, ScenarioAnswer, ScenarioRunner, TelemetrySampler,
};
pub use trace::{Event, Trace, TraceEvent};
