//! The named scenario corpus: the workload shapes every chaos harness runs.
//!
//! Each corpus scenario is small enough to replay in a test but structured enough
//! to exercise a distinct stress pattern, and every one contains at least one
//! [`PhaseKind::Checkpoint`] so [`crate::chaos::ChaosPlan::for_trace`] can schedule
//! a torn-snapshot fault with a fallback generation to recover into.  The corpus is
//! the shared vocabulary across the stack: `tests/scenario_corpus.rs` replays it
//! through every layout under fault injection, the `recover-smoke` bin takes any
//! member by `--scenario <name>`, and the benches stretch members with
//! [`Scenario::scaled`] to build throughput regimes.

use crate::dsl::{Phase, PhaseKind, Scenario};

/// A flash crowd: a seeded graph, then bursts of personalized queries hammering
/// one hub under a Corollary 9 fetch budget (exercising `budget_exhausted`).
pub fn flash_crowd() -> Scenario {
    Scenario {
        name: "flash_crowd".into(),
        seed: 0xF1A5,
        nodes: 96,
        epsilon: 0.2,
        r: 3,
        phases: vec![
            // Dense enough growth (avg out-degree ~1.5 into a skewed core) that a
            // walk from the hub can actually reach more nodes than the budget pays
            // to fetch — otherwise `budget_exhausted` would never trigger.
            Phase::new(PhaseKind::Grow { batch: 16 }, 9),
            Phase::new(PhaseKind::Checkpoint, 1),
            Phase::new(
                PhaseKind::FlashCrowd {
                    queries_per_step: 6,
                    k: 5,
                    walk_length: 800,
                    fetch_budget: Some(20),
                },
                6,
            ),
            Phase::new(PhaseKind::Checkpoint, 1),
        ],
    }
}

/// A celebrity joins mid-stream: organic growth, then a follower cascade onto one
/// account, then tidal queries over the reshaped graph.
pub fn celebrity_join() -> Scenario {
    Scenario {
        name: "celebrity_join".into(),
        seed: 0xCE1E,
        nodes: 96,
        epsilon: 0.2,
        r: 3,
        phases: vec![
            Phase::new(PhaseKind::Grow { batch: 8 }, 6),
            Phase::new(PhaseKind::Checkpoint, 1),
            Phase::new(PhaseKind::CelebrityJoin { fans_per_step: 6 }, 6),
            Phase::new(
                PhaseKind::QueryTides {
                    day_queries: 4,
                    night_queries: 1,
                    k: 5,
                    walk_length: 600,
                },
                4,
            ),
            Phase::new(PhaseKind::Checkpoint, 1),
        ],
    }
}

/// A spam wave followed by its exact mass-unfollow cleanup, then queries probing
/// that the graph (and the walk store) really reverted.
pub fn spam_wave() -> Scenario {
    Scenario {
        name: "spam_wave".into(),
        seed: 0x59A3,
        nodes: 120,
        epsilon: 0.2,
        r: 3,
        phases: vec![
            Phase::new(PhaseKind::Grow { batch: 8 }, 6),
            Phase::new(PhaseKind::Checkpoint, 1),
            Phase::new(
                PhaseKind::SpamWave {
                    spammers: 3,
                    fanout: 4,
                },
                5,
            ),
            Phase::new(PhaseKind::Checkpoint, 1),
            Phase::new(PhaseKind::MassUnfollow { of_phase: 2 }, 3),
            Phase::new(
                PhaseKind::QueryTides {
                    day_queries: 3,
                    night_queries: 1,
                    k: 4,
                    walk_length: 500,
                },
                4,
            ),
        ],
    }
}

/// Day/night query tides over a slowly growing graph.
pub fn query_tides() -> Scenario {
    Scenario {
        name: "query_tides".into(),
        seed: 0x71DE,
        nodes: 160,
        epsilon: 0.2,
        r: 2,
        phases: vec![
            Phase::new(PhaseKind::Grow { batch: 10 }, 5),
            Phase::new(PhaseKind::Checkpoint, 1),
            Phase::new(
                PhaseKind::QueryTides {
                    day_queries: 6,
                    night_queries: 2,
                    k: 5,
                    walk_length: 700,
                },
                10,
            ),
            Phase::new(PhaseKind::Checkpoint, 1),
        ],
    }
}

/// A bit of everything: growth, a celebrity, a spam wave and its cleanup, a budgeted
/// flash crowd, tides — the default scenario of the `recover-smoke` bin.
pub fn steady_mix() -> Scenario {
    Scenario {
        name: "steady_mix".into(),
        seed: 0x51EA,
        nodes: 112,
        epsilon: 0.2,
        r: 3,
        phases: vec![
            Phase::new(PhaseKind::Grow { batch: 8 }, 6),
            Phase::new(PhaseKind::Checkpoint, 1),
            Phase::new(PhaseKind::CelebrityJoin { fans_per_step: 4 }, 3),
            Phase::new(
                PhaseKind::SpamWave {
                    spammers: 2,
                    fanout: 3,
                },
                3,
            ),
            Phase::new(PhaseKind::MassUnfollow { of_phase: 3 }, 2),
            Phase::new(
                PhaseKind::FlashCrowd {
                    queries_per_step: 3,
                    k: 4,
                    walk_length: 500,
                    fetch_budget: Some(30),
                },
                3,
            ),
            Phase::new(PhaseKind::Checkpoint, 1),
            Phase::new(
                PhaseKind::QueryTides {
                    day_queries: 3,
                    night_queries: 1,
                    k: 4,
                    walk_length: 500,
                },
                4,
            ),
        ],
    }
}

/// Every corpus scenario, in canonical order.
pub fn corpus() -> Vec<Scenario> {
    vec![
        flash_crowd(),
        celebrity_join(),
        spam_wave(),
        query_tides(),
        steady_mix(),
    ]
}

/// Looks a corpus scenario up by name (`--scenario <name>` on the smoke bins).
pub fn by_name(name: &str) -> Option<Scenario> {
    corpus().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;

    #[test]
    fn corpus_names_are_unique_and_resolvable() {
        let all = corpus();
        for scenario in &all {
            let found = by_name(&scenario.name).expect("every member resolves by name");
            assert_eq!(&found, scenario);
        }
        let mut names: Vec<&str> = all.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len(), "names must be unique");
        assert!(by_name("no-such-scenario").is_none());
    }

    #[test]
    fn every_member_compiles_to_a_substantial_trace() {
        for scenario in corpus() {
            let trace = Trace::compile(&scenario);
            assert!(
                trace.write_batches().len() >= 12,
                "{}: recover-smoke needs enough batches to split around a checkpoint",
                scenario.name
            );
            assert!(
                !trace.checkpoint_indices().is_empty(),
                "{}: chaos plans need a checkpoint",
                scenario.name
            );
        }
    }

    #[test]
    fn flash_crowd_carries_a_fetch_budget() {
        let trace = Trace::compile(&flash_crowd());
        let budgeted = trace.events.iter().any(|e| match &e.event {
            crate::trace::Event::Queries(qs) => qs.iter().any(|(_, q)| {
                matches!(
                    q,
                    ppr_serve::Query::PersonalizedTopK {
                        fetch_budget: Some(_),
                        ..
                    }
                )
            }),
            _ => false,
        });
        assert!(budgeted, "flash crowd must exercise budget_exhausted");
    }
}
