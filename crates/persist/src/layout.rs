//! The walks-section codec: a paged on-disk layout for the PageRank Store, aligned
//! to arena segments.
//!
//! The section serializes everything the `WalkIndex` surface exposes — every segment
//! path, the visit postings, and the exact counters — in a layout designed for
//! page-granular write-back:
//!
//! ```text
//! payload := header | dir | postings | page_crcs | heap
//! header  := r u32 | shard_count u32 | node_count u64 | slot_count u64
//!          | heap_len u64 (steps) | page_size u32 | meta_crc u32
//! dir     := slot_count × (offset u64 | len u32 | cap u32)      (steps, not bytes)
//! postings:= per node (count u32 | (segment u32, visits u32)*count) | total_visits u64
//! page_crcs := ceil(heap_len·4 / page_size) × u32
//! heap    := the walk steps as u32 words, padded to whole pages with the filler word
//! ```
//!
//! Like the in-memory [`ppr_store::arena::StepArena`], every segment owns a
//! **capacity-reserved slot** of the heap (power-of-two, at least 16 steps), so a
//! segment that is rewritten without outgrowing its reservation dirties only its own
//! pages and every other page of the heap can be carried into the next snapshot
//! byte-for-byte — that reuse is what [`crate::disk::DiskWalkStore`]'s checkpoint
//! measures.  `meta_crc` covers the directory, postings, and page-CRC table, and each
//! heap page carries its own CRC, so the paged reader ([`PagedWalks`]) fully
//! validates everything it touches without ever reading the whole section.
//!
//! Decoding always cross-checks the serialized postings against the stored paths,
//! so index corruption is detected at open time instead of surfacing as silently
//! wrong scores.  Flat stores take the bulk-load fast path
//! ([`PagedWalks::decode_flat_store`]): the serialized runs become the index
//! directly and one global sorted pass verifies them.  Sharded stores replay paths
//! through `WalkIndexMut::set_segment` ([`PagedWalks::rebuild_into`]) and verify
//! the rebuilt index against the serialized runs.

use crate::crc::{crc32, Crc32};
use crate::io::{corrupt, format_err, ByteReader, ByteWriter, PersistResult};
use crate::pager::{PageCache, PagerStats};
use crate::snapshot::{SnapshotFile, SECTION_WALKS};
use ppr_graph::NodeId;
use ppr_store::{SegmentId, ShardedWalkStore, WalkIndex, WalkIndexMut, WalkStore};
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;

/// Page size of the walk heap, in bytes (1024 steps per page).
pub const WALKS_PAGE_SIZE: usize = 4096;

/// Filler word for reserved-but-unused heap cells (matches the arena's filler).
pub const FILLER_WORD: u32 = u32::MAX;

const HEADER_LEN: usize = 4 + 4 + 8 + 8 + 8 + 4 + 4;

/// One segment's region of the on-disk heap, in steps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FileSlot {
    /// First step of the slot's region.
    pub offset: u64,
    /// Stored path length.
    pub len: u32,
    /// Reserved capacity (power of two; 0 for never-written slots).
    pub cap: u32,
}

/// Capacity reserved on disk for a path of `len` steps: next power of two, at least
/// 16 — the same rule as the in-memory arena, so steady-state rewrites stay within
/// their reservation on disk exactly when they do in memory.
pub fn file_reservation(len: usize) -> u32 {
    if len == 0 {
        0
    } else {
        (len.next_power_of_two().max(16)) as u32
    }
}

/// Parsed fixed-size header of a walks section.
#[derive(Debug, Clone, Copy)]
pub struct WalksHeader {
    /// Segments per node.
    pub r: u32,
    /// Shard count of the store that wrote the section (1 for flat layouts).
    pub shard_count: u32,
    /// Nodes addressed by the store.
    pub node_count: u64,
    /// Total segment slots (`node_count * r`).
    pub slot_count: u64,
    /// Heap length in steps (live + reserved + garbage).
    pub heap_len: u64,
    /// Heap page size in bytes.
    pub page_size: u32,
}

impl WalksHeader {
    /// Number of heap pages the section holds.
    pub fn page_count(&self) -> u32 {
        let bytes = self.heap_len * 4;
        bytes.div_ceil(self.page_size as u64) as u32
    }
}

/// Serializes a store's visit postings (per-node sorted runs plus `total_visits`) —
/// the one postings wire format, shared by the fresh encoders and the disk store's
/// write-back path.
pub(crate) fn encode_postings(store: &impl WalkIndex) -> Vec<u8> {
    let mut w = ByteWriter::new();
    for node in 0..store.node_count() {
        let node = NodeId::from_index(node);
        let run: Vec<(SegmentId, u32)> = store.segments_visiting(node).collect();
        w.put_u32(run.len() as u32);
        for (seg, count) in run {
            w.put_u32(seg.0);
            w.put_u32(count);
        }
    }
    w.put_u64(store.total_visits());
    w.into_bytes()
}

/// Verifies the serialized postings of `raw` against a rebuilt store.
fn verify_postings(raw: &[u8], store: &impl WalkIndex) -> PersistResult<()> {
    let mut r = ByteReader::new(raw);
    for node in 0..store.node_count() {
        let node_id = NodeId::from_index(node);
        let count = r.get_u32()? as usize;
        let mut rebuilt = store.segments_visiting(node_id);
        for k in 0..count {
            let seg = SegmentId(r.get_u32()?);
            let visits = r.get_u32()?;
            if rebuilt.next() != Some((seg, visits)) {
                return Err(corrupt(format!(
                    "serialized posting {k} of node {node} disagrees with the rebuilt index"
                )));
            }
        }
        if rebuilt.next().is_some() {
            return Err(corrupt(format!(
                "rebuilt index has postings for node {node} the snapshot lacks"
            )));
        }
    }
    let total = r.get_u64()?;
    if total != store.total_visits() {
        return Err(corrupt(format!(
            "serialized total_visits {total} disagrees with the rebuilt {}",
            store.total_visits()
        )));
    }
    r.expect_end("postings")
}

/// Assembles a complete walks-section payload from its parts.  `heap` must already
/// be padded to whole pages of `page_size` bytes.
pub fn assemble_walks_payload(
    header: &WalksHeader,
    dir: &[FileSlot],
    postings: &[u8],
    heap: &[u8],
) -> Vec<u8> {
    let page_count = header.page_count() as usize;
    assert_eq!(heap.len(), page_count * header.page_size as usize);
    assert_eq!(dir.len() as u64, header.slot_count);

    let mut dir_bytes = ByteWriter::with_capacity(dir.len() * 16);
    for slot in dir {
        dir_bytes.put_u64(slot.offset);
        dir_bytes.put_u32(slot.len);
        dir_bytes.put_u32(slot.cap);
    }
    let dir_bytes = dir_bytes.into_bytes();

    let mut crc_table = ByteWriter::with_capacity(page_count * 4);
    for page in heap.chunks(header.page_size as usize) {
        crc_table.put_u32(crc32(page));
    }
    let crc_table = crc_table.into_bytes();

    let mut meta_crc = Crc32::new();
    meta_crc.update(&dir_bytes);
    meta_crc.update(postings);
    meta_crc.update(&crc_table);

    let mut payload = ByteWriter::with_capacity(
        HEADER_LEN + dir_bytes.len() + postings.len() + crc_table.len() + heap.len(),
    );
    payload.put_u32(header.r);
    payload.put_u32(header.shard_count);
    payload.put_u64(header.node_count);
    payload.put_u64(header.slot_count);
    payload.put_u64(header.heap_len);
    payload.put_u32(header.page_size);
    payload.put_u32(meta_crc.finish());
    payload.put_bytes(&dir_bytes);
    payload.put_bytes(postings);
    payload.put_bytes(&crc_table);
    payload.put_bytes(heap);
    payload.into_bytes()
}

/// Computes a tight fresh layout for `store`: slots in segment-id order, each with
/// its power-of-two reservation.  Returns the directory and the heap length.
pub fn fresh_layout(store: &impl WalkIndex) -> (Vec<FileSlot>, u64) {
    let slot_count = store.node_count() * store.r();
    let mut dir = Vec::with_capacity(slot_count);
    let mut offset = 0u64;
    for slot in 0..slot_count {
        let len = store.segment_len(SegmentId(slot as u32)) as u32;
        let cap = file_reservation(len as usize);
        dir.push(FileSlot {
            offset: if cap == 0 { 0 } else { offset },
            len,
            cap,
        });
        offset += cap as u64;
    }
    (dir, offset)
}

/// Renders the heap bytes for `dir` by copying every slot's path out of `store`,
/// filling reservations and holes with the filler word, padded to whole pages.
pub fn render_heap(store: &impl WalkIndex, dir: &[FileSlot], heap_len: u64) -> Vec<u8> {
    let page_count = (heap_len * 4).div_ceil(WALKS_PAGE_SIZE as u64) as usize;
    let mut heap = vec![0xFFu8; page_count * WALKS_PAGE_SIZE];
    for (slot, file_slot) in dir.iter().enumerate() {
        if file_slot.len == 0 {
            continue;
        }
        let path = store.segment_path(SegmentId(slot as u32));
        debug_assert_eq!(path.len(), file_slot.len as usize);
        let mut pos = file_slot.offset as usize * 4;
        for step in path {
            heap[pos..pos + 4].copy_from_slice(&step.0.to_le_bytes());
            pos += 4;
        }
    }
    heap
}

/// Encodes any store's walk data as a fresh, tightly laid-out walks section.
pub fn encode_walks_fresh(store: &impl WalkIndex, shard_count: u32) -> Vec<u8> {
    let (dir, heap_len) = fresh_layout(store);
    let header = WalksHeader {
        r: store.r() as u32,
        shard_count,
        node_count: store.node_count() as u64,
        slot_count: dir.len() as u64,
        heap_len,
        page_size: WALKS_PAGE_SIZE as u32,
    };
    let heap = render_heap(store, &dir, heap_len);
    let postings = encode_postings(store);
    assemble_walks_payload(&header, &dir, &postings, &heap)
}

/// A walks section opened for paged reading: directory and postings eagerly read and
/// validated, heap pages faulted in (and CRC-checked) on first touch.
#[derive(Debug)]
pub struct PagedWalks {
    header: WalksHeader,
    dir: Vec<FileSlot>,
    postings_raw: Vec<u8>,
    page_crcs: Vec<u32>,
    cache: PageCache,
}

impl PagedWalks {
    /// Opens the walks section of the snapshot at `path`.
    pub fn open(path: &Path) -> PersistResult<Self> {
        let snap = SnapshotFile::open(path)?;
        let info = snap.section(SECTION_WALKS)?;
        let mut file = snap.into_file();
        if info.len < HEADER_LEN as u64 {
            return Err(corrupt("walks section shorter than its header"));
        }
        file.seek(SeekFrom::Start(info.offset))?;
        let mut head = vec![0u8; HEADER_LEN];
        file.read_exact(&mut head)?;
        let mut r = ByteReader::new(&head);
        let header = WalksHeader {
            r: r.get_u32()?,
            shard_count: r.get_u32()?,
            node_count: r.get_u64()?,
            slot_count: r.get_u64()?,
            heap_len: r.get_u64()?,
            page_size: r.get_u32()?,
        };
        let meta_crc = r.get_u32()?;
        if header.page_size as usize != WALKS_PAGE_SIZE {
            return Err(format_err(format!(
                "walks page size {} unsupported (expected {WALKS_PAGE_SIZE})",
                header.page_size
            )));
        }
        // The header fields are untrusted until cross-checked (meta_crc only covers
        // the regions after the header), so all derived arithmetic is checked: a
        // corrupt count must fail as Corrupt, never wrap or overflow-panic.
        let slot_total = header.node_count.checked_mul(header.r as u64);
        if header.r == 0 || slot_total != Some(header.slot_count) {
            return Err(corrupt("walks header is internally inconsistent"));
        }
        if header.slot_count > u32::MAX as u64 {
            return Err(format_err("more segment slots than the u32 id space"));
        }
        if header
            .heap_len
            .checked_mul(4)
            .is_none_or(|bytes| bytes > info.len)
        {
            return Err(corrupt("walks heap larger than its own section"));
        }
        let page_count = header.page_count();
        let dir_len = header.slot_count as usize * 16;
        let crc_len = page_count as usize * 4;
        let meta_end = HEADER_LEN + dir_len;
        let heap_bytes = page_count as u64 * header.page_size as u64;
        let expected_tail = heap_bytes + crc_len as u64;
        let Some(postings_len) = (info.len)
            .checked_sub(meta_end as u64)
            .and_then(|rest| rest.checked_sub(expected_tail))
        else {
            return Err(corrupt("walks section too short for its own directory"));
        };
        let postings_len = usize::try_from(postings_len)
            .map_err(|_| corrupt("walks postings too large for this platform"))?;

        let mut meta = vec![0u8; dir_len + postings_len + crc_len];
        file.read_exact(&mut meta)?;
        if crc32(&meta) != meta_crc {
            return Err(corrupt("walks directory/postings checksum mismatch"));
        }
        let mut dir = Vec::with_capacity(header.slot_count as usize);
        let mut reader = ByteReader::new(&meta[..dir_len]);
        for _ in 0..header.slot_count {
            dir.push(FileSlot {
                offset: reader.get_u64()?,
                len: reader.get_u32()?,
                cap: reader.get_u32()?,
            });
        }
        let postings_raw = meta[dir_len..dir_len + postings_len].to_vec();
        let mut page_crcs = Vec::with_capacity(page_count as usize);
        let mut reader = ByteReader::new(&meta[dir_len + postings_len..]);
        for _ in 0..page_count {
            page_crcs.push(reader.get_u32()?);
        }
        let heap_base = info.offset + (HEADER_LEN + meta.len()) as u64;
        let cache = PageCache::new(file, heap_base, WALKS_PAGE_SIZE, page_count);
        Ok(PagedWalks {
            header,
            dir,
            postings_raw,
            page_crcs,
            cache,
        })
    }

    /// The section's parsed header.
    pub fn header(&self) -> &WalksHeader {
        &self.header
    }

    /// The slot directory, indexed by segment id.
    pub fn dir(&self) -> &[FileSlot] {
        &self.dir
    }

    /// Page-cache access counters.
    pub fn pager_stats(&self) -> PagerStats {
        self.cache.stats()
    }

    /// Sets the page cache's residency budget (`None` = unbounded), evicting down
    /// immediately if needed.
    pub fn configure_cache(&mut self, max_resident_pages: Option<usize>) {
        self.cache.set_budget(max_resident_pages);
    }

    /// Replaces the page cache's pin set (pages that are never evicted).
    pub fn pin_pages(&mut self, pages: &[u32]) -> PersistResult<()> {
        self.cache.set_pinned_pages(pages)
    }

    /// Number of heap pages currently resident in the cache.
    pub fn resident_pages(&self) -> usize {
        self.cache.resident_pages()
    }

    /// Bytes of heap pages currently resident in the cache.
    pub fn resident_bytes(&self) -> u64 {
        self.cache.resident_bytes()
    }

    /// Number of resident pages that are pinned.
    pub fn pinned_resident_pages(&self) -> usize {
        self.cache.pinned_resident_pages()
    }

    /// Byte offset of heap page 0 within the snapshot file (test observability —
    /// corruption tests flip bytes at exact heap positions).
    pub fn heap_file_offset(&self) -> u64 {
        self.cache.base_offset()
    }

    /// Seeds the page cache from an in-memory heap image (the bytes a checkpoint
    /// just wrote), so follow-up write-backs copy clean pages from memory instead of
    /// re-reading the file.  Admission follows the cache's policy: pinned pages
    /// always enter, unpinned pages only while there is room under the budget.
    pub fn preload_heap(&mut self, heap: &[u8]) -> PersistResult<()> {
        let page_size = self.header.page_size as usize;
        for (index, page) in heap.chunks(page_size).enumerate() {
            if page.len() == page_size {
                self.cache.preload(index as u32, page)?;
            }
        }
        Ok(())
    }

    /// Reads one validated heap page.
    pub fn read_page(&mut self, index: u32) -> PersistResult<&[u8]> {
        let crc = *self
            .page_crcs
            .get(index as usize)
            .ok_or_else(|| corrupt(format!("heap page {index} out of range")))?;
        self.cache.read_page(index, crc)
    }

    /// Copies one validated heap page into `out` without admitting it to the cache
    /// (cache hits are served from memory; misses stream from the file).  This is
    /// the checkpoint write-back path for clean pages.
    pub fn stream_page(&mut self, index: u32, out: &mut [u8]) -> PersistResult<()> {
        let crc = *self
            .page_crcs
            .get(index as usize)
            .ok_or_else(|| corrupt(format!("heap page {index} out of range")))?;
        self.cache.read_page_into(index, crc, out)
    }

    /// Reads the `len` steps starting at heap offset `offset` (in steps) into `out`
    /// (cleared first), faulting in the pages they span.
    pub fn read_steps(
        &mut self,
        offset: u64,
        len: u32,
        out: &mut Vec<NodeId>,
    ) -> PersistResult<()> {
        out.clear();
        if len == 0 {
            return Ok(());
        }
        if offset
            .checked_add(len as u64)
            .is_none_or(|end| end > self.header.heap_len)
        {
            return Err(corrupt(format!(
                "slot region [{offset}, +{len}) exceeds the heap ({} steps)",
                self.header.heap_len
            )));
        }
        let steps_per_page = (WALKS_PAGE_SIZE / 4) as u64;
        let mut remaining = len as u64;
        let mut step = offset;
        while remaining > 0 {
            let page = (step / steps_per_page) as u32;
            let within = (step % steps_per_page) as usize;
            let take = remaining.min(steps_per_page - within as u64) as usize;
            let bytes = self.read_page(page)?;
            for word in bytes[within * 4..(within + take) * 4].chunks_exact(4) {
                out.push(NodeId(u32::from_le_bytes(word.try_into().unwrap())));
            }
            step += take as u64;
            remaining -= take as u64;
        }
        Ok(())
    }

    /// Parses the serialized visit postings into per-node [`ppr_store::VisitPostings`] plus the
    /// claimed total visit count.  This is the index half of the walks section —
    /// demand-paged opens install it directly (paths stay on disk), the flat decode
    /// pairs it with a full heap scan.
    pub fn parse_postings(&self) -> PersistResult<(Vec<ppr_store::VisitPostings>, u64)> {
        let mut reader = ByteReader::new(&self.postings_raw);
        let mut postings = Vec::with_capacity(self.header.node_count as usize);
        for _ in 0..self.header.node_count {
            let count = reader.get_u32()? as usize;
            let mut run = Vec::with_capacity(count);
            for _ in 0..count {
                let seg = SegmentId(reader.get_u32()?);
                let visits = reader.get_u32()?;
                run.push((seg, visits));
            }
            postings.push(ppr_store::VisitPostings::from_sorted_run(run).map_err(corrupt)?);
        }
        let total = reader.get_u64()?;
        reader.expect_end("postings")?;
        Ok((postings, total))
    }

    /// Decodes the section into a flat [`WalkStore`] on the bulk-load fast path:
    /// paths stream out of the paged heap, the serialized postings become the index
    /// **directly** (no per-step replay through the delta overlay), and paths and
    /// index are cross-checked in one sorted pass inside
    /// [`WalkStore::bulk_load`] — cold open costs a file scan plus one sort instead
    /// of an incremental index rebuild.
    pub fn decode_flat_store(&mut self) -> PersistResult<WalkStore> {
        let header = *self.header();
        if header.shard_count != 1 {
            return Err(format_err(format!(
                "snapshot holds a {}-shard store; open it with the sharded engine",
                header.shard_count
            )));
        }
        // Stream every non-empty slot's path into one flat buffer.
        let mut steps: Vec<NodeId> = Vec::new();
        let mut bounds: Vec<(SegmentId, usize, usize)> = Vec::new();
        let mut path = Vec::new();
        for slot in 0..header.slot_count as u32 {
            let file_slot = self.dir[slot as usize];
            if file_slot.len == 0 {
                continue;
            }
            self.read_steps(file_slot.offset, file_slot.len, &mut path)?;
            let start = steps.len();
            steps.extend_from_slice(&path);
            bounds.push((SegmentId(slot), start, path.len()));
        }
        // The serialized postings become the index verbatim.
        let (postings, total) = self.parse_postings()?;

        let store = WalkStore::bulk_load(
            header.node_count as usize,
            header.r as usize,
            bounds
                .iter()
                .map(|&(id, start, len)| (id, &steps[start..start + len])),
            postings,
        )
        .map_err(corrupt)?;
        if store.total_visits() != total {
            return Err(corrupt(format!(
                "serialized total_visits {total} disagrees with the loaded {}",
                store.total_visits()
            )));
        }
        Ok(store)
    }

    /// Rebuilds every segment of the section into `store` (which must already be
    /// sized for the section's node count and `r`), then verifies the rebuilt
    /// postings and counters against the serialized ones.
    pub fn rebuild_into<W: WalkIndexMut>(&mut self, store: &mut W) -> PersistResult<()> {
        if store.node_count() as u64 != self.header.node_count
            || store.r() as u64 != self.header.r as u64
        {
            return Err(format_err(
                "store dimensions do not match the walks section".to_string(),
            ));
        }
        let mut path = Vec::new();
        for slot in 0..self.header.slot_count as u32 {
            let file_slot = self.dir[slot as usize];
            if file_slot.len == 0 {
                continue;
            }
            self.read_steps(file_slot.offset, file_slot.len, &mut path)?;
            let id = SegmentId(slot);
            let source = id.source(self.header.r as usize);
            if path.first() != Some(&source) {
                return Err(corrupt(format!(
                    "segment {slot} does not start at its source node {source}"
                )));
            }
            if let Some(bad) = path
                .iter()
                .find(|v| v.index() as u64 >= self.header.node_count)
            {
                return Err(corrupt(format!(
                    "segment {slot} visits node {bad} outside the store"
                )));
            }
            store.set_segment(id, &path);
        }
        verify_postings(&self.postings_raw, store)
    }
}

/// A store layout that can round-trip through the snapshot walks section.
///
/// The engines' durable `open`/`checkpoint` APIs are generic over this trait, so the
/// same recovery pipeline serves the flat [`WalkStore`], the [`ShardedWalkStore`],
/// and the file-backed [`crate::disk::DiskWalkStore`].
pub trait PersistentWalkStore: WalkIndexMut + Sized {
    /// Encodes this store's walk data as a walks-section payload.  (`&mut` so
    /// file-backed stores can stream clean pages out of their previous generation.)
    fn encode_walks(&mut self) -> PersistResult<Vec<u8>>;

    /// Rebuilds the store from an open walks section.
    fn decode_walks(walks: PagedWalks) -> PersistResult<Self>;

    /// Hook invoked after the snapshot containing this store's payload has been
    /// durably published at `snap_path`; file-backed stores re-anchor their clean-page
    /// source here.
    fn after_checkpoint(&mut self, snap_path: &Path) -> PersistResult<()> {
        let _ = snap_path;
        Ok(())
    }

    /// Verifies whatever payload bytes `decode_walks` deferred reading.  The durable
    /// open path calls this so that a corrupt generation is detected *while fallback
    /// to an older generation is still possible* — a demand-paged store streams its
    /// unread heap pages against the CRC table here (bounded memory, no admission).
    /// Stores whose decode already read everything have nothing left to check.
    fn verify_walks(&self) -> PersistResult<()> {
        Ok(())
    }
}

impl PersistentWalkStore for WalkStore {
    fn encode_walks(&mut self) -> PersistResult<Vec<u8>> {
        Ok(encode_walks_fresh(self, 1))
    }

    fn decode_walks(mut walks: PagedWalks) -> PersistResult<Self> {
        walks.decode_flat_store()
    }
}

impl PersistentWalkStore for ShardedWalkStore {
    fn encode_walks(&mut self) -> PersistResult<Vec<u8>> {
        Ok(encode_walks_fresh(self, self.shard_count() as u32))
    }

    fn decode_walks(mut walks: PagedWalks) -> PersistResult<Self> {
        let header = *walks.header();
        let mut store = ShardedWalkStore::new(
            header.node_count as usize,
            header.r as usize,
            header.shard_count as usize,
        );
        walks.rebuild_into(&mut store)?;
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SnapshotWriter;
    use crate::tempdir::TempDir;
    use ppr_store::WalkIndexView;

    fn sample_store() -> WalkStore {
        let mut store = WalkStore::new(6, 2);
        let paths: &[(u32, usize, &[u32])] = &[
            (0, 0, &[0, 1, 2, 1]),
            (0, 1, &[0]),
            (3, 0, &[3, 4, 5, 4, 3]),
            (5, 1, &[5, 5, 5]),
        ];
        for &(node, slot, p) in paths {
            let path: Vec<NodeId> = p.iter().map(|&n| NodeId(n)).collect();
            store.set_segment(SegmentId::new(NodeId(node), slot, 2), &path);
        }
        store
    }

    fn write_snapshot(path: &Path, payload: Vec<u8>) {
        let mut w = SnapshotWriter::new();
        w.add_section(SECTION_WALKS, payload);
        w.write_to(path).unwrap();
    }

    #[test]
    fn fresh_encode_decodes_to_an_identical_store() {
        let dir = TempDir::new("layout-roundtrip");
        let path = dir.path().join("snap.ppr");
        let mut store = sample_store();
        write_snapshot(&path, store.encode_walks().unwrap());

        let walks = PagedWalks::open(&path).unwrap();
        assert_eq!(walks.header().node_count, 6);
        assert_eq!(walks.header().shard_count, 1);
        let rebuilt = WalkStore::decode_walks(walks).unwrap();
        assert_eq!(rebuilt.total_visits(), store.total_visits());
        assert_eq!(rebuilt.visit_counts(), store.visit_counts());
        for slot in 0..12u32 {
            assert_eq!(
                rebuilt.segment_path(SegmentId(slot)),
                store.segment_path(SegmentId(slot)),
                "slot {slot}"
            );
        }
        assert!(rebuilt.check_consistency().is_ok());
    }

    #[test]
    fn sharded_encode_round_trips_and_guards_the_layout() {
        let dir = TempDir::new("layout-sharded");
        let path = dir.path().join("snap.ppr");
        let mut store = ShardedWalkStore::new(6, 2, 3);
        for slot in 0..6u32 {
            let source = NodeId(slot / 2);
            let path_steps = vec![source, NodeId((slot as usize % 6) as u32)];
            let id = SegmentId::new(source, slot as usize % 2, 2);
            // Only write valid paths: start at source.
            let mut p = vec![source];
            p.extend(path_steps.into_iter().skip(1));
            store.set_segment(id, &p);
        }
        write_snapshot(&path, store.encode_walks().unwrap());

        let rebuilt = ShardedWalkStore::decode_walks(PagedWalks::open(&path).unwrap()).unwrap();
        assert_eq!(rebuilt.shard_count(), 3);
        assert_eq!(rebuilt.visit_counts(), store.visit_counts());
        assert!(WalkIndexMut::check_consistency(&rebuilt).is_ok());

        // A flat store refuses a sharded section.
        assert!(matches!(
            WalkStore::decode_walks(PagedWalks::open(&path).unwrap()),
            Err(crate::io::PersistError::Format(_))
        ));
    }

    #[test]
    fn slot_reservations_are_power_of_two_aligned() {
        assert_eq!(file_reservation(0), 0);
        assert_eq!(file_reservation(1), 16);
        assert_eq!(file_reservation(16), 16);
        assert_eq!(file_reservation(17), 32);
        let mut store = sample_store();
        let payload = store.encode_walks().unwrap();
        let dir = TempDir::new("layout-caps");
        let path = dir.path().join("snap.ppr");
        write_snapshot(&path, payload);
        let walks = PagedWalks::open(&path).unwrap();
        for slot in walks.dir() {
            if slot.cap != 0 {
                assert!(slot.cap.is_power_of_two() && slot.cap >= 16);
                assert!(slot.len <= slot.cap);
            } else {
                assert_eq!(slot.len, 0);
            }
        }
    }

    #[test]
    fn heap_page_corruption_is_caught_on_read() {
        let dir = TempDir::new("layout-pagecrc");
        let path = dir.path().join("snap.ppr");
        let mut store = sample_store();
        write_snapshot(&path, store.encode_walks().unwrap());
        // Flip a byte in the last page of the file (heap region).
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 100] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let result = WalkStore::decode_walks(PagedWalks::open(&path).unwrap());
        assert!(matches!(result, Err(crate::io::PersistError::Corrupt(_))));
    }

    #[test]
    fn postings_verification_catches_index_drift() {
        let dir = TempDir::new("layout-postings");
        let path = dir.path().join("snap.ppr");
        let mut store = sample_store();
        // Hand-assemble a payload whose postings disagree with the paths.
        let (slot_dir, heap_len) = fresh_layout(&store);
        let header = WalksHeader {
            r: 2,
            shard_count: 1,
            node_count: 6,
            slot_count: 12,
            heap_len,
            page_size: WALKS_PAGE_SIZE as u32,
        };
        let heap = render_heap(&store, &slot_dir, heap_len);
        let mut bogus = encode_postings(&store);
        let len = bogus.len();
        bogus[len - 9] ^= 0x01; // corrupt total_visits
        write_snapshot(
            &path,
            assemble_walks_payload(&header, &slot_dir, &bogus, &heap),
        );

        let result = WalkStore::decode_walks(PagedWalks::open(&path).unwrap());
        assert!(matches!(result, Err(crate::io::PersistError::Corrupt(_))));
        // The unmodified encode still loads.
        write_snapshot(&path, store.encode_walks().unwrap());
        assert!(WalkStore::decode_walks(PagedWalks::open(&path).unwrap()).is_ok());
    }
}
