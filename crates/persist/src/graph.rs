//! The graph-section codec: the Social Store's graph with **exact adjacency order**.
//!
//! Adjacency order is observable state — deletions `swap_remove`, and random
//! neighbour sampling picks by position — so the snapshot serializes both directions
//! verbatim and `DynamicGraph::from_adjacency` revalidates that they describe the
//! same edge multiset on load.  Store metrics (fetch counters) are *not* persisted:
//! they are observability, and a restart legitimately starts them at zero.

use crate::io::{corrupt, ByteReader, ByteWriter, PersistResult};
use ppr_graph::{DynamicGraph, GraphView, NodeId};

/// Encodes `graph` (and the Social Store's shard count) as a graph-section payload.
pub fn encode_graph(graph: &DynamicGraph, shard_count: u32) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(24 + graph.edge_count() * 8);
    w.put_u32(shard_count);
    w.put_u64(graph.node_count() as u64);
    w.put_u64(graph.edge_count() as u64);
    for direction in [true, false] {
        for node in graph.nodes() {
            let list = if direction {
                graph.out_neighbors(node)
            } else {
                graph.in_neighbors(node)
            };
            w.put_u32(list.len() as u32);
            for &v in list {
                w.put_u32(v.0);
            }
        }
    }
    w.into_bytes()
}

/// Decodes a graph-section payload back into a graph and the shard count it was
/// stored with.
pub fn decode_graph(payload: &[u8]) -> PersistResult<(DynamicGraph, u32)> {
    let mut r = ByteReader::new(payload);
    let shard_count = r.get_u32()?;
    if shard_count == 0 {
        return Err(corrupt("graph section claims zero shards"));
    }
    let node_count = r.get_len()?;
    let edge_count = r.get_u64()?;
    let read_lists = |r: &mut ByteReader<'_>| -> PersistResult<Vec<Vec<NodeId>>> {
        let mut lists = Vec::with_capacity(node_count);
        for _ in 0..node_count {
            let len = r.get_u32()? as usize;
            // A corrupt length must fail as a short read, not as a multi-gigabyte
            // allocation attempt: each entry is 4 bytes, so bound by what remains.
            if len > r.remaining() / 4 {
                return Err(corrupt(format!(
                    "adjacency list claims {len} entries but only {} bytes remain",
                    r.remaining()
                )));
            }
            let mut list = Vec::with_capacity(len);
            for _ in 0..len {
                list.push(NodeId(r.get_u32()?));
            }
            lists.push(list);
        }
        Ok(lists)
    };
    let out_adj = read_lists(&mut r)?;
    let in_adj = read_lists(&mut r)?;
    r.expect_end("graph section")?;
    let graph = DynamicGraph::from_adjacency(out_adj, in_adj).map_err(corrupt)?;
    if graph.edge_count() as u64 != edge_count {
        return Err(corrupt(format!(
            "graph section claims {edge_count} edges but its lists hold {}",
            graph.edge_count()
        )));
    }
    Ok((graph, shard_count))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_graph::Edge;

    #[test]
    fn round_trip_preserves_order_and_shards() {
        let mut g = DynamicGraph::with_nodes(5);
        for e in [
            Edge::new(0, 3),
            Edge::new(0, 1),
            Edge::new(3, 0),
            Edge::new(0, 1),
            Edge::new(4, 4),
        ] {
            g.add_edge(e);
        }
        g.remove_edge(Edge::new(0, 3)); // swap_remove scrambles list order
        let payload = encode_graph(&g, 3);
        let (decoded, shards) = decode_graph(&payload).unwrap();
        assert_eq!(shards, 3);
        assert_eq!(decoded.edge_count(), g.edge_count());
        for node in g.nodes() {
            assert_eq!(decoded.out_neighbors(node), g.out_neighbors(node));
            assert_eq!(decoded.in_neighbors(node), g.in_neighbors(node));
        }
    }

    #[test]
    fn tampered_payloads_are_rejected() {
        let mut g = DynamicGraph::with_nodes(3);
        g.add_edge(Edge::new(0, 1));
        let clean = encode_graph(&g, 1);
        // Claimed edge count diverges from the lists.
        let mut bad = clean.clone();
        bad[12] ^= 0x01;
        assert!(decode_graph(&bad).is_err());
        // Truncation.
        assert!(decode_graph(&clean[..clean.len() - 1]).is_err());
        // Zero shards.
        let mut bad = clean;
        bad[0] = 0;
        assert!(decode_graph(&bad).is_err());
    }
}
