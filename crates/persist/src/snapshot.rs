//! The snapshot container: a versioned, sectioned, checksummed file written
//! atomically per generation.
//!
//! A snapshot is the durable image of one engine at one instant — engine metadata,
//! the Social Store's graph, and the PageRank Store's walk data live in separate
//! **sections** so each can evolve (and be validated) independently:
//!
//! ```text
//! file    := magic "PPRSNAP1" | version u32 | section_count u32 | section*
//! section := tag u32 | payload_len u64 | payload_crc u32 | payload
//! ```
//!
//! Snapshots are **immutable**: [`SnapshotWriter::write_to`] assembles the whole file
//! in a temp sibling, fsyncs it, and renames it into place (then fsyncs the
//! directory), so a crash mid-checkpoint can never produce a torn snapshot — the
//! previous generation simply remains current.  Any flipped byte is caught either by
//! a section checksum or by the walks section's own page-level checksums
//! ([`crate::layout`]); a snapshot that fails validation is treated as absent and
//! recovery falls back to the previous generation.

use crate::crc::crc32;
use crate::io::{corrupt, format_err, PersistResult};
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"PPRSNAP1";
/// Oldest container version this build can still read.
/// History: 1 = PR 4 layout; 2 = PR 5 (`compaction_threshold` f64 added to META).
pub const MIN_VERSION: u32 = 1;
/// Container format version written by this build.  Bump whenever any section's
/// byte layout changes (readers branch on [`SnapshotFile::version`]); versions
/// outside `MIN_VERSION..=VERSION` fail with a clean `Format` error instead of
/// being misdiagnosed as bit rot by the decoders.
pub const VERSION: u32 = 2;

/// Section tag: engine metadata (config, RNG state, counters).
pub const SECTION_META: u32 = 1;
/// Section tag: the Social Store's graph (both adjacency directions, exact order).
pub const SECTION_GRAPH: u32 = 2;
/// Section tag: the PageRank Store's walk data (paged heap + postings).
pub const SECTION_WALKS: u32 = 3;

/// Assembles and atomically writes one snapshot file.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    sections: Vec<(u32, Vec<u8>)>,
}

impl SnapshotWriter {
    /// Starts an empty snapshot.
    pub fn new() -> Self {
        SnapshotWriter::default()
    }

    /// Appends one section.  Sections are written in insertion order; tags must be
    /// unique within a file.
    pub fn add_section(&mut self, tag: u32, payload: Vec<u8>) {
        debug_assert!(
            self.sections.iter().all(|&(t, _)| t != tag),
            "duplicate section tag {tag}"
        );
        self.sections.push((tag, payload));
    }

    /// Writes the snapshot to `path` atomically: temp sibling, fsync, rename, fsync
    /// of the parent directory.  Returns the total bytes written.
    pub fn write_to(self, path: &Path) -> PersistResult<u64> {
        let payload: usize = self.sections.iter().map(|(_, p)| p.len()).sum();
        crate::shim::notify(crate::shim::IoOp::SnapshotWrite, payload);
        let tmp = path.with_extension("tmp");
        let mut total = 0u64;
        {
            let mut file = File::create(&tmp)?;
            let mut header = Vec::with_capacity(16);
            header.extend_from_slice(MAGIC);
            header.extend_from_slice(&VERSION.to_le_bytes());
            header.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
            file.write_all(&header)?;
            total += header.len() as u64;
            for (tag, payload) in &self.sections {
                let mut head = Vec::with_capacity(16);
                head.extend_from_slice(&tag.to_le_bytes());
                head.extend_from_slice(&(payload.len() as u64).to_le_bytes());
                head.extend_from_slice(&crc32(payload).to_le_bytes());
                file.write_all(&head)?;
                file.write_all(payload)?;
                total += head.len() as u64 + payload.len() as u64;
            }
            file.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        if let Some(parent) = path.parent() {
            // Make the rename itself durable.  Directory fsync is best-effort on
            // platforms where directories cannot be opened for sync.
            if let Ok(dir) = File::open(parent) {
                let _ = dir.sync_all();
            }
        }
        Ok(total)
    }
}

/// One section's location within an open snapshot file.
#[derive(Debug, Clone, Copy)]
pub struct SectionInfo {
    /// The section's tag.
    pub tag: u32,
    /// Byte offset of the payload within the file.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// CRC-32 of the payload.
    pub crc: u32,
}

/// An open snapshot file: header validated, section table scanned, payloads read on
/// demand.
#[derive(Debug)]
pub struct SnapshotFile {
    file: File,
    version: u32,
    sections: Vec<SectionInfo>,
}

impl SnapshotFile {
    /// Opens `path`, validating the header and scanning the section table (payload
    /// bytes are not read yet).
    pub fn open(path: &Path) -> PersistResult<Self> {
        let mut file = File::open(path)?;
        let file_len = file.metadata()?.len();
        let mut header = [0u8; 16];
        file.read_exact(&mut header)
            .map_err(|_| corrupt("snapshot shorter than its header"))?;
        if &header[..8] != MAGIC {
            return Err(corrupt("bad snapshot magic"));
        }
        let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(format_err(format!(
                "snapshot version {version}, this build reads {MIN_VERSION}..={VERSION}"
            )));
        }
        let count = u32::from_le_bytes(header[12..16].try_into().unwrap());
        let mut sections = Vec::with_capacity(count as usize);
        let mut pos = 16u64;
        for _ in 0..count {
            // All section-table arithmetic is checked: a corrupt length near
            // u64::MAX must fail as Corrupt, never wrap past the bounds checks.
            if pos.checked_add(16).is_none_or(|end| end > file_len) {
                return Err(corrupt("snapshot section table truncated"));
            }
            file.seek(SeekFrom::Start(pos))?;
            let mut head = [0u8; 16];
            file.read_exact(&mut head)?;
            let tag = u32::from_le_bytes(head[0..4].try_into().unwrap());
            let len = u64::from_le_bytes(head[4..12].try_into().unwrap());
            let crc = u32::from_le_bytes(head[12..16].try_into().unwrap());
            let offset = pos + 16;
            if offset.checked_add(len).is_none_or(|end| end > file_len) {
                return Err(corrupt(format!(
                    "section {tag} claims {len} bytes past the end of the file"
                )));
            }
            sections.push(SectionInfo {
                tag,
                offset,
                len,
                crc,
            });
            pos = offset + len;
        }
        if pos != file_len {
            return Err(corrupt(format!(
                "{} trailing bytes after the last section",
                file_len - pos
            )));
        }
        Ok(SnapshotFile {
            file,
            version,
            sections,
        })
    }

    /// The container version the file was written with (decoders of versioned
    /// sections branch on it).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Locations of every section, in file order.
    pub fn sections(&self) -> &[SectionInfo] {
        &self.sections
    }

    /// The location of the section tagged `tag`.
    pub fn section(&self, tag: u32) -> PersistResult<SectionInfo> {
        self.sections
            .iter()
            .copied()
            .find(|s| s.tag == tag)
            .ok_or_else(|| corrupt(format!("snapshot has no section with tag {tag}")))
    }

    /// Reads and checksum-validates the payload of the section tagged `tag`.
    pub fn read_section(&mut self, tag: u32) -> PersistResult<Vec<u8>> {
        let info = self.section(tag)?;
        let len = usize::try_from(info.len)
            .map_err(|_| corrupt(format!("section {tag} too large for this platform")))?;
        let mut payload = vec![0u8; len];
        self.file.seek(SeekFrom::Start(info.offset))?;
        self.file.read_exact(&mut payload)?;
        if crc32(&payload) != info.crc {
            return Err(corrupt(format!("checksum mismatch in section {tag}")));
        }
        Ok(payload)
    }

    /// Takes the underlying file handle (for paged section access); consumes the
    /// snapshot handle.
    pub fn into_file(self) -> File {
        self.file
    }

    /// Verifies every section's payload checksum by streaming the file through a
    /// fixed 64 KiB buffer — the full-file validation used when deciding whether a
    /// generation is loadable at all.  Streaming matters now that stores are
    /// larger than RAM by design: validation must never materialize a section the
    /// page cache exists to avoid holding.
    pub fn verify_all(path: &Path) -> PersistResult<()> {
        let mut snap = SnapshotFile::open(path)?;
        let mut buf = vec![0u8; 64 * 1024];
        for info in snap.sections.clone() {
            snap.file.seek(SeekFrom::Start(info.offset))?;
            let mut hasher = crate::crc::Crc32::new();
            let mut remaining = info.len;
            while remaining > 0 {
                let chunk = buf.len().min(remaining as usize);
                snap.file.read_exact(&mut buf[..chunk])?;
                hasher.update(&buf[..chunk]);
                remaining -= chunk as u64;
            }
            if hasher.finish() != info.crc {
                return Err(corrupt(format!(
                    "checksum mismatch in section {}",
                    info.tag
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;

    fn write_sample(path: &Path) {
        let mut w = SnapshotWriter::new();
        w.add_section(SECTION_META, b"meta-bytes".to_vec());
        w.add_section(SECTION_GRAPH, vec![7u8; 1000]);
        w.add_section(SECTION_WALKS, b"".to_vec());
        w.write_to(path).unwrap();
    }

    #[test]
    fn sections_round_trip() {
        let dir = TempDir::new("snap-roundtrip");
        let path = dir.path().join("snap-000000.ppr");
        write_sample(&path);
        assert!(!path.with_extension("tmp").exists(), "tmp must be renamed");

        let mut snap = SnapshotFile::open(&path).unwrap();
        assert_eq!(snap.sections().len(), 3);
        assert_eq!(snap.read_section(SECTION_META).unwrap(), b"meta-bytes");
        assert_eq!(snap.read_section(SECTION_GRAPH).unwrap(), vec![7u8; 1000]);
        assert!(snap.read_section(SECTION_WALKS).unwrap().is_empty());
        assert!(snap.read_section(99).is_err());
        SnapshotFile::verify_all(&path).unwrap();
    }

    #[test]
    fn every_flipped_byte_is_rejected_by_verify_all() {
        let dir = TempDir::new("snap-flip");
        let path = dir.path().join("snap.ppr");
        write_sample(&path);
        let clean = std::fs::read(&path).unwrap();
        // Flipping a byte at a sample of positions across header, section table, and
        // payloads must always fail validation (never silently load).
        for pos in (0..clean.len()).step_by(13).chain([clean.len() - 1]) {
            let mut bad = clean.clone();
            bad[pos] ^= 0x40;
            std::fs::write(&path, &bad).unwrap();
            assert!(
                SnapshotFile::verify_all(&path).is_err(),
                "flip at byte {pos} went undetected"
            );
        }
        std::fs::write(&path, &clean).unwrap();
        SnapshotFile::verify_all(&path).unwrap();
    }

    #[test]
    fn truncated_files_are_rejected() {
        let dir = TempDir::new("snap-trunc");
        let path = dir.path().join("snap.ppr");
        write_sample(&path);
        let clean = std::fs::read(&path).unwrap();
        for keep in [0usize, 5, 16, clean.len() - 1] {
            std::fs::write(&path, &clean[..keep]).unwrap();
            assert!(SnapshotFile::open(&path).is_err(), "kept {keep} bytes");
        }
    }
}
