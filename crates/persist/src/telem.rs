//! [`MetricSource`] adapters for this crate's stats structs.
//!
//! Pure reads of already-snapshotted values; the I/O hot paths that fill the
//! structs are untouched.  Names are relative — collectors choose the
//! namespace (`pager.loads`, `wal.group_fsyncs`, …) via
//! [`SnapshotBuilder::source`].

use crate::disk::{DiskStoreStats, ResidencyStats};
use crate::pager::PagerStats;
use crate::wal::WalStats;
use ppr_telemetry::{MetricSource, SnapshotBuilder};

impl MetricSource for PagerStats {
    fn emit(&self, out: &mut SnapshotBuilder) {
        out.counter("loads", self.loads);
        out.counter("hits", self.hits);
        out.counter("bytes_read", self.bytes_read);
        out.counter("evictions", self.evictions);
        out.counter("refaults", self.refaults);
        out.counter("streamed", self.streamed);
        // Fraction of page reads served from memory; 0.0 before any read.
        out.ratio("hit_rate", self.hits, self.hits + self.loads);
    }
}

impl MetricSource for DiskStoreStats {
    fn emit(&self, out: &mut SnapshotBuilder) {
        out.counter("pages_rewritten", self.pages_rewritten);
        out.counter("pages_reused", self.pages_reused);
        out.counter("relocations", self.relocations);
        out.counter("file_compactions", self.file_compactions);
        out.counter("compaction_steps_moved", self.compaction_steps_moved);
        out.counter("compaction_nanos", self.compaction_nanos);
        out.ratio(
            "page_reuse_rate",
            self.pages_reused,
            self.pages_reused + self.pages_rewritten,
        );
    }
}

impl MetricSource for ResidencyStats {
    fn emit(&self, out: &mut SnapshotBuilder) {
        out.gauge("resident_pages", self.resident_pages as f64);
        out.gauge("resident_page_bytes", self.resident_page_bytes as f64);
        out.gauge("pinned_pages", self.pinned_pages as f64);
        out.gauge("cached_path_steps", self.cached_path_steps as f64);
        out.gauge("arena_steps", self.arena_steps as f64);
    }
}

impl MetricSource for WalStats {
    fn emit(&self, out: &mut SnapshotBuilder) {
        out.counter("appended", self.appended);
        out.counter("fsyncs", self.fsyncs);
        out.gauge("group_active", if self.group_active { 1.0 } else { 0.0 });
        out.counter("group_appended", self.group_appended);
        out.counter("group_durable", self.group_durable);
        out.counter("group_fsyncs", self.group_fsyncs);
        out.counter("group_synced", self.group_synced);
        // Appends made durable per coalesced fdatasync — the group-commit win.
        out.ratio("appends_per_fsync", self.group_synced, self.group_fsyncs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_telemetry::TelemetrySnapshot;

    #[test]
    fn pager_hit_rate_guards_zero_and_wal_counters_namespace() {
        let mut out = SnapshotBuilder::new();
        out.source("pager", &PagerStats::default());
        out.source(
            "wal",
            &WalStats {
                appended: 4,
                group_active: true,
                group_fsyncs: 2,
                group_synced: 6,
                ..WalStats::default()
            },
        );
        let snap = TelemetrySnapshot::from_builder(0, out);
        assert_eq!(snap.gauge("pager.hit_rate"), Some(0.0));
        assert_eq!(snap.counter("wal.appended"), Some(4));
        assert_eq!(snap.gauge("wal.appends_per_fsync"), Some(3.0));
    }
}
