//! Cross-process exclusion for store directories: the `LOCK` file.
//!
//! A store directory assumes a single writer; two live writers would interleave WAL
//! frames and clobber each other's checkpoints.  [`StoreLock`] makes that assumption
//! enforced instead of documented: every durable engine acquires the lock when it
//! creates or opens a directory and holds it until drop, and a second writer fails
//! fast with [`PersistError::Locked`] naming the holder.
//!
//! The lock is a `LOCK` file created with `O_EXCL`, holding the owner's PID.  Crashed
//! owners must not wedge the store forever (the crash-kill smoke test SIGKILLs a
//! writer and immediately recovers), so an existing lock whose PID no longer names a
//! live process — checked via `/proc/<pid>` — is *stale* and silently stolen.  The
//! steal re-runs the `O_EXCL` create, so two processes racing for a stale lock still
//! end with exactly one owner.  On systems without `/proc`, liveness is unknowable
//! and an existing lock is conservatively treated as held.

use crate::io::{PersistError, PersistResult};
use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Name of the lock file inside a store directory.
pub const LOCK_FILE: &str = "LOCK";

/// An acquired store-directory lock; released (best-effort) on drop.
#[derive(Debug)]
pub struct StoreLock {
    path: PathBuf,
}

/// Whether `pid` names a live process, as far as this platform can tell.
/// `None` when liveness cannot be determined (no `/proc`).
fn pid_alive(pid: u32) -> Option<bool> {
    if Path::new("/proc").is_dir() {
        Some(Path::new(&format!("/proc/{pid}")).exists())
    } else {
        None
    }
}

impl StoreLock {
    /// Acquires the lock for the store directory `root` (which must exist),
    /// stealing a stale lock left behind by a crashed process.
    ///
    /// Fails with [`PersistError::Locked`] when another live process holds it.
    pub fn acquire(root: &Path) -> PersistResult<StoreLock> {
        let path = root.join(LOCK_FILE);
        // Two attempts: the second runs only after a stale lock was removed, so a
        // racing thief that re-creates the file first wins and we report it held.
        for stole in [false, true] {
            match OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut file) => {
                    writeln!(file, "{}", std::process::id())?;
                    file.sync_all()?;
                    return Ok(StoreLock { path });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let holder = std::fs::read_to_string(&path)
                        .ok()
                        .and_then(|s| s.trim().parse::<u32>().ok());
                    let held = format!(
                        "{} is held by {} — another writer owns this store; if no \
                         writer is running, delete the file to recover",
                        path.display(),
                        holder.map_or("an unknown process".to_string(), |pid| format!("pid {pid}")),
                    );
                    match holder.and_then(pid_alive) {
                        // A readable PID that provably no longer runs: stale, steal.
                        Some(false) if !stole => {
                            let _ = std::fs::remove_file(&path);
                        }
                        _ => return Err(PersistError::Locked(held)),
                    }
                }
                Err(e) => return Err(e.into()),
            }
        }
        unreachable!("second acquire attempt either succeeds or returns Locked");
    }

    /// The lock file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for StoreLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;

    #[test]
    fn second_acquire_fails_while_held_and_succeeds_after_release() {
        let tmp = TempDir::new("lock");
        let lock = StoreLock::acquire(tmp.path()).expect("first acquire");
        assert!(lock.path().exists());
        match StoreLock::acquire(tmp.path()) {
            Err(PersistError::Locked(msg)) => {
                assert!(
                    msg.contains(&format!("pid {}", std::process::id())),
                    "the error names the live holder: {msg}"
                );
            }
            other => panic!("expected Locked, got {other:?}"),
        }
        drop(lock);
        assert!(!tmp.path().join(LOCK_FILE).exists(), "drop releases");
        let again = StoreLock::acquire(tmp.path()).expect("re-acquire after release");
        drop(again);
    }

    #[test]
    fn stale_lock_of_a_dead_process_is_stolen() {
        if pid_alive(1).is_none() {
            return; // no /proc: liveness unknowable, nothing to test here
        }
        let tmp = TempDir::new("lock-stale");
        // A PID far above any default pid_max: provably not running.
        std::fs::write(tmp.path().join(LOCK_FILE), "4194304999\n").unwrap();
        let lock = StoreLock::acquire(tmp.path()).expect("steal the stale lock");
        let content = std::fs::read_to_string(lock.path()).unwrap();
        assert_eq!(content.trim(), std::process::id().to_string());
    }

    #[test]
    fn unreadable_lock_is_reported_held() {
        let tmp = TempDir::new("lock-garbage");
        std::fs::write(tmp.path().join(LOCK_FILE), "not-a-pid\n").unwrap();
        match StoreLock::acquire(tmp.path()) {
            Err(PersistError::Locked(msg)) => {
                assert!(msg.contains("unknown process"), "{msg}");
            }
            other => panic!("expected Locked, got {other:?}"),
        }
    }
}
