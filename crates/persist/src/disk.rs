//! [`DiskWalkStore`]: a file-backed PageRank Store with demand paging and
//! page-granular write-back.
//!
//! The store implements the full `WalkIndex`/`WalkIndexMut` surface, so every engine
//! adopts it without change.  A store opened from a snapshot is **demand-paged**:
//! [`PersistentWalkStore::decode_walks`] installs only the slot directory and the
//! visit-postings index (O(metadata), independent of heap size) and leaves every walk
//! path on disk.  A path is faulted in on first touch — the read pulls its heap pages
//! through the bounded [`crate::pager::PageCache`] (CRC-verified on every fault and
//! re-fault), validates the path's shape (starts at its source, visits only known
//! nodes), and caches the decoded steps until trimmed.  Open latency and the resident
//! set are therefore governed by the configured [`PageBudget`], not the store size;
//! the power-law visit skew of the underlying paper means a small pin set of
//! hot-node pages absorbs most faults (see [`PageBudget::pin_top_nodes`]).
//!
//! Writes keep the incremental checkpoint machinery of the previous design:
//!
//! * every segment owns a capacity-reserved slot of the on-disk heap (the same
//!   power-of-two rule as the in-memory arena), and the store tracks exactly which
//!   heap *pages* its writes have touched since the last checkpoint;
//! * [`PersistentWalkStore::encode_walks`] re-renders only the dirty pages and
//!   streams every clean page **byte-for-byte out of the previous generation's
//!   file** without admitting it to the cache — write-back never faults the whole
//!   store resident;
//! * a segment that outgrows its reservation relocates to the heap tail, leaving
//!   garbage that a half-dead-rule **file compaction** repacks (counted, timed, and
//!   reported like the in-memory compactions).
//!
//! Determinism contract: the cache budget bounds *cost*, never answers.  Any budget
//! ≥ 1 page yields bit-identical query results, digests, and snapshots to the
//! unbounded cache — `tests/demand_paging.rs` proves it property-style, and the CI
//! matrix re-runs the durability oracles at `PPR_PAGE_BUDGET=2`.
//!
//! Crash safety is inherited from the snapshot container: generations are immutable
//! and published atomically, so a crash mid-checkpoint leaves the previous
//! generation untouched and the WAL replays over it.

use crate::io::{corrupt, format_err, PersistResult};
use crate::layout::{
    assemble_walks_payload, file_reservation, FileSlot, PagedWalks, PersistentWalkStore,
    WalksHeader, FILLER_WORD, WALKS_PAGE_SIZE,
};
use crate::pager::PagerStats;
use ppr_graph::NodeId;
use ppr_store::arena::ArenaStats;
use ppr_store::{SegmentId, SegmentRewrites, WalkIndex, WalkIndexMut, WalkStore};
use std::borrow::Cow;
use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
use std::sync::Mutex;

const STEPS_PER_PAGE: u64 = (WALKS_PAGE_SIZE / 4) as u64;

/// Residency policy of a demand-paged [`DiskWalkStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PageBudget {
    /// Maximum heap pages resident in the page cache (`None` = unbounded).  The
    /// decoded-path cache is trimmed to the same step-equivalent budget.
    pub max_resident_pages: Option<usize>,
    /// How many of the hottest nodes (by visit count) get their pages pinned
    /// unevictable.  `None` pins as many as fit half the page budget; `Some(0)`
    /// disables pinning.  Ignored when the budget is unbounded.
    pub pin_top_nodes: Option<usize>,
}

thread_local! {
    /// See [`set_thread_page_budget`].
    static THREAD_PAGE_BUDGET: Cell<Option<PageBudget>> = const { Cell::new(None) };
}

/// Overrides [`PageBudget::from_env`] for the current thread, returning the previous
/// override.  Tests use this instead of `std::env::set_var` so parallel tests with
/// different budgets cannot race; engines open their stores on the calling thread,
/// so the override reaches them.
pub fn set_thread_page_budget(budget: Option<PageBudget>) -> Option<PageBudget> {
    THREAD_PAGE_BUDGET.with(|cell| cell.replace(budget))
}

impl PageBudget {
    /// No residency bound (the pre-demand-paging behavior).
    pub fn unbounded() -> Self {
        PageBudget::default()
    }

    /// At most `pages` heap pages resident (clamped to ≥ 1 by the cache).
    pub fn bounded(pages: usize) -> Self {
        PageBudget {
            max_resident_pages: Some(pages),
            pin_top_nodes: None,
        }
    }

    /// Reads the budget for this open: the current thread's
    /// [`set_thread_page_budget`] override if set, else the `PPR_PAGE_BUDGET`
    /// (pages; 0 or unset = unbounded) and `PPR_PIN_NODES` environment variables.
    pub fn from_env() -> Self {
        if let Some(budget) = THREAD_PAGE_BUDGET.with(|cell| cell.get()) {
            return budget;
        }
        let max_resident_pages = std::env::var("PPR_PAGE_BUDGET")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&pages| pages > 0);
        let pin_top_nodes = std::env::var("PPR_PIN_NODES")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok());
        PageBudget {
            max_resident_pages,
            pin_top_nodes,
        }
    }

    fn budget_steps(&self) -> Option<u64> {
        self.max_resident_pages
            .map(|pages| pages.max(1) as u64 * STEPS_PER_PAGE)
    }
}

/// Write-back and maintenance counters of a [`DiskWalkStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiskStoreStats {
    /// Heap pages re-rendered from memory across all checkpoints.
    pub pages_rewritten: u64,
    /// Heap pages carried byte-for-byte from the previous generation.
    pub pages_reused: u64,
    /// Segments whose on-disk slot was relocated to the heap tail.
    pub relocations: u64,
    /// Whole-heap file compaction passes.
    pub file_compactions: u64,
    /// Live steps repacked by file compactions.
    pub compaction_steps_moved: u64,
    /// Wall time spent in file compactions, in nanoseconds.
    pub compaction_nanos: u64,
}

/// Point-in-time residency of a demand-paged [`DiskWalkStore`] — the numbers the
/// persistence bench reports per cache budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResidencyStats {
    /// Heap pages resident in the page cache.
    pub resident_pages: usize,
    /// Bytes of heap pages resident in the page cache.
    pub resident_page_bytes: u64,
    /// Resident pages that are pinned unevictable.
    pub pinned_pages: usize,
    /// Steps held by demand-faulted decoded paths (not yet materialized into the
    /// in-memory arena, trimmed against the budget).
    pub cached_path_steps: u64,
    /// Steps materialized into the in-memory arena by writes.
    pub arena_steps: usize,
}

/// One demand-faultable slot: a lazily decoded path published through an atomic
/// pointer, plus a CLOCK-style reference bit for trimming.
///
/// The pointer goes null → non-null only inside [`DiskWalkStore::fault_slot`] (under
/// the store's page-cache mutex, with a Release store), and non-null → null only in
/// `&mut self` methods — so a shared-reference reader that observes a non-null
/// pointer can dereference it for the rest of its borrow of the store.
#[derive(Debug)]
struct FaultCell {
    path: AtomicPtr<Vec<NodeId>>,
    /// Touched-since-last-trim bit (second chance against trimming).
    hot: AtomicBool,
}

impl FaultCell {
    fn new() -> Self {
        FaultCell {
            path: AtomicPtr::new(std::ptr::null_mut()),
            hot: AtomicBool::new(false),
        }
    }

    /// Takes the cached path out of the cell (exclusive access).
    fn take(&mut self) -> Option<Vec<NodeId>> {
        let ptr = std::mem::replace(self.path.get_mut(), std::ptr::null_mut());
        // SAFETY: non-null cell pointers are exclusively owned Box::into_raw results;
        // we just detached this one, so reconstituting the box is sound.
        (!ptr.is_null()).then(|| *unsafe { Box::from_raw(ptr) })
    }
}

impl Drop for FaultCell {
    fn drop(&mut self) {
        self.take();
    }
}

/// Demand-paging state of a store opened from a snapshot.
#[derive(Debug)]
struct FaultState {
    /// One cell per slot; a null pointer means not yet decoded (or trimmed).
    cells: Vec<FaultCell>,
    /// The slot layout of the generation faults read from.  Frozen at open /
    /// checkpoint, so live-directory relocations and compactions never redirect a
    /// fault at a region the previous generation's file doesn't have.
    prev_dir: Vec<FileSlot>,
    /// Steps currently held by cached decoded paths.
    resident_steps: AtomicU64,
    /// Trim threshold for `resident_steps` (the page budget in step equivalents).
    budget_steps: Option<u64>,
}

/// A file-backed PageRank Store: demand-paged reads under a bounded cache,
/// dirty-page-tracked writes, and checkpoints that only re-encode what changed.
#[derive(Debug)]
pub struct DiskWalkStore {
    resident: WalkStore,
    /// On-disk slot layout, indexed by segment id (offsets/caps in steps).
    dir: Vec<FileSlot>,
    /// Slots with reserved heap space, keyed by their heap offset (regions are
    /// disjoint, so the predecessor lookup per page is unambiguous).
    by_offset: BTreeMap<u64, u32>,
    /// Heap length in steps (live + reserved + garbage).
    heap_len: u64,
    /// Live steps stored on disk (sum of slot lengths).
    live: u64,
    /// Garbage capacity abandoned by relocations.
    dead: u64,
    /// Heap pages whose bytes changed since the last checkpoint.
    dirty: BTreeSet<u32>,
    /// Set when no previous generation can serve clean pages (fresh store, or a file
    /// compaction moved everything).
    all_dirty: bool,
    /// `in_arena[slot]`: the slot's path lives in the resident arena (written this
    /// process, or empty).  `false` means the path is on disk, faultable through
    /// `fault`.
    in_arena: Vec<bool>,
    /// Demand-paging state; `None` for stores built fresh in memory (everything is
    /// in the arena then).
    fault: Option<FaultState>,
    /// Residency policy applied to the page cache and the decoded-path cache.
    budget: PageBudget,
    /// The previous generation's walks section — the fault source and clean-page
    /// source.  Behind a mutex because faults happen under `&self` from concurrent
    /// query threads.
    prev: Option<Mutex<PagedWalks>>,
    /// Heap image of the most recent encode, kept until [`after_checkpoint`] seeds
    /// the next generation's page cache with it (so write-back never re-reads pages
    /// it just wrote).
    ///
    /// [`after_checkpoint`]: PersistentWalkStore::after_checkpoint
    pending_heap: Option<Vec<u8>>,
    stats: DiskStoreStats,
}

impl DiskWalkStore {
    /// Creates an empty file-backed store for `node_count` nodes with `r` segments
    /// per node.  Until the first checkpoint there is no previous generation, so the
    /// first encode renders every page.
    pub fn new(node_count: usize, r: usize) -> Self {
        DiskWalkStore {
            resident: WalkStore::new(node_count, r),
            dir: vec![FileSlot::default(); node_count * r],
            by_offset: BTreeMap::new(),
            heap_len: 0,
            live: 0,
            dead: 0,
            dirty: BTreeSet::new(),
            all_dirty: true,
            in_arena: vec![true; node_count * r],
            fault: None,
            budget: PageBudget::from_env(),
            prev: None,
            pending_heap: None,
            stats: DiskStoreStats::default(),
        }
    }

    /// Write-back and maintenance counters.
    pub fn stats(&self) -> DiskStoreStats {
        self.stats
    }

    /// Page-cache counters of the generation the store was opened from (zero for a
    /// store that was never opened from disk).
    pub fn pager_stats(&self) -> PagerStats {
        self.prev
            .as_ref()
            .map(|p| p.lock().expect("page-cache mutex poisoned").pager_stats())
            .unwrap_or_default()
    }

    /// Current residency of the page cache and the decoded-path cache.
    pub fn residency(&self) -> ResidencyStats {
        let (resident_pages, resident_page_bytes, pinned_pages) = self
            .prev
            .as_ref()
            .map(|p| {
                let prev = p.lock().expect("page-cache mutex poisoned");
                (
                    prev.resident_pages(),
                    prev.resident_bytes(),
                    prev.pinned_resident_pages(),
                )
            })
            .unwrap_or((0, 0, 0));
        ResidencyStats {
            resident_pages,
            resident_page_bytes,
            pinned_pages,
            cached_path_steps: self
                .fault
                .as_ref()
                .map(|f| f.resident_steps.load(Ordering::Relaxed))
                .unwrap_or(0),
            arena_steps: self.resident.arena_stats().live_steps,
        }
    }

    /// The residency policy in force.
    pub fn page_budget(&self) -> PageBudget {
        self.budget
    }

    /// Replaces the residency policy: re-applies the page-cache budget, recomputes
    /// the hot-node pin set from the current visit counts, and trims the
    /// decoded-path cache.
    pub fn set_page_budget(&mut self, budget: PageBudget) -> PersistResult<()> {
        self.budget = budget;
        if let Some(fault) = &mut self.fault {
            fault.budget_steps = budget.budget_steps();
        }
        if let Some(prev) = &self.prev {
            // Pin against the layout faults actually read from (the previous
            // generation's), not the live directory a relocation may have moved.
            let pin_dir = self
                .fault
                .as_ref()
                .map(|f| f.prev_dir.as_slice())
                .unwrap_or(&self.dir);
            let mut walks = prev.lock().expect("page-cache mutex poisoned");
            apply_cache_policy(
                self.budget,
                self.resident.visit_counts(),
                pin_dir,
                self.resident.r(),
                &mut walks,
            )?;
        }
        self.trim_fault_cells();
        Ok(())
    }

    /// Freezes an epoch-pinned, copy-on-write snapshot view (see
    /// [`ppr_store::FrozenWalks`]) — the disk store serves queries exactly like the
    /// in-memory layouts.  On a demand-paged store this faults every live segment
    /// once (the frozen mirror is O(store) regardless).
    pub fn snapshot_view(&self, epoch: u64) -> ppr_store::FrozenWalks {
        ppr_store::FrozenWalks::from_index(self, epoch)
    }

    /// Current heap geometry as `(heap_len_steps, live_steps, garbage_steps)`.
    pub fn heap_geometry(&self) -> (u64, u64, u64) {
        (self.heap_len, self.live, self.dead)
    }

    /// Heap pages currently marked dirty (all pages when no generation exists yet).
    pub fn dirty_pages(&self) -> usize {
        if self.all_dirty {
            self.page_count() as usize
        } else {
            self.dirty.len()
        }
    }

    fn page_count(&self) -> u32 {
        (self.heap_len * 4).div_ceil(WALKS_PAGE_SIZE as u64) as u32
    }

    fn mark_dirty_region(&mut self, offset: u64, cap: u32) {
        if cap == 0 {
            return;
        }
        let first = (offset / STEPS_PER_PAGE) as u32;
        let last = ((offset + cap as u64 - 1) / STEPS_PER_PAGE) as u32;
        for page in first..=last {
            self.dirty.insert(page);
        }
    }

    fn update_file_slot(&mut self, slot: usize, new_len: usize) {
        let s = self.dir[slot];
        self.live = self.live - s.len as u64 + new_len as u64;
        if (new_len as u64) <= s.cap as u64 {
            self.dir[slot].len = new_len as u32;
            if new_len > 0 {
                self.mark_dirty_region(s.offset, s.cap);
            }
            return;
        }
        if s.cap > 0 {
            self.by_offset.remove(&s.offset);
            self.dead += s.cap as u64;
        }
        // Mirror the arena's growth rule: first fills get a tight reservation,
        // regrowth doubles, so hot slots relocate O(1) times over their lifetime.
        let cap = if s.cap == 0 {
            file_reservation(new_len)
        } else {
            file_reservation(new_len * 2)
        };
        let offset = self.heap_len;
        self.heap_len += cap as u64;
        self.dir[slot] = FileSlot {
            offset,
            len: new_len as u32,
            cap,
        };
        self.by_offset.insert(offset, slot as u32);
        self.mark_dirty_region(offset, cap);
        self.stats.relocations += 1;
        self.maybe_compact_file();
    }

    /// Half-dead rule on the file heap, mirroring the in-memory arena: when garbage
    /// capacity exceeds the live data, repack every slot tight.  All pages become
    /// dirty — the cost the counters make visible.  Faults are unaffected: they read
    /// the previous generation's frozen layout, not the live directory.
    fn maybe_compact_file(&mut self) {
        if self.dead <= self.live.max(8 * self.dir.len() as u64) {
            return;
        }
        let started = std::time::Instant::now();
        self.by_offset.clear();
        let mut offset = 0u64;
        for (slot, s) in self.dir.iter_mut().enumerate() {
            let cap = file_reservation(s.len as usize);
            s.cap = cap;
            if cap == 0 {
                s.offset = 0;
                continue;
            }
            s.offset = offset;
            self.by_offset.insert(offset, slot as u32);
            offset += cap as u64;
        }
        self.heap_len = offset;
        self.dead = 0;
        self.dirty.clear();
        self.all_dirty = true;
        self.stats.file_compactions += 1;
        self.stats.compaction_steps_moved += self.live;
        self.stats.compaction_nanos += started.elapsed().as_nanos() as u64;
    }

    /// The path of `slot`, faulting it from disk if it is not in the arena.
    fn path_of(&self, slot: u32) -> PersistResult<&[NodeId]> {
        if self.in_arena[slot as usize] {
            Ok(self.resident.segment_path(SegmentId(slot)))
        } else {
            self.fault_slot(slot as usize)
        }
    }

    /// Demand-faults the path of an on-disk slot and caches the decoded steps.
    /// Thread-safe under `&self`: concurrent faulters race through a double-checked
    /// atomic cell, with the page-cache mutex serializing the actual decode.
    fn fault_slot(&self, slot: usize) -> PersistResult<&[NodeId]> {
        let fault = self
            .fault
            .as_ref()
            .expect("slots outside the arena imply demand-paging state");
        let cell = &fault.cells[slot];
        let ptr = cell.path.load(Ordering::Acquire);
        if !ptr.is_null() {
            cell.hot.store(true, Ordering::Relaxed);
            // SAFETY: a non-null pointer was published with Release by fault_slot
            // under the mutex and is only ever cleared by `&mut self` methods, which
            // cannot run while this shared borrow is live.  The pointee is never
            // mutated after publication.
            return Ok(unsafe { (*ptr).as_slice() });
        }
        let s = fault.prev_dir[slot];
        if s.len == 0 {
            return Ok(&[]);
        }
        let prev = self
            .prev
            .as_ref()
            .expect("demand-paged store keeps its source generation open");
        let mut walks = prev.lock().expect("page-cache mutex poisoned");
        // Double check: another thread may have decoded the slot while we waited.
        let ptr = cell.path.load(Ordering::Acquire);
        if !ptr.is_null() {
            drop(walks);
            cell.hot.store(true, Ordering::Relaxed);
            // SAFETY: as above.
            return Ok(unsafe { (*ptr).as_slice() });
        }
        let mut path = Vec::with_capacity(s.len as usize);
        walks.read_steps(s.offset, s.len, &mut path)?;
        validate_faulted_path(&path, slot, self.resident.r(), self.resident.node_count())
            .map_err(corrupt)?;
        let raw = Box::into_raw(Box::new(path));
        cell.path.store(raw, Ordering::Release);
        drop(walks);
        cell.hot.store(true, Ordering::Relaxed);
        fault
            .resident_steps
            .fetch_add(s.len as u64, Ordering::Relaxed);
        // SAFETY: `raw` came from Box::into_raw above; ownership now rests with the
        // cell, which outlives this borrow.
        Ok(unsafe { (*raw).as_slice() })
    }

    /// Faults segment `id` in (if it is on disk), surfacing any I/O or corruption
    /// error instead of panicking — the probing entry point corruption tests use.
    pub fn try_fault_segment(&self, id: SegmentId) -> PersistResult<()> {
        if self.in_arena.get(id.index()).copied().unwrap_or(true) {
            return Ok(());
        }
        self.fault_slot(id.index()).map(|_| ())
    }

    /// Drops every cached decoded path (they re-fault on next touch).  Pages already
    /// resident in the page cache stay subject to its own budget.
    pub fn release_path_cache(&mut self) {
        let Some(fault) = &mut self.fault else {
            return;
        };
        for cell in &mut fault.cells {
            cell.take();
        }
        *fault.resident_steps.get_mut() = 0;
    }

    /// Moves an on-disk slot's path into the resident arena so the flat store's
    /// write path (which reads the *old* path to unindex it) sees it.  No index
    /// update: the postings already account for the stored path.
    fn materialize_for_write(&mut self, slot: usize) {
        if self.in_arena[slot] {
            return;
        }
        let id = SegmentId(slot as u32);
        let fault = self
            .fault
            .as_mut()
            .expect("slots outside the arena imply demand-paging state");
        if let Some(path) = fault.cells[slot].take() {
            let steps = fault.resident_steps.get_mut();
            *steps = steps.saturating_sub(path.len() as u64);
            self.resident.install_indexed_path(id, &path);
        } else {
            let s = fault.prev_dir[slot];
            if s.len > 0 {
                let mut path = Vec::with_capacity(s.len as usize);
                let prev = self
                    .prev
                    .as_ref()
                    .expect("demand-paged store keeps its source generation open");
                let mut walks = prev.lock().expect("page-cache mutex poisoned");
                walks
                    .read_steps(s.offset, s.len, &mut path)
                    .unwrap_or_else(|e| {
                        panic!("materializing segment {slot} for write failed: {e}")
                    });
                drop(walks);
                validate_faulted_path(&path, slot, self.resident.r(), self.resident.node_count())
                    .unwrap_or_else(|e| panic!("segment {slot} corrupt on disk: {e}"));
                self.resident.install_indexed_path(id, &path);
            }
        }
        self.in_arena[slot] = true;
    }

    /// Trims the decoded-path cache back under the step budget with a second-chance
    /// sweep: hot cells are demoted on the first pass and dropped (if still over)
    /// on the second.  Runs after batch application and checkpoints.
    fn trim_fault_cells(&mut self) {
        let Some(fault) = &mut self.fault else {
            return;
        };
        let Some(limit) = fault.budget_steps else {
            return;
        };
        let mut resident = *fault.resident_steps.get_mut();
        for _pass in 0..2 {
            if resident <= limit {
                break;
            }
            for cell in &mut fault.cells {
                if resident <= limit {
                    break;
                }
                if cell.path.get_mut().is_null() {
                    continue;
                }
                if *cell.hot.get_mut() {
                    *cell.hot.get_mut() = false;
                    continue;
                }
                let path = cell.take().expect("checked non-null");
                resident = resident.saturating_sub(path.len() as u64);
            }
        }
        *fault.resident_steps.get_mut() = resident;
    }

    /// Renders the bytes of heap page `page`: every slot region intersecting the
    /// page contributes its path bytes (faulted in if needed), everything else is
    /// the filler word.
    fn render_page(&self, page: u32, out: &mut [u8]) -> PersistResult<()> {
        debug_assert_eq!(out.len(), WALKS_PAGE_SIZE);
        out.fill(0xFF);
        debug_assert_eq!(FILLER_WORD, u32::MAX);
        let start_step = page as u64 * STEPS_PER_PAGE;
        let end_step = start_step + STEPS_PER_PAGE;
        // Slot regions are disjoint, so at most one region starting before the page
        // can reach into it; the rest start within the page.
        let before = self
            .by_offset
            .range(..start_step)
            .next_back()
            .map(|(_, &slot)| slot);
        let within = self.by_offset.range(start_step..end_step).map(|(_, &s)| s);
        for slot in before.into_iter().chain(within) {
            let s = self.dir[slot as usize];
            if s.len == 0 || s.offset + (s.len as u64) <= start_step || s.offset >= end_step {
                continue;
            }
            let path = self.path_of(slot)?;
            let from = s.offset.max(start_step);
            let to = (s.offset + s.len as u64).min(end_step);
            for step in from..to {
                let word = path[(step - s.offset) as usize].0;
                let at = ((step - start_step) * 4) as usize;
                out[at..at + 4].copy_from_slice(&word.to_le_bytes());
            }
        }
        Ok(())
    }

    /// Length of `slot` as the read surface sees it (arena for materialized slots,
    /// directory for on-disk ones — no fault needed).
    fn tracked_len(&self, slot: u32) -> usize {
        if self.in_arena[slot as usize] {
            self.resident.segment_len(SegmentId(slot))
        } else {
            self.dir[slot as usize].len as usize
        }
    }

    fn check_file_layout(&self) -> Result<(), String> {
        let mut expected_live = 0u64;
        let mut reserved = 0u64;
        for (slot, s) in self.dir.iter().enumerate() {
            let tracked = self.tracked_len(slot as u32) as u32;
            if s.len != tracked {
                return Err(format!(
                    "slot {slot} stores {} steps on disk but {tracked} in memory",
                    s.len
                ));
            }
            if s.cap == 0 && s.len != 0 {
                return Err(format!("slot {slot} has data but no reservation"));
            }
            expected_live += s.len as u64;
            reserved += s.cap as u64;
        }
        if expected_live != self.live {
            return Err(format!(
                "live counter {} disagrees with the directory ({expected_live})",
                self.live
            ));
        }
        if reserved + self.dead != self.heap_len {
            return Err(format!(
                "heap accounting off: {reserved} reserved + {} dead != {} total",
                self.dead, self.heap_len
            ));
        }
        let mut prev_end = 0u64;
        for (&offset, &slot) in &self.by_offset {
            if offset < prev_end {
                return Err(format!("slot {slot} overlaps its predecessor"));
            }
            // Checked: a crafted directory entry must be rejected, not overflow.
            prev_end = offset
                .checked_add(self.dir[slot as usize].cap as u64)
                .ok_or_else(|| format!("slot {slot} region overflows the address space"))?;
        }
        if prev_end > self.heap_len {
            return Err("slot regions exceed the heap".to_string());
        }
        Ok(())
    }

    /// Full-store consistency for a demand-paged store: faults every segment and
    /// recomputes counters and postings from the actual paths (the cross-check
    /// [`WalkStore::bulk_load`] runs eagerly on the flat decode path, deferred here
    /// to explicit verification).
    fn check_demand_paths(&self) -> Result<(), String> {
        let node_count = self.resident.node_count();
        let mut counts = vec![0u64; node_count];
        let mut keys: Vec<u64> = Vec::new();
        for slot in 0..self.dir.len() {
            let id = SegmentId(slot as u32);
            let path = self.path_of(slot as u32).map_err(|e| e.to_string())?;
            if path.len() != self.tracked_len(slot as u32) {
                return Err(format!(
                    "segment {slot} length disagrees with the directory"
                ));
            }
            if let Some(&first) = path.first() {
                if first != id.source(self.resident.r()) {
                    return Err(format!("segment {slot} does not start at its source"));
                }
            }
            for &v in path {
                if v.index() >= node_count {
                    return Err(format!("segment {slot} visits node {v} outside the store"));
                }
                counts[v.index()] += 1;
                keys.push(((v.0 as u64) << 32) | slot as u64);
            }
        }
        if counts != self.resident.visit_counts() {
            return Err("visit counters out of sync with the stored segments".to_string());
        }
        if keys.len() as u64 != self.resident.total_visits() {
            return Err(format!(
                "total_visits {} disagrees with the stored segments ({})",
                self.resident.total_visits(),
                keys.len()
            ));
        }
        keys.sort_unstable();
        let mut i = 0usize;
        for v in 0..node_count {
            let mut expect = self.resident.segments_visiting(NodeId::from_index(v));
            while i < keys.len() && (keys[i] >> 32) as usize == v {
                let seg = keys[i] as u32;
                let mut count = 0u32;
                while i < keys.len() && (keys[i] >> 32) as usize == v && keys[i] as u32 == seg {
                    count += 1;
                    i += 1;
                }
                if expect.next() != Some((SegmentId(seg), count)) {
                    return Err(format!(
                        "postings of node {v} disagree with the stored paths at segment {seg}"
                    ));
                }
            }
            if expect.next().is_some() {
                return Err(format!(
                    "postings of node {v} index visits no path contains"
                ));
            }
        }
        Ok(())
    }
}

/// Structural validation of a path read off disk, mirroring what
/// [`WalkStore::bulk_load`] checks per segment on the eager decode path.
fn validate_faulted_path(
    path: &[NodeId],
    slot: usize,
    r: usize,
    node_count: usize,
) -> Result<(), String> {
    let id = SegmentId(slot as u32);
    if let Some(&first) = path.first() {
        if first != id.source(r) {
            return Err(format!("segment {slot} does not start at its source"));
        }
    }
    for &v in path {
        if v.index() >= node_count {
            return Err(format!("segment {slot} visits node {v} outside the store"));
        }
    }
    Ok(())
}

/// Applies a [`PageBudget`] to an open generation: sets the page-cache budget and
/// pins the pages holding the hottest nodes' segments (visit-count order — the
/// paper's power-law skew makes a small pin set absorb most faults).  At most half
/// the budget is spent on pins so demand faults always have unpinned frames to
/// recycle.
fn apply_cache_policy(
    budget: PageBudget,
    counts: &[u64],
    dir: &[FileSlot],
    r: usize,
    walks: &mut PagedWalks,
) -> PersistResult<()> {
    walks.configure_cache(budget.max_resident_pages);
    let pins = hot_pin_pages(budget, counts, dir, r, walks.header().page_count());
    walks.pin_pages(&pins)
}

/// Deterministically derives the pin set: nodes ranked by (visit count desc, id
/// asc), their segments' heap pages collected until the pin capacity — `min(budget/2,
/// budget-1)`, further capped by `pin_top_nodes` — is filled.
fn hot_pin_pages(
    budget: PageBudget,
    counts: &[u64],
    dir: &[FileSlot],
    r: usize,
    page_count: u32,
) -> Vec<u32> {
    let Some(max_pages) = budget.max_resident_pages else {
        return Vec::new();
    };
    let pin_cap = (max_pages / 2).min(max_pages.saturating_sub(1));
    let top_k = budget.pin_top_nodes.unwrap_or(usize::MAX);
    if pin_cap == 0 || page_count == 0 || top_k == 0 {
        return Vec::new();
    }
    let mut ranked: Vec<(u64, usize)> = counts
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .map(|(node, &c)| (c, node))
        .collect();
    ranked.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut pages = BTreeSet::new();
    'nodes: for &(_, node) in ranked.iter().take(top_k) {
        for slot in node * r..(node + 1) * r {
            let Some(&s) = dir.get(slot) else { continue };
            if s.len == 0 {
                continue;
            }
            let first = (s.offset / STEPS_PER_PAGE) as u32;
            let last = ((s.offset + s.len as u64 - 1) / STEPS_PER_PAGE) as u32;
            for page in first..=last.min(page_count.saturating_sub(1)) {
                if pages.len() >= pin_cap && !pages.contains(&page) {
                    break 'nodes;
                }
                pages.insert(page);
            }
        }
    }
    pages.into_iter().collect()
}

impl ppr_store::WalkIndexView for DiskWalkStore {
    #[inline]
    fn r(&self) -> usize {
        self.resident.r()
    }

    #[inline]
    fn node_count(&self) -> usize {
        self.resident.node_count()
    }

    /// Demand-faults the segment from disk on first touch.  Faults panic on I/O or
    /// corruption errors (the trait's infallible read surface — same policy as WAL
    /// append failures); [`DiskWalkStore::try_fault_segment`] surfaces the error.
    #[inline]
    fn segment_path(&self, id: SegmentId) -> &[NodeId] {
        if self.in_arena[id.index()] {
            return self.resident.segment_path(id);
        }
        self.fault_slot(id.index())
            .unwrap_or_else(|e| panic!("demand fault of segment {} failed: {e}", id.0))
    }

    #[inline]
    fn source_of(&self, id: SegmentId) -> NodeId {
        self.resident.source_of(id)
    }

    fn segment_ids_of(&self, node: NodeId) -> impl Iterator<Item = SegmentId> + '_ {
        self.resident.segment_ids_of(node)
    }

    #[inline]
    fn segment_len(&self, id: SegmentId) -> usize {
        self.tracked_len(id.0)
    }

    #[inline]
    fn visit_count(&self, node: NodeId) -> u64 {
        self.resident.visit_count(node)
    }

    fn visit_counts(&self) -> Cow<'_, [u64]> {
        Cow::Borrowed(self.resident.visit_counts())
    }

    #[inline]
    fn total_visits(&self) -> u64 {
        self.resident.total_visits()
    }
}

impl WalkIndex for DiskWalkStore {
    fn segments_visiting(&self, node: NodeId) -> impl Iterator<Item = (SegmentId, u32)> + '_ {
        self.resident.segments_visiting(node)
    }

    fn arena_stats(&self) -> ArenaStats {
        self.resident.arena_stats()
    }

    fn emit_telemetry(&self, out: &mut ppr_telemetry::SnapshotBuilder) {
        out.source("arena", &self.arena_stats());
        out.source("disk", &self.stats());
        out.source("pager", &self.pager_stats());
        out.source("residency", &self.residency());
    }
}

impl WalkIndexMut for DiskWalkStore {
    fn ensure_nodes(&mut self, n: usize) {
        self.resident.ensure_nodes(n);
        let slots = self.resident.node_count() * self.resident.r();
        if slots > self.dir.len() {
            self.dir.resize(slots, FileSlot::default());
            self.in_arena.resize(slots, true);
            if let Some(fault) = &mut self.fault {
                fault.cells.resize_with(slots, FaultCell::new);
                fault.prev_dir.resize(slots, FileSlot::default());
            }
        }
    }

    fn set_segment(&mut self, id: SegmentId, path: &[NodeId]) {
        self.materialize_for_write(id.index());
        self.resident.set_segment(id, path);
        self.update_file_slot(id.index(), path.len());
    }

    fn clear_segment(&mut self, id: SegmentId) {
        self.materialize_for_write(id.index());
        self.resident.clear_segment(id);
        self.update_file_slot(id.index(), 0);
    }

    fn apply_rewrites(&mut self, rewrites: &SegmentRewrites, _threads: usize) {
        for (id, path) in rewrites.iter() {
            self.set_segment(id, path);
        }
        // Batch boundary: shed cold decoded paths accumulated by the batch's reads.
        self.trim_fault_cells();
    }

    fn check_consistency(&self) -> Result<(), String> {
        if self.fault.is_some() {
            self.check_demand_paths()?;
        } else {
            self.resident.check_consistency()?;
        }
        self.check_file_layout()
    }

    /// The knob tunes the resident image's in-memory arena; the on-disk heap keeps
    /// its own half-dead file-compaction rule (a separate cost model: file
    /// compaction rewrites every page).
    fn set_compaction_threshold(&mut self, ratio: f64) {
        self.resident.set_compaction_threshold(ratio);
    }
}

impl PersistentWalkStore for DiskWalkStore {
    /// Page-granular write-back: dirty pages are rendered from the resident image
    /// (faulting any untouched slots that share them), clean pages are streamed
    /// byte-for-byte out of the previous generation's file **without** admitting
    /// them to the cache — a checkpoint never faults the store resident.
    fn encode_walks(&mut self) -> PersistResult<Vec<u8>> {
        let page_count = self.page_count();
        let mut heap = vec![0xFFu8; page_count as usize * WALKS_PAGE_SIZE];
        let prev_pages = self
            .prev
            .as_ref()
            .map(|p| {
                p.lock()
                    .expect("page-cache mutex poisoned")
                    .header()
                    .page_count()
            })
            .unwrap_or(0);
        for page in 0..page_count {
            let range = page as usize * WALKS_PAGE_SIZE..(page as usize + 1) * WALKS_PAGE_SIZE;
            let reusable = !self.all_dirty && !self.dirty.contains(&page) && page < prev_pages;
            if reusable {
                let prev = self.prev.as_ref().expect("prev_pages > 0 implies a source");
                // Tight lock scope: render_page below may fault, which takes this
                // same mutex.
                prev.lock()
                    .expect("page-cache mutex poisoned")
                    .stream_page(page, &mut heap[range])?;
                self.stats.pages_reused += 1;
            } else {
                self.render_page(page, &mut heap[range])?;
                self.stats.pages_rewritten += 1;
            }
        }
        let header = WalksHeader {
            r: self.resident.r() as u32,
            shard_count: 1,
            node_count: self.resident.node_count() as u64,
            slot_count: self.dir.len() as u64,
            heap_len: self.heap_len,
            page_size: WALKS_PAGE_SIZE as u32,
        };
        let postings = crate::layout::encode_postings(&self.resident);
        let payload = assemble_walks_payload(&header, &self.dir, &postings, &heap);
        self.pending_heap = Some(heap);
        // Rendering dirty pages may have faulted slot paths in; shed the cold ones.
        self.trim_fault_cells();
        Ok(payload)
    }

    /// Demand-paged open: installs the slot directory and the postings index only —
    /// O(metadata), independent of the heap size at any budget.  Walk paths stay on
    /// disk and fault in on first touch; the full path/index cross-check the flat
    /// decode runs eagerly is deferred to per-fault validation plus
    /// [`WalkIndexMut::check_consistency`].
    fn decode_walks(mut walks: PagedWalks) -> PersistResult<Self> {
        let header = *walks.header();
        if header.shard_count != 1 {
            return Err(format_err(format!(
                "snapshot holds a {}-shard store; open it with the sharded engine",
                header.shard_count
            )));
        }
        let (postings, total) = walks.parse_postings()?;
        let resident = WalkStore::from_postings_index(
            header.node_count as usize,
            header.r as usize,
            postings,
            total,
        )
        .map_err(corrupt)?;

        let dir = walks.dir().to_vec();
        let mut by_offset = BTreeMap::new();
        let mut live = 0u64;
        let mut reserved = 0u64;
        for (slot, s) in dir.iter().enumerate() {
            live += s.len as u64;
            reserved += s.cap as u64;
            if s.cap > 0 && by_offset.insert(s.offset, slot as u32).is_some() {
                return Err(corrupt(format!("two slots share heap offset {}", s.offset)));
            }
        }
        let dead = header
            .heap_len
            .checked_sub(reserved)
            .ok_or_else(|| corrupt("slot reservations exceed the heap"))?;

        let budget = PageBudget::from_env();
        apply_cache_policy(
            budget,
            resident.visit_counts(),
            &dir,
            header.r as usize,
            &mut walks,
        )?;
        let fault = FaultState {
            cells: (0..dir.len()).map(|_| FaultCell::new()).collect(),
            prev_dir: dir.clone(),
            resident_steps: AtomicU64::new(0),
            budget_steps: budget.budget_steps(),
        };
        let in_arena: Vec<bool> = dir.iter().map(|s| s.len == 0).collect();
        let store = DiskWalkStore {
            resident,
            dir,
            by_offset,
            heap_len: header.heap_len,
            live,
            dead,
            dirty: BTreeSet::new(),
            all_dirty: false,
            in_arena,
            fault: Some(fault),
            budget,
            prev: Some(Mutex::new(walks)),
            pending_heap: None,
            stats: DiskStoreStats::default(),
        };
        store.check_file_layout().map_err(corrupt)?;
        Ok(store)
    }

    /// Streams every heap page against the CRC table without admitting anything —
    /// one page of scratch, sequential I/O.  Called by the durable open so a rotted
    /// or torn heap fails the load (and triggers generation fallback) instead of
    /// panicking at some later demand fault.
    fn verify_walks(&self) -> PersistResult<()> {
        let Some(prev) = &self.prev else {
            return Ok(());
        };
        let mut walks = prev.lock().expect("page-cache mutex poisoned");
        let mut scratch = vec![0u8; WALKS_PAGE_SIZE];
        for page in 0..walks.header().page_count() {
            walks.stream_page(page, &mut scratch)?;
        }
        Ok(())
    }

    fn after_checkpoint(&mut self, snap_path: &Path) -> PersistResult<()> {
        let mut next = PagedWalks::open(snap_path)?;
        apply_cache_policy(
            self.budget,
            self.resident.visit_counts(),
            &self.dir,
            self.resident.r(),
            &mut next,
        )?;
        // Keep the pages we just wrote warm (within policy: pins always, the rest
        // while the budget has room): the next write-back's clean pages then copy
        // from memory instead of re-reading (and re-validating) the file.
        if let Some(heap) = self.pending_heap.take() {
            next.preload_heap(&heap)?;
        }
        if let Some(fault) = &mut self.fault {
            fault.prev_dir.clone_from(&self.dir);
        }
        self.prev = Some(Mutex::new(next));
        self.dirty.clear();
        self.all_dirty = false;
        self.trim_fault_cells();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{SnapshotWriter, SECTION_WALKS};
    use crate::tempdir::TempDir;
    use ppr_store::WalkIndexView;

    #[test]
    fn snapshot_view_freezes_the_resident_image() {
        let mut store = DiskWalkStore::new(6, 2);
        store.set_segment(SegmentId::new(NodeId(2), 1, 2), &path_of(&[2, 5, 0]));
        let view = store.snapshot_view(7);
        assert_eq!(view.epoch(), 7);
        assert_eq!(view.node_count(), 6);
        assert_eq!(view.total_visits(), store.total_visits());
        assert_eq!(
            view.segment_path(SegmentId::new(NodeId(2), 1, 2)),
            store.segment_path(SegmentId::new(NodeId(2), 1, 2))
        );
    }

    fn path_of(nodes: &[u32]) -> Vec<NodeId> {
        nodes.iter().map(|&n| NodeId(n)).collect()
    }

    fn checkpoint_to(store: &mut DiskWalkStore, path: &Path) {
        let payload = store.encode_walks().unwrap();
        let mut w = SnapshotWriter::new();
        w.add_section(SECTION_WALKS, payload);
        w.write_to(path).unwrap();
        store.after_checkpoint(path).unwrap();
    }

    #[test]
    fn behaves_exactly_like_the_flat_store() {
        let mut disk = DiskWalkStore::new(6, 2);
        let mut flat = WalkStore::new(6, 2);
        let writes: &[(u32, usize, &[u32])] = &[
            (0, 0, &[0, 3, 4]),
            (5, 1, &[5, 5, 2]),
            (0, 0, &[0, 1]),
            (3, 1, &[3, 0, 3, 0]),
            (5, 1, &[]),
        ];
        for &(node, slot, p) in writes {
            let id = SegmentId::new(NodeId(node), slot, 2);
            disk.set_segment(id, &path_of(p));
            flat.set_segment(id, &path_of(p));
        }
        assert_eq!(disk.visit_counts(), WalkIndexView::visit_counts(&flat));
        assert_eq!(WalkIndexView::total_visits(&disk), flat.total_visits());
        for slot in 0..12u32 {
            assert_eq!(
                WalkIndexView::segment_path(&disk, SegmentId(slot)),
                flat.segment_path(SegmentId(slot))
            );
        }
        assert!(WalkIndexMut::check_consistency(&disk).is_ok());
    }

    #[test]
    fn checkpoint_round_trips_through_the_snapshot() {
        let tmp = TempDir::new("disk-roundtrip");
        let snap = tmp.path().join("snap-0.ppr");
        let mut store = DiskWalkStore::new(5, 1);
        for node in 0..5u32 {
            let id = SegmentId::new(NodeId(node), 0, 1);
            store.set_segment(id, &path_of(&[node, (node + 1) % 5]));
        }
        checkpoint_to(&mut store, &snap);

        let reopened = DiskWalkStore::decode_walks(PagedWalks::open(&snap).unwrap()).unwrap();
        assert_eq!(reopened.visit_counts(), store.visit_counts());
        assert_eq!(reopened.heap_geometry(), store.heap_geometry());
        // Open is metadata-only: nothing faulted yet.
        assert_eq!(reopened.pager_stats().loads, 0);
        for slot in 0..5u32 {
            assert_eq!(
                WalkIndexView::segment_path(&reopened, SegmentId(slot)),
                WalkIndexView::segment_path(&store, SegmentId(slot))
            );
        }
        assert!(WalkIndexMut::check_consistency(&reopened).is_ok());
        // The reads above demand-faulted the heap in through the cache.
        assert!(reopened.pager_stats().loads > 0);
    }

    #[test]
    fn second_checkpoint_reuses_clean_pages() {
        let tmp = TempDir::new("disk-reuse");
        // 2048 slots with ~3 steps each spread over many pages.
        let n = 2048usize;
        let mut store = DiskWalkStore::new(n, 1);
        for node in 0..n as u32 {
            let id = SegmentId::new(NodeId(node), 0, 1);
            store.set_segment(id, &path_of(&[node, (node + 1) % n as u32, node]));
        }
        let snap0 = tmp.path().join("snap-0.ppr");
        checkpoint_to(&mut store, &snap0);
        let after_first = store.stats();
        assert!(
            after_first.pages_rewritten > 4,
            "first checkpoint renders all"
        );
        assert_eq!(after_first.pages_reused, 0);

        // Touch one segment; the next checkpoint only re-renders its page(s).
        store.set_segment(SegmentId(7), &path_of(&[7, 8]));
        assert_eq!(store.dirty_pages(), 1);
        let snap1 = tmp.path().join("snap-1.ppr");
        checkpoint_to(&mut store, &snap1);
        let after_second = store.stats();
        let rewritten = after_second.pages_rewritten - after_first.pages_rewritten;
        assert_eq!(rewritten, 1, "only the touched page is re-rendered");
        assert!(after_second.pages_reused >= 4);

        // And the reused-page snapshot still decodes to the exact store.
        let reopened = DiskWalkStore::decode_walks(PagedWalks::open(&snap1).unwrap()).unwrap();
        assert_eq!(reopened.visit_counts(), store.visit_counts());
        assert_eq!(
            WalkIndexView::segment_path(&reopened, SegmentId(7)),
            path_of(&[7, 8]).as_slice()
        );
        assert!(WalkIndexMut::check_consistency(&reopened).is_ok());
    }

    #[test]
    fn outgrown_slots_relocate_and_eventually_compact_the_file() {
        let mut store = DiskWalkStore::new(4, 1);
        // Lengths crossing successive power-of-two boundaries force relocations whose
        // abandoned reservations pile up past the live data (same shape as the
        // in-memory arena's compaction test).
        for &len in &[9usize, 17, 65, 257] {
            for node in 0..4u32 {
                let mut p = vec![NodeId(node)];
                p.extend(std::iter::repeat_n(NodeId((node + 1) % 4), len - 1));
                store.set_segment(SegmentId::new(NodeId(node), 0, 1), &p);
            }
        }
        let stats = store.stats();
        assert!(stats.relocations > 0, "growth must relocate");
        assert!(
            stats.file_compactions > 0,
            "half-dead rule must fire: {stats:?}"
        );
        assert!(stats.compaction_steps_moved > 0);
        assert!(WalkIndexMut::check_consistency(&store).is_ok());
        let (heap, live, dead) = store.heap_geometry();
        assert!(dead <= live.max(8 * 4), "compaction keeps garbage bounded");
        assert!(heap >= live);
    }

    #[test]
    fn ensure_nodes_grows_the_directory() {
        let mut store = DiskWalkStore::new(2, 2);
        store.ensure_nodes(5);
        assert_eq!(WalkIndexView::node_count(&store), 5);
        let id = SegmentId::new(NodeId(4), 1, 2);
        store.set_segment(id, &path_of(&[4, 0]));
        assert_eq!(WalkIndexView::visit_count(&store, NodeId(4)), 1);
        assert!(WalkIndexMut::check_consistency(&store).is_ok());
    }

    #[test]
    fn bounded_reopen_matches_unbounded_and_stays_bounded() {
        let tmp = TempDir::new("disk-bounded");
        let snap = tmp.path().join("snap-0.ppr");
        let n = 512usize;
        let mut store = DiskWalkStore::new(n, 1);
        for node in 0..n as u32 {
            let id = SegmentId::new(NodeId(node), 0, 1);
            // ~40 steps per slot: dozens of heap pages.
            let mut p = vec![NodeId(node)];
            p.extend((0..39).map(|k| NodeId((node + k) % n as u32)));
            store.set_segment(id, &p);
        }
        checkpoint_to(&mut store, &snap);

        let unbounded = DiskWalkStore::decode_walks(PagedWalks::open(&snap).unwrap()).unwrap();
        let old = set_thread_page_budget(Some(PageBudget::bounded(2)));
        let bounded = DiskWalkStore::decode_walks(PagedWalks::open(&snap).unwrap()).unwrap();
        set_thread_page_budget(old);

        for slot in (0..n as u32).rev() {
            assert_eq!(
                WalkIndexView::segment_path(&bounded, SegmentId(slot)),
                WalkIndexView::segment_path(&unbounded, SegmentId(slot)),
            );
        }
        let residency = bounded.residency();
        assert!(
            residency.resident_pages <= 2,
            "budget of 2 pages respected, got {residency:?}"
        );
        assert!(bounded.pager_stats().evictions > 0, "tiny budget thrashed");
        assert!(WalkIndexMut::check_consistency(&bounded).is_ok());
    }

    #[test]
    fn writes_to_unfaulted_slots_preserve_the_index() {
        let tmp = TempDir::new("disk-write-unfaulted");
        let snap = tmp.path().join("snap-0.ppr");
        let mut store = DiskWalkStore::new(8, 1);
        for node in 0..8u32 {
            let id = SegmentId::new(NodeId(node), 0, 1);
            store.set_segment(id, &path_of(&[node, (node + 1) % 8, (node + 2) % 8]));
        }
        checkpoint_to(&mut store, &snap);
        let mut reopened = DiskWalkStore::decode_walks(PagedWalks::open(&snap).unwrap()).unwrap();
        // Overwrite a slot that was never read: the write path must unindex the old
        // on-disk path (materializing it first), not corrupt the counters.
        reopened.set_segment(SegmentId(3), &path_of(&[3, 3]));
        reopened.clear_segment(SegmentId(5));
        assert!(WalkIndexMut::check_consistency(&reopened).is_ok());
        // And a follow-up checkpoint round-trips the mixed arena/disk state.
        let snap1 = tmp.path().join("snap-1.ppr");
        checkpoint_to(&mut reopened, &snap1);
        let again = DiskWalkStore::decode_walks(PagedWalks::open(&snap1).unwrap()).unwrap();
        assert_eq!(
            WalkIndexView::segment_path(&again, SegmentId(3)),
            path_of(&[3, 3]).as_slice()
        );
        assert!(WalkIndexView::segment_path(&again, SegmentId(5)).is_empty());
        assert!(WalkIndexMut::check_consistency(&again).is_ok());
    }

    #[test]
    fn concurrent_faults_decode_each_slot_once() {
        let tmp = TempDir::new("disk-concurrent");
        let snap = tmp.path().join("snap-0.ppr");
        let n = 64usize;
        let mut store = DiskWalkStore::new(n, 1);
        for node in 0..n as u32 {
            let id = SegmentId::new(NodeId(node), 0, 1);
            store.set_segment(id, &path_of(&[node, (node + 1) % n as u32]));
        }
        checkpoint_to(&mut store, &snap);
        let reopened = DiskWalkStore::decode_walks(PagedWalks::open(&snap).unwrap()).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for slot in 0..n as u32 {
                        let path = WalkIndexView::segment_path(&reopened, SegmentId(slot));
                        assert_eq!(path[0], NodeId(slot));
                    }
                });
            }
        });
        assert_eq!(
            reopened.residency().cached_path_steps,
            2 * n as u64,
            "each slot decoded exactly once despite racing readers"
        );
    }
}
